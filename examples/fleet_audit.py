#!/usr/bin/env python
"""Fleet auditing walkthrough: many tenants, one misbehaving provider.

The single-owner quickstart scales up: three providers, three tenants,
a dozen outsourced files, one shared simulated clock -- and one
provider that quietly relocated its tenant's data offshore.  The fleet
engine allocates finite audit capacity with a pluggable scheduling
strategy, batches challenge rounds per data centre, and aggregates
everything into a compliance report.

1. build an :class:`~repro.fleet.AuditFleet` and onboard providers
   with located data centres (a verifier device per site, a TPA per
   provider, all on the fleet clock);
2. register tenant files -- each registration runs the full
   Juels-Kaliski setup and enqueues the file for recurring audits;
3. inject the violation: the third provider relocates every file to
   Singapore and relays audits (the Fig. 6 attack, fleet-scale);
4. run 24 simulated hours under risk-weighted scheduling and read the
   report: honest tenants at 100 % acceptance, every relayed file
   flagged by the timing bound, with detection latency in hours.

Run:  python examples/fleet_audit.py
"""

from repro import DeterministicRNG, city
from repro.cloud.adversary import RelayAttack
from repro.cloud.provider import DataCentre
from repro.fleet import AuditFleet, RiskWeightedStrategy
from repro.storage.hdd import IBM_36Z15

PROVIDERS = {
    "acme": "brisbane",
    "globex": "sydney",
    "initech": "melbourne",
}


def main() -> None:
    # 1. The fleet: finite capacity (one batch per 30-minute slot, up
    #    to 4 audits per batch) allocated by risk-weighted scheduling.
    fleet = AuditFleet(
        seed="fleet-example",
        strategy=RiskWeightedStrategy(),
        slot_minutes=30.0,
        batch_size=4,
    )
    for name, site in PROVIDERS.items():
        fleet.add_provider(name, [(site, city(site))])
    print(f"onboarded providers: {', '.join(fleet.provider_names())}")

    # 2. Tenants outsource files.  initech's tenant declares a higher
    #    corruption tolerance (epsilon): the risk signal the scheduler
    #    uses to audit those files more aggressively.
    data_rng = DeterministicRNG("fleet-example-data")
    for tenant, (name, site) in zip(
        ("alice", "bob", "carol"), PROVIDERS.items()
    ):
        epsilon = 0.10 if name == "initech" else 0.02
        for i in range(4):
            fleet.register(
                tenant=tenant,
                provider=name,
                datacentre=site,
                file_id=f"{tenant}-doc-{i}".encode(),
                data=data_rng.fork(f"{tenant}-{i}").random_bytes(2_000),
                epsilon=epsilon,
                interval_hours=6.0,
            )
    print(f"registered {fleet.n_files} files for 3 tenants")

    # 3. The violation: initech moves carol's data to Singapore and
    #    forwards audit rounds over the Internet.
    initech = fleet.provider("initech")
    initech.add_datacentre(
        DataCentre("singapore", city("singapore"), disk=IBM_36Z15)
    )
    for task in fleet.tasks():
        if task.provider_name == "initech":
            initech.relocate(task.file_id, "singapore")
    initech.set_strategy(RelayAttack("melbourne", "singapore"))
    print("initech relocated carol's files offshore (relay installed)\n")

    # 4. Audit the fleet for a simulated day and read the report.
    report = fleet.run(hours=24.0)
    print(report.render())

    first = report.first_detection_hours()
    print(
        f"\nfirst violation detected after {first:.2f} simulated hours; "
        f"batching saved {report.overhead_saved_ms:.0f} ms of dispatch "
        f"overhead across {report.n_batches} batches"
    )

    alice = report.tenant_summary("alice")
    carol = report.tenant_summary("carol")
    assert alice is not None and alice.acceptance_rate == 1.0
    assert carol is not None and carol.acceptance_rate < 1.0
    relayed = {t.file_id for t in fleet.tasks() if t.provider_name == "initech"}
    flagged = {v.file_id for v in report.violations}
    assert flagged == relayed, "every relayed file must be flagged"
    assert all("timing" in v.failure_reasons for v in report.violations)
    print("fleet caught the relay on every affected file -- done.")


if __name__ == "__main__":
    main()
