#!/usr/bin/env python
"""Fleet auditing walkthrough: many tenants, one misbehaving provider.

The single-owner quickstart scales up: three providers, three tenants,
a dozen outsourced files, one fleet-wide timeline -- and one provider
that quietly relocated its tenant's data offshore.  The fleet engine
allocates finite audit capacity with a pluggable scheduling strategy,
batches challenge rounds per data centre, and aggregates everything
into a compliance report.  The same scenario then runs on both engines
so the serial slot loop and the concurrent per-datacentre lanes can be
compared head to head.

1. build an :class:`~repro.fleet.AuditFleet` and onboard providers
   with located data centres (a verifier device per site, a TPA per
   provider, all merged onto the fleet timeline);
2. register tenant files -- each registration runs the full
   Juels-Kaliski setup and enqueues the file for recurring audits;
3. inject the violation: the third provider relocates every file to
   Singapore and relays audits (the Fig. 6 attack, fleet-scale);
4. run 24 simulated hours under risk-weighted scheduling and read the
   report: honest tenants at 100 % acceptance, every relayed file
   flagged by the timing bound, with detection latency in hours;
5. re-run the identical scenario on the event engine: every data
   centre audits on its own lane clock, so the relayer's slow relayed
   rounds never delay the honest sites, and the lane table shows the
   overlap;
6. finally, the shared-spindle coda: the same replicated workload on
   dedicated spindles versus four lanes crammed onto one storage
   array, showing queue wait turning into contention-induced false
   timeouts -- and work-stealing lanes migrating audits off the
   saturated hot lane to replica sites to claw detection time back.

Replicated placement here feeds *scheduling* (where an audit may
run); to prove the replicas are geographically *distinct* copies, see
the companion ``examples/replication_audit.py``, which composes the
same per-site audits into a replication-diversity verdict.

Run:  python examples/fleet_audit.py
"""

from repro import DeterministicRNG, city
from repro.cloud.adversary import RelayAttack
from repro.cloud.provider import DataCentre
from repro.fleet import AuditFleet, RiskWeightedStrategy, WorkStealingStrategy
from repro.fleet.demo import build_contention_fleet
from repro.storage.hdd import IBM_36Z15

PROVIDERS = {
    "acme": "brisbane",
    "globex": "sydney",
    "initech": "melbourne",
}


def build_fleet(engine: str) -> AuditFleet:
    """The reference scenario, rebuilt identically for each engine."""
    # 1. The fleet: finite capacity (one batch per 30-minute slot, up
    #    to 4 audits per batch) allocated by risk-weighted scheduling.
    fleet = AuditFleet(
        seed="fleet-example",
        strategy=RiskWeightedStrategy(),
        slot_minutes=30.0,
        batch_size=4,
        engine=engine,
    )
    for name, site in PROVIDERS.items():
        fleet.add_provider(name, [(site, city(site))])

    # 2. Tenants outsource files.  initech's tenant declares a higher
    #    corruption tolerance (epsilon): the risk signal the scheduler
    #    uses to audit those files more aggressively.
    data_rng = DeterministicRNG("fleet-example-data")
    for tenant, (name, site) in zip(
        ("alice", "bob", "carol"), PROVIDERS.items()
    ):
        epsilon = 0.10 if name == "initech" else 0.02
        for i in range(4):
            fleet.register(
                tenant=tenant,
                provider=name,
                datacentre=site,
                file_id=f"{tenant}-doc-{i}".encode(),
                data=data_rng.fork(f"{tenant}-{i}").random_bytes(2_000),
                epsilon=epsilon,
                interval_hours=6.0,
            )

    # 3. The violation: initech moves carol's data to Singapore and
    #    forwards audit rounds over the Internet.
    initech = fleet.provider("initech")
    initech.add_datacentre(
        DataCentre("singapore", city("singapore"), disk=IBM_36Z15)
    )
    for task in fleet.tasks():
        if task.provider_name == "initech":
            initech.relocate(task.file_id, "singapore")
    initech.set_strategy(RelayAttack("melbourne", "singapore"))
    return fleet


def check_report(fleet: AuditFleet, report) -> None:
    """The paper-level claims hold under either engine."""
    alice = report.tenant_summary("alice")
    carol = report.tenant_summary("carol")
    assert alice is not None and alice.acceptance_rate == 1.0
    assert carol is not None and carol.acceptance_rate < 1.0
    relayed = {t.file_id for t in fleet.tasks() if t.provider_name == "initech"}
    flagged = {v.file_id for v in report.violations}
    assert flagged == relayed, "every relayed file must be flagged"
    assert all("timing" in v.failure_reasons for v in report.violations)


def main() -> None:
    fleet = build_fleet("slot")
    print(f"onboarded providers: {', '.join(fleet.provider_names())}")
    print(f"registered {fleet.n_files} files for 3 tenants")
    print("initech relocated carol's files offshore (relay installed)\n")

    # 4. Audit the fleet for a simulated day on the serial baseline.
    report = fleet.run(hours=24.0)
    print(report.render())

    first = report.first_detection_hours()
    print(
        f"\nfirst violation detected after {first:.2f} simulated hours; "
        f"batching saved {report.overhead_saved_ms:.0f} ms of dispatch "
        f"overhead across {report.n_batches} batches"
    )
    check_report(fleet, report)

    # 5. Same scenario, event engine: per-datacentre lanes audit
    #    concurrently, so every site gets a batch every slot instead of
    #    sharing one fleet-wide batch.
    event_fleet = build_fleet("event")
    event_report = event_fleet.run(hours=24.0)
    check_report(event_fleet, event_report)
    event_first = event_report.first_detection_hours()
    print(
        f"\nevent engine: {len(event_report.lanes)} concurrent lanes, "
        f"{event_report.n_audits} audits "
        f"(vs {report.n_audits} serial), first detection after "
        f"{event_first:.2f} h (vs {first:.2f} h), "
        f"{event_report.concurrency_speedup:.2f}x audit-work overlap"
    )
    assert event_first <= first
    assert event_report.n_audits > report.n_audits
    print("fleet caught the relay on every affected file -- done.\n")

    # 6. Shared spindles: the same lanes, starved of disks.  Replicas
    #    (see examples/replication_audit.py for proving they are
    #    *distinct* copies) give work-stealing lanes somewhere to run
    #    a saturated sibling's audits.
    compare_spindle_contention()


def compare_spindle_contention() -> None:
    """Dedicated vs shared spindles, round-robin vs work stealing."""
    print("--- shared-spindle contention ---")
    rows = {}
    for label, spindles, strategy in (
        ("dedicated + round-robin", None, None),
        ("1 spindle + round-robin", 1, None),
        ("1 spindle + work-stealing", 1, WorkStealingStrategy()),
    ):
        fleet, rotted = build_contention_fleet(
            strategy=strategy, spindles=spindles, hot_files=12, k_rounds=6,
            batch_size=2, slot_minutes=0.0025,
        )
        report = fleet.run(hours=0.01)
        caught = [report.detection_hours(f, "acme") for f in rotted]
        detect_s = (
            max(caught) * 3600.0 if all(c is not None for c in caught)
            else float("inf")
        )
        rows[label] = (report, detect_s)
        print(
            f"{label:>28}: all rot caught in {detect_s:6.2f} simulated s, "
            f"{report.total_spindle_wait_ms/1000.0:7.2f} s spindle queue wait, "
            f"{report.n_contention_timeouts:3d} contention-induced timeouts, "
            f"{report.n_stolen_audits:3d} audits migrated"
        )
    dedicated, _ = rows["dedicated + round-robin"]
    contended, rr_detect = rows["1 spindle + round-robin"]
    stealing, ws_detect = rows["1 spindle + work-stealing"]
    # Starving four lanes of disks manufactures false timeouts a
    # dedicated deployment never shows...
    assert dedicated.n_contention_timeouts == 0
    assert contended.n_contention_timeouts > 0
    # ...and lane-aware work stealing claws back detection latency.
    assert stealing.n_stolen_audits > 0
    assert ws_detect < rr_detect
    print(
        f"work stealing caught the rot {rr_detect/ws_detect:.2f}x sooner "
        "than round-robin on the contended array -- done."
    )


if __name__ == "__main__":
    main()
