#!/usr/bin/env python
"""The Fig. 6 scenario: a provider secretly relocates data offshore.

A provider under an Australia-only SLA moves the file to a Singapore
data centre with *faster* disks (the paper's IBM 36Z15 vs WD 2500JD)
and relays audit traffic.  GeoProof catches it on timing alone -- the
MAC tags all verify (the data is intact!), but physics does not
cooperate: forwarding across ~6,150 km costs more than the
Delta-t_max ~ 16 ms budget allows.

The script then sweeps the relay distance to show where the bound
bites, next to the paper's 360 km arithmetic.

Run:  python examples/relay_attack.py
"""

from repro import DataCentre, DeterministicRNG, GeoProofSession, RelayAttack, city
from repro.analysis.experiments import fig6_paper_bound_km, fig6_relay_sweep, fig6_tight_bound_km
from repro.analysis.reporting import format_table
from repro.por.parameters import TEST_PARAMS
from repro.storage.hdd import IBM_36Z15


def main() -> None:
    session = GeoProofSession.build(
        datacentre_location=city("brisbane"),
        params=TEST_PARAMS,
        seed="relay-example",
    )
    data = DeterministicRNG("relay-data").random_bytes(40_000)
    session.outsource(b"regulated-records", data)

    print("=== phase 1: honest provider ===")
    outcome = session.audit(b"regulated-records", k=20)
    print(
        f"accepted={outcome.verdict.accepted}, "
        f"max RTT {outcome.verdict.max_rtt_ms:.2f} ms "
        f"<= budget {outcome.verdict.rtt_max_ms:.2f} ms"
    )

    print("\n=== phase 2: provider relocates to Singapore and relays ===")
    session.provider.add_datacentre(
        DataCentre("singapore", city("singapore"), disk=IBM_36Z15)
    )
    session.provider.relocate(b"regulated-records", "singapore")
    session.provider.set_strategy(RelayAttack("home", "singapore"))

    outcome = session.audit(b"regulated-records", k=20)
    print(
        f"accepted={outcome.verdict.accepted}, "
        f"failure reasons: {outcome.verdict.failure_reasons}"
    )
    print(
        f"MAC tags all valid: {outcome.verdict.macs_ok} "
        "(the data is intact -- it is just in the wrong country)"
    )
    print(
        f"max RTT {outcome.verdict.max_rtt_ms:.1f} ms blows the "
        f"{outcome.verdict.rtt_max_ms:.1f} ms budget"
    )
    assert not outcome.verdict.accepted

    print("\n=== phase 3: how far away could a relay hide? ===")
    print(f"paper's propagation-only bound: {fig6_paper_bound_km():.0f} km")
    print(f"tight bound (adversary pays its own disk): {fig6_tight_bound_km():.0f} km")
    rows = fig6_relay_sweep(distances_km=[0.0, 100.0, 360.0, 1000.0, 6150.0], k=10)
    print(
        format_table(
            ["relay km", "max RTT ms", "budget ms", "caught"],
            [
                [r.relay_distance_km, r.max_rtt_ms, r.rtt_max_ms, r.detected]
                for r in rows
            ],
            decimals=2,
        )
    )
    print(
        "\nNote: with a realistic last-mile floor (~16 ms base RTT) even a"
        "\n100 km relay is caught -- the paper's 360 km is the worst case"
        "\nfor an adversary with a zero-overhead network path."
    )


if __name__ == "__main__":
    main()
