#!/usr/bin/env python
"""Section III-B as an experiment: why geolocation can't replace GeoProof.

Runs the five geolocation baselines (GeoPing, Octant-style, TBG,
GeoTrack, GeoCluster) against targets on a sparse continental topology
and prints their errors -- reproducing the paper's observation that
"most provide location estimates with worst-case errors of over
1000 km" and, more fundamentally, that none of them is adversarial:
they locate *hosts that cooperate*, while GeoProof binds the *data* and
treats the provider as malicious.

Run:  python examples/geolocation_survey.py
"""

from repro.analysis.reporting import format_table
from repro.geo.coords import GeoPoint
from repro.geoloc.geocluster import BGPTable, GeoCluster
from repro.geoloc.geoping import GeoPing
from repro.geoloc.geotrack import DNSHintDatabase, GeoTrack
from repro.geoloc.octant import OctantLike
from repro.geoloc.tbg import TopologyBasedGeolocation
from repro.netsim.topology import NetworkTopology, Node

LANDMARK_SITES = {
    "bne-lm": GeoPoint(-27.47, 153.03, "Brisbane"),
    "syd-lm": GeoPoint(-33.87, 151.21, "Sydney"),
    "mel-lm": GeoPoint(-37.81, 144.96, "Melbourne"),
}
TARGET_SITES = {
    "target-cbr": GeoPoint(-35.28, 149.13, "Canberra"),
    "target-adl": GeoPoint(-34.93, 138.60, "Adelaide"),
    "target-per": GeoPoint(-31.95, 115.86, "Perth"),
    "target-dar": GeoPoint(-12.46, 130.84, "Darwin"),
}


def build_world() -> NetworkTopology:
    topology = NetworkTopology()
    for name, position in {**LANDMARK_SITES, **TARGET_SITES}.items():
        kind = "landmark" if name.endswith("-lm") else "target"
        topology.add_node(Node(name, position, kind=kind))
    topology.add_node(Node("core-syd.isp.net", GeoPoint(-33.86, 151.20), kind="router"))
    topology.add_node(Node("core-mel.isp.net", GeoPoint(-37.80, 144.95), kind="router"))
    topology.add_link("bne-lm", "core-syd.isp.net", inflation=1.3)
    topology.add_link("syd-lm", "core-syd.isp.net", latency_ms=0.3)
    topology.add_link("core-syd.isp.net", "core-mel.isp.net", inflation=1.3)
    topology.add_link("mel-lm", "core-mel.isp.net", latency_ms=0.3)
    topology.add_link("core-syd.isp.net", "target-cbr", inflation=1.3)
    topology.add_link("core-mel.isp.net", "target-adl", inflation=1.3)
    topology.add_link("core-mel.isp.net", "target-per", inflation=1.6)
    topology.add_link("bne-lm", "target-dar", inflation=1.6)
    return topology


def main() -> None:
    topology = build_world()
    landmarks = list(LANDMARK_SITES)

    dns = DNSHintDatabase()
    dns.add("syd", LANDMARK_SITES["syd-lm"])
    dns.add("mel", LANDMARK_SITES["mel-lm"])

    bgp = BGPTable()
    bgp.announce("10")
    for i, name in enumerate(TARGET_SITES):
        bgp.assign_address(name, f"10.{i}.0.1")
    bgp.add_known_location("10", LANDMARK_SITES["syd-lm"])
    bgp.add_known_location("10", LANDMARK_SITES["mel-lm"])

    schemes = [
        GeoPing(topology, landmarks),
        OctantLike(topology, landmarks, grid_step_km=80.0),
        TopologyBasedGeolocation(topology, landmarks),
        GeoTrack(topology, landmarks, dns),
        GeoCluster(topology, landmarks, bgp),
    ]

    rows = []
    worst_overall = 0.0
    for scheme in schemes:
        errors = {
            TARGET_SITES[t].label: scheme.score(t).error_km for t in TARGET_SITES
        }
        worst = max(errors.values())
        worst_overall = max(worst_overall, worst)
        rows.append(
            [
                scheme.name,
                *[round(errors[city.label]) for city in TARGET_SITES.values()],
                round(worst),
            ]
        )

    print(
        format_table(
            ["scheme", "Canberra", "Adelaide", "Perth", "Darwin", "worst km"],
            rows,
            title=(
                "geolocation error (km) -- landmarks on the east coast only"
            ),
        )
    )
    print(
        f"\nworst error across schemes: {worst_overall:.0f} km"
        "\n-> the paper's '>1000 km worst case' reproduced."
        "\n\nAnd the structural gap: every number above assumes the target"
        "\nanswers probes honestly.  A malicious cloud provider controls"
        "\nits own latencies and routes; only a protocol that (a) binds"
        "\nthe *stored data* into the timed exchange and (b) assumes a"
        "\nmalicious prover -- i.e. GeoProof -- yields an assurance."
    )
    assert worst_overall > 1000.0


if __name__ == "__main__":
    main()
