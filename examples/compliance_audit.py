#!/usr/bin/env python
"""A compliance officer's view: continuous auditing and reporting.

Models the regulatory workload from the paper's introduction (privacy
laws requiring data to remain in-country): a TPA audits an Australian
health-records file on a schedule, a corruption incident begins
part-way through, and the audit log yields the compliance report --
acceptance rate, failure taxonomy, and the closed-form security
analysis a data owner would attach to the SLA.

Run:  python examples/compliance_audit.py
"""

from repro import CorruptionAttack, DeterministicRNG, GeoProofSession, city
from repro.analysis.reporting import format_table
from repro.analysis.security import analyse_deployment
from repro.geo.regions import AUSTRALIA_OUTLINE
from repro.por.parameters import TEST_PARAMS


def main() -> None:
    # SLA: the data must remain inside Australia (polygon geofence).
    session = GeoProofSession.build(
        datacentre_location=city("melbourne"),
        region=AUSTRALIA_OUTLINE,
        params=TEST_PARAMS,
        seed="compliance",
    )
    data = DeterministicRNG("health-records").random_bytes(60_000)
    record = session.outsource(b"health-records-vic", data)
    print(f"SLA region: {session.sla.region.describe()}")
    print(f"{record.n_segments} segments under audit\n")

    # Pre-signing due diligence: the closed-form security report.
    report = analyse_deployment(
        n_segments=record.n_segments,
        sla=session.sla,
        params=session.params,
        corruption_fraction=0.005,
        k_rounds=25,
    )
    print("security analysis (attached to the SLA):")
    for line in report.summary_lines():
        print(f"  - {line}")
    print()

    # Audit-frequency planning: catch 0.5 % corruption within a week of
    # daily audits, as cheaply as possible.
    from repro.analysis.scheduling import cheapest_schedule

    schedule = cheapest_schedule(
        epsilon=0.005,
        interval_hours=24.0,
        max_detection_latency_hours=24.0 * 7,
    )
    print(
        f"audit plan: k={schedule.k_rounds} rounds daily -> detection "
        f"p={schedule.per_audit_detection:.3f}/audit, 99 % confidence "
        f"within {schedule.hours_to_confidence/24:.0f} days, "
        f"{schedule.daily_audit_time_ms:.0f} ms verifier time/day\n"
    )

    # Twelve scheduled audits; a bit-rot incident begins at audit 7.
    timeline = []
    for audit_number in range(1, 13):
        if audit_number == 7:
            session.provider.set_strategy(
                CorruptionAttack("home", 0.08, DeterministicRNG("incident"))
            )
        outcome = session.audit(b"health-records-vic", k=25)
        timeline.append(
            [
                audit_number,
                round(session.verifier.clock.now_ms() / 1000.0, 2),
                outcome.verdict.accepted,
                ",".join(outcome.verdict.failure_reasons) or "-",
            ]
        )

    print(
        format_table(
            ["audit #", "sim time s", "accepted", "failures"],
            timeline,
            title="audit timeline (incident starts at audit 7)",
        )
    )

    print("\ncompliance summary:")
    print(f"  acceptance rate: {session.tpa.acceptance_rate():.0%}")
    print(f"  failure taxonomy: {session.tpa.failures_by_reason()}")
    incident_caught = any(
        not accepted for _, _, accepted, _ in timeline[6:]
    )
    print(f"  incident detected: {incident_caught}")
    assert incident_caught


if __name__ == "__main__":
    main()
