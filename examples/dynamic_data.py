#!/usr/bin/env python
"""The paper's extension: GeoProof over *dynamic* data (DPOR-style).

The Juels-Kaliski POR is static -- updating one block means re-encoding
the file.  The paper points at Wang et al.'s dynamic POR as the drop-in
replacement; this example runs our Merkle-tree dynamic POR through an
edit-heavy workload and shows audits staying sound across updates,
including a server that tries to cheat on an update.

Run:  python examples/dynamic_data.py
"""

from repro import DeterministicRNG, VerificationError
from repro.por.dynamic import DynamicPOR
from repro.por.setup import PORKeys


def main() -> None:
    rng = DeterministicRNG("dynamic-example")
    keys = PORKeys.derive(b"dynamic-example-master-key!!")

    # Outsource a 200-block database file.
    client = DynamicPOR(keys.mac_key, b"orders-db")
    blocks = [rng.fork(f"block-{i}").random_bytes(64) for i in range(200)]
    server = client.outsource(blocks)
    print(f"outsourced {client.n_blocks} blocks, root {client.root.hex()[:16]}...")

    # Interleave audits and updates.
    audit_rng = rng.fork("audits")
    for day in range(1, 6):
        # Daily edits: rewrite a handful of blocks.
        for edit in range(3):
            index = audit_rng.randrange(client.n_blocks)
            client.update_block(
                server, index, rng.fork(f"day{day}-edit{edit}").random_bytes(64)
            )
        # Daily audit: 20 random blocks.
        challenged = client.make_challenge(20, audit_rng)
        all_ok = all(client.verify(server.prove(i)) for i in challenged)
        print(f"day {day}: 3 updates, audit of 20 blocks -> ok={all_ok}")
        assert all_ok

    # A cheating update: the server applies different data than asked.
    print("\nserver tries to apply a tampered update...")
    before_block, before_tag = server.blocks[0], server.tags[0]
    original_apply = server.apply_update

    def tampered_apply(index, new_block, new_tag):
        original_apply(index, b"\x00" * 64, new_tag)

    server.apply_update = tampered_apply
    try:
        client.update_block(server, 0, b"legitimate-new-content".ljust(64))
    except VerificationError as exc:
        print(f"caught: {exc}")
    else:
        raise AssertionError("tampered update must be detected")

    # The client's root was never advanced, so the server is now
    # provably inconsistent -- every proof it produces fails until it
    # rolls the tampered write back to the state the root names.
    server.apply_update = original_apply
    assert not client.verify(server.prove(1))
    print("server tree poisoned -> all its proofs now fail (as they must)")
    server.apply_update(0, before_block, before_tag)  # roll back
    assert client.verify(server.prove(1))
    print("after rollback to the attested state, honest audits resume")


if __name__ == "__main__":
    main()
