#!/usr/bin/env python
"""Verifying *replication diversity* with composed GeoProof audits.

The paper cites Benson et al. (CCSW'11) -- "do you know where your
cloud files are?" -- on proving a provider keeps replicas in diverse
geolocations.  GeoProof composes into exactly that check: one verifier
device per contracted replica site, one timed audit each, and a
pairwise-separation rule so two nearby sites can't double-count one
physical copy.

The scenario: a 3-replica contract (Sydney, Perth, Singapore).  The
provider initially keeps only the Sydney copy and quietly serves the
other audits from it; the replication audit credits one replica.  After
honest replication, all three are witnessed.

Replication is also a *scheduling* resource: the fleet engine places
replicas with ``AuditFleet.register(..., replicas=N)`` so work-stealing
lanes can run a saturated home lane's audits at a sibling replica site
(see ``examples/fleet_audit.py``), and bridges back to this diversity
check via ``AuditFleet.replication_auditor()``.

Run:  python examples/replication_audit.py
"""

from repro import CloudProvider, DataCentre, DeterministicRNG, SLAPolicy, city
from repro.analysis.reporting import format_table
from repro.cloud.replication import ReplicaSite, ReplicationAuditor
from repro.cloud.tpa import ThirdPartyAuditor
from repro.cloud.verifier import VerifierDevice
from repro.geo.regions import CircularRegion
from repro.netsim.clock import SimClock
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys, setup_file

SITES = ["sydney", "perth", "singapore"]


def audit_and_print(auditor, provider, label):
    verdict = auditor.audit_round(b"contract-db", provider, k=12)
    rows = []
    for name, outcome in verdict.outcomes.items():
        rows.append(
            [
                name,
                outcome.verdict.accepted,
                round(outcome.verdict.max_rtt_ms, 1),
                round(outcome.verdict.rtt_max_ms, 1),
            ]
        )
    print(format_table(["site", "audit ok", "max RTT ms", "budget ms"], rows, title=label))
    print(
        f"-> distinct replicas witnessed: {verdict.distinct_replicas} / 3 "
        f"(contract met: {verdict.meets(3)})\n"
    )
    return verdict


def main() -> None:
    rng = DeterministicRNG("replication-example")
    provider = CloudProvider("acme", rng=rng.fork("provider"))
    for name in SITES:
        provider.add_datacentre(DataCentre(name, city(name)))

    keys = PORKeys.derive(b"replication-example-master!!")
    data = rng.fork("data").random_bytes(30_000)
    encoded = setup_file(data, keys, b"contract-db", TEST_PARAMS)
    provider.upload(encoded, "sydney")  # ...and only Sydney

    tpa = ThirdPartyAuditor("tpa", rng.fork("tpa"))
    clock = SimClock()
    auditor = ReplicationAuditor(tpa)
    sydney_sla = None
    for name in SITES:
        sla = SLAPolicy(region=CircularRegion(city(name), 100.0))
        sydney_sla = sydney_sla or sla
        auditor.add_site(
            ReplicaSite(
                name=name,
                verifier=VerifierDevice(
                    f"verifier-{name}".encode(),
                    city(name),
                    clock=clock,
                    rng=rng.fork(f"verifier-{name}"),
                ),
                sla=sla,
            )
        )
    tpa.register_file(
        b"contract-db", encoded.n_segments, keys.mac_key, TEST_PARAMS, sydney_sla
    )

    verdict = audit_and_print(
        auditor, provider, "round 1: provider kept only the Sydney copy"
    )
    assert verdict.distinct_replicas == 1

    provider.replicate_to(b"contract-db", "perth")
    provider.replicate_to(b"contract-db", "singapore")
    verdict = audit_and_print(auditor, provider, "round 2: honest 3-way replication")
    assert verdict.meets(3)

    print(
        "Each accepted audit pins a copy within that site's timing radius"
        f" (~{auditor.sites()[0].timing_radius_km:.0f} km); sites farther"
        "\napart than two radii cannot share one copy, so the count is a"
        "\nlower bound on physically distinct replicas."
    )


if __name__ == "__main__":
    main()
