#!/usr/bin/env python
"""GeoProof as a service: the audit daemon, live tenants, and failover.

The quickstart runs audits as in-process function calls.  This example
runs the same deployment the way the paper describes it operating: a
third-party auditor *daemon* serving audits over TCP to many tenants
at once, with its storage plane behind the circuit-breaker registry.

1. build a session and outsource three files, then mirror the encoded
   containers onto two RAM backends -- ``rack-a`` (primary) and
   ``rack-b`` (its failover twin);
2. start an :class:`~repro.service.AuditDaemon` whose provider is the
   :class:`~repro.service.ProviderRegistry` -- the daemon never talks
   to a backend directly, it serves along the health-checked chain;
3. three tenants connect concurrently and pipeline audit orders over
   one socket each; every verdict comes back accepted;
4. ``rack-a`` suffers an outage mid-service.  The first few requests
   feed its circuit breaker (three consecutive failures open the
   circuit); every audit still succeeds because the chain falls
   through to ``rack-b`` -- tenants never see the outage;
5. ``rack-a`` comes back.  After the back-off window the registry lets
   one half-open probe through; it succeeds and the circuit closes.

Run:  python examples/serve_audits.py
"""

import asyncio

from repro import DeterministicRNG, city
from repro.core.session import GeoProofSession
from repro.errors import StorageUnavailableError
from repro.por.parameters import TEST_PARAMS
from repro.service import AuditClient, AuditDaemon, ProviderRegistry
from repro.storage.contract import InMemoryStorage

N_FILES = 3
N_TENANTS = 3
AUDITS_PER_TENANT = 12
PROBE_DELAY_MS = 200.0


class FlakyRack(InMemoryStorage):
    """A RAM backend with an outage switch the demo can flip."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.down = False

    def lookup(self, file_id, index):
        if self.down:
            raise StorageUnavailableError(
                f"rack {self.name!r} offline (simulated outage)"
            )
        return super().lookup(file_id, index)


def build_deployment():
    """Session + two mirrored racks behind a circuit-breaker registry."""
    session = GeoProofSession.build(
        datacentre_location=city("brisbane"),
        params=TEST_PARAMS,
        min_rounds=8,
        seed="serve-audits-example",
    )
    data_rng = DeterministicRNG("serve-audits-data")
    file_ids = []
    for i in range(N_FILES):
        file_id = f"doc-{i}".encode()
        session.outsource(file_id, data_rng.fork(str(i)).random_bytes(4_000))
        file_ids.append(file_id)

    rack_a = FlakyRack("rack-a")
    rack_b = InMemoryStorage("rack-b")
    for file_id in file_ids:
        container = session.provider.home_of(file_id).server.store.file_meta(
            file_id
        )
        rack_a.put_file(container)
        rack_b.put_file(container)

    registry = ProviderRegistry(
        unhealthy_after=3, probe_delay_ms=PROBE_DELAY_MS
    )
    registry.add(rack_a, fallbacks=("rack-b",))
    registry.add(rack_b)
    return session, registry, rack_a, rack_b, file_ids


async def tenant(name: str, port: int, file_ids) -> int:
    """One tenant: a single connection pipelining a batch of orders."""
    async with AuditClient("127.0.0.1", port) as client:
        orders = [
            (file_ids[i % len(file_ids)], 2)
            for i in range(AUDITS_PER_TENANT)
        ]
        verdicts = await client.audit_many(orders)
    accepted = sum(verdict.accepted for verdict in verdicts)
    print(f"  tenant {name}: {accepted}/{len(verdicts)} audits accepted")
    return accepted


async def main() -> None:
    session, registry, rack_a, rack_b, file_ids = build_deployment()
    daemon = AuditDaemon(
        tpa=session.tpa,
        verifier=session.verifier,
        provider=registry,
        flush_batch=16,
        flush_ms=2.0,
    )
    await daemon.start()
    print(f"daemon serving on {daemon.host}:{daemon.port}")
    print(f"storage chain: {' -> '.join(registry.chain('rack-a'))}\n")
    try:
        # 3. Concurrent tenants against the healthy primary.
        print("concurrent tenants, rack-a healthy:")
        accepted = await asyncio.gather(
            *(
                tenant(name, daemon.port, file_ids)
                for name in ("alice", "bob", "carol")
            )
        )
        assert sum(accepted) == N_TENANTS * AUDITS_PER_TENANT
        assert rack_a.n_lookups > 0 and rack_b.n_lookups == 0

        # 4. The outage: rack-a starts refusing reads mid-service.
        rack_a.down = True
        print("\nrack-a goes dark; tenants keep auditing:")
        accepted = await asyncio.gather(
            *(
                tenant(name, daemon.port, file_ids)
                for name in ("alice", "bob", "carol")
            )
        )
        assert sum(accepted) == N_TENANTS * AUDITS_PER_TENANT
        status = registry.status("rack-a")
        print(
            f"  rack-a circuit: {status.state} after "
            f"{status.consecutive_failures} consecutive failures; "
            f"rack-b served {rack_b.n_lookups} lookups"
        )
        assert not registry.is_healthy("rack-a")
        assert rack_b.n_lookups > 0

        # 5. Recovery: after the back-off window one probe re-admits it.
        rack_a.down = False
        await asyncio.sleep(PROBE_DELAY_MS / 1000.0 * 1.5)
        print("\nrack-a repaired; next audit is the half-open probe:")
        await tenant("alice", daemon.port, file_ids)
        status = registry.status("rack-a")
        print(
            f"  rack-a circuit: {status.state} "
            f"({status.n_probes} probe(s), "
            f"{status.n_successes} successes on record)"
        )
        assert registry.is_healthy("rack-a")
    finally:
        await daemon.stop()
    stats = daemon.stats
    print(
        f"\ndaemon served {stats.n_orders} orders in {stats.n_flushes} "
        f"flushes ({stats.n_errors} errors) -- no tenant ever saw the "
        "outage. done."
    )


if __name__ == "__main__":
    asyncio.run(main())
