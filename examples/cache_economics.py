#!/usr/bin/env python
"""Cache/prefetch economics walkthrough: pricing a relay attack out.

The Fig. 6 relay attack has one upgrade path: keep a RAM cache at the
contracted front site and hope the verifier's PRF-drawn challenge
lands in it.  Whether that is worth mounting is pure economics -- RAM
spend vs the premium-vs-cheap storage delta vs detection risk -- and
this walkthrough closes the loop from the physics to the money:

1. the *closed form*: under uniform challenges an LRU cache of ``c``
   entries over ``n`` segments hits with probability exactly
   ``min(c, n) / n``, cross-validated here against a real
   :class:`~repro.storage.cache.LRUCache` driven with the verifier's
   drawing discipline;
2. the *measured campaign*: a 3-site fleet with the last provider
   relaying through a prewarmed front cache (metered -- the remote
   spindle sees every warmed byte), swept over cache sizes on both
   run engines, detection latency and observed per-audit detection
   rate read off the fleet reports against the paper's
   ``1 - (cache/file)^k`` bound;
3. the *ledger*: the attacker's expected profit at each cache size
   (savings accrue only until detection; the penalty lands then), and
   the break-even cache size where RAM spend eats the relay savings;
4. the *defence price*: scaling the closed forms to a 1 TB tenant,
   the minimum audit rate that drives the attacker's ROI negative and
   the verifier-side cost of sustaining it -- per-tenant defence
   pricing, straight from the cost model.

Run:  python examples/cache_economics.py
"""

from repro.economics import (
    AdversaryCampaign,
    CostModel,
    LRUHitModel,
    attack_economics,
    build_economics_report,
    price_tenant,
    simulate_hit_rate,
)

GB = 1_000_000_000


def main() -> None:
    # -- 1. the closed form, held against a real LRU ---------------------
    print("=" * 72)
    print("1. Closed-form LRU hit rate vs a simulated cache")
    print("=" * 72)
    model = LRUHitModel(cache_bytes=30 * 128, entry_bytes=30, n_segments=256)
    simulated = simulate_hit_rate(
        cache_bytes=30 * 128,
        entry_bytes=30,
        n_segments=256,
        n_audits=400,
        k_rounds=6,
        seed="example-economics",
    )
    print(
        f"cache holds {model.cached_entries}/{model.n_segments} segments: "
        f"analytic hit rate {model.hit_rate:.3f}, simulated "
        f"{simulated:.3f}"
    )
    assert abs(model.hit_rate - simulated) < 0.05
    print(
        f"per-audit detection (k=6): exact "
        f"{model.detection_probability(6):.4f} >= paper bound "
        f"{model.paper_bound(6):.4f}"
    )
    assert model.detection_probability(6) >= model.paper_bound(6) - 1e-12

    # -- 2+3. the measured campaign and the attacker's ledger ------------
    print()
    print("=" * 72)
    print("2. Fleet campaign: prefetch-relay swept over cache sizes")
    print("=" * 72)
    campaign = AdversaryCampaign(
        n_providers=3, n_files=9, k_rounds=6, hours=12.0,
        seed="example-economics",
    )
    report = build_economics_report(
        campaign,
        cache_fractions=(0.0, 0.5, 1.0),
        engines=("slot", "event"),
    )
    print(report.render())
    assert report.bound_satisfied, "observed detection fell below the bound"
    assert report.max_hit_rate_error < 0.08
    # The empty cache is caught on the first audited round; the
    # full-file cache escapes the timing gate entirely (the documented
    # limitation: at that point the data effectively *is* at the front
    # site, in RAM the attacker pays dearly for).
    for cell in report.cells:
        if cell.cache_fraction == 0.0:
            assert cell.observed_detection_rate == 1.0
        if cell.cache_fraction == 1.0:
            assert cell.observed_detection_rate == 0.0
    # Under commodity prices no swept cache size was profitable: the
    # penalty arrives orders of magnitude before the savings do.
    assert report.profitable_cache_bytes is None
    print(
        f"\nno profitable cache size; spend-side break-even at "
        f"{report.break_even_cache_bytes} bytes of "
        f"{report.geometry.stored_bytes} stored"
    )

    # -- 4. defence pricing at production scale --------------------------
    print()
    print("=" * 72)
    print("3. Pricing a 1 TB tenant's defence")
    print("=" * 72)
    costs = CostModel()
    terabyte = 1_000 * GB
    segment = 4096  # a production-shaped segment
    quote = price_tenant(
        tenant="enterprise-tenant",
        provider="acme",
        cost_model=costs,
        file_bytes=terabyte,
        entry_bytes=segment,
        n_segments=terabyte // segment,
        k_rounds=50,  # the paper's default audit depth
        rtt_max_ms=16.1,
    )
    print(
        f"worst-case cache: {quote.worst_case_cache_bytes / GB:.2f} GB "
        f"(hit rate {quote.worst_case_hit_rate:.4f})"
    )
    print(
        f"minimum deterrent audit rate: "
        f"{quote.min_audits_per_month:.4f}/month "
        f"(quoted {quote.audits_per_month:.2f}/month with headroom+floor)"
    )
    print(
        f"verifier cost {quote.audit_cost_usd_per_month:.6f} $/month, "
        f"priced at {quote.price_usd_per_month:.6f} $/month"
    )
    print(
        f"break-even cache: {quote.break_even_cache_bytes / GB:.2f} GB; "
        f"timing radius {quote.timing_radius_km:.0f} km"
    )
    assert quote.deterrable
    # The rational attacker's cache is capped by the spend-side
    # break-even: ~0.5 % of the file at these prices, whose hit rate
    # k=50 rounds crush to a ~certain per-audit detection.
    assert quote.break_even_cache_bytes < 0.01 * terabyte
    worst = LRUHitModel(
        cache_bytes=quote.break_even_cache_bytes,
        entry_bytes=segment,
        n_segments=terabyte // segment,
    )
    print(
        f"at the break-even cache, per-audit detection is "
        f"{worst.detection_probability(50):.6f}"
    )
    assert worst.detection_probability(50) > 0.2
    # And the ledger agrees: at the quoted audit rate, even the
    # attacker's best swept cache size loses money in expectation.
    ledger = attack_economics(
        cost_model=costs,
        hit_model=worst,
        k_rounds=50,
        audits_per_month=quote.audits_per_month,
        file_bytes=terabyte,
    )
    print(
        f"attacker's expected profit at the quoted rate: "
        f"{ledger.expected_profit_usd:.2f} $ (ROI {ledger.roi:.3f})"
    )
    assert not ledger.profitable
    print("\nAll economics invariants hold.")


if __name__ == "__main__":
    main()
