#!/usr/bin/env python
"""Quickstart: outsource a file, audit its location, recover the data.

The minimal GeoProof story in ~40 lines of API use:

1. build a single-site deployment (data centre in Sydney, SLA says the
   data stays within 100 km of it);
2. outsource a file -- the library runs the full Juels-Kaliski setup
   (block, Reed-Solomon, encrypt, permute, MAC) and uploads;
3. run a GeoProof audit -- the tamper-proof verifier device times k
   challenge rounds, signs the transcript, and the TPA verifies
   signature, GPS position, MAC tags and timing;
4. extract the file back, bit-exact.

Run:  python examples/quickstart.py
"""

from repro import DeterministicRNG, GeoProofSession, city
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import extract_file


def main() -> None:
    # 1. Deployment.  TEST_PARAMS (4-byte blocks, RS(15,11)) keeps the
    #    demo fast; drop the argument for the paper's 128-bit/RS(255,223)
    #    parameters.
    session = GeoProofSession.build(
        datacentre_location=city("sydney"),
        params=TEST_PARAMS,
        seed="quickstart",
    )
    print(f"SLA region: {session.sla.region.describe()}")
    print(f"timing budget Delta-t_max: {session.sla.rtt_max_ms:.3f} ms")

    # 2. Outsource.
    data = DeterministicRNG("quickstart-data").random_bytes(50_000)
    record = session.outsource(b"backup-2026-06", data)
    expansion = record.stored_bytes / record.original_bytes - 1.0
    print(
        f"outsourced {record.original_bytes} bytes as {record.n_segments} "
        f"segments ({expansion:.1%} overhead)"
    )

    # 3. Audit.
    outcome = session.audit(b"backup-2026-06", k=30)
    verdict = outcome.verdict
    print(
        f"audit: accepted={verdict.accepted} "
        f"max RTT {verdict.max_rtt_ms:.2f} ms "
        f"(budget {verdict.rtt_max_ms:.2f} ms), "
        f"{outcome.transcript.k} rounds, "
        f"device at {outcome.transcript.position}"
    )
    assert verdict.accepted, "honest provider must pass"

    # 4. Extract.
    stored = session.provider.home_of(b"backup-2026-06").server.store
    recovered = extract_file(
        stored.file_meta(b"backup-2026-06"), session.files[b"backup-2026-06"].keys
    )
    assert recovered == data
    print("extraction: recovered the file bit-exact")


if __name__ == "__main__":
    main()
