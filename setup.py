"""Setuptools shim for environments whose pip/setuptools predate PEP 660
editable installs.  All metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core package is stdlib-only; numpy unlocks the vectorized
    # GF(256)/Reed-Solomon data plane (repro.gf.gf256_vec).  Absence is
    # detected at import (repro.gf.HAS_NUMPY) and every caller falls
    # back to the byte-identical scalar path.
    # The dev extra pulls the static-analysis toolchain the CI
    # static-analysis lane runs (repro lint itself is stdlib-only).
    extras_require={"fast": ["numpy"], "dev": ["mypy", "pytest"]},
)
