"""Distance-bounding framework: channels, transcripts, verdicts."""

import pytest

from repro.distbound.base import (
    RoundRecord,
    TimedChannel,
    Transcript,
    rtt_to_distance_km,
    run_timed_phase,
    verdict,
)
from repro.errors import ConfigurationError
from repro.netsim.clock import SimClock
from repro.netsim.latency import RFChannelModel


def make_transcript(rounds):
    transcript = Transcript(
        protocol="test",
        verifier_id=b"V",
        prover_id=b"P",
        verifier_nonce=b"n1",
        prover_nonce=b"n2",
    )
    transcript.rounds.extend(rounds)
    return transcript


class TestRttToDistance:
    def test_light_speed(self):
        assert rtt_to_distance_km(1.0) == pytest.approx(150.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            rtt_to_distance_km(-1.0)


class TestTimedChannel:
    def test_exchange_charges_flight_time(self):
        clock = SimClock()
        channel = TimedChannel(clock, RFChannelModel(), 300.0)
        bit, rtt = channel.exchange(lambda c: (c, 0.0), 1)
        assert bit == 1
        assert rtt == pytest.approx(2.0)  # 300 km at 300 km/ms, both ways

    def test_processing_time_included(self):
        clock = SimClock()
        channel = TimedChannel(clock, RFChannelModel(), 0.0)
        _, rtt = channel.exchange(lambda c: (c, 0.7), 0)
        assert rtt == pytest.approx(0.7)

    def test_rejects_negative_processing(self):
        channel = TimedChannel(SimClock(), RFChannelModel(), 1.0)
        with pytest.raises(ConfigurationError):
            channel.exchange(lambda c: (c, -0.1), 0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            TimedChannel(SimClock(), RFChannelModel(), -1.0)

    def test_clock_advances_monotonically(self):
        clock = SimClock()
        channel = TimedChannel(clock, RFChannelModel(), 150.0)
        channel.exchange(lambda c: (c, 0.0), 0)
        t1 = clock.now_ms()
        channel.exchange(lambda c: (c, 0.0), 1)
        assert clock.now_ms() > t1


class TestRunTimedPhase:
    def test_records_every_round(self):
        channel = TimedChannel(SimClock(), RFChannelModel(), 30.0)
        transcript = make_transcript([])
        run_timed_phase(channel, [0, 1, 1, 0], lambda c: (1 - c, 0.0), transcript)
        assert transcript.n_rounds == 4
        assert [r.challenge_bit for r in transcript.rounds] == [0, 1, 1, 0]
        assert [r.response_bit for r in transcript.rounds] == [1, 0, 0, 1]

    def test_rejects_non_bit_challenge(self):
        channel = TimedChannel(SimClock(), RFChannelModel(), 1.0)
        with pytest.raises(ConfigurationError):
            run_timed_phase(channel, [2], lambda c: (c, 0.0), make_transcript([]))


class TestVerdict:
    def test_accepts_clean_transcript(self):
        rounds = [RoundRecord(i, i % 2, i % 2, 0.5) for i in range(8)]
        result = verdict(make_transcript(rounds), lambda i, c: c, 1.0)
        assert result.accepted
        assert result.n_bit_errors == 0
        assert result.n_timing_violations == 0

    def test_rejects_bit_error(self):
        rounds = [RoundRecord(0, 1, 0, 0.5)]
        result = verdict(make_transcript(rounds), lambda i, c: c, 1.0)
        assert not result.accepted
        assert result.bits_ok is False
        assert result.timing_ok is True

    def test_rejects_slow_round(self):
        rounds = [RoundRecord(0, 1, 1, 1.5)]
        result = verdict(make_transcript(rounds), lambda i, c: c, 1.0)
        assert not result.accepted
        assert result.timing_ok is False
        assert result.bits_ok is True

    def test_single_slow_round_fails_everything(self):
        # The paper checks the MAX time, so one slow round is fatal.
        rounds = [RoundRecord(i, 0, 0, 0.1) for i in range(9)]
        rounds.append(RoundRecord(9, 0, 0, 2.0))
        result = verdict(make_transcript(rounds), lambda i, c: c, 1.0)
        assert not result.accepted
        assert result.n_timing_violations == 1
        assert result.max_rtt_ms == 2.0

    def test_implied_distance(self):
        rounds = [RoundRecord(0, 0, 0, 1.0)]
        result = verdict(make_transcript(rounds), lambda i, c: c, 2.0)
        assert result.implied_distance_km == pytest.approx(150.0)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            verdict(make_transcript([RoundRecord(0, 0, 0, 1.0)]), lambda i, c: c, 0.0)

    def test_empty_transcript_max_rtt_raises(self):
        with pytest.raises(ConfigurationError):
            make_transcript([]).max_rtt_ms
