"""Honest-run tests for Hancke-Kuhn, Brands-Chaum and Reid et al."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import SchnorrKeyPair, TEST_GROUP
from repro.distbound.base import TimedChannel
from repro.distbound.brands_chaum import BrandsChaumProver, BrandsChaumVerifier
from repro.distbound.hancke_kuhn import (
    HanckeKuhnProver,
    HanckeKuhnVerifier,
    derive_registers,
)
from repro.distbound.reid import ReidProver, ReidVerifier, derive_session_registers
from repro.errors import ConfigurationError
from repro.netsim.clock import SimClock
from repro.netsim.latency import RFChannelModel

SECRET = b"shared-secret-for-tests-123456"


def rf_channel(distance_km: float) -> TimedChannel:
    return TimedChannel(SimClock(), RFChannelModel(), distance_km)


class TestHanckeKuhn:
    def test_honest_nearby_accepted(self, rng):
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        prover = HanckeKuhnProver(b"P", SECRET)
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert result.accepted
        assert result.n_rounds == 32

    def test_honest_but_distant_rejected_on_timing(self, rng):
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        prover = HanckeKuhnProver(b"P", SECRET)
        result = verifier.run(prover, rf_channel(100.0), rng)
        assert not result.accepted
        assert result.bits_ok and not result.timing_ok

    def test_wrong_secret_rejected_on_bits(self, rng):
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        prover = HanckeKuhnProver(b"P", b"some-other-secret-entirely")
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert not result.accepted
        assert not result.bits_ok

    def test_slow_prover_hardware_rejected(self, rng):
        # 0.05 ms processing per round exceeds a 0.05 ms budget with any
        # flight time at all.
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=8, rtt_max_ms=0.05)
        prover = HanckeKuhnProver(b"P", SECRET, processing_ms=0.05)
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert not result.timing_ok

    def test_registers_depend_on_nonces(self):
        a = derive_registers(SECRET, b"n1", b"n2", 32)
        b = derive_registers(SECRET, b"n1", b"n3", 32)
        assert a != b

    def test_register_length(self):
        left, right = derive_registers(SECRET, b"n1", b"n2", 20)
        assert len(left) == len(right) == 3  # ceil(20/8)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            HanckeKuhnVerifier(b"V", SECRET, n_rounds=0)

    def test_prover_requires_session(self):
        prover = HanckeKuhnProver(b"P", SECRET)
        with pytest.raises(ConfigurationError):
            prover.respond(0)


class TestBrandsChaum:
    @pytest.fixture
    def keypair(self):
        return SchnorrKeyPair.generate(TEST_GROUP, seed=b"bc-test")

    def test_honest_accepted(self, keypair, rng):
        verifier = BrandsChaumVerifier(b"V", keypair.public, n_rounds=16, rtt_max_ms=0.1)
        prover = BrandsChaumProver(b"P", keypair)
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert result.accepted

    def test_distance_enforced(self, keypair, rng):
        verifier = BrandsChaumVerifier(b"V", keypair.public, n_rounds=16, rtt_max_ms=0.1)
        prover = BrandsChaumProver(b"P", keypair)
        result = verifier.run(prover, rf_channel(50.0), rng)
        assert not result.accepted
        assert not result.timing_ok

    def test_wrong_signer_rejected(self, keypair, rng):
        other = SchnorrKeyPair.generate(TEST_GROUP, seed=b"other")
        verifier = BrandsChaumVerifier(b"V", other.public, n_rounds=16, rtt_max_ms=0.1)
        prover = BrandsChaumProver(b"P", keypair)  # signs with its own key
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert not result.accepted

    def test_response_is_challenge_xor_commitment(self, keypair, rng):
        prover = BrandsChaumProver(b"P", keypair)
        prover.begin_session(8, rng)
        from repro.util.bitops import bit_at

        for i in range(8):
            bit, _ = prover.respond(i % 2)
            assert bit == (i % 2) ^ bit_at(prover._bits, i)


class TestReid:
    def test_honest_accepted(self, rng):
        verifier = ReidVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        prover = ReidProver(b"P", SECRET)
        result = verifier.run(prover, rf_channel(1.0), rng)
        assert result.accepted

    def test_identity_binding(self, rng):
        # A prover that derives with a different verifier identity
        # produces wrong register bits.
        class MisboundProver(ReidProver):
            def begin_session(self, verifier_id, vn, pn, n):
                super().begin_session(b"WRONG-V", vn, pn, n)

        verifier = ReidVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        result = verifier.run(MisboundProver(b"P", SECRET), rf_channel(1.0), rng)
        assert not result.accepted
        assert not result.bits_ok

    def test_registers_bound_to_both_ids(self):
        a = derive_session_registers(SECRET, b"V1", b"P", b"n1", b"n2", 32)
        b = derive_session_registers(SECRET, b"V2", b"P", b"n1", b"n2", 32)
        c = derive_session_registers(SECRET, b"V1", b"P2", b"n1", b"n2", 32)
        assert a != b and a != c

    def test_distance_enforced(self, rng):
        verifier = ReidVerifier(b"V", SECRET, n_rounds=16, rtt_max_ms=0.1)
        prover = ReidProver(b"P", SECRET)
        result = verifier.run(prover, rf_channel(200.0), rng)
        assert not result.timing_ok
