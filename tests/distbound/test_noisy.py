"""Noise-tolerant distance bounding: robustness vs security trade-off."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.distbound.base import TimedChannel, Transcript
from repro.distbound.hancke_kuhn import HanckeKuhnProver, derive_registers
from repro.distbound.noisy import (
    NoisyChannelModel,
    adversary_acceptance,
    choose_threshold,
    honest_acceptance,
    run_noisy_timed_phase,
    tolerant_verdict,
)
from repro.errors import ConfigurationError
from repro.netsim.clock import SimClock
from repro.netsim.latency import RFChannelModel
from repro.util.bitops import bit_at

SECRET = b"noisy-shared-secret-0123456789"


class TestAcceptanceFormulas:
    def test_noiseless_honest_always_passes(self):
        assert honest_acceptance(32, 0, 0.0) == 1.0

    def test_strict_verifier_on_noisy_channel_fails_often(self):
        # 5 % BER, 32 rounds, zero tolerance: pass ~ 0.95^32 ~ 0.19.
        p = honest_acceptance(32, 0, 0.05)
        assert p == pytest.approx(0.95**32, rel=1e-6)

    def test_tolerance_restores_honest_acceptance(self):
        assert honest_acceptance(32, 4, 0.05) > 0.95

    def test_monotone_in_threshold(self):
        values = [honest_acceptance(32, t, 0.05) for t in (0, 2, 4, 8)]
        assert values == sorted(values)

    def test_adversary_gains_from_tolerance(self):
        strict = adversary_acceptance(32, 0)
        tolerant = adversary_acceptance(32, 4)
        assert strict == pytest.approx(0.75**32, rel=1e-6)
        assert tolerant > strict

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            honest_acceptance(0, 0, 0.1)
        with pytest.raises(ConfigurationError):
            honest_acceptance(8, 9, 0.1)
        with pytest.raises(ConfigurationError):
            adversary_acceptance(8, 0, per_round_success=1.0)


class TestChooseThreshold:
    def test_zero_noise_zero_threshold(self):
        assert choose_threshold(32, 0.0) == 0

    def test_meets_target(self):
        threshold = choose_threshold(32, 0.05, target_false_reject=0.01)
        assert 1.0 - honest_acceptance(32, threshold, 0.05) <= 0.01
        if threshold > 0:
            assert 1.0 - honest_acceptance(32, threshold - 1, 0.05) > 0.01

    def test_security_cost_is_quantified(self):
        """The design trade-off: tolerance concedes adversary acceptance
        at fixed n (15 % at n = 32!), and the remedy is more rounds --
        at n = 96 the same noise target leaves the adversary < 1 %."""
        threshold_32 = choose_threshold(32, 0.05)
        cost_32 = adversary_acceptance(32, threshold_32)
        assert cost_32 > adversary_acceptance(32, 0)
        assert cost_32 > 0.05  # tolerance at n=32 is genuinely expensive

        threshold_96 = choose_threshold(96, 0.05)
        cost_96 = adversary_acceptance(96, threshold_96)
        assert cost_96 < 0.01  # extra rounds buy the security back
        assert honest_acceptance(96, threshold_96, 0.05) >= 0.99


class TestNoisyProtocolRuns:
    def run_noisy_hk(self, bit_error_rate, threshold, seed="noisy-run", n_rounds=32):
        rng = DeterministicRNG(seed)
        verifier_nonce = rng.random_bytes(16)
        prover_nonce = rng.random_bytes(16)
        prover = HanckeKuhnProver(b"P", SECRET)
        prover.begin_session(verifier_nonce, prover_nonce, n_rounds)
        left, right = derive_registers(
            SECRET, verifier_nonce, prover_nonce, n_rounds
        )
        noise = NoisyChannelModel(RFChannelModel(), bit_error_rate)
        channel = TimedChannel(SimClock(), noise, 1.0)
        transcript = Transcript(
            protocol="hancke-kuhn-noisy",
            verifier_id=b"V",
            prover_id=b"P",
            verifier_nonce=verifier_nonce,
            prover_nonce=prover_nonce,
        )
        challenges = [rng.randbits(1) for _ in range(n_rounds)]
        run_noisy_timed_phase(
            channel, noise, challenges, prover.respond, transcript, rng.fork("noise")
        )

        def expected(round_index, challenge_bit):
            register = left if challenge_bit == 0 else right
            return bit_at(register, round_index)

        return tolerant_verdict(transcript, expected, 0.1, threshold=threshold)

    def test_clean_channel_strict_verdict(self):
        result = self.run_noisy_hk(0.0, 0)
        assert result.accepted
        assert result.n_bit_errors == 0

    def test_noisy_channel_strict_verdict_rejects(self):
        rejections = sum(
            1
            for trial in range(20)
            if not self.run_noisy_hk(0.08, 0, seed=f"strict-{trial}").accepted
        )
        assert rejections > 10  # 8 % BER almost always flips something

    def test_noisy_channel_tolerant_verdict_accepts(self):
        threshold = choose_threshold(32, 0.08, target_false_reject=0.02)
        acceptances = sum(
            1
            for trial in range(20)
            if self.run_noisy_hk(0.08, threshold, seed=f"tol-{trial}").accepted
        )
        assert acceptances >= 17

    def test_timing_never_tolerated(self):
        # Even with a huge bit budget, a slow round is fatal.
        rng = DeterministicRNG("slow")
        noise = NoisyChannelModel(RFChannelModel(), 0.0)
        channel = TimedChannel(SimClock(), noise, 200.0)  # far away
        prover = HanckeKuhnProver(b"P", SECRET)
        prover.begin_session(b"n1", b"n2", 8)
        left, right = derive_registers(SECRET, b"n1", b"n2", 8)
        transcript = Transcript("hk", b"V", b"P", b"n1", b"n2")
        run_noisy_timed_phase(
            channel, noise, [0] * 8, prover.respond, transcript, rng
        )

        def expected(i, c):
            return bit_at(left if c == 0 else right, i)

        result = tolerant_verdict(transcript, expected, 0.1, threshold=8)
        assert not result.accepted
        assert result.bits_ok and not result.timing_ok
