"""Payload-size effects on the timed channel.

GeoProof's rounds carry real segments (660-bit static, kB-scale
dynamic), not single bits; the channel's serialisation term must show
up in the measured RTT or the budget calibration would be fiction.
"""

import pytest

from repro.distbound.base import TimedChannel
from repro.netsim.clock import SimClock
from repro.netsim.latency import LANModel


class TestPayloadTiming:
    def make_channel(self, bandwidth_mbps=100.0):
        lan = LANModel(
            n_switches=0,
            switch_delay_ms=0.0,
            jitter_ms=0.0,
            bandwidth_mbps=bandwidth_mbps,
        )
        return TimedChannel(SimClock(), lan, 1.0)

    def test_bigger_payload_slower_round(self):
        channel = self.make_channel()
        _, small_rtt = channel.exchange(lambda c: (c, 0.0), 0, payload_bytes=64)
        _, large_rtt = channel.exchange(lambda c: (c, 0.0), 0, payload_bytes=8192)
        assert large_rtt > small_rtt

    def test_serialisation_term_exact(self):
        # 100 Mb/s: 1250 bytes = 0.1 ms per direction.
        channel = self.make_channel(bandwidth_mbps=100.0)
        _, base = channel.exchange(lambda c: (c, 0.0), 0, payload_bytes=0)
        _, loaded = channel.exchange(lambda c: (c, 0.0), 0, payload_bytes=1250)
        assert loaded - base == pytest.approx(0.2, abs=1e-9)

    def test_faster_link_cheaper_payload(self):
        slow = self.make_channel(bandwidth_mbps=100.0)
        fast = self.make_channel(bandwidth_mbps=10_000.0)
        _, slow_rtt = slow.exchange(lambda c: (c, 0.0), 0, payload_bytes=4096)
        _, fast_rtt = fast.exchange(lambda c: (c, 0.0), 0, payload_bytes=4096)
        assert fast_rtt < slow_rtt

    def test_payload_term_motivates_segment_size_choice(self):
        """The paper's v = 5 (660-bit) segments cost ~13 us on gigabit
        LAN -- negligible against 13 ms of disk; but v = 1000 segments
        would cost ~1.3 ms, eating half the LAN budget."""
        lan = LANModel(n_switches=0, switch_delay_ms=0.0, jitter_ms=0.0)
        v5_bytes = 83  # 660 bits
        v1000_bytes = 16_003
        v5_cost = lan.one_way_ms(0.0, v5_bytes)
        v1000_cost = lan.one_way_ms(0.0, v1000_bytes)
        assert v5_cost < 0.001
        assert v1000_cost > 0.1
