"""Closed-form distance-bounding security bounds."""

import pytest

from repro.distbound.analysis import (
    brands_chaum_false_accept,
    hancke_kuhn_false_accept,
    rounds_for_security,
    timing_margin_distance_km,
)
from repro.errors import ConfigurationError


class TestFalseAcceptFormulas:
    def test_hancke_kuhn(self):
        assert hancke_kuhn_false_accept(0) == 1.0
        assert hancke_kuhn_false_accept(1) == 0.75
        assert hancke_kuhn_false_accept(4) == pytest.approx(0.31640625)

    def test_brands_chaum(self):
        assert brands_chaum_false_accept(8) == pytest.approx(1 / 256)

    def test_brands_chaum_stronger_per_round(self):
        for n in (1, 8, 32):
            assert brands_chaum_false_accept(n) < hancke_kuhn_false_accept(n)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            hancke_kuhn_false_accept(-1)


class TestRoundsForSecurity:
    def test_hk_32bit_security(self):
        n = rounds_for_security(2.0**-32)
        assert n == 78
        assert hancke_kuhn_false_accept(n) <= 2.0**-32
        assert hancke_kuhn_false_accept(n - 1) > 2.0**-32

    def test_bc_32bit_security(self):
        assert rounds_for_security(2.0**-32, per_round_success=0.5) == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rounds_for_security(0.0)
        with pytest.raises(ConfigurationError):
            rounds_for_security(0.5, per_round_success=1.0)


class TestTimingMargin:
    def test_slack_converts_to_distance(self):
        # 1 ms of slack at light speed = 150 km of hiding room.
        assert timing_margin_distance_km(2.0, 1.0, 300.0) == pytest.approx(150.0)

    def test_no_negative_slack(self):
        assert timing_margin_distance_km(1.0, 2.0, 300.0) == 0.0

    def test_validates(self):
        with pytest.raises(ConfigurationError):
            timing_margin_distance_km(-1.0, 0.0, 300.0)
