"""Attack simulators versus the protocols: who falls to what."""

import pytest

from repro.crypto.prf import prf_stream
from repro.crypto.rng import DeterministicRNG
from repro.distbound.analysis import hancke_kuhn_false_accept
from repro.distbound.attacks import (
    DistanceFraudProver,
    MafiaFraudRelay,
    TerroristAccomplice,
    leak_hancke_kuhn_registers,
    leak_reid_registers,
)
from repro.distbound.base import TimedChannel
from repro.distbound.hancke_kuhn import HanckeKuhnProver, HanckeKuhnVerifier
from repro.netsim.clock import SimClock
from repro.netsim.latency import RFChannelModel

SECRET = b"shared-secret-for-attack-tests"


def rf_channel(distance_km: float) -> TimedChannel:
    return TimedChannel(SimClock(), RFChannelModel(), distance_km)


class RelayAdapter:
    """Wire a MafiaFraudRelay into the verifier's prover API."""

    def __init__(self, relay: MafiaFraudRelay, honest_prover):
        self.identity = honest_prover.identity
        self._relay = relay
        self._honest = honest_prover

    def begin_session(self, verifier_nonce, prover_nonce, n_rounds):
        self._relay.begin_session(verifier_nonce, prover_nonce, n_rounds)
        self._relay.learn_from_prover(self._honest)

    def respond(self, challenge_bit):
        return self._relay.respond(challenge_bit)


class AccompliceAdapter:
    """Terrorist accomplice with leaked Hancke-Kuhn registers."""

    def __init__(self, accomplice: TerroristAccomplice, secret: bytes):
        self.identity = b"P"
        self._accomplice = accomplice
        self._secret = secret

    def begin_session(self, verifier_nonce, prover_nonce, n_rounds):
        left, right = leak_hancke_kuhn_registers(
            self._secret, verifier_nonce, prover_nonce, n_rounds
        )
        self._accomplice.receive_leak(left, right)

    def respond(self, challenge_bit):
        return self._accomplice.respond(challenge_bit)


class TestMafiaFraud:
    def test_acceptance_rate_matches_three_quarters_power_n(self):
        """Empirical mafia-fraud success must track (3/4)^n."""
        n_rounds, trials = 6, 400
        accepts = 0
        master = DeterministicRNG("mafia-stats")
        for trial in range(trials):
            rng = master.fork(f"t{trial}")
            verifier = HanckeKuhnVerifier(
                b"V", SECRET, n_rounds=n_rounds, rtt_max_ms=0.1
            )
            relay = MafiaFraudRelay(b"R", rng.fork("relay"))
            adapter = RelayAdapter(relay, HanckeKuhnProver(b"P", SECRET))
            result = verifier.run(adapter, rf_channel(0.5), rng.fork("run"))
            accepts += result.accepted
        rate = accepts / trials
        theory = hancke_kuhn_false_accept(n_rounds)  # 0.178
        assert abs(rate - theory) < 0.06, (rate, theory)

    def test_relay_timing_passes(self):
        """The relay is close, so only bits can betray it."""
        rng = DeterministicRNG("mafia-one")
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=16, rtt_max_ms=0.1)
        relay = MafiaFraudRelay(b"R", rng.fork("relay"))
        adapter = RelayAdapter(relay, HanckeKuhnProver(b"P", SECRET))
        result = verifier.run(adapter, rf_channel(0.5), rng.fork("run"))
        assert result.timing_ok

    def test_long_protocol_defeats_relay(self):
        rng = DeterministicRNG("mafia-long")
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=64, rtt_max_ms=0.1)
        relay = MafiaFraudRelay(b"R", rng.fork("relay"))
        adapter = RelayAdapter(relay, HanckeKuhnProver(b"P", SECRET))
        result = verifier.run(adapter, rf_channel(0.5), rng.fork("run"))
        assert not result.accepted  # (3/4)^64 ~ 1e-8


class TestDistanceFraud:
    def test_far_prover_cannot_beat_physics(self):
        # Even answering with zero processing, a far prover's RTT is
        # bounded below by the flight time the channel charges.
        rng = DeterministicRNG("df")
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=16, rtt_max_ms=0.1)
        fraudster = DistanceFraudProver(b"P", SECRET, rng.fork("adv"))
        result = verifier.run(fraudster, rf_channel(100.0), rng.fork("run"))
        assert not result.timing_ok

    def test_committed_bits_cost_correctness(self):
        # At close range timing passes but pre-committed bits are wrong
        # with probability ~ 1/4 per round.
        trials, n_rounds = 300, 8
        master = DeterministicRNG("df-stats")
        accepts = 0
        for trial in range(trials):
            rng = master.fork(f"t{trial}")
            verifier = HanckeKuhnVerifier(
                b"V", SECRET, n_rounds=n_rounds, rtt_max_ms=0.1
            )
            fraudster = DistanceFraudProver(b"P", SECRET, rng.fork("adv"))
            result = verifier.run(fraudster, rf_channel(0.5), rng.fork("run"))
            accepts += result.accepted
        rate = accepts / trials
        theory = 0.75**n_rounds
        assert abs(rate - theory) < 0.07, (rate, theory)


class TestTerroristAttack:
    def test_hancke_kuhn_falls(self):
        """Leaked HK registers let the accomplice pass every round."""
        rng = DeterministicRNG("terrorist-hk")
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        adapter = AccompliceAdapter(TerroristAccomplice(b"A"), SECRET)
        result = verifier.run(adapter, rf_channel(0.5), rng)
        assert result.accepted  # the attack the paper attributes to HK

    def test_hk_leak_reveals_nothing_about_secret(self):
        # The leaked registers are PRF outputs; leaking them does not
        # equal leaking the long-term secret (that asymmetry is WHY a
        # rational HK prover cooperates).
        left, right = leak_hancke_kuhn_registers(SECRET, b"n1", b"n2", 32)
        assert SECRET not in left + right

    def test_reid_leak_surrenders_credential(self):
        """Reid registers jointly reveal the expanded secret."""
        cipher_register, key_register = leak_reid_registers(
            SECRET, b"V", b"P", b"n1", b"n2", 32
        )
        recovered = TerroristAccomplice.reconstruct_secret_bits(
            cipher_register, key_register
        )
        expected = prf_stream(SECRET, b"reid-secret-expand", b"", len(cipher_register))
        assert recovered == expected

    def test_accomplice_requires_leak(self):
        from repro.errors import ConfigurationError

        accomplice = TerroristAccomplice(b"A")
        accomplice.begin_session()
        with pytest.raises(ConfigurationError):
            accomplice.respond(0)
