"""Frame layer: arbitrary chunking never loses or invents a frame."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.service import MAX_FRAME_BYTES, FrameParser, encode_frame


class TestEncodeFrame:
    def test_prefix_is_big_endian_length(self):
        assert encode_frame(b"abc") == b"\x00\x00\x00\x03abc"

    def test_empty_body_allowed(self):
        assert encode_frame(b"") == b"\x00\x00\x00\x00"

    def test_oversize_body_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


class TestFrameParser:
    def test_single_frame_single_feed(self):
        parser = FrameParser()
        assert parser.feed(encode_frame(b"hello")) == [b"hello"]
        assert parser.pending_bytes == 0

    def test_partial_frame_waits(self):
        parser = FrameParser()
        frame = encode_frame(b"hello")
        assert parser.feed(frame[:3]) == []
        assert parser.pending_bytes == 3
        assert parser.feed(frame[3:]) == [b"hello"]
        assert parser.pending_bytes == 0

    def test_concatenated_frames_split(self):
        parser = FrameParser()
        data = encode_frame(b"a") + encode_frame(b"bb") + encode_frame(b"")
        assert parser.feed(data) == [b"a", b"bb", b""]

    def test_oversize_declared_length_fails_before_body_arrives(self):
        parser = FrameParser()
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            parser.feed(prefix)

    @given(
        bodies=st.lists(st.binary(max_size=200), max_size=10),
        cuts=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_chunking_yields_exactly_the_frames(self, bodies, cuts):
        stream = b"".join(encode_frame(body) for body in bodies)
        parser = FrameParser()
        out = []
        position = 0
        while position < len(stream):
            step = cuts.draw(
                st.integers(1, len(stream) - position), label="chunk"
            )
            out.extend(parser.feed(stream[position : position + step]))
            position += step
        assert out == bodies
        assert parser.pending_bytes == 0
