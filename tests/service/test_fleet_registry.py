"""The fleet's storage plane exposed as an elastic provider registry."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import StorageUnavailableError
from repro.fleet import AuditFleet
from repro.geo.datasets import city


def build_fleet():
    fleet = AuditFleet(seed="registry-fleet")
    fleet.add_provider(
        "acme",
        [("brisbane", city("brisbane")), ("sydney", city("sydney"))],
    )
    fleet.add_provider("solo", [("melbourne", city("melbourne"))])
    data_rng = DeterministicRNG("registry-data")
    fleet.register(
        tenant="alice",
        provider="acme",
        datacentre="brisbane",
        file_id=b"alice-0",
        data=data_rng.fork("0").random_bytes(2_000),
    )
    return fleet


class FakeClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms


class TestStorageRegistry:
    def test_one_backend_per_site_with_intra_provider_fallbacks(self):
        registry = build_fleet().storage_registry()
        assert registry.names() == [
            "acme/brisbane",
            "acme/sydney",
            "solo/melbourne",
        ]
        assert registry.chain("acme/brisbane") == [
            "acme/brisbane",
            "acme/sydney",
        ]
        # Failover never crosses a provider boundary.
        assert registry.chain("solo/melbourne") == ["solo/melbourne"]

    def test_backends_adopt_the_fleet_servers(self):
        fleet = build_fleet()
        registry = fleet.storage_registry()
        backend = registry.get("acme/brisbane")
        site = fleet.provider("acme").datacentre("brisbane")
        assert backend.server is site.server
        result = registry.serve_via("acme/brisbane", b"alice-0", 0)
        assert result.served_by == "acme/brisbane"
        assert result.elapsed_ms > 0.0  # simulated spindle cost, not RAM

    def test_data_miss_falls_through_to_the_replica_site(self):
        fleet = build_fleet()
        # Place a copy at the fallback site, then lose the primary's.
        encoded = (
            fleet.provider("acme")
            .datacentre("brisbane")
            .server.store.file_meta(b"alice-0")
        )
        fleet.provider("acme").datacentre("sydney").store(encoded)
        fleet.provider("acme").datacentre("brisbane").server.store.delete_file(
            b"alice-0"
        )
        registry = fleet.storage_registry()
        result = registry.serve_via("acme/brisbane", b"alice-0", 0)
        assert result.served_by == "acme/sydney"
        # A data miss is not a health event.
        assert registry.is_healthy("acme/brisbane")

    def test_single_site_provider_exhausts_its_chain(self):
        registry = build_fleet().storage_registry()
        with pytest.raises(StorageUnavailableError):
            registry.serve_via("solo/melbourne", b"alice-0", 0)

    def test_breaker_knobs_pass_through(self):
        clock = FakeClock()
        registry = build_fleet().storage_registry(
            unhealthy_after=1, probe_delay_ms=250.0, now_fn=clock
        )
        assert registry.unhealthy_after == 1
        assert registry.probe_delay_ms == 250.0
