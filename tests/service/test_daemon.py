"""The asyncio daemon end to end: TCP round-trips, hostile input, soak.

No pytest-asyncio in the toolchain, so every test drives its own event
loop with ``asyncio.run`` -- which doubles as the leak check: a fresh
loop must be empty of foreign tasks after ``daemon.stop()``.
"""

import asyncio
import struct

import pytest

from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS
from repro.service import (
    AuditClient,
    AuditDaemon,
    AuditServiceError,
    FrameParser,
    encode_frame,
    run_audit_client,
)
from repro.service.wire import AuditOrder, ErrorReply, decode_reply


def build_session(seed="daemon", n_files=3):
    session = GeoProofSession.build(
        datacentre_location=GeoPoint(-27.4698, 153.0251),
        params=TEST_PARAMS,
        min_rounds=4,
        seed=seed,
    )
    rng = DeterministicRNG(seed + "-data")
    file_ids = []
    for i in range(n_files):
        file_id = f"file-{i}".encode()
        session.outsource(file_id, rng.fork(str(i)).random_bytes(4000))
        file_ids.append(file_id)
    return session, file_ids


def build_daemon(session, **kwargs):
    kwargs.setdefault("flush_batch", 16)
    kwargs.setdefault("flush_ms", 2.0)
    return AuditDaemon(
        tpa=session.tpa,
        verifier=session.verifier,
        provider=session.provider,
        **kwargs,
    )


def leaked_tasks():
    return [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]


class TestRoundTrip:
    def test_single_audit_over_tcp(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    return await client.audit(file_ids[0], k=4)
            finally:
                await daemon.stop()

        verdict = asyncio.run(run())
        assert verdict.accepted

    def test_pipelined_batch_matches_scalar(self):
        scalar_session, file_ids = build_session()
        plan = [(file_ids[i % 3], 3 + (i % 2)) for i in range(30)]
        scalar = [
            scalar_session.tpa.audit(
                f, scalar_session.verifier, scalar_session.provider, k=k
            ).verdict
            for f, k in plan
        ]

        daemon_session, _ = build_session()

        async def run():
            daemon = build_daemon(daemon_session, flush_batch=7)
            await daemon.start()
            try:
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    return await client.audit_many(plan)
            finally:
                await daemon.stop()

        assert asyncio.run(run()) == scalar

    def test_many_concurrent_clients(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session)
            await daemon.start()

            async def one_client(offset):
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    plan = [
                        (file_ids[(offset + i) % 3], 3) for i in range(10)
                    ]
                    return await client.audit_many(plan)

            try:
                results = await asyncio.gather(
                    *(one_client(i) for i in range(8))
                )
            finally:
                await daemon.stop()
            return results

        results = asyncio.run(run())
        assert len(results) == 8
        assert all(v.accepted for batch in results for v in batch)

    def test_unserviceable_order_raises_service_error(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    ok = await client.audit(file_ids[0], k=3)
                    with pytest.raises(AuditServiceError):
                        await client.audit(b"no-such-file", k=3)
                    return ok
            finally:
                await daemon.stop()

        assert asyncio.run(run()).accepted

    def test_run_audit_client_sync_helper(self):
        session, file_ids = build_session()

        async def serve(ready, done):
            daemon = build_daemon(session)
            await daemon.start()
            ready.set_result(daemon.port)
            await done
            await daemon.stop()

        def client_thread(port):
            return run_audit_client(
                "127.0.0.1", port, [(file_ids[0], 3), (file_ids[1], 4)]
            )

        async def run():
            loop = asyncio.get_running_loop()
            ready = loop.create_future()
            done = loop.create_future()
            server_task = asyncio.create_task(serve(ready, done))
            port = await ready
            # run_audit_client spins its own loop; host it off-thread.
            verdicts = await asyncio.to_thread(client_thread, port)
            done.set_result(None)
            await server_task
            return verdicts

        verdicts = asyncio.run(run())
        assert [v.accepted for v in verdicts] == [True, True]


class TestHostileInput:
    def test_garbage_frame_gets_error_reply_and_drop(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port
                )
                writer.write(encode_frame(b"\xff garbage opcode"))
                await writer.drain()
                raw = await reader.read(1 << 16)
                assert (await reader.read(1)) == b""  # daemon dropped us
                writer.close()
                await writer.wait_closed()

                # ...but the daemon survives for the next tenant.
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    verdict = await client.audit(file_ids[0], k=3)
                return raw, verdict
            finally:
                await daemon.stop()

        raw, verdict = asyncio.run(run())
        (body,) = FrameParser().feed(raw)
        reply = decode_reply(body)
        assert isinstance(reply, ErrorReply)
        assert reply.order_id == 0
        assert verdict.accepted

    def test_oversize_declared_frame_dropped_immediately(self):
        session, _ = build_session(n_files=1)

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", daemon.port
                )
                writer.write(struct.pack(">I", 1 << 30))
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(1 << 16), timeout=5)
                assert (await reader.read(1)) == b""
                writer.close()
                await writer.wait_closed()
                return raw
            finally:
                await daemon.stop()

        raw = asyncio.run(run())
        (body,) = FrameParser().feed(raw)
        assert isinstance(decode_reply(body), ErrorReply)

    def test_truncated_frame_never_hangs_shutdown(self):
        session, _ = build_session(n_files=1)

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port
            )
            # Half a frame, then silence: stop() must not wait for the
            # rest of the body to arrive.
            writer.write(encode_frame(b"x" * 100)[:40])
            await writer.drain()
            await asyncio.sleep(0.05)
            await asyncio.wait_for(daemon.stop(), timeout=5)
            writer.close()
            return leaked_tasks()

        assert asyncio.run(run()) == []


class TestStats:
    def test_stats_op_reports_live_dispatch_state(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    plan = [(file_ids[i % 3], 3) for i in range(30)]
                    verdicts = await client.audit_many(plan)
                    stats = await client.stats()
            finally:
                await daemon.stop()
            return verdicts, stats

        verdicts, stats = asyncio.run(run())
        assert all(v.accepted for v in verdicts)
        # The live payload carries the whole dispatch picture: totals,
        # queue depth, the flush-size histogram, latency quantiles.
        assert stats["n_orders"] == 30
        assert stats["n_errors"] == 0
        assert stats["n_flushes"] >= 1
        assert stats["queue_depth"] >= 0
        assert stats["n_connections"] >= 1
        assert stats["flush_sizes"]["count"] == stats["n_flushes"]
        assert stats["flush_sizes"]["sum"] == 30
        assert stats["latency_ms"]["count"] == 30
        assert (
            stats["latency_p50_ms"]
            <= stats["latency_p99_ms"]
            <= stats["latency_ms"]["max"]
        )

    def test_stats_answered_before_any_audit(self):
        session, _ = build_session(n_files=1)

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            try:
                async with AuditClient("127.0.0.1", daemon.port) as client:
                    return await client.stats()
            finally:
                await daemon.stop()

        stats = asyncio.run(run())
        assert stats["n_orders"] == 0
        assert stats["latency_p99_ms"] == 0.0

    def test_fetch_daemon_stats_sync_helper(self):
        from repro.service import fetch_daemon_stats

        session, file_ids = build_session()

        async def serve(ready, done):
            daemon = build_daemon(session)
            await daemon.start()
            ready.set_result(daemon.port)
            await done
            await daemon.stop()

        async def run():
            loop = asyncio.get_running_loop()
            ready = loop.create_future()
            done = loop.create_future()
            server_task = asyncio.create_task(serve(ready, done))
            port = await ready
            verdicts, stats = await asyncio.to_thread(
                run_audit_client,
                "127.0.0.1",
                port,
                [(file_ids[0], 3)],
                stats=True,
            )
            probe = await asyncio.to_thread(
                fetch_daemon_stats, "127.0.0.1", port
            )
            done.set_result(None)
            await server_task
            return verdicts, stats, probe

        verdicts, stats, probe = asyncio.run(run())
        assert [v.accepted for v in verdicts] == [True]
        # Stats ride the same connection after the verdicts, so the
        # batch is already counted...
        assert stats["n_orders"] == 1
        # ...and a later one-shot probe sees at least as much.
        assert probe["n_orders"] >= 1


class TestSoak:
    def test_thousand_audits_clean_shutdown_no_leaked_tasks(self):
        session, file_ids = build_session()

        async def run():
            daemon = build_daemon(session, flush_batch=64)
            await daemon.start()
            async with AuditClient("127.0.0.1", daemon.port) as client:
                plan = [(file_ids[i % 3], 3) for i in range(1000)]
                verdicts = await client.audit_many(plan)
            await daemon.stop()
            return verdicts, leaked_tasks(), daemon.stats

        verdicts, leaked, stats = asyncio.run(run())
        assert len(verdicts) == 1000
        assert all(v.accepted for v in verdicts)
        assert leaked == []
        assert stats.n_orders == 1000
        assert stats.n_errors == 0
        # Batching really happened: the pipelined client saturates the
        # dispatcher, so flushes are far fewer than orders.
        assert stats.n_flushes < 1000
        assert stats.flush_sizes.max_value <= 64

    def test_stop_is_idempotent_and_start_twice_rejected(self):
        session, _ = build_session(n_files=1)

        async def run():
            daemon = build_daemon(session)
            await daemon.start()
            from repro.errors import ConfigurationError

            with pytest.raises(ConfigurationError):
                await daemon.start()
            await daemon.stop()
            await daemon.stop()  # second stop is a no-op
            return leaked_tasks()

        assert asyncio.run(run()) == []
