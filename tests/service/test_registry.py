"""Pinned circuit-breaker behaviour of the provider registry.

The clock is injected (``now_fn``) so the half-open probe schedule is
exact: K consecutive failures open the circuit, the fallback serves
while it is open, and after ``probe_delay_ms`` one probe is let
through -- success re-admits the backend, failure re-opens a fresh
back-off window.
"""

import pytest

from repro.errors import (
    BlockNotFoundError,
    ConfigurationError,
    StorageUnavailableError,
)
from repro.por.file_format import Segment
from repro.service import HEALTHY, UNHEALTHY, ProviderRegistry
from repro.storage.contract import ProviderLookup, StorageProvider

FILE = b"file-a"


class FakeClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms


class ScriptedBackend(StorageProvider):
    """Serves from RAM unless told to be down; counts every request."""

    def __init__(self, name: str, files=(FILE,)) -> None:
        super().__init__(name)
        self.down = False
        self.requests = 0
        self._files = set(files)

    def exists(self, file_id, index=None):
        return file_id in self._files

    def lookup(self, file_id, index):
        self.requests += 1
        if self.down:
            raise StorageUnavailableError(f"{self.name} is down")
        if file_id not in self._files:
            raise BlockNotFoundError(f"{self.name} does not hold {file_id!r}")
        segment = Segment(index=index, payload=b"\x00" * 4, tag=b"\x00" * 2)
        return ProviderLookup(
            segment=segment, elapsed_ms=0.0, served_by=self.name
        )

    def put_file(self, encoded):  # pragma: no cover - unused in tests
        raise NotImplementedError

    def delete_file(self, file_id):  # pragma: no cover - unused in tests
        raise NotImplementedError

    def file_ids(self):
        return sorted(self._files)


def build_registry(k=3, probe_delay_ms=1000.0):
    clock = FakeClock()
    registry = ProviderRegistry(
        unhealthy_after=k, probe_delay_ms=probe_delay_ms, now_fn=clock
    )
    primary = ScriptedBackend("primary")
    fallback = ScriptedBackend("fallback")
    registry.add(primary, fallbacks=("fallback",))
    registry.add(fallback)
    return registry, primary, fallback, clock


class TestRegistration:
    def test_first_added_is_primary(self):
        registry, *_ = build_registry()
        assert registry.primary == "primary"
        assert registry.names() == ["primary", "fallback"]

    def test_duplicate_name_rejected(self):
        registry, *_ = build_registry()
        with pytest.raises(ConfigurationError):
            registry.add(ScriptedBackend("primary"))

    def test_self_fallback_rejected(self):
        registry = ProviderRegistry()
        with pytest.raises(ConfigurationError):
            registry.add(ScriptedBackend("a"), fallbacks=("a",))

    def test_unknown_backend_rejected(self):
        registry, *_ = build_registry()
        with pytest.raises(ConfigurationError):
            registry.get("nope")
        with pytest.raises(ConfigurationError):
            registry.set_primary("nope")

    def test_empty_registry_has_no_primary(self):
        with pytest.raises(ConfigurationError):
            ProviderRegistry().primary

    def test_chain_dedupes_and_validates(self):
        registry, *_ = build_registry()
        assert registry.chain("primary") == ["primary", "fallback"]
        assert registry.chain("fallback") == ["fallback"]


class TestCircuitBreaker:
    def test_k_consecutive_failures_open_the_circuit(self):
        registry, primary, _, _ = build_registry(k=3)
        primary.down = True
        for n in range(3):
            assert registry.is_healthy("primary"), f"opened after {n} failures"
            registry.handle_request(FILE, 0)  # fallback serves
        assert not registry.is_healthy("primary")
        assert registry.status("primary").state == UNHEALTHY
        assert registry.status("primary").consecutive_failures == 3

    def test_success_resets_the_consecutive_count(self):
        registry, primary, _, _ = build_registry(k=3)
        primary.down = True
        registry.handle_request(FILE, 0)
        registry.handle_request(FILE, 0)
        primary.down = False
        registry.handle_request(FILE, 0)
        assert registry.status("primary").consecutive_failures == 0
        primary.down = True
        registry.handle_request(FILE, 0)
        registry.handle_request(FILE, 0)
        assert registry.is_healthy("primary")  # 2 < K after the reset

    def test_fallback_serves_while_circuit_open(self):
        registry, primary, fallback, _ = build_registry(k=1)
        primary.down = True
        result = registry.handle_request(FILE, 0)
        assert result.served_by == "fallback"
        assert not registry.is_healthy("primary")
        # While open (probe not due) the primary is not even asked.
        before = primary.requests
        for _ in range(5):
            assert registry.handle_request(FILE, 0).served_by == "fallback"
        assert primary.requests == before

    def test_half_open_probe_readmits_on_success(self):
        registry, primary, _, clock = build_registry(k=1, probe_delay_ms=500.0)
        primary.down = True
        registry.handle_request(FILE, 0)
        assert not registry.is_healthy("primary")
        primary.down = False
        clock.now_ms = 499.0  # probe not due yet
        assert registry.handle_request(FILE, 0).served_by == "fallback"
        clock.now_ms = 500.0  # due: one probe goes through
        result = registry.handle_request(FILE, 0)
        assert result.served_by == "primary"
        assert registry.is_healthy("primary")
        assert registry.status("primary").n_probes == 1
        assert registry.status("primary").consecutive_failures == 0

    def test_failed_probe_reopens_a_fresh_window(self):
        registry, primary, _, clock = build_registry(k=1, probe_delay_ms=500.0)
        primary.down = True
        registry.handle_request(FILE, 0)
        clock.now_ms = 500.0
        assert registry.handle_request(FILE, 0).served_by == "fallback"
        assert registry.status("primary").n_probes == 1
        assert registry.status("primary").opened_at_ms == 500.0
        # The fresh window starts at the failed probe, not the first open.
        clock.now_ms = 999.0
        before = primary.requests
        registry.handle_request(FILE, 0)
        assert primary.requests == before
        clock.now_ms = 1000.0
        primary.down = False
        assert registry.handle_request(FILE, 0).served_by == "primary"

    def test_block_not_found_is_not_a_health_signal(self):
        registry, primary, fallback, _ = build_registry(k=1)
        primary._files.clear()  # data miss, backend itself is fine
        for _ in range(5):
            assert registry.handle_request(FILE, 0).served_by == "fallback"
        assert registry.is_healthy("primary")
        assert registry.status("primary").n_failures == 0

    def test_exhausted_chain_raises_with_reasons(self):
        registry, primary, fallback, _ = build_registry(k=2)
        primary.down = True
        fallback.down = True
        with pytest.raises(StorageUnavailableError) as excinfo:
            registry.handle_request(FILE, 0)
        assert "primary" in str(excinfo.value)
        assert "fallback" in str(excinfo.value)

    def test_status_counts_successes_and_failures(self):
        registry, primary, _, _ = build_registry(k=3)
        registry.handle_request(FILE, 0)
        primary.down = True
        registry.handle_request(FILE, 0)
        status = registry.status("primary")
        assert status.n_successes == 1
        assert status.n_failures == 1
        assert status.state == HEALTHY


class TestAuditLoopCompatibility:
    def test_serve_via_secondary_chain(self):
        registry, primary, fallback, _ = build_registry()
        assert registry.serve_via("fallback", FILE, 0).served_by == "fallback"
        assert primary.requests == 0

    def test_handle_request_uses_primary_chain(self):
        registry, primary, _, _ = build_registry()
        registry.set_primary("fallback")
        assert registry.handle_request(FILE, 0).served_by == "fallback"
