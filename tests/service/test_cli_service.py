"""The serve / audit-client subcommands: exit codes and wiring.

The daemon is hosted in a background thread (its own event loop) so one
test process can exercise the whole CLI round trip in-process.
"""

import json
import threading

import pytest

from repro.cli import build_parser, main


class ServeThread:
    """`repro serve` equivalent, run on a thread with a handle to stop it."""

    def __init__(self, n_files=2, min_rounds=4):
        import asyncio

        from repro.core.session import GeoProofSession
        from repro.crypto.rng import DeterministicRNG
        from repro.geo.coords import GeoPoint
        from repro.por.parameters import TEST_PARAMS
        from repro.service import AuditDaemon

        session = GeoProofSession.build(
            datacentre_location=GeoPoint(-27.4698, 153.0251),
            params=TEST_PARAMS,
            min_rounds=min_rounds,
            seed="cli-serve",
        )
        rng = DeterministicRNG("cli-serve-data")
        for i in range(n_files):
            session.outsource(
                f"file-{i}".encode(), rng.fork(str(i)).random_bytes(4000)
            )
        self._daemon = AuditDaemon(
            tpa=session.tpa,
            verifier=session.verifier,
            provider=session.provider,
            flush_batch=16,
            flush_ms=2.0,
        )
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._loop = None
        self.port = None

    def _run(self):
        import asyncio

        asyncio.run(self._serve())

    async def _serve(self):
        import asyncio

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self._daemon.start()
        self.port = self._daemon.port
        self._ready.set()
        await self._stop.wait()
        await self._daemon.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10)
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


class TestParserWiring:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 0)
        assert (args.flush_batch, args.flush_ms) == (64, 5.0)
        assert args.json is False

    def test_audit_client_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit-client"])

    def test_audit_client_defaults(self):
        args = build_parser().parse_args(["audit-client", "--port", "5"])
        assert args.file_ids == ["file-0"]
        assert args.rounds == 0
        assert args.count == 1
        assert args.stats is False

    def test_stats_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "--port", "5"])
        assert args.host == "127.0.0.1"
        assert args.port == 5


class TestServe:
    def test_bounded_serve_announces_json_and_exits_zero(self, capsys):
        code = main(
            [
                "serve",
                "--json",
                "--max-seconds",
                "0.05",
                "--files",
                "1",
                "--rounds",
                "4",
                "--size",
                "2000",
            ]
        )
        assert code == 0
        announce = json.loads(capsys.readouterr().out.splitlines()[0])
        assert announce["host"] == "127.0.0.1"
        assert announce["port"] > 0
        assert announce["files"] == ["file-0"]

    def test_bad_home_city_exits_two(self, capsys):
        code = main(["serve", "--home", "atlantis", "--max-seconds", "0.01"])
        assert code == 2


class TestAuditClient:
    def test_accepted_audits_exit_zero(self, capsys):
        with ServeThread() as server:
            code = main(
                [
                    "audit-client",
                    "file-0",
                    "file-1",
                    "--port",
                    str(server.port),
                    "--rounds",
                    "3",
                    "--count",
                    "2",
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("PASS") == 4

    def test_json_output(self, capsys):
        with ServeThread() as server:
            code = main(
                [
                    "audit-client",
                    "file-0",
                    "--port",
                    str(server.port),
                    "--json",
                ]
            )
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert rows[0]["file"] == "file-0"
        assert rows[0]["accepted"] is True

    def test_unknown_file_exits_two(self, capsys):
        with ServeThread() as server:
            code = main(
                ["audit-client", "nope", "--port", str(server.port)]
            )
        assert code == 2

    def test_connection_refused_exits_two(self, capsys):
        code = main(["audit-client", "file-0", "--port", "1"])
        assert code == 2

    def test_stats_flag_appends_daemon_stats(self, capsys):
        with ServeThread() as server:
            code = main(
                [
                    "audit-client",
                    "file-0",
                    "file-1",
                    "--port",
                    str(server.port),
                    "--rounds",
                    "3",
                    "--stats",
                    "--json",
                ]
            )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [row["accepted"] for row in payload["verdicts"]] == [
            True,
            True,
        ]
        # Stats are fetched on the same connection after the verdicts,
        # so this very batch is already counted.
        assert payload["stats"]["n_orders"] == 2
        assert payload["stats"]["n_errors"] == 0
        assert payload["stats"]["flush_sizes"]["sum"] == 2
        assert payload["stats"]["latency_p99_ms"] >= 0.0


class TestStatsCommand:
    def test_stats_probe_returns_live_payload(self, capsys):
        with ServeThread() as server:
            assert (
                main(
                    [
                        "audit-client",
                        "file-0",
                        "--port",
                        str(server.port),
                        "--rounds",
                        "3",
                    ]
                )
                == 0
            )
            capsys.readouterr()
            code = main(["stats", "--port", str(server.port)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["n_orders"] == 1
        assert payload["n_errors"] == 0
        assert payload["queue_depth"] >= 0
        assert set(payload) >= {
            "flush_sizes",
            "latency_ms",
            "latency_p50_ms",
            "latency_p99_ms",
            "n_connections",
        }

    def test_connection_refused_exits_two(self, capsys):
        assert main(["stats", "--port", "1"]) == 2
