"""Service envelope: round-trips and fail-closed decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.verification import GeoProofVerdict
from repro.errors import ProtocolError
from repro.service import (
    OP_AUDIT,
    AuditOrder,
    ErrorReply,
    StatsReply,
    StatsRequest,
    VerdictReply,
    decode_reply,
    decode_request,
)

orders = st.builds(
    AuditOrder,
    order_id=st.integers(0, 2**64 - 1),
    file_id=st.binary(min_size=1, max_size=64),
    k=st.integers(0, 2**32),
)

error_replies = st.builds(
    ErrorReply,
    order_id=st.integers(0, 2**64 - 1),
    message=st.text(max_size=100),
)


def _verdict(accepted: bool) -> GeoProofVerdict:
    return GeoProofVerdict(
        signature_ok=accepted,
        position_ok=accepted,
        macs_ok=accepted,
        timing_ok=accepted,
        challenge_ok=accepted,
        accepted=accepted,
        max_rtt_ms=1.25,
        rtt_max_ms=3.0,
        bad_mac_indices=() if accepted else (2, 7),
    )


class TestRoundTrip:
    @given(order=orders)
    @settings(max_examples=100, deadline=None)
    def test_order(self, order):
        assert decode_request(order.to_wire()) == order

    @given(reply=error_replies)
    @settings(max_examples=100, deadline=None)
    def test_error_reply(self, reply):
        assert decode_reply(reply.to_wire()) == reply

    @pytest.mark.parametrize("accepted", [True, False])
    def test_verdict_reply(self, accepted):
        reply = VerdictReply(order_id=9, verdict=_verdict(accepted))
        assert decode_reply(reply.to_wire()) == reply


class TestFailClosed:
    def test_empty_bodies(self):
        with pytest.raises(ProtocolError):
            decode_request(b"")
        with pytest.raises(ProtocolError):
            decode_reply(b"")

    def test_unknown_opcodes(self):
        with pytest.raises(ProtocolError):
            decode_request(b"\x7f")
        with pytest.raises(ProtocolError):
            decode_reply(b"\x7f")

    def test_request_reply_opcodes_do_not_cross(self):
        order = AuditOrder(1, b"f", 3)
        with pytest.raises(ProtocolError):
            decode_reply(order.to_wire())
        reply = ErrorReply(1, "nope")
        with pytest.raises(ProtocolError):
            decode_request(reply.to_wire())

    @given(order=orders, cut=st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncated_order_fails(self, order, cut):
        wire = order.to_wire()
        end = cut.draw(st.integers(0, len(wire) - 1), label="cut")
        with pytest.raises(ProtocolError):
            decode_request(wire[:end] if end else b"")

    def test_trailing_bytes_fail(self):
        with pytest.raises(ProtocolError):
            decode_request(AuditOrder(1, b"f", 3).to_wire() + b"\x00")
        with pytest.raises(ProtocolError):
            decode_reply(ErrorReply(1, "x").to_wire() + b"\x00")

    def test_invalid_utf8_error_message_fails(self):
        wire = bytearray(ErrorReply(1, "ab").to_wire())
        wire[-2:] = b"\xff\xfe"  # overwrite the message bytes
        with pytest.raises(ProtocolError):
            decode_reply(bytes(wire))

    def test_empty_file_id_rejected_at_build_and_decode(self):
        with pytest.raises(ProtocolError):
            AuditOrder(1, b"", 3)
        # hand-roll the same encoding with a zero-length file id
        from repro.util.serialization import (
            encode_length_prefixed,
            encode_uint,
        )

        body = (
            bytes([OP_AUDIT])
            + encode_uint(1)
            + encode_length_prefixed(b"")
            + encode_uint(3)
        )
        with pytest.raises(ProtocolError):
            decode_request(body)


class TestStatsOp:
    @given(order_id=st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_request_round_trip(self, order_id):
        request = StatsRequest(order_id)
        assert decode_request(request.to_wire()) == request

    def test_reply_round_trip(self):
        payload = {
            "n_orders": 12,
            "queue_depth": 0,
            "latency_p99_ms": 1.5,
            "flush_sizes": {"count": 3, "buckets": [[1.0, 1], ["+Inf", 3]]},
        }
        reply = StatsReply(7, payload)
        assert decode_reply(reply.to_wire()) == reply

    def test_request_and_reply_opcodes_do_not_cross(self):
        with pytest.raises(ProtocolError):
            decode_reply(StatsRequest(1).to_wire())
        with pytest.raises(ProtocolError):
            decode_request(StatsReply(1, {}).to_wire())

    def test_reply_with_garbage_json_fails_closed(self):
        wire = bytearray(StatsReply(1, {"a": 1}).to_wire())
        wire[-1] = 0xFF  # corrupt the JSON payload
        with pytest.raises(ProtocolError):
            decode_reply(bytes(wire))

    def test_reply_with_non_object_json_fails_closed(self):
        from repro.util.serialization import (
            encode_length_prefixed,
            encode_uint,
        )
        from repro.service import OP_STATS_REPLY

        body = (
            bytes([OP_STATS_REPLY])
            + encode_uint(1)
            + encode_length_prefixed(b"[1, 2]")
        )
        with pytest.raises(ProtocolError):
            decode_reply(body)

    def test_trailing_bytes_fail(self):
        with pytest.raises(ProtocolError):
            decode_request(StatsRequest(1).to_wire() + b"\x00")
        with pytest.raises(ProtocolError):
            decode_reply(StatsReply(1, {}).to_wire() + b"\x00")
