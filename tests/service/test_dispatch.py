"""The dispatcher's batched audit plane vs the scalar anchor.

The load-bearing pin: for the same seed and the same order stream, the
daemon's batched path and the scalar one-call-one-audit anchor produce
*identical* verdicts -- bad orders answered before any nonce is drawn,
contiguous same-k runs batched, submission order preserved.
"""

import pytest

from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS
from repro.service import AuditOrder, ErrorReply, VerdictReply
from repro.service.dispatch import AuditDispatcher


def build_session(seed="dispatch", n_files=3, min_rounds=4):
    session = GeoProofSession.build(
        datacentre_location=GeoPoint(-27.4698, 153.0251),
        params=TEST_PARAMS,
        min_rounds=min_rounds,
        seed=seed,
    )
    rng = DeterministicRNG(seed + "-data")
    file_ids = []
    for i in range(n_files):
        file_id = f"file-{i}".encode()
        session.outsource(file_id, rng.fork(str(i)).random_bytes(4000))
        file_ids.append(file_id)
    return session, file_ids


def build_dispatcher(session, **kwargs):
    return AuditDispatcher(
        tpa=session.tpa,
        verifier=session.verifier,
        provider=session.provider,
        **kwargs,
    )


class TestScalarEquivalence:
    def test_mixed_k_batch_matches_scalar_audits(self):
        scalar_session, file_ids = build_session()
        plan = [(file_ids[i % 3], 3 + (i % 2)) for i in range(24)]
        scalar = [
            scalar_session.tpa.audit(
                file_id,
                scalar_session.verifier,
                scalar_session.provider,
                k=k,
            ).verdict
            for file_id, k in plan
        ]

        batch_session, _ = build_session()
        dispatcher = build_dispatcher(batch_session)
        replies = dispatcher.process_batch(
            [
                AuditOrder(i + 1, file_id, k)
                for i, (file_id, k) in enumerate(plan)
            ]
        )
        assert [reply.verdict for reply in replies] == scalar

    def test_invalid_orders_do_not_perturb_neighbours(self):
        scalar_session, file_ids = build_session()
        scalar = [
            scalar_session.tpa.audit(
                file_id,
                scalar_session.verifier,
                scalar_session.provider,
                k=3,
            ).verdict
            for file_id in file_ids
        ]

        batch_session, _ = build_session()
        dispatcher = build_dispatcher(batch_session)
        replies = dispatcher.process_batch(
            [
                AuditOrder(1, file_ids[0], 3),
                AuditOrder(2, b"no-such-file", 3),  # rejected pre-nonce
                AuditOrder(3, file_ids[1], 3),
                AuditOrder(4, file_ids[2], 10**9),  # k out of range
                AuditOrder(5, file_ids[2], 3),
            ]
        )
        assert isinstance(replies[1], ErrorReply)
        assert isinstance(replies[3], ErrorReply)
        good = [replies[0], replies[2], replies[4]]
        assert all(isinstance(reply, VerdictReply) for reply in good)
        assert [reply.verdict for reply in good] == scalar

    def test_k_zero_means_sla_min_rounds(self):
        scalar_session, file_ids = build_session(min_rounds=5)
        scalar = scalar_session.tpa.audit(
            file_ids[0], scalar_session.verifier, scalar_session.provider
        ).verdict

        batch_session, _ = build_session(min_rounds=5)
        dispatcher = build_dispatcher(batch_session)
        (reply,) = dispatcher.process_batch([AuditOrder(1, file_ids[0], 0)])
        assert reply.verdict == scalar


class TestReplies:
    def test_one_reply_per_order_in_submission_order(self):
        session, file_ids = build_session()
        dispatcher = build_dispatcher(session)
        orders = [
            AuditOrder(i + 10, file_ids[i % 3], 3 if i % 2 else 4)
            for i in range(9)
        ]
        replies = dispatcher.process_batch(orders)
        assert [reply.order_id for reply in replies] == [
            order.order_id for order in orders
        ]

    def test_stats_track_orders_errors_and_flushes(self):
        session, file_ids = build_session()
        dispatcher = build_dispatcher(session)
        dispatcher.process_batch(
            [AuditOrder(1, file_ids[0], 3), AuditOrder(2, b"missing", 3)]
        )
        dispatcher.process_batch([AuditOrder(3, file_ids[1], 3)])
        assert dispatcher.stats.n_orders == 3
        assert dispatcher.stats.n_errors == 1
        assert dispatcher.stats.n_flushes == 2
        # flush_sizes is a bounded histogram: observations [2, 1].
        assert dispatcher.stats.flush_sizes.count == 2
        assert dispatcher.stats.flush_sizes.sum == 3
        assert dispatcher.stats.flush_sizes.max_value == 2

    def test_mixing_manual_deferred_audits_is_rejected(self):
        session, file_ids = build_session()
        dispatcher = build_dispatcher(session)
        session.tpa.audit_deferred(
            file_ids[0], session.verifier, session.provider, k=3
        )
        with pytest.raises(ConfigurationError):
            dispatcher.process_batch([AuditOrder(1, file_ids[1], 3)])

    def test_configuration_bounds(self):
        session, _ = build_session()
        with pytest.raises(ConfigurationError):
            build_dispatcher(session, flush_batch=0)
        with pytest.raises(ConfigurationError):
            build_dispatcher(session, flush_ms=0.0)
