"""End-to-end runs at the paper's full parameter set.

The unit suite uses TEST_PARAMS for speed; these tests exercise the
real configuration -- 128-bit blocks, RS(255, 223), 5-block segments,
20-bit tags -- once each, bounding the cost by using a ~50 kB file
(15 RS chunks).
"""

import pytest

from repro.cloud.adversary import RelayAttack
from repro.cloud.provider import DataCentre
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.geo.datasets import city
from repro.por.file_format import Segment
from repro.por.parameters import PORParams
from repro.por.setup import extract_file
from repro.storage.hdd import IBM_36Z15

# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

BRISBANE = GeoPoint(-27.4698, 153.0251)


@pytest.fixture(scope="module")
def paper_session():
    session = GeoProofSession.build(
        datacentre_location=BRISBANE,
        params=PORParams(),
        seed="paper-params",
    )
    # 15 exactly-full RS chunks (223 blocks x 16 bytes x 15) -- no
    # chunk padding, so the measured expansion is the nominal rate.
    data = DeterministicRNG("paper-data").random_bytes(223 * 16 * 15)
    session.outsource(b"paper-file", data)
    return session, data


class TestPaperParameters:
    def test_segment_geometry(self, paper_session):
        session, data = paper_session
        record = session.files[b"paper-file"]
        # 3345 blocks -> 15 chunks -> 3825 encoded blocks -> 765
        # segments of 5 blocks.
        assert record.n_segments == 765
        encoded = session.provider.home_of(b"paper-file").server.store.file_meta(
            b"paper-file"
        )
        assert encoded.params.segment_bits == 660

    def test_overhead_in_paper_range(self, paper_session):
        session, data = paper_session
        record = session.files[b"paper-file"]
        expansion = record.stored_bytes / record.original_bytes - 1.0
        # Nominal rate: 14.35 % ECC x 3.1 % MAC ~ 17.9 % (the paper
        # rounds its MAC figure down to reach "about 16.5 %").
        assert 0.16 < expansion < 0.19

    def test_honest_audit_accepted(self, paper_session):
        session, _ = paper_session
        outcome = session.audit(b"paper-file", k=50)
        assert outcome.verdict.accepted
        # Paper's arithmetic: rounds cost ~13.1 ms disk + sub-ms LAN.
        assert 13.0 < outcome.verdict.max_rtt_ms < 16.2

    def test_relay_to_singapore_caught(self, paper_session):
        session, _ = paper_session
        session.provider.add_datacentre(
            DataCentre("sin", city("singapore"), disk=IBM_36Z15)
        )
        session.provider.relocate(b"paper-file", "sin")
        session.provider.set_strategy(RelayAttack("home", "sin"))
        try:
            outcome = session.audit(b"paper-file", k=20)
            assert not outcome.verdict.accepted
            assert outcome.verdict.failure_reasons == ["timing"]
        finally:
            session.provider.set_strategy(None)
            session.provider.relocate(b"paper-file", "home")

    def test_extraction_with_corruption(self, paper_session):
        session, data = paper_session
        store = session.provider.home_of(b"paper-file").server.store
        encoded = store.file_meta(b"paper-file")
        # Corrupt 3 scattered segments (15 blocks): the PRP scatters
        # them across chunks, and each chunk heals <= 32 erased blocks.
        from repro.por.file_format import EncodedFile

        segments = list(encoded.segments)
        for index in (10, 400, 700):
            old = segments[index]
            segments[index] = Segment(
                index=index, payload=b"\xaa" * len(old.payload), tag=old.tag
            )
        damaged = EncodedFile(
            file_id=encoded.file_id,
            params=encoded.params,
            segments=segments,
            original_length=encoded.original_length,
            n_data_blocks=encoded.n_data_blocks,
        )
        recovered = extract_file(damaged, session.files[b"paper-file"].keys)
        assert recovered == data
