"""Property-based tests over the whole protocol stack.

Hypothesis drives file sizes, audit parameters and attack placements;
the invariants are the protocol's contract:

* completeness -- an honest deployment always passes;
* extraction -- the stored bytes always reproduce the original file;
* transcript binding -- any mutation of a signed transcript is caught;
* timing soundness -- a provider-side delay above the slack is always
  caught, regardless of which rounds it hits.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.messages import TimedRound
from repro.core.session import GeoProofSession
from repro.core.verification import verify_transcript
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.por.file_format import Segment
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import extract_file

# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

BRISBANE = GeoPoint(-27.4698, 153.0251)

_slow = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_session(seed: str, file_bytes: int):
    session = GeoProofSession.build(
        datacentre_location=BRISBANE, params=TEST_PARAMS, seed=seed
    )
    data = DeterministicRNG(f"{seed}-data").random_bytes(file_bytes)
    session.outsource(b"prop-file", data)
    return session, data


class TestCompleteness:
    @given(
        file_bytes=st.integers(500, 30_000),
        k=st.integers(1, 25),
    )
    @_slow
    def test_honest_audit_always_accepted(self, file_bytes, k):
        session, _ = fresh_session(f"comp-{file_bytes}-{k}", file_bytes)
        k = min(k, session.files[b"prop-file"].n_segments)
        outcome = session.audit(b"prop-file", k=k)
        assert outcome.verdict.accepted
        assert outcome.verdict.failure_reasons == []

    @given(file_bytes=st.integers(0, 20_000))
    @_slow
    def test_extraction_always_lossless(self, file_bytes):
        session, data = fresh_session(f"ext-{file_bytes}", file_bytes)
        store = session.provider.home_of(b"prop-file").server.store
        recovered = extract_file(
            store.file_meta(b"prop-file"), session.files[b"prop-file"].keys
        )
        assert recovered == data


class TestTranscriptBinding:
    @given(
        mutation=st.sampled_from(
            ["rtt", "payload", "tag", "index", "nonce", "position", "drop"]
        ),
        victim=st.integers(0, 7),
    )
    @_slow
    def test_any_mutation_is_rejected(self, mutation, victim):
        session, _ = fresh_session("bind", 10_000)
        outcome = session.audit(b"prop-file", k=8)
        transcript = outcome.transcript
        victim_round = transcript.rounds[victim]
        segment = victim_round.segment

        if mutation == "rtt":
            new_round = dataclasses.replace(victim_round, rtt_ms=0.001)
        elif mutation == "payload":
            new_round = dataclasses.replace(
                victim_round,
                segment=Segment(segment.index, bytes(len(segment.payload)), segment.tag),
            )
        elif mutation == "tag":
            flipped = bytes([segment.tag[0] ^ 0x80]) + segment.tag[1:]
            new_round = dataclasses.replace(
                victim_round,
                segment=Segment(segment.index, segment.payload, flipped),
            )
        elif mutation == "index":
            new_round = dataclasses.replace(
                victim_round, index=(victim_round.index + 1) % 1000
            )
        elif mutation == "nonce":
            new_round = victim_round
        elif mutation == "position":
            new_round = victim_round
        else:  # drop
            new_round = None

        if mutation == "nonce":
            forged = dataclasses.replace(transcript, nonce=b"f" * 16)
        elif mutation == "position":
            forged = dataclasses.replace(
                transcript, position=GeoPoint(1.35, 103.82)
            )
        elif mutation == "drop":
            forged = dataclasses.replace(
                transcript, rounds=transcript.rounds[:-1]
            )
        else:
            rounds = list(transcript.rounds)
            rounds[victim] = new_round
            forged = dataclasses.replace(transcript, rounds=tuple(rounds))

        record = session.tpa.record(b"prop-file")
        verdict = verify_transcript(
            forged,
            outcome.request,
            verifier_public_key=session.verifier.public_key,
            mac_key=record.mac_key,
            params=record.params,
            region=record.sla.region,
            rtt_max_ms=record.sla.rtt_max_ms,
        )
        assert not verdict.accepted, mutation


class TestTimingSoundness:
    @given(delay_ms=st.floats(5.0, 500.0))
    @_slow
    def test_provider_delay_above_slack_always_caught(self, delay_ms):
        """Any injected per-round delay above the budget slack fails the
        audit -- no matter its magnitude."""
        session, _ = fresh_session(f"delay-{delay_ms:.1f}", 10_000)

        class DelayStrategy:
            def __init__(self, extra_ms):
                self.extra_ms = extra_ms

            def handle_request(self, provider, file_id, index):
                result = provider.home_of(file_id).serve(file_id, index)
                return dataclasses.replace(
                    result, elapsed_ms=result.elapsed_ms + self.extra_ms
                )

        session.provider.set_strategy(DelayStrategy(delay_ms))
        outcome = session.audit(b"prop-file", k=5)
        # Slack = budget (16.1) - honest round (~13.2) ~ 2.9 ms; every
        # delay >= 5 ms must trip the timing check.
        assert not outcome.verdict.accepted
        assert "timing" in outcome.verdict.failure_reasons

    @given(delay_ms=st.floats(0.0, 1.0))
    @_slow
    def test_sub_slack_delay_tolerated(self, delay_ms):
        """Delays inside the slack must NOT false-reject (robustness)."""
        session, _ = fresh_session(f"tiny-{delay_ms:.3f}", 10_000)

        class DelayStrategy:
            def handle_request(self, provider, file_id, index):
                result = provider.home_of(file_id).serve(file_id, index)
                return dataclasses.replace(
                    result, elapsed_ms=result.elapsed_ms + delay_ms
                )

        session.provider.set_strategy(DelayStrategy())
        outcome = session.audit(b"prop-file", k=5)
        assert outcome.verdict.accepted
