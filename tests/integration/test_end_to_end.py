"""End-to-end scenarios across the whole stack."""

import pytest

from repro.cloud.adversary import CorruptionAttack, RelayAttack
from repro.cloud.provider import DataCentre
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.geo.datasets import city
from repro.geo.gps import GPSSpoofer
from repro.geo.regions import PolygonRegion
from repro.geo.regions import AUSTRALIA_OUTLINE
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import extract_file
from repro.storage.hdd import IBM_36Z15
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

class TestHonestLifecycle:
    def test_outsource_audit_extract(self):
        """The full data-owner story: upload, audit repeatedly, recover."""
        session, file_id, data = build_session("e2e-honest")
        outcomes = session.audit_many(file_id, 10, k=10)
        assert all(o.verdict.accepted for o in outcomes)
        encoded = session.provider.home_of(file_id).server.store.file_meta(file_id)
        assert extract_file(encoded, session.files[file_id].keys) == data

    def test_australia_sla_region(self):
        """An SLA written as 'inside Australia' (polygon region)."""
        session = GeoProofSession.build(
            datacentre_location=city("sydney"),
            region=AUSTRALIA_OUTLINE,
            params=TEST_PARAMS,
            seed="e2e-au",
        )
        session.outsource(b"f", b"payload" * 500)
        assert session.audit(b"f", k=10).verdict.accepted

    def test_multiple_files_independent(self):
        session, _, _ = build_session("e2e-multi")
        session.outsource(b"second-file", b"other-data" * 300)
        a = session.audit(b"test-file", k=5)
        b = session.audit(b"second-file", k=5)
        assert a.verdict.accepted and b.verdict.accepted


class TestSLAViolationStories:
    def test_relocation_abroad_caught_by_timing(self):
        """The headline scenario: data moved to Singapore, audit fails."""
        session, file_id, _ = build_session("e2e-relay")
        session.provider.add_datacentre(
            DataCentre("sin", city("singapore"), disk=IBM_36Z15)
        )
        session.provider.relocate(file_id, "sin")
        session.provider.set_strategy(RelayAttack("home", "sin"))
        outcome = session.audit(file_id, k=15)
        assert not outcome.verdict.accepted
        assert outcome.verdict.failure_reasons == ["timing"]
        # Transcript's own max RTT implies a distance far beyond the SLA.
        assert outcome.verdict.max_rtt_ms > 50.0

    def test_bitrot_caught_by_macs_then_healed_by_extraction(self):
        """Corruption detected in audit AND survivable at extraction."""
        session, file_id, data = build_session("e2e-bitrot")
        store = session.provider.home_of(file_id).server.store
        from repro.por.file_format import Segment

        n = session.files[file_id].n_segments
        for index in range(0, n, 50):  # 2 % of segments
            old = store.get_segment(file_id, index)
            store.overwrite_segment(
                file_id, Segment(index, b"\x00" * len(old.payload), old.tag)
            )
        detections = sum(
            1
            for _ in range(10)
            if not session.audit(file_id, k=60).verdict.accepted
        )
        assert detections >= 5  # theory: 1-(1-0.02)^60 ~ 0.70 per audit
        encoded = store.file_meta(file_id)
        # file_meta reflects mutations through shared Segment objects?
        # Rebuild from the live segment map to be explicit:
        from repro.por.file_format import EncodedFile

        live = EncodedFile(
            file_id=file_id,
            params=encoded.params,
            segments=[store.get_segment(file_id, i) for i in range(n)],
            original_length=encoded.original_length,
            n_data_blocks=encoded.n_data_blocks,
        )
        assert extract_file(live, session.files[file_id].keys) == data

    def test_gps_spoofing_alone_insufficient(self):
        """Spoofed GPS makes position look fine but timing still betrays
        a relay -- the two checks are independent layers."""
        session, file_id, _ = build_session("e2e-spoof")
        session.provider.add_datacentre(
            DataCentre("sin", city("singapore"), disk=IBM_36Z15)
        )
        session.provider.relocate(file_id, "sin")
        session.provider.set_strategy(RelayAttack("home", "sin"))
        # Spoof the device's GPS to stay "home" -- irrelevant, since the
        # region check was passing anyway; timing still fails.
        session.verifier.gps.attach_spoofer(
            GPSSpoofer(session.verifier.location)
        )
        outcome = session.audit(file_id, k=10)
        assert not outcome.verdict.accepted
        assert "timing" in outcome.verdict.failure_reasons

    def test_device_relocation_caught_by_gps(self):
        """If the provider physically moves the verifier device with the
        data, the GPS check (step 2) catches it."""
        session, file_id, _ = build_session("e2e-move-device")
        # Move the device to Singapore (honest GPS): region check fails.
        session.verifier.gps.true_position = city("singapore")
        outcome = session.audit(file_id, k=5)
        assert not outcome.verdict.accepted
        assert "gps" in outcome.verdict.failure_reasons


class TestCumulativeDetection:
    def test_repeated_audits_drive_detection_up(self):
        """'Detection of file corruption is a cumulative process.'"""
        session, file_id, _ = build_session("e2e-cumulative")
        session.provider.set_strategy(
            CorruptionAttack("home", 0.03, DeterministicRNG("adv"))
        )
        caught_within = None
        for audit_number in range(1, 31):
            if not session.audit(file_id, k=25).verdict.accepted:
                caught_within = audit_number
                break
        # Per-audit p ~ 1-(1-0.03)^25 ~ 0.53 -> catch within 30 w.h.p.
        assert caught_within is not None
