"""Sharded lane clocks and bounded work lanes."""

import pytest

from repro.errors import SimulationError
from repro.netsim.events import EventScheduler
from repro.netsim.lanes import Lane, LaneClock


class TestLaneClock:
    def test_busy_interval_accounting(self):
        clock = LaneClock("bne")
        clock.begin_busy(10.0)
        clock.advance(5.0)
        assert clock.end_busy() == 5.0
        # Idle time jumped over is not busy time.
        assert clock.busy_ms == 5.0
        assert clock.frontier_ms == 15.0

    def test_busy_start_cannot_precede_frontier(self):
        clock = LaneClock("bne", start_ms=100.0)
        clock.begin_busy(50.0)  # in the shard's past: opens at frontier
        assert clock.now_ms() == 100.0
        clock.end_busy()
        assert clock.busy_ms == 0.0

    def test_zero_length_busy_window(self):
        """Opening and closing without working is legal and costs 0."""
        clock = LaneClock("bne", start_ms=42.0)
        clock.begin_busy(42.0)
        assert clock.end_busy() == 0.0
        assert clock.busy_ms == 0.0
        assert clock.frontier_ms == 42.0
        # The lane is reusable afterwards: the bracket fully closed.
        clock.begin_busy(50.0)
        clock.advance(3.0)
        assert clock.end_busy() == 3.0
        assert clock.busy_ms == 3.0

    def test_begin_busy_before_frontier_opens_at_frontier(self):
        """A shard cannot start new work in its own past."""
        clock = LaneClock("bne")
        clock.begin_busy(0.0)
        clock.advance(30.0)
        clock.end_busy()
        opened_at = clock.begin_busy(10.0)  # before the 30 ms frontier
        assert opened_at == 30.0
        assert clock.now_ms() == 30.0
        clock.end_busy()

    def test_record_wait_classifies_but_never_adds_time(self):
        clock = LaneClock("bne")
        clock.begin_busy(0.0)
        clock.advance(20.0)       # 5 of these 20 ms were queue wait
        clock.record_wait(5.0)
        clock.end_busy()
        assert clock.busy_ms == 20.0
        assert clock.waiting_ms == 5.0
        assert clock.frontier_ms == 20.0

    def test_record_wait_rejects_negative(self):
        with pytest.raises(SimulationError):
            LaneClock("bne").record_wait(-1.0)

    def test_nested_busy_rejected(self):
        clock = LaneClock("bne")
        clock.begin_busy(0.0)
        with pytest.raises(SimulationError):
            clock.begin_busy(1.0)

    def test_end_without_begin_rejected(self):
        with pytest.raises(SimulationError):
            LaneClock("bne").end_busy()


class TestLane:
    def make_lane(self, **kwargs):
        scheduler = EventScheduler()
        return scheduler, Lane("bne", scheduler, **kwargs)

    def test_idle_submit_runs_immediately(self):
        scheduler, lane = self.make_lane()
        ran = []
        lane.submit(lambda clock: (clock.advance(7.0), ran.append(clock.now_ms())))
        assert ran == [7.0]
        assert lane.n_dispatched == 1
        assert lane.clock.busy_ms == 7.0
        # The global clock never moved: the work ran on the lane shard.
        assert scheduler.clock.now_ms() == 0.0

    def test_busy_submit_queues_at_frontier(self):
        scheduler, lane = self.make_lane()
        ran = []
        lane.submit(lambda clock: clock.advance(10.0))  # busy until 10
        assert lane.submit(lambda clock: ran.append(clock.now_ms()))
        assert lane.queued == 1
        scheduler.run_all()
        # The queued unit started exactly at the lane frontier.
        assert ran == [10.0]
        assert lane.queued == 0

    def test_bounded_queue_sheds_beyond_limit(self):
        scheduler, lane = self.make_lane(queue_limit=2)
        lane.submit(lambda clock: clock.advance(10.0))
        assert lane.submit(lambda clock: None)
        assert lane.submit(lambda clock: None)
        # Third queued submission exceeds the bound: shed, counted.
        assert not lane.submit(lambda clock: None)
        assert lane.dropped == 1
        assert lane.peak_queue_depth == 2
        scheduler.run_all()
        assert lane.n_dispatched == 3

    def test_queued_units_chain_back_to_back(self):
        scheduler, lane = self.make_lane()
        starts = []

        def work(clock):
            starts.append(clock.now_ms())
            clock.advance(10.0)

        lane.submit(work)
        lane.submit(work)
        lane.submit(work)
        scheduler.run_all()
        # Each queued unit runs from the frontier its predecessor left,
        # even though that time was unknown when it was enqueued.
        assert starts == [0.0, 10.0, 20.0]
        assert lane.clock.busy_ms == 30.0

    def test_queue_limit_validated(self):
        scheduler = EventScheduler()
        with pytest.raises(SimulationError):
            Lane("bad", scheduler, queue_limit=0)

    def test_same_timestamp_lane_events_fire_fifo(self):
        """Two lanes' wakeups at one timestamp run in submission order."""
        scheduler = EventScheduler()
        first = Lane("first", scheduler)
        second = Lane("second", scheduler)
        order = []
        # Both lanes are made busy until t=5, then each gets a queued
        # unit at the same frontier timestamp.
        first.submit(lambda clock: clock.advance(5.0))
        second.submit(lambda clock: clock.advance(5.0))
        first.submit(lambda clock: order.append("first"))
        second.submit(lambda clock: order.append("second"))
        scheduler.run_all()
        assert order == ["first", "second"]

    def test_lanes_overlap_on_independent_clocks(self):
        """Two shards working 20 ms each overlap: global span stays 20."""
        scheduler = EventScheduler()
        lanes = [Lane(name, scheduler) for name in ("a", "b")]
        for lane in lanes:
            lane.submit(lambda clock: clock.advance(20.0))
        assert all(lane.frontier_ms == 20.0 for lane in lanes)
        assert sum(lane.clock.busy_ms for lane in lanes) == 40.0
        # 40 ms of work fit in 20 ms of timeline: that is the overlap
        # the per-site shard model buys.
        assert max(lane.frontier_ms for lane in lanes) == 20.0
