"""Shared spindle queues: FIFO frontier service and accounting."""

import pytest

from repro.errors import SimulationError
from repro.netsim.resources import ServiceGrant, SpindleQueue


class TestAcquire:
    def test_idle_spindle_grants_immediately(self):
        spindle = SpindleQueue("s0")
        grant = spindle.acquire(100.0, 13.0)
        assert grant == ServiceGrant(
            arrival_ms=100.0, start_ms=100.0, wait_ms=0.0, service_ms=13.0
        )
        assert grant.done_ms == 113.0
        assert spindle.free_at_ms == 113.0

    def test_busy_spindle_queues_the_request(self):
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 50.0)
        grant = spindle.acquire(10.0, 5.0)
        assert grant.start_ms == 50.0
        assert grant.wait_ms == 40.0
        assert grant.done_ms == 55.0

    def test_fifo_chain_is_back_to_back(self):
        spindle = SpindleQueue("s0")
        grants = [spindle.acquire(0.0, 10.0) for _ in range(3)]
        assert [g.start_ms for g in grants] == [0.0, 10.0, 20.0]
        assert [g.wait_ms for g in grants] == [0.0, 10.0, 20.0]

    def test_gap_leaves_spindle_idle_not_negative(self):
        """An arrival after the frontier never earns credit."""
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 10.0)
        grant = spindle.acquire(100.0, 10.0)
        assert grant.wait_ms == 0.0
        assert grant.start_ms == 100.0

    def test_zero_service_request_allowed(self):
        spindle = SpindleQueue("s0")
        grant = spindle.acquire(5.0, 0.0)
        assert grant.service_ms == 0.0
        assert spindle.free_at_ms == 5.0

    def test_negative_inputs_rejected(self):
        spindle = SpindleQueue("s0")
        with pytest.raises(SimulationError):
            spindle.acquire(-1.0, 5.0)
        with pytest.raises(SimulationError):
            spindle.acquire(1.0, -5.0)


class TestAccounting:
    def test_busy_wait_and_peak_tracked(self):
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 10.0)   # no wait
        spindle.acquire(0.0, 10.0)   # waits 10
        spindle.acquire(0.0, 10.0)   # waits 20
        assert spindle.busy_ms == 30.0
        assert spindle.wait_ms == 30.0
        assert spindle.peak_wait_ms == 20.0
        assert spindle.n_requests == 3
        assert spindle.n_waited == 2

    def test_reset_peak_starts_a_fresh_window(self):
        """Sums are windowed by delta; the max needs an explicit reset."""
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 10.0)
        spindle.acquire(0.0, 10.0)  # waits 10
        assert spindle.peak_wait_ms == 10.0
        spindle.reset_peak()
        assert spindle.peak_wait_ms == 0.0
        spindle.acquire(18.0, 1.0)  # waits 2: the new window's peak
        assert spindle.peak_wait_ms == 2.0
        # Cumulative counters are untouched by the reset.
        assert spindle.wait_ms == 12.0
        assert spindle.n_requests == 3

    def test_utilization_over_span(self):
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 25.0)
        assert spindle.utilization(100.0) == 0.25
        assert spindle.utilization(0.0) == 0.0


class TestAcquireBatch:
    def test_single_head_of_line_wait(self):
        """A grouped dispatch joins the queue once, then streams."""
        spindle = SpindleQueue("s0")
        spindle.acquire(0.0, 30.0)  # someone else holds the spindle
        grants = spindle.acquire_batch(10.0, [5.0, 5.0, 5.0])
        assert [g.wait_ms for g in grants] == [20.0, 0.0, 0.0]
        assert [g.start_ms for g in grants] == [30.0, 35.0, 40.0]
        assert spindle.free_at_ms == 45.0
        # Only the head request counts as having waited.
        assert spindle.n_waited == 1

    def test_empty_batch_is_a_noop(self):
        spindle = SpindleQueue("s0")
        assert spindle.acquire_batch(5.0, []) == []
        assert spindle.n_requests == 0
