"""Latency model tests, including the Table II/III calibrations."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.datasets import AUSTRALIA_HOSTS, BRISBANE_ADSL_HOST
from repro.geo.coords import haversine_km
from repro.netsim.latency import (
    FIBRE_SPEED_KM_PER_MS,
    INTERNET_SPEED_KM_PER_MS,
    InternetModel,
    LANModel,
    RFChannelModel,
    SPEED_OF_LIGHT_KM_PER_MS,
    internet_distance_bound_km,
    timing_error_to_distance_km,
)


class TestConstants:
    def test_paper_arithmetic(self):
        assert SPEED_OF_LIGHT_KM_PER_MS == 300.0
        assert FIBRE_SPEED_KM_PER_MS == pytest.approx(200.0)
        assert INTERNET_SPEED_KM_PER_MS == pytest.approx(400.0 / 3.0)

    def test_1ms_error_is_150km(self):
        """The paper: a 1 ms timing error = 150 km distance error."""
        assert timing_error_to_distance_km(1.0) == pytest.approx(150.0)

    def test_3ms_internet_rtt_is_200km(self):
        """The paper: in 3 ms a packet travels 400 km -> 200 km bound."""
        assert internet_distance_bound_km(3.0) == pytest.approx(200.0)


class TestLANModel:
    def test_propagation_term(self):
        # 200 km of fibre one-way = 1 ms, the paper's LAN envelope.
        lan = LANModel(switch_delay_ms=0.0, n_switches=0)
        assert lan.one_way_ms(200.0) == pytest.approx(1.0)

    def test_table2_envelope(self):
        """Every Table II placement must come in under 1 ms RTT."""
        lan = LANModel()
        for distance in (0.0, 0.01, 0.02, 0.5, 3.2, 45.0):
            assert lan.rtt_ms(distance, 64) < 1.0, distance

    def test_serialisation_term(self):
        lan = LANModel(n_switches=0, bandwidth_mbps=1000.0)
        # 1250 bytes at 1 Gb/s = 10 microseconds.
        delta = lan.one_way_ms(0.0, 1250) - lan.one_way_ms(0.0, 0)
        assert delta == pytest.approx(0.01)

    def test_jitter_only_with_rng(self):
        lan = LANModel()
        assert lan.one_way_ms(1.0) == lan.one_way_ms(1.0)
        rng = DeterministicRNG("jitter")
        jittered = lan.one_way_ms(1.0, 0, rng)
        assert jittered >= lan.one_way_ms(1.0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            LANModel().one_way_ms(-1.0)


class TestInternetModel:
    def test_base_floor(self):
        # Even at zero distance the RTT shows the access-network floor.
        model = InternetModel()
        assert model.rtt_ms(0.0) >= model.base_rtt_ms

    def test_monotone_in_distance(self):
        model = InternetModel()
        rtts = [model.rtt_ms(d) for d in (10, 100, 1000, 4000)]
        assert rtts == sorted(rtts)

    def test_table3_calibration(self):
        """Modelled RTTs must track Table III within 25 % per host."""
        model = InternetModel()
        for host in AUSTRALIA_HOSTS:
            distance = max(
                haversine_km(BRISBANE_ADSL_HOST, host.location),
                host.paper_distance_km,
            )
            rtt = model.rtt_ms(distance)
            assert abs(rtt - host.paper_latency_ms) / host.paper_latency_ms < 0.25, (
                host.url,
                rtt,
            )

    def test_hop_count_grows(self):
        model = InternetModel()
        assert model.hop_count(4000) > model.hop_count(100)

    def test_jitter_adds_delay(self):
        model = InternetModel()
        rng = DeterministicRNG("net-jitter")
        base = model.rtt_ms(1000.0)
        samples = [model.rtt_ms(1000.0, rng=rng) for _ in range(20)]
        assert all(s >= base for s in samples)
        assert len(set(samples)) > 1


class TestRFChannel:
    def test_light_speed_flight(self):
        rf = RFChannelModel()
        assert rf.one_way_ms(300.0) == pytest.approx(1.0)

    def test_processing_delay_added(self):
        rf = RFChannelModel(processing_delay_ms=0.5)
        assert rf.one_way_ms(0.0) == pytest.approx(0.5)

    def test_rtt_double(self):
        rf = RFChannelModel()
        assert rf.rtt_ms(150.0) == pytest.approx(1.0)
