"""Simulated ping/traceroute tests."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.netsim.topology import NetworkTopology, Node
from repro.netsim.traceroute import ping, traceroute


@pytest.fixture
def chain():
    topology = NetworkTopology()
    for i in range(4):
        topology.add_node(Node(f"n{i}", GeoPoint(0.0, float(i))))
    for i in range(3):
        topology.add_link(f"n{i}", f"n{i+1}", latency_ms=float(i + 1))
    return topology


class TestPing:
    def test_deterministic_without_rng(self, chain):
        result = ping(chain, "n0", "n3")
        # links 1+2+3 = 6 ms one way -> 12 ms RTT.
        assert result.rtt_avg_ms == pytest.approx(12.0)
        assert result.rtt_min_ms == result.rtt_max_ms

    def test_statistics_with_jitter(self):
        topology = NetworkTopology()
        topology.add_node(Node("a", GeoPoint(0, 0)))
        topology.add_node(Node("b", GeoPoint(0, 1)))
        topology.add_link("a", "b", latency_ms=1.0, jitter_ms=0.3)
        result = ping(topology, "a", "b", n_probes=10, rng=DeterministicRNG("p"))
        assert result.rtt_min_ms <= result.rtt_avg_ms <= result.rtt_max_ms
        assert result.n_probes == 10

    def test_probe_floor(self, chain):
        assert ping(chain, "n0", "n1", n_probes=0).n_probes == 1


class TestTraceroute:
    def test_hop_sequence(self, chain):
        hops = traceroute(chain, "n0", "n3")
        assert [h.node for h in hops] == ["n1", "n2", "n3"]
        assert [h.hop for h in hops] == [1, 2, 3]

    def test_cumulative_rtts_monotone(self, chain):
        hops = traceroute(chain, "n0", "n3")
        rtts = [h.rtt_ms for h in hops]
        assert rtts == sorted(rtts)
        assert rtts[0] == pytest.approx(2.0)  # 1 ms link, both ways
        assert rtts[-1] == pytest.approx(12.0)

    def test_adjacent_nodes(self, chain):
        hops = traceroute(chain, "n0", "n1")
        assert len(hops) == 1
        assert hops[0].node == "n1"
