"""Discrete-event scheduler semantics."""

import pytest

from repro.errors import SimulationError
from repro.netsim.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(5.0, lambda: order.append("b"))
        scheduler.schedule_at(1.0, lambda: order.append("a"))
        scheduler.schedule_at(9.0, lambda: order.append("c"))
        scheduler.run_all()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(1.0, lambda: order.append(1))
        scheduler.schedule_at(1.0, lambda: order.append(2))
        scheduler.run_all()
        assert order == [1, 2]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(7.0, lambda: seen.append(scheduler.clock.now_ms()))
        scheduler.run_all()
        assert seen == [7.0]

    def test_schedule_after(self):
        scheduler = EventScheduler()
        scheduler.clock.advance(10.0)
        seen = []
        scheduler.schedule_after(5.0, lambda: seen.append(scheduler.clock.now_ms()))
        scheduler.run_all()
        assert seen == [15.0]

    def test_rejects_scheduling_in_past(self):
        scheduler = EventScheduler()
        scheduler.clock.advance(10.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5.0, lambda: None)

    def test_events_may_schedule_events(self):
        scheduler = EventScheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule_after(1.0, lambda: order.append("second"))

        scheduler.schedule_at(1.0, first)
        scheduler.run_all()
        assert order == ["first", "second"]


class TestRunUntil:
    def test_stops_at_deadline(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(10.0, lambda: fired.append(10))
        executed = scheduler.run_until(5.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.clock.now_ms() == 5.0
        assert scheduler.n_pending == 1

    def test_resume_after_deadline(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(10.0, lambda: fired.append(10))
        scheduler.run_until(5.0)
        scheduler.run_until(15.0)
        assert fired == [10]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(1.0, lambda: fired.append(1))
        EventScheduler.cancel(event)
        scheduler.run_all()
        assert fired == []

    def test_periodic_until_cancelled(self):
        scheduler = EventScheduler()
        ticks = []
        cancel = scheduler.schedule_periodic(10.0, lambda: ticks.append(scheduler.clock.now_ms()))
        scheduler.run_until(35.0)
        cancel()
        scheduler.run_until(100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_first_delay(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_periodic(
            10.0, lambda: ticks.append(scheduler.clock.now_ms()), first_delay_ms=0.0
        )
        scheduler.run_until(25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_runaway_guard(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule_after(0.001, rearm)

        scheduler.schedule_after(0.001, rearm)
        with pytest.raises(SimulationError):
            scheduler.run_until(10.0, max_events=100)

    def test_n_processed(self):
        scheduler = EventScheduler()
        for t in (1.0, 2.0, 3.0):
            scheduler.schedule_at(t, lambda: None)
        scheduler.run_all()
        assert scheduler.n_processed == 3

    def test_n_pending_excludes_cancelled_tombstones(self):
        """Cancellation accounting: n_pending counts only live events.

        Regression for a doc/code mismatch: the docstring used to claim
        tombstones were *included* while the code excluded them.
        """
        scheduler = EventScheduler()
        events = [
            scheduler.schedule_at(float(t), lambda: None)
            for t in (1, 2, 3)
        ]
        assert scheduler.n_pending == 3
        assert scheduler.n_cancelled == 0
        EventScheduler.cancel(events[1])
        # The tombstone stays queued but is no longer pending.
        assert scheduler.n_pending == 2
        assert scheduler.n_cancelled == 1
        scheduler.run_all()
        # Dispatch pops past tombstones: nothing pending, nothing
        # cancelled left in the queue, and only live events executed.
        assert scheduler.n_pending == 0
        assert scheduler.n_cancelled == 0
        assert scheduler.n_processed == 2
