"""Topology routing and latency accumulation."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError, SimulationError
from repro.geo.coords import GeoPoint
from repro.netsim.topology import (
    Link,
    NetworkTopology,
    Node,
    build_geographic_topology,
)


@pytest.fixture
def line_topology():
    """a -- b -- c with 1 ms and 2 ms links."""
    topology = NetworkTopology()
    for name, lon in (("a", 0.0), ("b", 1.0), ("c", 2.0)):
        topology.add_node(Node(name=name, position=GeoPoint(0.0, lon)))
    topology.add_link("a", "b", latency_ms=1.0)
    topology.add_link("b", "c", latency_ms=2.0)
    return topology


class TestConstruction:
    def test_duplicate_node_rejected(self, line_topology):
        with pytest.raises(ConfigurationError):
            line_topology.add_node(Node("a", GeoPoint(0, 0)))

    def test_link_to_unknown_node_rejected(self, line_topology):
        with pytest.raises(ConfigurationError):
            line_topology.add_link("a", "zz")

    def test_auto_latency_from_distance(self):
        topology = NetworkTopology()
        topology.add_node(Node("x", GeoPoint(0.0, 0.0)))
        topology.add_node(Node("y", GeoPoint(0.0, 1.0)))  # ~111 km
        link = topology.add_link("x", "y", inflation=1.0)
        assert link.latency_ms == pytest.approx(111.2 / 200.0, rel=0.01)

    def test_nodes_of_kind(self):
        topology = NetworkTopology()
        topology.add_node(Node("l1", GeoPoint(0, 0), kind="landmark"))
        topology.add_node(Node("r1", GeoPoint(0, 1), kind="router"))
        assert [n.name for n in topology.nodes_of_kind("landmark")] == ["l1"]


class TestRouting:
    def test_shortest_path(self, line_topology):
        assert line_topology.shortest_path("a", "c") == ["a", "b", "c"]

    def test_prefers_lower_latency(self, line_topology):
        line_topology.add_link("a", "c", latency_ms=10.0)
        assert line_topology.shortest_path("a", "c") == ["a", "b", "c"]
        line_topology2 = line_topology
        # A faster direct link flips the choice (need a fresh graph edge
        # weight -- networkx keeps one edge per pair, so re-adding
        # overwrites).
        line_topology2.add_link("a", "c", latency_ms=0.5)
        assert line_topology2.shortest_path("a", "c") == ["a", "c"]

    def test_no_path(self):
        topology = NetworkTopology()
        topology.add_node(Node("a", GeoPoint(0, 0)))
        topology.add_node(Node("b", GeoPoint(0, 1)))
        with pytest.raises(SimulationError):
            topology.shortest_path("a", "b")

    def test_one_way_latency_sums_links(self, line_topology):
        assert line_topology.one_way_ms("a", "c") == pytest.approx(3.0)

    def test_rtt_doubles(self, line_topology):
        assert line_topology.rtt_ms("a", "c") == pytest.approx(6.0)

    def test_trivial_path(self, line_topology):
        assert line_topology.path_latency_ms(["a"]) == 0.0

    def test_jitter_sampling(self, line_topology):
        topology = NetworkTopology()
        topology.add_node(Node("a", GeoPoint(0, 0)))
        topology.add_node(Node("b", GeoPoint(0, 1)))
        topology.add_link("a", "b", latency_ms=1.0, jitter_ms=0.5)
        rng = DeterministicRNG("topo")
        samples = {topology.one_way_ms("a", "b", rng) for _ in range(10)}
        assert len(samples) > 1
        assert all(s >= 1.0 for s in samples)


class TestGeographicBuilder:
    SITES = {
        "brisbane": GeoPoint(-27.47, 153.03),
        "sydney": GeoPoint(-33.87, 151.21),
        "melbourne": GeoPoint(-37.81, 144.96),
    }

    def test_full_mesh_by_default(self):
        topology = build_geographic_topology(self.SITES, per_link_jitter_ms=0.0)
        assert topology.shortest_path("brisbane", "melbourne") in (
            ["brisbane", "melbourne"],
            ["brisbane", "sydney", "melbourne"],
        )

    def test_backbone_forces_multi_hop(self):
        topology = build_geographic_topology(
            self.SITES,
            backbone=[("brisbane", "sydney"), ("sydney", "melbourne")],
            per_link_jitter_ms=0.0,
        )
        assert topology.shortest_path("brisbane", "melbourne") == [
            "brisbane",
            "sydney",
            "melbourne",
        ]

    def test_inflation_scales_latency(self):
        flat = build_geographic_topology(
            self.SITES, inflation=1.0, per_link_jitter_ms=0.0
        )
        inflated = build_geographic_topology(
            self.SITES, inflation=2.0, per_link_jitter_ms=0.0
        )
        assert inflated.one_way_ms("brisbane", "sydney") == pytest.approx(
            2.0 * flat.one_way_ms("brisbane", "sydney")
        )
