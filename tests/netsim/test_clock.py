"""Simulated clock semantics."""

import pytest

from repro.errors import ClockError
from repro.netsim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms() == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now_ms() == 100.0

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now_ms() == 0.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ClockError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now_ms() == 10.0

    def test_advance_to_rejects_past(self):
        clock = SimClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_stopwatch(self):
        clock = SimClock()
        with clock.stopwatch() as lap:
            clock.advance(3.0)
            clock.advance(1.5)
        assert lap.elapsed_ms == pytest.approx(4.5)

    def test_nested_stopwatches(self):
        clock = SimClock()
        with clock.stopwatch() as outer:
            clock.advance(1.0)
            with clock.stopwatch() as inner:
                clock.advance(2.0)
        assert inner.elapsed_ms == pytest.approx(2.0)
        assert outer.elapsed_ms == pytest.approx(3.0)
