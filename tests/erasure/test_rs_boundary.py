"""Correction-radius boundary properties for the RS decoder.

The code guarantees decoding for any mix of ``e`` unknown errors and
``f`` erasures with ``2e + f <= n - k``.  This module sweeps random
geometries and random patterns *exactly at* the boundary (must decode)
and one unit beyond (must raise -- or, in the rare patterns where the
received word still lies within some codeword's radius, must return
the *original* message; silently-wrong bytes are never acceptable).
The same patterns are cross-checked through the striped layer with the
vectorized and scalar engines.
"""

import random

import pytest

from repro.erasure.reed_solomon import ReedSolomon
from repro.erasure.striping import BlockStriper, StripeLayout
from repro.errors import UncorrectableError
from repro.gf import HAS_NUMPY

GEOMETRIES = [(15, 11), (31, 19), (63, 45), (255, 223)]


def corrupt(codeword: bytes, rnd: random.Random, e: int, f: int):
    """Apply e random errors and f erasures at distinct positions.

    Error positions get a guaranteed-nonzero XOR; erasure positions get
    an arbitrary replacement byte (possibly the original: an erasure is
    a *position* hint, not a guarantee of corruption).
    """
    n = len(codeword)
    positions = rnd.sample(range(n), e + f)
    error_positions, erasure_positions = positions[:e], positions[e:]
    word = bytearray(codeword)
    for pos in error_positions:
        word[pos] ^= rnd.randrange(1, 256)
    for pos in erasure_positions:
        word[pos] = rnd.randrange(256)
    return bytes(word), sorted(erasure_positions)


class TestAtTheBoundary:
    @pytest.mark.parametrize("n,k", GEOMETRIES)
    def test_exactly_at_radius_decodes(self, n, k):
        rs = ReedSolomon(n, k)
        rnd = random.Random(f"boundary-{n}-{k}")
        radius = n - k
        for trial in range(12):
            message = bytes(rnd.randrange(256) for _ in range(k))
            codeword = rs.encode(message)
            # Sweep the whole boundary line 2e + f = n - k.
            f = rnd.choice([r for r in range(radius + 1) if (radius - r) % 2 == 0])
            e = (radius - f) // 2
            word, erasures = corrupt(codeword, rnd, e, f)
            assert rs.decode(word, erasures=erasures) == message, (e, f)

    @pytest.mark.parametrize("n,k", GEOMETRIES)
    def test_one_beyond_never_silently_wrong(self, n, k):
        rs = ReedSolomon(n, k)
        rnd = random.Random(f"beyond-{n}-{k}")
        radius = n - k
        for trial in range(12):
            message = bytes(rnd.randrange(256) for _ in range(k))
            codeword = rs.encode(message)
            # One beyond the boundary: 2e + f = n - k + 1, with every
            # corrupted position carrying a real (nonzero) change so
            # the pattern genuinely exceeds the radius.
            f = rnd.choice([r for r in range(radius + 1) if (radius + 1 - r) % 2 == 0])
            e = (radius + 1 - f) // 2
            positions = rnd.sample(range(n), e + f)
            word = bytearray(codeword)
            for pos in positions:
                word[pos] ^= rnd.randrange(1, 256)
            erasures = sorted(positions[e:])
            try:
                decoded = rs.decode(bytes(word), erasures=erasures)
            except UncorrectableError:
                continue  # the expected outcome
            # A decode that *succeeds* beyond the radius must still be
            # the true message -- never silently-wrong bytes.
            assert decoded == message

    def test_all_zero_syndromes_with_erasures(self):
        # A clean codeword decoded with erasure hints exercises the
        # erasure-only path with zero syndromes: the erasure locator is
        # nontrivial but every Forney magnitude must come out zero.
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = rs.encode(message)
        assert rs.decode(codeword, erasures=[0, 4, 14]) == message
        # Same at the full parity budget.
        assert rs.decode(codeword, erasures=list(range(4))) == message


@pytest.mark.skipif(not HAS_NUMPY, reason="vectorized engine needs numpy")
class TestStripedCrossCheck:
    """Scalar and vectorized stripers agree on boundary patterns."""

    LAYOUT = StripeLayout(block_bytes=4, data_blocks=11, total_blocks=15)

    def test_boundary_patterns_agree(self):
        scalar = BlockStriper(self.LAYOUT, vectorized=False)
        vector = BlockStriper(self.LAYOUT, vectorized=True)
        rnd = random.Random("striped-boundary")
        radius = self.LAYOUT.parity_blocks
        blocks = [
            bytes(rnd.randrange(256) for _ in range(4)) for _ in range(11)
        ]
        encoded = scalar.encode_chunk(blocks)
        assert encoded == vector.encode_chunk(blocks)
        for f in [0, 2, 4]:
            e = (radius - f) // 2
            positions = rnd.sample(range(15), e + f)
            chunk = list(encoded)
            for pos in positions:
                chunk[pos] = bytes(b ^ 0x7E for b in chunk[pos])
            erasures = sorted(positions[e:])
            out_s = scalar.decode_chunk(chunk, erasures=erasures)
            out_v = vector.decode_chunk(chunk, erasures=erasures)
            assert out_s == out_v == blocks

    def test_beyond_radius_agree_on_failure(self):
        scalar = BlockStriper(self.LAYOUT, vectorized=False)
        vector = BlockStriper(self.LAYOUT, vectorized=True)
        rnd = random.Random("striped-beyond")
        blocks = [
            bytes(rnd.randrange(256) for _ in range(4)) for _ in range(11)
        ]
        encoded = scalar.encode_chunk(blocks)
        chunk = list(encoded)
        for pos in rnd.sample(range(15), 3):  # 3 errors > radius 2
            chunk[pos] = bytes(b ^ 0x11 for b in chunk[pos])
        with pytest.raises(UncorrectableError):
            scalar.decode_chunk(chunk)
        with pytest.raises(UncorrectableError):
            vector.decode_chunk(chunk)
