"""Reed-Solomon encode/decode correctness, including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import ConfigurationError, UncorrectableError


class TestParameters:
    def test_paper_code(self):
        rs = ReedSolomon(255, 223)
        assert rs.n_parity == 32

    def test_rejects_bad_geometry(self):
        for n, k in [(255, 255), (256, 100), (10, 0), (5, 7)]:
            with pytest.raises(ConfigurationError):
                ReedSolomon(n, k)


class TestEncoding:
    def test_systematic(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        assert rs.encode(message)[:11] == message

    def test_codeword_length(self):
        rs = ReedSolomon(15, 11)
        assert len(rs.encode(bytes(11))) == 15

    def test_wrong_message_length(self):
        rs = ReedSolomon(15, 11)
        with pytest.raises(ConfigurationError):
            rs.encode(bytes(10))

    def test_clean_codeword_has_zero_syndromes(self):
        rs = ReedSolomon(15, 11)
        assert not any(rs._syndromes(rs.encode(bytes(range(11)))))

    def test_deterministic(self):
        rs = ReedSolomon(255, 223)
        message = bytes(range(223))
        assert rs.encode(message) == rs.encode(message)


class TestErrorCorrection:
    def test_single_error(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = bytearray(rs.encode(message))
        codeword[3] ^= 0x55
        assert rs.decode(bytes(codeword)) == message

    def test_error_in_parity(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = bytearray(rs.encode(message))
        codeword[13] ^= 0xAA
        assert rs.decode(bytes(codeword)) == message

    def test_max_errors(self):
        rs = ReedSolomon(255, 223)
        message = bytes(i % 256 for i in range(223))
        codeword = bytearray(rs.encode(message))
        for position in range(0, 160, 10):  # 16 errors
            codeword[position] ^= 0xFF
        assert rs.decode(bytes(codeword)) == message

    def test_clean_decode_fast_path(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        assert rs.decode(rs.encode(message)) == message

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_errors_within_radius(self, data):
        rs = ReedSolomon(31, 19)  # radius 6
        message = bytes(
            data.draw(st.lists(st.integers(0, 255), min_size=19, max_size=19))
        )
        codeword = bytearray(rs.encode(message))
        n_errors = data.draw(st.integers(0, 6))
        positions = data.draw(
            st.lists(
                st.integers(0, 30), min_size=n_errors, max_size=n_errors, unique=True
            )
        )
        for position in positions:
            codeword[position] ^= data.draw(st.integers(1, 255))
        assert rs.decode(bytes(codeword)) == message


class TestErasureCorrection:
    def test_full_erasure_budget(self):
        rs = ReedSolomon(15, 11)  # 4 parity -> 4 erasures
        message = bytes(range(11))
        codeword = bytearray(rs.encode(message))
        erasures = [0, 5, 9, 14]
        for position in erasures:
            codeword[position] = 0xEE
        assert rs.decode(bytes(codeword), erasures=erasures) == message

    def test_erasure_position_may_be_clean(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = rs.encode(message)
        # Declaring healthy bytes erased must not corrupt the decode.
        assert rs.decode(codeword, erasures=[2, 7]) == message

    def test_mixed_errors_and_erasures(self):
        rs = ReedSolomon(255, 223)  # 2e + f <= 32
        message = bytes(i % 256 for i in range(223))
        codeword = bytearray(rs.encode(message))
        erasures = list(range(10))  # f = 10
        for position in erasures:
            codeword[position] ^= 0x01
        for position in (50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150):
            codeword[position] ^= 0xFF  # e = 11, 2*11 + 10 = 32
        assert rs.decode(bytes(codeword), erasures=erasures) == message

    def test_too_many_erasures(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = rs.encode(message)
        with pytest.raises(UncorrectableError):
            rs.decode(codeword, erasures=[0, 1, 2, 3, 4])

    def test_erasure_out_of_range(self):
        rs = ReedSolomon(15, 11)
        with pytest.raises(ConfigurationError):
            rs.decode(rs.encode(bytes(11)), erasures=[15])


class TestBeyondRadius:
    def test_detects_or_miscorrects_consistently(self):
        # Beyond the radius the decoder must raise (it must never
        # silently return a wrong message while claiming success on
        # residual-syndrome check).
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = bytearray(rs.encode(message))
        for position in range(5):  # 5 > radius 2
            codeword[position] ^= 0x3C
        try:
            decoded = rs.decode(bytes(codeword))
        except UncorrectableError:
            return  # detected: fine
        # If it decoded, it must have found a *valid* codeword; that
        # codeword is simply a different one (miscorrection), which the
        # outer MAC layer catches.  The decode result must at least be
        # internally consistent:
        assert not any(rs._syndromes(rs.encode(decoded)))

    def test_wrong_codeword_length(self):
        rs = ReedSolomon(15, 11)
        with pytest.raises(ConfigurationError):
            rs.decode(bytes(14))


class TestCorrect:
    def test_correct_returns_full_codeword(self):
        rs = ReedSolomon(15, 11)
        message = bytes(range(11))
        codeword = bytearray(rs.encode(message))
        codeword[2] ^= 0x99
        assert rs.correct(bytes(codeword)) == rs.encode(message)


class TestLinearAlgebraViews:
    """Parity/syndrome matrices pin the vectorized encoder's algebra."""

    @pytest.mark.parametrize("n,k", [(15, 11), (31, 19), (255, 223), (2, 1)])
    def test_parity_matrix_rows_are_unit_parities(self, n, k):
        rs = ReedSolomon(n, k)
        matrix = rs.parity_matrix()
        assert len(matrix) == k
        for i in range(0, k, max(1, k // 7)):
            unit = bytes(1 if j == i else 0 for j in range(k))
            assert matrix[i] == rs.encode(unit)[k:]

    def test_parity_matrix_linearity_reproduces_encode(self):
        rs = ReedSolomon(15, 11)
        matrix = rs.parity_matrix()
        message = bytes((3 * i + 1) % 256 for i in range(11))
        parity = bytearray(4)
        for i, byte in enumerate(message):
            if byte:
                for j in range(4):
                    from repro.gf.gf256 import mul_fast as _mul

                    parity[j] ^= _mul(byte, matrix[i][j])
        assert bytes(parity) == rs.encode(message)[11:]

    def test_syndrome_matrix_matches_syndromes(self):
        rs = ReedSolomon(15, 11)
        codeword = bytearray(rs.encode(bytes(range(11))))
        codeword[4] ^= 0x21  # make the syndromes nonzero
        from repro.gf.gf256 import mul_fast as _mul

        matrix = rs.syndrome_matrix()
        computed = [
            __import__("functools").reduce(
                lambda acc, pair: acc ^ _mul(pair[0], pair[1]),
                zip(row, codeword),
                0,
            )
            for row in matrix
        ]
        assert computed == rs._syndromes(bytes(codeword))

    def test_cached_across_instances(self):
        assert ReedSolomon(15, 11).parity_matrix() is ReedSolomon(
            15, 11
        ).parity_matrix()
