"""Block striping over interleaved RS codewords."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRNG
from repro.erasure.striping import BlockStriper, StripeLayout
from repro.errors import ConfigurationError, UncorrectableError

SMALL = StripeLayout(block_bytes=4, data_blocks=11, total_blocks=15)


def make_blocks(n, block_bytes=4, seed="blocks"):
    rng = DeterministicRNG(seed)
    return [rng.random_bytes(block_bytes) for _ in range(n)]


class TestLayout:
    def test_paper_layout_defaults(self):
        layout = StripeLayout()
        assert layout.parity_blocks == 32
        assert abs(layout.expansion_factor - 255 / 223) < 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(block_bytes=0).validate()
        with pytest.raises(ConfigurationError):
            StripeLayout(data_blocks=255, total_blocks=255).validate()


class TestChunkRoundtrip:
    def test_systematic_prefix(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = striper.encode_chunk(blocks)
        assert encoded[:11] == blocks
        assert len(encoded) == 15

    def test_short_chunk_padded(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(5)
        encoded = striper.encode_chunk(blocks)
        assert len(encoded) == 15
        assert striper.decode_chunk(encoded, n_data=5) == blocks

    def test_block_size_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.encode_chunk([b"odd"])

    def test_chunk_size_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.encode_chunk(make_blocks(12))

    @given(st.integers(0, 2), st.data())
    @settings(max_examples=25, deadline=None)
    def test_corrupt_blocks_within_radius(self, n_corrupt, data):
        striper = BlockStriper(SMALL)  # radius (15-11)//2 = 2 blocks
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        positions = data.draw(
            st.lists(
                st.integers(0, 14),
                min_size=n_corrupt,
                max_size=n_corrupt,
                unique=True,
            )
        )
        for position in positions:
            encoded[position] = bytes(4)
        assert striper.decode_chunk(encoded) == blocks

    def test_erasures_up_to_parity(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        lost = [1, 4, 8, 13]
        for position in lost:
            encoded[position] = bytes(4)
        assert striper.decode_chunk(encoded, erasures=lost) == blocks

    def test_beyond_radius_raises(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        for position in range(5):
            encoded[position] = bytes([position + 1]) * 4
        with pytest.raises(UncorrectableError):
            striper.decode_chunk(encoded)


class TestWholeFile:
    def test_encoded_length(self):
        striper = BlockStriper(SMALL)
        assert striper.encoded_length(0) == 0
        assert striper.encoded_length(1) == 15
        assert striper.encoded_length(11) == 15
        assert striper.encoded_length(12) == 30

    def test_multi_chunk_roundtrip(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(30)  # 3 chunks (11 + 11 + 8)
        encoded = striper.encode_blocks(blocks)
        assert len(encoded) == 45
        assert striper.decode_blocks(encoded, 30) == blocks

    def test_decode_length_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.decode_blocks(make_blocks(15), 20)

    def test_paper_expansion_on_large_file(self):
        striper = BlockStriper(StripeLayout())
        # 1000 blocks -> ceil(1000/223) = 5 chunks -> 1275 blocks.
        assert striper.encoded_length(1000) == 5 * 255


class TestErasureValidation:
    """Satellite fixes: block-granularity erasure validation up front."""

    def test_out_of_range_erasure_is_block_indexed(self):
        striper = BlockStriper(SMALL)
        encoded = striper.encode_chunk(make_blocks(11))
        with pytest.raises(ConfigurationError) as excinfo:
            striper.decode_chunk(encoded, erasures=[300])
        # The old behaviour surfaced this as a per-column RS failure
        # ("chunk unrecoverable at byte column 0: erasure position 300
        # out of range") after a wasted decode; now it is reported at
        # block granularity before any column is touched.
        message = str(excinfo.value)
        assert "block index 300" in message
        assert "byte column" not in message

    def test_negative_erasure_rejected(self):
        striper = BlockStriper(SMALL)
        encoded = striper.encode_chunk(make_blocks(11))
        with pytest.raises(ConfigurationError):
            striper.decode_chunk(encoded, erasures=[-1])

    def test_over_budget_erasures_rejected_before_decoding(self):
        striper = BlockStriper(SMALL)
        encoded = striper.encode_chunk(make_blocks(11))
        with pytest.raises(UncorrectableError) as excinfo:
            striper.decode_chunk(encoded, erasures=[0, 1, 2, 3, 4])
        message = str(excinfo.value)
        assert "parity budget" in message
        assert "byte column" not in message  # failed up front, not mid-decode

    def test_erasures_at_exact_budget_still_decode(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = striper.encode_chunk(blocks)
        corrupted = list(encoded)
        for position in [1, 5, 9, 13]:
            corrupted[position] = bytes(4)
        assert (
            striper.decode_chunk(corrupted, erasures=[1, 5, 9, 13]) == blocks
        )


@pytest.mark.skipif(
    not __import__("repro.gf", fromlist=["HAS_NUMPY"]).HAS_NUMPY,
    reason="vectorized engine needs numpy",
)
class TestVectorizedEquivalence:
    """The numpy batch engine is byte-identical to the scalar anchor."""

    def test_auto_detection_prefers_vectorized(self):
        assert BlockStriper(SMALL).vectorized is True
        assert BlockStriper(SMALL, vectorized=False).vectorized is False

    def test_requesting_vectorized_without_numpy_raises(self, monkeypatch):
        from repro.gf import gf256_vec

        monkeypatch.setattr(gf256_vec, "HAS_NUMPY", False)
        with pytest.raises(ConfigurationError):
            BlockStriper(SMALL, vectorized=True)
        # Auto-detection falls back to the scalar engine.
        assert BlockStriper(SMALL).vectorized is False

    @given(st.integers(1, 40), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_encode_blocks_equivalence(self, n_blocks, seed):
        blocks = make_blocks(n_blocks, seed=f"vec-{seed}")
        scalar = BlockStriper(SMALL, vectorized=False).encode_blocks(blocks)
        vector = BlockStriper(SMALL, vectorized=True).encode_blocks(blocks)
        assert scalar == vector

    def test_encode_chunk_equivalence_on_paper_layout(self):
        layout = StripeLayout()  # RS(255, 223), 16-byte blocks
        blocks = make_blocks(223, block_bytes=16, seed="paper")
        scalar = BlockStriper(layout, vectorized=False).encode_chunk(blocks)
        vector = BlockStriper(layout, vectorized=True).encode_chunk(blocks)
        assert scalar == vector

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_decode_equivalence_with_errors_and_erasures(self, seed, e, f):
        import random

        rnd = random.Random(f"dec-{seed}")
        if 2 * e + f > SMALL.parity_blocks:
            e, f = 1, 2
        blocks = make_blocks(11, seed=f"dec-{seed}")
        scalar = BlockStriper(SMALL, vectorized=False)
        vector = BlockStriper(SMALL, vectorized=True)
        chunk = list(scalar.encode_chunk(blocks))
        positions = rnd.sample(range(15), e + f)
        for position in positions:
            chunk[position] = bytes(b ^ 0x5A for b in chunk[position])
        erasures = sorted(positions[e:])
        out_s = scalar.decode_chunk(chunk, erasures=erasures)
        out_v = vector.decode_chunk(chunk, erasures=erasures)
        assert out_s == out_v == blocks

    def test_clean_decode_with_erasure_hints_equivalent(self):
        # Zero syndromes + declared erasures: the vectorized pre-screen
        # may skip the scalar chain, but the bytes must match it.
        blocks = make_blocks(11)
        scalar = BlockStriper(SMALL, vectorized=False)
        vector = BlockStriper(SMALL, vectorized=True)
        encoded = scalar.encode_chunk(blocks)
        for erasures in ([], [0], [3, 7, 11, 14]):
            assert scalar.decode_chunk(
                encoded, erasures=erasures
            ) == vector.decode_chunk(encoded, erasures=erasures)

    def test_decode_blocks_roundtrip_vectorized(self):
        striper = BlockStriper(SMALL, vectorized=True)
        blocks = make_blocks(30)
        encoded = striper.encode_blocks(blocks)
        assert striper.decode_blocks(encoded, 30) == blocks

    def test_block_length_validated_in_vectorized_path(self):
        striper = BlockStriper(SMALL, vectorized=True)
        with pytest.raises(ConfigurationError):
            striper.encode_blocks([b"\x00" * 4, b"\x00" * 3])


class TestEncodeWorkers:
    """Process-pool sharding is byte-identical to the serial encode."""

    def test_workers_equivalence(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(60)  # 6 chunks
        assert striper.encode_blocks(blocks, workers=3) == striper.encode_blocks(
            blocks
        )

    def test_workers_equivalence_scalar_engine(self):
        striper = BlockStriper(SMALL, vectorized=False)
        blocks = make_blocks(25)
        assert striper.encode_blocks(blocks, workers=2) == striper.encode_blocks(
            blocks
        )

    def test_workers_on_single_chunk_stays_serial(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(5)
        assert striper.encode_blocks(blocks, workers=4) == striper.encode_blocks(
            blocks
        )

    def test_workers_validation(self):
        striper = BlockStriper(SMALL)
        for bad in (0, -2, 1.5, "two"):
            with pytest.raises(ConfigurationError):
                striper.encode_blocks(make_blocks(1), workers=bad)

    def test_workers_validate_blocks_in_parent(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(23) + [b"\x00" * 3]
        with pytest.raises(ConfigurationError):
            striper.encode_blocks(blocks, workers=2)
