"""Block striping over interleaved RS codewords."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRNG
from repro.erasure.striping import BlockStriper, StripeLayout
from repro.errors import ConfigurationError, UncorrectableError

SMALL = StripeLayout(block_bytes=4, data_blocks=11, total_blocks=15)


def make_blocks(n, block_bytes=4, seed="blocks"):
    rng = DeterministicRNG(seed)
    return [rng.random_bytes(block_bytes) for _ in range(n)]


class TestLayout:
    def test_paper_layout_defaults(self):
        layout = StripeLayout()
        assert layout.parity_blocks == 32
        assert abs(layout.expansion_factor - 255 / 223) < 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(block_bytes=0).validate()
        with pytest.raises(ConfigurationError):
            StripeLayout(data_blocks=255, total_blocks=255).validate()


class TestChunkRoundtrip:
    def test_systematic_prefix(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = striper.encode_chunk(blocks)
        assert encoded[:11] == blocks
        assert len(encoded) == 15

    def test_short_chunk_padded(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(5)
        encoded = striper.encode_chunk(blocks)
        assert len(encoded) == 15
        assert striper.decode_chunk(encoded, n_data=5) == blocks

    def test_block_size_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.encode_chunk([b"odd"])

    def test_chunk_size_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.encode_chunk(make_blocks(12))

    @given(st.integers(0, 2), st.data())
    @settings(max_examples=25, deadline=None)
    def test_corrupt_blocks_within_radius(self, n_corrupt, data):
        striper = BlockStriper(SMALL)  # radius (15-11)//2 = 2 blocks
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        positions = data.draw(
            st.lists(
                st.integers(0, 14),
                min_size=n_corrupt,
                max_size=n_corrupt,
                unique=True,
            )
        )
        for position in positions:
            encoded[position] = bytes(4)
        assert striper.decode_chunk(encoded) == blocks

    def test_erasures_up_to_parity(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        lost = [1, 4, 8, 13]
        for position in lost:
            encoded[position] = bytes(4)
        assert striper.decode_chunk(encoded, erasures=lost) == blocks

    def test_beyond_radius_raises(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(11)
        encoded = list(striper.encode_chunk(blocks))
        for position in range(5):
            encoded[position] = bytes([position + 1]) * 4
        with pytest.raises(UncorrectableError):
            striper.decode_chunk(encoded)


class TestWholeFile:
    def test_encoded_length(self):
        striper = BlockStriper(SMALL)
        assert striper.encoded_length(0) == 0
        assert striper.encoded_length(1) == 15
        assert striper.encoded_length(11) == 15
        assert striper.encoded_length(12) == 30

    def test_multi_chunk_roundtrip(self):
        striper = BlockStriper(SMALL)
        blocks = make_blocks(30)  # 3 chunks (11 + 11 + 8)
        encoded = striper.encode_blocks(blocks)
        assert len(encoded) == 45
        assert striper.decode_blocks(encoded, 30) == blocks

    def test_decode_length_checked(self):
        striper = BlockStriper(SMALL)
        with pytest.raises(ConfigurationError):
            striper.decode_blocks(make_blocks(15), 20)

    def test_paper_expansion_on_large_file(self):
        striper = BlockStriper(StripeLayout())
        # 1000 blocks -> ceil(1000/223) = 5 chunks -> 1275 blocks.
        assert striper.encoded_length(1000) == 5 * 255
