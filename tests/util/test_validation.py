"""Unit tests for the validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_positive,
    check_probability,
    check_range,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1.5)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("x", 0, strict=False)

    def test_rejects_negative_when_not_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -0.1, strict=False)


class TestCheckRange:
    def test_inclusive_bounds(self):
        check_range("x", 0.0, 0.0, 1.0)
        check_range("x", 1.0, 0.0, 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError, match=r"\[0.0, 1.0\]"):
            check_range("x", 1.5, 0.0, 1.0)


class TestCheckProbability:
    def test_accepts_half(self):
        check_probability("p", 0.5)

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.01)


class TestCheckType:
    def test_accepts_match(self):
        check_type("x", 5, int)

    def test_accepts_tuple_of_types(self):
        check_type("x", "s", (int, str))

    def test_rejects_mismatch_naming_parameter(self):
        with pytest.raises(ConfigurationError, match="x must be int"):
            check_type("x", "s", int)
