"""Unit and property tests for the canonical serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.util.serialization import (
    decode_bytes_list,
    decode_float,
    decode_float_list,
    decode_length_prefixed,
    decode_uint,
    decode_uint_list,
    encode_bytes_list,
    encode_float,
    encode_float_list,
    encode_length_prefixed,
    encode_uint,
    encode_uint_list,
)


class TestUint:
    def test_fixed_width(self):
        assert len(encode_uint(0)) == 8
        assert len(encode_uint(2**64 - 1)) == 8

    def test_rejects_negative(self):
        with pytest.raises(ProtocolError):
            encode_uint(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ProtocolError):
            encode_uint(2**64)

    def test_truncated_decode(self):
        with pytest.raises(ProtocolError):
            decode_uint(b"\x00" * 7)

    @given(st.integers(0, 2**64 - 1))
    def test_roundtrip(self, value):
        encoded = encode_uint(value)
        decoded, offset = decode_uint(encoded)
        assert decoded == value
        assert offset == 8


class TestLengthPrefixed:
    def test_empty_payload(self):
        encoded = encode_length_prefixed(b"")
        assert decode_length_prefixed(encoded) == (b"", 4)

    def test_truncated_payload(self):
        encoded = encode_length_prefixed(b"abcdef")
        with pytest.raises(ProtocolError):
            decode_length_prefixed(encoded[:-1])

    def test_truncated_prefix(self):
        with pytest.raises(ProtocolError):
            decode_length_prefixed(b"\x00\x00")

    @given(st.binary(max_size=256))
    def test_roundtrip(self, payload):
        decoded, offset = decode_length_prefixed(encode_length_prefixed(payload))
        assert decoded == payload


class TestLists:
    @given(st.lists(st.integers(0, 2**64 - 1), max_size=50))
    def test_uint_list_roundtrip(self, values):
        decoded, _ = decode_uint_list(encode_uint_list(values))
        assert decoded == values

    @given(st.lists(st.binary(max_size=32), max_size=30))
    def test_bytes_list_roundtrip(self, items):
        decoded, _ = decode_bytes_list(encode_bytes_list(items))
        assert decoded == items

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=30))
    def test_float_list_roundtrip(self, values):
        decoded, _ = decode_float_list(encode_float_list(values))
        assert decoded == values

    def test_concatenated_structures_decode_in_sequence(self):
        blob = encode_uint(7) + encode_bytes_list([b"x", b"yz"]) + encode_float(1.5)
        value, offset = decode_uint(blob, 0)
        items, offset = decode_bytes_list(blob, offset)
        number, offset = decode_float(blob, offset)
        assert (value, items, number) == (7, [b"x", b"yz"], 1.5)
        assert offset == len(blob)


class TestOffsetRoundTrips:
    """Decoding must work mid-stream: any prefix, any interleaving."""

    @given(st.binary(max_size=32), st.lists(st.integers(0, 2**64 - 1), max_size=20))
    def test_uint_list_decodes_after_arbitrary_prefix(self, prefix, values):
        data = prefix + encode_uint_list(values)
        decoded, offset = decode_uint_list(data, len(prefix))
        assert decoded == values
        assert offset == len(data)

    @given(st.binary(max_size=32), st.lists(st.binary(max_size=32), max_size=10))
    def test_bytes_list_decodes_after_arbitrary_prefix(self, prefix, items):
        data = prefix + encode_bytes_list(items)
        decoded, offset = decode_bytes_list(data, len(prefix))
        assert decoded == items
        assert offset == len(data)

    @given(
        st.lists(st.integers(0, 2**64 - 1), max_size=10),
        st.lists(st.binary(max_size=16), max_size=10),
        st.lists(st.floats(allow_nan=False), max_size=10),
    )
    def test_heterogeneous_stream_round_trips(self, uints, blobs, floats):
        """Concatenated structures parse back as straight-line code."""
        stream = (
            encode_uint_list(uints)
            + encode_bytes_list(blobs)
            + encode_float_list(floats)
        )
        decoded_uints, offset = decode_uint_list(stream)
        decoded_blobs, offset = decode_bytes_list(stream, offset)
        decoded_floats, offset = decode_float_list(stream, offset)
        assert decoded_uints == uints
        assert decoded_blobs == blobs
        assert decoded_floats == floats
        assert offset == len(stream)

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=20))
    def test_uint_list_width_is_fixed(self, values):
        """Count word plus one 8-byte word per element, exactly."""
        assert len(encode_uint_list(values)) == 8 * (len(values) + 1)


class TestMalformedStreams:
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=20))
    def test_truncated_uint_list_raises(self, values):
        encoded = encode_uint_list(values)
        with pytest.raises(ProtocolError):
            decode_uint_list(encoded[:-1])

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=10))
    def test_truncated_bytes_list_raises(self, items):
        encoded = encode_bytes_list(items)
        with pytest.raises(ProtocolError):
            decode_bytes_list(encoded[:-1])

    def test_overstated_count_raises(self):
        # A count word promising more elements than the stream holds.
        encoded = encode_uint(3) + encode_uint(1) + encode_uint(2)
        with pytest.raises(ProtocolError):
            decode_uint_list(encoded)

    def test_float_special_values_round_trip(self):
        for value in (0.0, -0.0, float("inf"), float("-inf"), 1e-308):
            decoded, _ = decode_float(encode_float(value))
            assert decoded == value
            # IEEE-754 bit-exactness: -0.0 keeps its sign.
            assert str(decoded) == str(value)


class TestCanonicity:
    """No two distinct logical values may share an encoding."""

    @given(
        st.lists(st.binary(max_size=8), max_size=8),
        st.lists(st.binary(max_size=8), max_size=8),
    )
    def test_bytes_list_injective(self, a, b):
        if a != b:
            assert encode_bytes_list(a) != encode_bytes_list(b)

    @given(
        st.lists(st.integers(0, 2**32), max_size=8),
        st.lists(st.integers(0, 2**32), max_size=8),
    )
    def test_uint_list_injective(self, a, b):
        if a != b:
            assert encode_uint_list(a) != encode_uint_list(b)
