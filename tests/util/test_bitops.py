"""Unit and property tests for repro.util.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util.bitops import (
    bit_at,
    bits_to_bytes,
    bytes_to_bits,
    ceil_div,
    rotl32,
    split_in_half,
    xor_bytes,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_dividend(self):
        assert ceil_div(0, 5) == 0

    def test_one_remainder(self):
        assert ceil_div(5, 4) == 2

    def test_rejects_zero_divisor(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ConfigurationError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xf0\x0f") == b"\xff\xff"

    def test_identity_with_zero(self):
        assert xor_bytes(b"abc", b"\x00\x00\x00") == b"abc"

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            xor_bytes(b"ab", b"a")

    @given(st.binary(max_size=64))
    def test_self_inverse(self, data):
        mask = bytes((i * 37) % 256 for i in range(len(data)))
        assert xor_bytes(xor_bytes(data, mask), mask) == data


class TestRotl32:
    def test_by_zero(self):
        assert rotl32(0x12345678, 0) == 0x12345678

    def test_by_eight(self):
        assert rotl32(0x12345678, 8) == 0x34567812

    def test_wraps_modulo_32(self):
        assert rotl32(0x12345678, 32) == 0x12345678

    def test_masks_to_32_bits(self):
        assert rotl32(0xFFFFFFFF, 1) == 0xFFFFFFFF


class TestBitConversions:
    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\xa0") == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_truncation(self):
        assert bytes_to_bits(b"\xa0", 4) == [1, 0, 1, 0]

    def test_truncation_bounds(self):
        with pytest.raises(ConfigurationError):
            bytes_to_bits(b"\xa0", 9)

    def test_bits_to_bytes_pads_tail(self):
        assert bits_to_bytes([1, 0, 1, 0]) == b"\xa0"

    def test_bits_to_bytes_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([1, 2])

    @given(st.binary(min_size=1, max_size=32))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_roundtrip_bits(self, bits):
        assert bytes_to_bits(bits_to_bytes(bits), len(bits)) == bits


class TestBitAt:
    def test_first_bit(self):
        assert bit_at(b"\x80", 0) == 1

    def test_last_bit(self):
        assert bit_at(b"\x01", 7) == 1

    def test_crosses_byte_boundary(self):
        assert bit_at(b"\x00\x80", 8) == 1

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            bit_at(b"\x00", 8)

    @given(st.binary(min_size=1, max_size=16), st.data())
    def test_agrees_with_bytes_to_bits(self, data, draw):
        index = draw.draw(st.integers(0, 8 * len(data) - 1))
        assert bit_at(data, index) == bytes_to_bits(data)[index]


class TestSplitInHalf:
    def test_even_split(self):
        assert split_in_half(b"abcd") == (b"ab", b"cd")

    def test_rejects_odd_length(self):
        with pytest.raises(ConfigurationError):
            split_in_half(b"abc")
