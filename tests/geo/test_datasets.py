"""Dataset integrity: the paper's tables must be faithfully encoded."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import haversine_km
from repro.geo.datasets import (
    AUSTRALIA_HOSTS,
    BRISBANE_ADSL_HOST,
    QUT_LAN_MACHINES,
    WORLD_DATACENTRES,
    city,
)


class TestCityLookup:
    def test_known_city(self):
        brisbane = city("Brisbane")
        assert brisbane.latitude == pytest.approx(-27.47, abs=0.01)

    def test_case_insensitive(self):
        assert city("SYDNEY") == city("sydney")

    def test_space_normalisation(self):
        assert city("sao paulo").label == "Sao Paulo"

    def test_unknown_city_names_options(self):
        with pytest.raises(ConfigurationError, match="available"):
            city("atlantis")


class TestTable3Data:
    def test_nine_hosts(self):
        assert len(AUSTRALIA_HOSTS) == 9

    def test_paper_numbers_present(self):
        by_url = {h.url: h for h in AUSTRALIA_HOSTS}
        assert by_url["uq.edu.au"].paper_latency_ms == 18.0
        assert by_url["uwa.edu.au"].paper_distance_km == 3605.0
        assert by_url["utas.edu.au"].paper_latency_ms == 64.0

    def test_latency_increases_with_distance(self):
        ordered = sorted(AUSTRALIA_HOSTS, key=lambda h: h.paper_distance_km)
        latencies = [h.paper_latency_ms for h in ordered]
        assert latencies == sorted(latencies)

    def test_haversine_close_to_paper_distances(self):
        # Beyond the two same-city hosts (street distance), haversine
        # should be within 20 % of the paper's Google-Maps figures.
        for host in AUSTRALIA_HOSTS:
            if host.paper_distance_km < 50:
                continue
            distance = haversine_km(BRISBANE_ADSL_HOST, host.location)
            assert abs(distance - host.paper_distance_km) / host.paper_distance_km < 0.2, host.url


class TestTable2Data:
    def test_ten_machines(self):
        assert len(QUT_LAN_MACHINES) == 10

    def test_all_under_1ms_bound(self):
        assert all(m.paper_latency_upper_ms == 1.0 for m in QUT_LAN_MACHINES)

    def test_distances_match_paper(self):
        assert QUT_LAN_MACHINES[7].distance_km == 45.0
        assert QUT_LAN_MACHINES[0].distance_km == 0.0


class TestWorldDatacentres:
    def test_has_relay_targets(self):
        for name in ("singapore", "sydney", "dublin", "virginia"):
            assert name in WORLD_DATACENTRES

    def test_positions_are_distinct(self):
        positions = {(p.latitude, p.longitude) for p in WORLD_DATACENTRES.values()}
        assert len(positions) == len(WORLD_DATACENTRES)
