"""Geofence region tests."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.regions import (
    AUSTRALIA_OUTLINE,
    BoundingBox,
    CircularRegion,
    PolygonRegion,
)


class TestCircularRegion:
    def test_contains_centre(self):
        region = CircularRegion(GeoPoint(-27.47, 153.03), 100.0)
        assert region.contains(GeoPoint(-27.47, 153.03))

    def test_boundary_inclusive(self):
        centre = GeoPoint(-27.47, 153.03)
        region = CircularRegion(centre, 100.0)
        edge = destination_point(centre, 90.0, 99.9)
        outside = destination_point(centre, 90.0, 100.5)
        assert region.contains(edge)
        assert not region.contains(outside)

    def test_rejects_negative_radius(self):
        with pytest.raises(ConfigurationError):
            CircularRegion(GeoPoint(0, 0), -1.0)

    def test_describe(self):
        assert "km" in CircularRegion(GeoPoint(0, 0), 50).describe()


class TestBoundingBox:
    BOX = BoundingBox(-40.0, -10.0, 110.0, 155.0)  # roughly Australia

    def test_contains(self):
        assert self.BOX.contains(GeoPoint(-27.47, 153.03))  # Brisbane

    def test_excludes(self):
        assert not self.BOX.contains(GeoPoint(1.35, 103.82))  # Singapore

    def test_edges_inclusive(self):
        assert self.BOX.contains(GeoPoint(-40.0, 110.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundingBox(10.0, -10.0, 0.0, 1.0)


class TestPolygonRegion:
    SQUARE = PolygonRegion(
        [GeoPoint(0, 0), GeoPoint(0, 10), GeoPoint(10, 10), GeoPoint(10, 0)]
    )

    def test_interior(self):
        assert self.SQUARE.contains(GeoPoint(5, 5))

    def test_exterior(self):
        assert not self.SQUARE.contains(GeoPoint(15, 5))
        assert not self.SQUARE.contains(GeoPoint(5, -1))

    def test_needs_three_vertices(self):
        with pytest.raises(ConfigurationError):
            PolygonRegion([GeoPoint(0, 0), GeoPoint(1, 1)])

    def test_concave_polygon(self):
        # L-shape: the notch must be outside.
        shape = PolygonRegion(
            [
                GeoPoint(0, 0),
                GeoPoint(0, 10),
                GeoPoint(5, 10),
                GeoPoint(5, 5),
                GeoPoint(10, 5),
                GeoPoint(10, 0),
            ]
        )
        assert shape.contains(GeoPoint(2, 2))
        assert shape.contains(GeoPoint(2, 8))
        assert not shape.contains(GeoPoint(8, 8))  # inside the notch


class TestAustraliaOutline:
    def test_capitals_inside(self):
        for lat, lon in [(-27.47, 153.03), (-33.87, 151.21), (-37.81, 144.96), (-31.95, 115.86)]:
            assert AUSTRALIA_OUTLINE.contains(GeoPoint(lat, lon)), (lat, lon)

    def test_foreign_cities_outside(self):
        for lat, lon in [(1.35, 103.82), (35.68, 139.65), (-36.85, 174.76)]:
            assert not AUSTRALIA_OUTLINE.contains(GeoPoint(lat, lon)), (lat, lon)
