"""Union (disjunctive) SLA regions."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.datasets import city
from repro.geo.regions import CircularRegion, UnionRegion


class TestUnionRegion:
    EU_LIKE = UnionRegion(
        [
            CircularRegion(city("frankfurt"), 100.0),
            CircularRegion(city("dublin"), 100.0),
        ],
        label="EU regions",
    )

    def test_member_containment(self):
        assert self.EU_LIKE.contains(city("frankfurt"))
        assert self.EU_LIKE.contains(city("dublin"))

    def test_outside_all_members(self):
        assert not self.EU_LIKE.contains(city("virginia"))
        assert not self.EU_LIKE.contains(city("sydney"))

    def test_describe_mentions_members(self):
        text = self.EU_LIKE.describe()
        assert "EU regions" in text
        assert text.count("km") == 2

    def test_empty_union_rejected(self):
        with pytest.raises(ConfigurationError):
            UnionRegion([])

    def test_works_as_sla_region(self):
        """A union region plugs into the audit verification path."""
        from repro.core.session import GeoProofSession
        from repro.por.parameters import TEST_PARAMS

        session = GeoProofSession.build(
            datacentre_location=city("frankfurt"),
            region=self.EU_LIKE,
            params=TEST_PARAMS,
            seed="union-sla",
        )
        session.outsource(b"f", b"eu-data" * 400)
        assert session.audit(b"f", k=8).verdict.accepted

    def test_rejects_device_outside_union(self):
        from repro.core.session import GeoProofSession
        from repro.por.parameters import TEST_PARAMS

        session = GeoProofSession.build(
            datacentre_location=city("virginia"),  # device outside the SLA
            region=self.EU_LIKE,
            params=TEST_PARAMS,
            seed="union-violation",
        )
        session.outsource(b"f", b"us-data" * 400)
        outcome = session.audit(b"f", k=8)
        assert not outcome.verdict.accepted
        assert "gps" in outcome.verdict.failure_reasons
