"""GPS receiver and spoofing tests."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.gps import GPSReceiver, GPSSpoofer


class TestHonestFix:
    def test_noise_free_fix_exact(self, brisbane):
        receiver = GPSReceiver(brisbane)
        fix = receiver.read_fix()
        assert fix.position == brisbane
        assert not fix.spoofed

    def test_noisy_fix_within_accuracy(self, brisbane):
        rng = DeterministicRNG("gps")
        receiver = GPSReceiver(brisbane, accuracy_m=5.0, rng=rng)
        for _ in range(50):
            fix = receiver.read_fix()
            # 5 sigma bound: |error| < 25 m with overwhelming probability.
            assert haversine_km(fix.position, brisbane) * 1000 < 25.0

    def test_rejects_negative_accuracy(self, brisbane):
        with pytest.raises(ConfigurationError):
            GPSReceiver(brisbane, accuracy_m=-1)


class TestSpoofing:
    def test_spoofer_overrides_fix(self, brisbane):
        receiver = GPSReceiver(brisbane)
        fake = GeoPoint(1.35, 103.82, "Singapore")
        receiver.attach_spoofer(GPSSpoofer(fake))
        fix = receiver.read_fix()
        assert fix.position == fake
        assert fix.spoofed

    def test_spoofer_toggle(self, brisbane):
        receiver = GPSReceiver(brisbane)
        spoofer = GPSSpoofer(GeoPoint(0, 0))
        receiver.attach_spoofer(spoofer)
        spoofer.toggle(False)
        assert receiver.read_fix().position == brisbane
        spoofer.toggle(True)
        assert receiver.read_fix().spoofed
