"""Great-circle geometry tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.geo.coords import (
    GeoPoint,
    destination_point,
    haversine_km,
    initial_bearing,
    midpoint,
)

latitudes = st.floats(-89.0, 89.0)
longitudes = st.floats(-179.0, 179.0)


class TestGeoPoint:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ConfigurationError):
            GeoPoint(0.0, 181.0)

    def test_str_uses_label(self):
        assert "Brisbane" in str(GeoPoint(-27.47, 153.03, "Brisbane"))


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(-27.47, 153.03)
        assert haversine_km(p, p) == 0.0

    def test_symmetry(self):
        a, b = GeoPoint(-27.47, 153.03), GeoPoint(-33.87, 151.21)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_brisbane_sydney(self):
        # Known great-circle distance ~733 km.
        a, b = GeoPoint(-27.4698, 153.0251), GeoPoint(-33.8688, 151.2093)
        assert 700 < haversine_km(a, b) < 760

    def test_brisbane_perth(self):
        a, b = GeoPoint(-27.4698, 153.0251), GeoPoint(-31.9523, 115.8613)
        assert 3500 < haversine_km(a, b) < 3700

    def test_equator_degree(self):
        # One degree of longitude at the equator ~111.2 km.
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)
        assert 110.5 < haversine_km(a, b) < 111.8

    def test_antipodes(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(3.14159265 * 6371.0088, rel=1e-3)

    @given(latitudes, longitudes, latitudes, longitudes)
    @settings(max_examples=50)
    def test_triangle_inequality_via_midpoint(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        m = midpoint(a, b)
        direct = haversine_km(a, b)
        via = haversine_km(a, m) + haversine_km(m, b)
        assert via <= direct + 1e-6 or via == pytest.approx(direct, rel=1e-6)


class TestDestinationPoint:
    @given(latitudes, longitudes, st.floats(0, 360), st.floats(0, 5000))
    @settings(max_examples=50)
    def test_distance_preserved(self, lat, lon, bearing, distance):
        origin = GeoPoint(lat, lon)
        target = destination_point(origin, bearing, distance)
        assert haversine_km(origin, target) == pytest.approx(distance, abs=0.5)

    def test_due_north(self):
        origin = GeoPoint(0.0, 10.0)
        target = destination_point(origin, 0.0, 111.2)
        assert target.latitude == pytest.approx(1.0, abs=0.01)
        assert target.longitude == pytest.approx(10.0, abs=0.01)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            destination_point(GeoPoint(0, 0), 0, -1)


class TestBearing:
    def test_due_east(self):
        bearing = initial_bearing(GeoPoint(0, 0), GeoPoint(0, 10))
        assert bearing == pytest.approx(90.0, abs=0.1)

    def test_due_south(self):
        bearing = initial_bearing(GeoPoint(10, 0), GeoPoint(0, 0))
        assert bearing == pytest.approx(180.0, abs=0.1)

    def test_range(self):
        bearing = initial_bearing(GeoPoint(10, 20), GeoPoint(-5, -40))
        assert 0.0 <= bearing < 360.0
