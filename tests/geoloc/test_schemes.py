"""Geolocation baselines: sane estimates, honest failure modes."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, haversine_km
from repro.geoloc.base import GeolocationScheme
from repro.geoloc.geocluster import BGPTable, GeoCluster
from repro.geoloc.geoping import GeoPing
from repro.geoloc.geotrack import DNSHintDatabase, GeoTrack
from repro.geoloc.octant import OctantLike
from repro.geoloc.tbg import TopologyBasedGeolocation

from tests.geoloc.conftest import LANDMARKS


TARGET = "target-cbr"
TRUE_POSITION = GeoPoint(-35.28, 149.13)


class TestBaseValidation:
    def test_requires_landmarks(self, au_topology):
        with pytest.raises(ConfigurationError):
            GeoPing(au_topology, [])

    def test_unknown_landmark(self, au_topology):
        with pytest.raises(ConfigurationError):
            GeoPing(au_topology, ["nowhere"])


class TestGeoPing:
    def test_nearest_landmark_chosen(self, au_topology):
        scheme = GeoPing(au_topology, LANDMARKS)
        error = scheme.score(TARGET)
        # Canberra's delay vector is closest to Sydney's (~250 km off).
        assert error.estimate.position == au_topology.node("syd-lm").position
        assert error.error_km < 300.0

    def test_landmark_locates_itself(self, au_topology):
        scheme = GeoPing(au_topology, LANDMARKS)
        assert scheme.score("per-lm").error_km == pytest.approx(0.0, abs=1.0)

    def test_error_bounded_by_landmark_density(self, au_topology):
        # With only Perth as a landmark, everything "is" Perth: the
        # paper's >1000 km worst case emerges immediately.
        scheme = GeoPing(au_topology, ["per-lm"])
        assert scheme.score(TARGET).error_km > 1000.0


class TestOctant:
    def test_estimate_in_feasible_distance(self, au_topology):
        scheme = OctantLike(au_topology, LANDMARKS, grid_step_km=40.0)
        error = scheme.score(TARGET)
        assert error.error_km < 600.0

    def test_radius_reported(self, au_topology):
        scheme = OctantLike(au_topology, LANDMARKS, grid_step_km=40.0)
        estimate = scheme.locate(TARGET)
        assert estimate.radius_km >= 0.0

    def test_speed_ordering_validated(self, au_topology):
        with pytest.raises(ConfigurationError):
            OctantLike(
                au_topology,
                LANDMARKS,
                positive_speed_km_per_ms=50.0,
                negative_speed_km_per_ms=100.0,
            )


class TestTBG:
    def test_beats_wild_guess(self, au_topology):
        scheme = TopologyBasedGeolocation(au_topology, LANDMARKS)
        error = scheme.score(TARGET)
        # The last-hop router (core-syd) pins Canberra near Sydney.
        assert error.error_km < 500.0

    def test_learns_router_positions(self, au_topology):
        scheme = TopologyBasedGeolocation(au_topology, LANDMARKS)
        estimate = scheme.router_estimate("core-syd-1.isp.net")
        assert estimate is not None
        true_router = au_topology.node("core-syd-1.isp.net").position
        assert haversine_km(estimate, true_router) < 500.0


class TestGeoTrack:
    def test_resolves_via_router_names(self, au_topology):
        dns = DNSHintDatabase()
        dns.add("syd", GeoPoint(-33.87, 151.21))
        dns.add("mel", GeoPoint(-37.81, 144.96))
        scheme = GeoTrack(au_topology, LANDMARKS, dns)
        error = scheme.score(TARGET)
        # Last resolvable router is core-syd -> locates at Sydney.
        assert error.error_km < 300.0

    def test_empty_database_degrades(self, au_topology):
        scheme = GeoTrack(au_topology, LANDMARKS, DNSHintDatabase())
        error = scheme.score(TARGET)
        # Falls back to the first landmark -- potentially way off.
        assert error.estimate.position == au_topology.node(LANDMARKS[0]).position


class TestGeoCluster:
    def make_bgp(self, au_topology, prefix_granularity: str) -> BGPTable:
        bgp = BGPTable()
        if prefix_granularity == "city":
            bgp.announce("10.1")  # Sydney-region prefix
            bgp.assign_address(TARGET, "10.1.7.9")
            bgp.add_known_location("10.1", GeoPoint(-33.87, 151.21))
            bgp.add_known_location("10.1", GeoPoint(-35.28, 149.13))
        else:  # continental prefix
            bgp.announce("10")
            bgp.assign_address(TARGET, "10.1.7.9")
            bgp.add_known_location("10", GeoPoint(-33.87, 151.21))
            bgp.add_known_location("10", GeoPoint(-31.95, 115.86))  # Perth!
        return bgp

    def test_fine_prefix_accurate(self, au_topology):
        scheme = GeoCluster(au_topology, LANDMARKS, self.make_bgp(au_topology, "city"))
        assert scheme.score(TARGET).error_km < 250.0

    def test_coarse_prefix_paper_failure_mode(self, au_topology):
        """Continental prefixes -> >1000 km errors (the paper's point)."""
        scheme = GeoCluster(
            au_topology, LANDMARKS, self.make_bgp(au_topology, "continent")
        )
        assert scheme.score(TARGET).error_km > 1000.0

    def test_longest_prefix_match(self):
        bgp = BGPTable()
        bgp.announce("10")
        bgp.announce("10.1")
        assert bgp.longest_prefix("10.1.2.3") == "10.1"
        assert bgp.longest_prefix("10.9.2.3") == "10"
        assert bgp.longest_prefix("192.168.0.1") is None

    def test_unknown_address_falls_back(self, au_topology):
        scheme = GeoCluster(au_topology, LANDMARKS, BGPTable())
        estimate = scheme.locate(TARGET)
        assert estimate.position == au_topology.node(LANDMARKS[0]).position


class TestComparative:
    def test_all_schemes_run_on_same_topology(self, au_topology):
        """The Section III-B survey: every scheme yields an estimate."""
        dns = DNSHintDatabase()
        dns.add("syd", GeoPoint(-33.87, 151.21))
        bgp = BGPTable()
        bgp.announce("10.1")
        bgp.assign_address(TARGET, "10.1.7.9")
        bgp.add_known_location("10.1", GeoPoint(-33.87, 151.21))
        schemes: list[GeolocationScheme] = [
            GeoPing(au_topology, LANDMARKS),
            OctantLike(au_topology, LANDMARKS, grid_step_km=60.0),
            TopologyBasedGeolocation(au_topology, LANDMARKS),
            GeoTrack(au_topology, LANDMARKS, dns),
            GeoCluster(au_topology, LANDMARKS, bgp),
        ]
        for scheme in schemes:
            error = scheme.score(TARGET)
            assert error.error_km < 4000.0, scheme.name
            assert error.estimate.scheme == scheme.name
