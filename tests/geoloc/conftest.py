"""Shared topology for geolocation-scheme tests.

An Australian backbone: five landmark cities linked in a realistic
chain, plus a target host hanging off one of them.  Ground truth is in
the node positions; schemes may only probe.
"""

import pytest

from repro.geo.coords import GeoPoint
from repro.netsim.topology import NetworkTopology, Node


AU_SITES = {
    "bne-lm": GeoPoint(-27.47, 153.03, "Brisbane"),
    "syd-lm": GeoPoint(-33.87, 151.21, "Sydney"),
    "mel-lm": GeoPoint(-37.81, 144.96, "Melbourne"),
    "adl-lm": GeoPoint(-34.93, 138.60, "Adelaide"),
    "per-lm": GeoPoint(-31.95, 115.86, "Perth"),
}

LANDMARKS = list(AU_SITES)


@pytest.fixture
def au_topology():
    topology = NetworkTopology()
    for name, position in AU_SITES.items():
        topology.add_node(Node(name=name, position=position, kind="landmark"))
    # Routers named with city hints (GeoTrack's food).
    topology.add_node(
        Node("core-syd-1.isp.net", GeoPoint(-33.86, 151.20), kind="router")
    )
    topology.add_node(
        Node("core-mel-1.isp.net", GeoPoint(-37.80, 144.95), kind="router")
    )
    # Target: a host in Canberra, reached via the Sydney core router.
    topology.add_node(
        Node("target-cbr", GeoPoint(-35.28, 149.13, "Canberra"), kind="target")
    )
    # Backbone chain bne - syd - mel - adl - per through core routers.
    topology.add_link("bne-lm", "core-syd-1.isp.net", inflation=1.3)
    topology.add_link("syd-lm", "core-syd-1.isp.net", latency_ms=0.3)
    topology.add_link("core-syd-1.isp.net", "core-mel-1.isp.net", inflation=1.3)
    topology.add_link("mel-lm", "core-mel-1.isp.net", latency_ms=0.3)
    topology.add_link("core-mel-1.isp.net", "adl-lm", inflation=1.3)
    topology.add_link("adl-lm", "per-lm", inflation=1.3)
    topology.add_link("core-syd-1.isp.net", "target-cbr", inflation=1.3)
    return topology
