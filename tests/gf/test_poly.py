"""Polynomial arithmetic over GF(2^8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gf.gf256 import GF256
from repro.gf.poly import Poly

coeff_lists = st.lists(st.integers(0, 255), max_size=12)


class TestConstruction:
    def test_trims_leading_zeros(self):
        assert Poly([1, 2, 0, 0]).coeffs == (1, 2)

    def test_zero(self):
        assert Poly.zero().is_zero()
        assert Poly.zero().degree == -1

    def test_one(self):
        assert Poly.one().degree == 0
        assert Poly.one().eval(17) == 1

    def test_monomial(self):
        m = Poly.monomial(3, 5)
        assert m.degree == 3
        assert m.coeffs == (0, 0, 0, 5)

    def test_repr_readable(self):
        assert "x^1" in repr(Poly([0, 3]))
        assert repr(Poly.zero()) == "Poly(0)"


class TestArithmetic:
    @given(coeff_lists, coeff_lists)
    def test_addition_commutative(self, a, b):
        assert Poly(a) + Poly(b) == Poly(b) + Poly(a)

    @given(coeff_lists)
    def test_addition_self_cancels(self, a):
        assert (Poly(a) + Poly(a)).is_zero()

    @given(coeff_lists, coeff_lists)
    @settings(max_examples=50)
    def test_multiplication_commutative(self, a, b):
        assert Poly(a) * Poly(b) == Poly(b) * Poly(a)

    @given(coeff_lists, coeff_lists, st.integers(0, 255))
    @settings(max_examples=50)
    def test_multiplication_matches_evaluation(self, a, b, x):
        product = Poly(a) * Poly(b)
        assert product.eval(x) == GF256.mul(Poly(a).eval(x), Poly(b).eval(x))

    @given(coeff_lists, st.integers(0, 255))
    def test_scale_matches_evaluation(self, a, s):
        assert Poly(a).scale(s).eval(7) == GF256.mul(Poly(a).eval(7), s)

    def test_shift(self):
        assert Poly([1]).shift(2) == Poly.monomial(2)

    @given(coeff_lists, coeff_lists)
    @settings(max_examples=50)
    def test_divmod_identity(self, a, b):
        dividend, divisor = Poly(a), Poly(b)
        if divisor.is_zero():
            with pytest.raises(ZeroDivisionError):
                dividend.divmod(divisor)
            return
        quotient, remainder = dividend.divmod(divisor)
        assert quotient * divisor + remainder == dividend
        assert remainder.degree < divisor.degree or remainder.is_zero()


class TestCalculus:
    def test_derivative_char2(self):
        # d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2.
        p = Poly([9, 7, 5, 3])
        assert p.derivative() == Poly([7, 0, 3])

    def test_derivative_of_constant(self):
        assert Poly([5]).derivative().is_zero()

    def test_find_roots(self):
        # (x - 3)(x - 7) = x^2 + (3+7)x + 21 over GF(2^8).
        p = Poly([GF256.mul(3, 7), GF256.add(3, 7), 1])
        assert sorted(p.find_roots()) == sorted([3, 7])

    def test_find_roots_of_rootless(self):
        # x^2 + x + irreducible constant has no roots iff eval never 0.
        p = Poly([1, 141, 1])
        roots = p.find_roots()
        for r in roots:
            assert p.eval(r) == 0
