"""GF(256) algebra laws over seeded random sweeps.

The hypothesis tests in ``test_gf256.py`` sample the field axioms;
these sweeps pin them over wide, *seeded* element sets (hundreds of
deterministic triples per law) and extend the laws one level up to the
polynomial ring :mod:`repro.gf.poly`, whose Reed-Solomon callers
implicitly rely on ring axioms the unit tests never stated.
"""

import random

import pytest

from repro.gf.gf256 import GF256
from repro.gf.poly import Poly

#: Independent seeds so one bad interaction cannot hide behind one draw.
SEEDS = [7, 1912, 65537]


def triples(seed, n=300):
    rng = random.Random(seed)
    return [
        (rng.randrange(256), rng.randrange(256), rng.randrange(256))
        for _ in range(n)
    ]


def random_poly(rng, max_degree=6):
    return Poly([rng.randrange(256) for _ in range(rng.randrange(1, max_degree + 2))])


class TestFieldLaws:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mul_associative(self, seed):
        for a, b, c in triples(seed):
            assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_add_associative(self, seed):
        for a, b, c in triples(seed):
            assert GF256.add(GF256.add(a, b), c) == GF256.add(a, GF256.add(b, c))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_distributive_both_sides(self, seed):
        for a, b, c in triples(seed):
            left = GF256.mul(a, GF256.add(b, c))
            assert left == GF256.add(GF256.mul(a, b), GF256.mul(a, c))
            right = GF256.mul(GF256.add(b, c), a)
            assert left == right

    @pytest.mark.parametrize("seed", SEEDS)
    def test_inverse_round_trips(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            a = rng.randrange(1, 256)
            assert GF256.inv(GF256.inv(a)) == a
            assert GF256.mul(a, GF256.inv(a)) == 1
            b = rng.randrange(1, 256)
            # div is mul-by-inverse, and the two round-trip.
            assert GF256.mul(GF256.div(a, b), b) == a
            assert GF256.div(GF256.mul(a, b), b) == a

    def test_every_nonzero_element_has_unique_inverse(self):
        inverses = {GF256.inv(a) for a in range(1, 256)}
        assert inverses == set(range(1, 256))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pow_respects_group_order(self, seed):
        rng = random.Random(seed)
        for _ in range(100):
            a = rng.randrange(1, 256)
            # The multiplicative group has order 255.
            assert GF256.pow(a, 255) == 1
            assert GF256.pow(a, 256) == a
            exponent = rng.randrange(-500, 500)
            assert GF256.pow(a, exponent) == GF256.pow(a, exponent % 255)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_log_exp_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(200):
            a = rng.randrange(1, 256)
            assert GF256.exp(GF256.log(a)) == a
            power = rng.randrange(0, 255)
            assert GF256.log(GF256.exp(power)) == power


class TestPolynomialRingLaws:
    """The ring GF(256)[x] inherits the field's laws coefficient-wise."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mul_associative_and_commutative(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            p, q, r = (random_poly(rng) for _ in range(3))
            assert (p * q) * r == p * (q * r)
            assert p * q == q * p

    @pytest.mark.parametrize("seed", SEEDS)
    def test_distributive(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            p, q, r = (random_poly(rng) for _ in range(3))
            assert p * (q + r) == p * q + p * r

    @pytest.mark.parametrize("seed", SEEDS)
    def test_divmod_round_trips(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            p = random_poly(rng)
            divisor = random_poly(rng)
            if divisor.is_zero():
                continue
            quotient, remainder = p.divmod(divisor)
            assert quotient * divisor + remainder == p
            if not remainder.is_zero():
                assert remainder.degree < divisor.degree

    @pytest.mark.parametrize("seed", SEEDS)
    def test_evaluation_is_a_ring_homomorphism(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            p, q = random_poly(rng), random_poly(rng)
            x = rng.randrange(256)
            assert (p + q).eval(x) == GF256.add(p.eval(x), q.eval(x))
            assert (p * q).eval(x) == GF256.mul(p.eval(x), q.eval(x))
