"""Vectorized GF(256) kernels: equivalence with the scalar anchor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gf import gf256_vec
from repro.gf.gf256 import GF256, mul_fast

# exc_type=ImportError: skip (not warn) even when a numpy distribution
# is present but unimportable, e.g. the CI scalar-fallback lane.
np = pytest.importorskip("numpy", exc_type=ImportError)


class TestCapabilityFlag:
    def test_flag_true_with_numpy_installed(self):
        assert gf256_vec.HAS_NUMPY is True
        from repro.gf import HAS_NUMPY

        assert HAS_NUMPY is True

    def test_require_numpy_passes(self):
        gf256_vec.require_numpy()

    def test_require_numpy_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(gf256_vec, "HAS_NUMPY", False)
        with pytest.raises(ConfigurationError, match="repro\\[fast\\]"):
            gf256_vec.require_numpy()

    def test_kernels_raise_without_numpy(self, monkeypatch):
        monkeypatch.setattr(gf256_vec, "HAS_NUMPY", False)
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_mul_vec([1], [2])
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_matmul([[1]], [[2]])


class TestMulVec:
    def test_full_grid_matches_scalar(self):
        a = np.repeat(np.arange(256, dtype=np.uint8), 256)
        b = np.tile(np.arange(256, dtype=np.uint8), 256)
        out = gf256_vec.gf_mul_vec(a, b)
        expected = np.array(
            [mul_fast(int(x), int(y)) for x, y in zip(a, b)], dtype=np.uint8
        )
        assert np.array_equal(out, expected)

    def test_accepts_bytes_and_lists(self):
        out = gf256_vec.gf_mul_vec(b"\x02\x03", [4, 5])
        assert list(out) == [GF256.mul(2, 4), GF256.mul(3, 5)]

    def test_broadcasting(self):
        out = gf256_vec.gf_mul_vec([[2], [3]], [1, 4])
        assert out.shape == (2, 2)
        assert out[1, 1] == GF256.mul(3, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_mul_vec([256], [1])
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_mul_vec([1], [-1])

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_mul_vec([1.5], [1])


class TestMatmul:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_matmul(self, data):
        m = data.draw(st.integers(1, 6))
        k = data.draw(st.integers(1, 8))
        w = data.draw(st.integers(1, 6))
        elem = st.integers(0, 255)
        a = [
            data.draw(st.lists(elem, min_size=k, max_size=k)) for _ in range(m)
        ]
        b = [
            data.draw(st.lists(elem, min_size=w, max_size=w)) for _ in range(k)
        ]
        out = gf256_vec.gf_matmul(a, b)
        for i in range(m):
            for j in range(w):
                want = 0
                for t in range(k):
                    want ^= mul_fast(a[i][t], b[t][j])
                assert out[i, j] == want

    def test_identity(self):
        eye = np.eye(5, dtype=np.uint8)
        b = np.arange(25, dtype=np.uint8).reshape(5, 5)
        assert np.array_equal(gf256_vec.gf_matmul(eye, b), b)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_matmul(np.zeros((2, 3), dtype=np.uint8),
                                np.zeros((4, 2), dtype=np.uint8))

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_matmul(np.zeros(3, dtype=np.uint8),
                                np.zeros((3, 1), dtype=np.uint8))

    def test_matvec(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        v = [5, 6]
        out = gf256_vec.gf_matvec(a, v)
        assert out.shape == (2,)
        assert out[0] == mul_fast(1, 5) ^ mul_fast(2, 6)
        assert out[1] == mul_fast(3, 5) ^ mul_fast(4, 6)

    def test_matvec_rejects_matrix_vector(self):
        with pytest.raises(ConfigurationError):
            gf256_vec.gf_matvec([[1]], [[1], [2]])
