"""Field-axiom property tests for GF(2^8)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gf.gf256 import EXP_TABLE, GF256, LOG_TABLE, mul_fast

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestTables:
    def test_exp_log_inverse(self):
        for a in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[a]] == a

    def test_exp_table_doubled(self):
        for i in range(255):
            assert EXP_TABLE[i] == EXP_TABLE[i + 255]

    def test_generator_order(self):
        # alpha^255 = 1, no smaller power is 1.
        assert GF256.exp(255) == 1
        seen = {GF256.exp(i) for i in range(255)}
        assert len(seen) == 255


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elements)
    def test_addition_self_inverse(self, a):
        assert GF256.add(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division(self, a, b):
        assert GF256.mul(GF256.div(a, b), b) == a


class TestPow:
    @given(nonzero, st.integers(-10, 10))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        base = a if exponent >= 0 else GF256.inv(a)
        for _ in range(abs(exponent)):
            expected = GF256.mul(expected, base)
        assert GF256.pow(a, exponent) == expected

    def test_zero_pow_positive(self):
        assert GF256.pow(0, 3) == 0

    def test_zero_pow_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, 0)


class TestErrors:
    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)

    def test_inverse_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_log_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.log(0)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            GF256.add(256, 0)


class TestFastPath:
    @given(elements, elements)
    def test_mul_fast_matches_checked(self, a, b):
        assert mul_fast(a, b) == GF256.mul(a, b)


class TestPowExponentValidation:
    """Regression: a non-int exponent used to crash deep in the table
    index with an opaque ``TypeError`` from ``(_LOG[a] * exp) % 255``."""

    def test_float_exponent_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            GF256.pow(2, 1.5)

    def test_float_exponent_on_zero_base(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            GF256.pow(0, 2.0)

    def test_string_exponent_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            GF256.pow(3, "4")

    def test_int_exponents_still_work(self):
        assert GF256.pow(2, 8) == GF256.mul(GF256.pow(2, 4), GF256.pow(2, 4))
        assert GF256.pow(7, -1) == GF256.inv(7)
        assert GF256.pow(5, 0) == 1

    def test_bool_exponent_is_an_int(self):
        # bool subclasses int; True behaves as exponent 1.
        assert GF256.pow(9, True) == 9
