"""GeoProof over dynamic data (the Section IV extension)."""

import dataclasses

import pytest

from repro.core.dynamic_session import (
    DynamicGeoProofSession,
    DynamicTimedRound,
    DynamicTranscript,
    dynamic_rtt_budget,
)
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.datasets import city
from repro.geo.regions import CircularRegion


@pytest.fixture
def session(brisbane):
    session = DynamicGeoProofSession(
        datacentre_location=brisbane,
        region=CircularRegion(brisbane, 100.0),
        block_bytes=512,
        seed="dyn-tests",
    )
    data = DeterministicRNG("dyn-data").random_bytes(50_000)
    session.outsource(b"dyn-file", data)
    return session


class TestBudgetCalibration:
    def test_payload_term_grows_with_file_size(self):
        small = dynamic_rtt_budget(64, 512)
        large = dynamic_rtt_budget(1_000_000, 512)
        assert large.rtt_max_ms > small.rtt_max_ms

    def test_growth_is_logarithmic(self):
        """Doubling n adds one tree level: a constant budget increment."""
        budgets = [
            dynamic_rtt_budget(n, 512).rtt_max_ms for n in (2**10, 2**11, 2**12)
        ]
        first_step = budgets[1] - budgets[0]
        second_step = budgets[2] - budgets[1]
        assert first_step == pytest.approx(second_step, rel=0.01)
        assert first_step > 0

    def test_validates_n(self):
        with pytest.raises(ConfigurationError):
            dynamic_rtt_budget(0, 512)


class TestHonestAudit:
    def test_accepted(self, session):
        transcript, verdict = session.run_audit(20)
        assert verdict.accepted
        assert transcript.max_rtt_ms <= verdict.rtt_max_ms
        assert len(transcript.rounds) == 20

    def test_audit_survives_updates(self, session):
        session.update_block(3, b"A" * 512)
        session.update_block(17, b"B" * 512)
        _, verdict = session.run_audit(20)
        assert verdict.accepted

    def test_round_payload_includes_path(self, session):
        transcript, _ = session.run_audit(5)
        for round_ in transcript.rounds:
            assert round_.payload_bytes > 512  # block + tag + path

    def test_fresh_challenges_per_audit(self, session):
        a, _ = session.run_audit(10)
        b, _ = session.run_audit(10)
        assert [r.index for r in a.rounds] != [r.index for r in b.rounds]


class TestAttacks:
    def test_relay_delay_caught(self, session):
        session.injected_delay_ms = 40.0
        _, verdict = session.run_audit(10)
        assert not verdict.accepted
        assert verdict.failure_reasons == ["timing"]

    def test_tampered_block_caught(self, session):
        session.server.blocks[5] = b"\x00" * 512  # rot without retag
        transcript, verdict = session.run_audit(
            session.client.n_blocks
        )  # challenge everything -> must hit block 5
        assert not verdict.accepted
        assert "proof" in verdict.failure_reasons
        assert 5 in verdict.bad_indices

    def test_transcript_tamper_breaks_signature(self, session):
        transcript, _ = session.run_audit(5)
        slow = dataclasses.replace(
            transcript,
            rounds=tuple(
                dataclasses.replace(r, rtt_ms=0.01) for r in transcript.rounds
            ),
        )
        verdict = session.verify(slow)
        assert not verdict.signature_ok

    def test_device_outside_region_caught(self, brisbane):
        session = DynamicGeoProofSession(
            datacentre_location=city("singapore"),
            region=CircularRegion(brisbane, 100.0),
            block_bytes=512,
            seed="dyn-region",
        )
        session.outsource(b"f", b"data" * 1000)
        _, verdict = session.run_audit(5)
        assert not verdict.accepted
        assert "gps" in verdict.failure_reasons


class TestValidation:
    def test_single_file_per_session(self, session):
        with pytest.raises(ConfigurationError):
            session.outsource(b"second", b"data")

    def test_update_length_checked(self, session):
        with pytest.raises(ConfigurationError):
            session.update_block(0, b"short")

    def test_audit_requires_outsource(self, brisbane):
        empty = DynamicGeoProofSession(
            datacentre_location=brisbane,
            region=CircularRegion(brisbane, 100.0),
        )
        with pytest.raises(ConfigurationError):
            empty.run_audit(5)

    def test_wire_encoding_binds_path(self, session):
        transcript, _ = session.run_audit(1)
        round_ = transcript.rounds[0]
        flipped_path = tuple(
            (sibling, not is_right) for sibling, is_right in round_.proof.path
        )
        forged = DynamicTimedRound(
            index=round_.index,
            proof=dataclasses.replace(round_.proof, path=flipped_path),
            rtt_ms=round_.rtt_ms,
        )
        assert forged.wire_bytes() != round_.wire_bytes()
