"""Delta-t_max calibration and relay-distance bounds (Section V)."""

import pytest

from repro.core.calibration import (
    calibrate_rtt_max,
    margin_headroom_km,
    relay_distance_bound_km,
)
from repro.errors import ConfigurationError
from repro.storage.hdd import HITACHI_DK23DA, IBM_36Z15, WD_2500JD


class TestCalibration:
    def test_paper_budget(self):
        """Delta-t_max = 3 + 13.1055 ~= 16 ms (Section V-C)."""
        budget = calibrate_rtt_max()
        assert budget.lookup_ms == pytest.approx(13.1055, abs=1e-3)
        assert budget.rtt_max_ms == pytest.approx(16.1055, abs=1e-3)

    def test_describe_mentions_components(self):
        text = calibrate_rtt_max(margin_ms=1.0).describe()
        assert "LAN" in text and "lookup" in text and "margin" in text

    def test_margin_widens_budget(self):
        assert (
            calibrate_rtt_max(margin_ms=2.0).rtt_max_ms
            == calibrate_rtt_max().rtt_max_ms + 2.0
        )

    def test_disk_choice_matters(self):
        slow = calibrate_rtt_max(disk=HITACHI_DK23DA)
        fast = calibrate_rtt_max(disk=IBM_36Z15)
        assert slow.rtt_max_ms > fast.rtt_max_ms

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            calibrate_rtt_max(segment_bytes=0)
        with pytest.raises(ConfigurationError):
            calibrate_rtt_max(lan_rtt_ms=0.0)


class TestRelayBound:
    def test_paper_convention_360km(self):
        """The paper's Section V-C arithmetic: 4/9*300*5.406/2 ~= 360 km."""
        bound = relay_distance_bound_km(paper_convention=True)
        assert bound == pytest.approx(360.4, abs=0.5)

    def test_tight_bound_accounts_for_adversary_disk(self):
        budget = calibrate_rtt_max()
        bound = relay_distance_bound_km(budget.rtt_max_ms)
        # slack = 16.1055 - 5.406... ms -> ~713 km at 4/9 c.
        assert 700 < bound < 730

    def test_no_slack_no_distance(self):
        assert relay_distance_bound_km(5.0, adversary_disk=IBM_36Z15) == pytest.approx(
            0.0, abs=1.0
        )

    def test_slower_adversary_disk_shrinks_bound(self):
        fast = relay_distance_bound_km(16.0, adversary_disk=IBM_36Z15)
        slow = relay_distance_bound_km(16.0, adversary_disk=WD_2500JD)
        assert slow < fast

    def test_requires_rtt_unless_paper_mode(self):
        with pytest.raises(ConfigurationError):
            relay_distance_bound_km()


class TestMarginHeadroom:
    def test_1ms_margin_is_67km(self):
        # 4/9 c * 1 ms / 2 = 66.7 km of extra relay room.
        assert margin_headroom_km(1.0) == pytest.approx(66.67, abs=0.1)

    def test_zero_margin(self):
        assert margin_headroom_km(0.0) == 0.0
