"""The TPA's four verification steps, each attacked in isolation."""

import dataclasses

import pytest

from repro.core.messages import AuditRequest
from repro.core.verification import require_accepted, verify_transcript
from repro.crypto.schnorr import SchnorrKeyPair, TEST_GROUP
from repro.errors import VerificationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import CircularRegion
from repro.por.file_format import Segment
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def audited():
    """An honest audit plus everything needed to re-verify it."""
    session, file_id, _ = build_session("verif")
    outcome = session.audit(file_id, k=8)
    record = session.tpa.record(file_id)
    return session, outcome, record


def reverify(session, outcome, record, *, transcript=None, request=None, **overrides):
    defaults = dict(
        verifier_public_key=session.verifier.public_key,
        mac_key=record.mac_key,
        params=record.params,
        region=record.sla.region,
        rtt_max_ms=record.sla.rtt_max_ms,
    )
    defaults.update(overrides)
    return verify_transcript(
        transcript if transcript is not None else outcome.transcript,
        request if request is not None else outcome.request,
        **defaults,
    )


class TestHonestPath:
    def test_all_checks_pass(self, audited):
        session, outcome, record = audited
        verdict = reverify(session, outcome, record)
        assert verdict.accepted
        assert verdict.signature_ok and verdict.position_ok
        assert verdict.macs_ok and verdict.timing_ok and verdict.challenge_ok
        assert verdict.failure_reasons == []

    def test_require_accepted_silent(self, audited):
        session, outcome, record = audited
        require_accepted(reverify(session, outcome, record))


class TestStep1Signature:
    def test_wrong_public_key(self, audited):
        session, outcome, record = audited
        other = SchnorrKeyPair.generate(TEST_GROUP, seed=b"imposter")
        verdict = reverify(
            session, outcome, record, verifier_public_key=other.public
        )
        assert not verdict.accepted
        assert not verdict.signature_ok
        assert "signature" in verdict.failure_reasons

    def test_tampered_round_breaks_signature(self, audited):
        session, outcome, record = audited
        transcript = outcome.transcript
        fast_rounds = tuple(
            dataclasses.replace(r, rtt_ms=0.01) for r in transcript.rounds
        )
        forged = dataclasses.replace(transcript, rounds=fast_rounds)
        verdict = reverify(session, outcome, record, transcript=forged)
        assert not verdict.signature_ok


class TestStep2Position:
    def test_position_outside_region(self, audited):
        session, outcome, record = audited
        singapore_region = CircularRegion(GeoPoint(1.35, 103.82), 100.0)
        verdict = reverify(session, outcome, record, region=singapore_region)
        assert not verdict.accepted
        assert not verdict.position_ok
        assert "gps" in verdict.failure_reasons


class TestStep3MACs:
    def test_forged_segment_caught(self, audited):
        session, outcome, record = audited
        transcript = outcome.transcript
        victim = transcript.rounds[0]
        forged_segment = Segment(
            index=victim.index,
            payload=bytes(len(victim.segment.payload)),
            tag=victim.segment.tag,
        )
        rounds = (dataclasses.replace(victim, segment=forged_segment),) + transcript.rounds[1:]
        forged = dataclasses.replace(transcript, rounds=rounds)
        verdict = reverify(session, outcome, record, transcript=forged)
        assert not verdict.macs_ok
        assert verdict.bad_mac_indices == (victim.index,)
        # (signature also fails -- the device signed the real data.)
        assert not verdict.accepted

    def test_wrong_mac_key(self, audited):
        session, outcome, record = audited
        verdict = reverify(session, outcome, record, mac_key=b"wrong-key")
        assert not verdict.macs_ok


class TestStep4Timing:
    def test_tight_budget_rejects(self, audited):
        session, outcome, record = audited
        verdict = reverify(session, outcome, record, rtt_max_ms=1.0)
        assert not verdict.timing_ok
        assert "timing" in verdict.failure_reasons
        assert verdict.max_rtt_ms > 1.0

    def test_reported_budget_and_max(self, audited):
        session, outcome, record = audited
        verdict = reverify(session, outcome, record)
        assert verdict.rtt_max_ms == pytest.approx(record.sla.rtt_max_ms)
        assert verdict.max_rtt_ms == pytest.approx(outcome.transcript.max_rtt_ms)


class TestRequestConsistency:
    def test_nonce_replay_rejected(self, audited):
        session, outcome, record = audited
        replayed = AuditRequest(
            file_id=outcome.request.file_id,
            n_segments=outcome.request.n_segments,
            k=outcome.request.k,
            nonce=b"different-nonce!",
        )
        verdict = reverify(session, outcome, record, request=replayed)
        assert not verdict.challenge_ok
        assert "challenge" in verdict.failure_reasons

    def test_wrong_file_rejected(self, audited):
        session, outcome, record = audited
        other = AuditRequest(
            file_id=b"other-file",
            n_segments=outcome.request.n_segments,
            k=outcome.request.k,
            nonce=outcome.request.nonce,
        )
        verdict = reverify(session, outcome, record, request=other)
        assert not verdict.challenge_ok

    def test_short_answer_rejected(self, audited):
        session, outcome, record = audited
        transcript = outcome.transcript
        truncated = dataclasses.replace(transcript, rounds=transcript.rounds[:-1])
        verdict = reverify(session, outcome, record, transcript=truncated)
        assert not verdict.challenge_ok

    def test_require_accepted_raises_with_reason(self, audited):
        session, outcome, record = audited
        verdict = reverify(session, outcome, record, rtt_max_ms=1.0)
        with pytest.raises(VerificationError, match="timing"):
            require_accepted(verdict)
