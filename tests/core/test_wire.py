"""Property tests: wire decoding of every protocol message fails closed.

The service plane feeds frame bodies straight into
``core.messages``/``core.verification`` codecs, so the codecs are the
daemon's input-validation boundary.  Three properties are pinned for
every message type:

* **round-trip** -- ``from_wire(to_wire(m))`` reproduces ``m`` exactly
  and consumes every byte;
* **truncation** -- every strict prefix of a valid encoding raises
  :class:`~repro.errors.ProtocolError`;
* **concatenation/garbage** -- trailing bytes are rejected, and
  arbitrary byte soup either raises ``ProtocolError`` or decodes to a
  message whose canonical re-encoding is exactly the input (no message
  is ever accepted from a non-canonical encoding).

None of these may hang (decoding is bounded by the input length) or
escape as anything other than ``ProtocolError``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    AuditRequest,
    SignedTranscript,
    TimedRound,
    decode_exact,
)
from repro.core.verification import GeoProofVerdict
from repro.errors import ProtocolError
from repro.geo.coords import GeoPoint
from repro.por.file_format import Segment
from repro.util.serialization import (
    encode_float,
    encode_length_prefixed,
    encode_uint,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

segments = st.builds(
    Segment,
    index=st.integers(0, 2**64 - 1),
    payload=st.binary(max_size=48),
    tag=st.binary(max_size=16),
)

rounds = st.builds(
    TimedRound,
    index=st.integers(0, 2**64 - 1),
    segment=segments,
    rtt_ms=finite_floats,
)

requests = st.integers(1, 2**32).flatmap(
    lambda n: st.builds(
        AuditRequest,
        file_id=st.binary(min_size=1, max_size=32),
        n_segments=st.just(n),
        k=st.integers(1, n),
        nonce=st.binary(min_size=8, max_size=24),
    )
)

positions = st.builds(
    GeoPoint,
    latitude=st.floats(-90.0, 90.0, allow_nan=False, width=64),
    longitude=st.floats(-180.0, 180.0, allow_nan=False, width=64),
)

transcripts = st.builds(
    SignedTranscript,
    device_id=st.binary(max_size=16),
    file_id=st.binary(max_size=16),
    nonce=st.binary(max_size=24),
    rounds=st.tuples() | st.lists(rounds, max_size=4).map(tuple),
    position=positions,
    signature=st.tuples(
        st.integers(0, 2**256), st.integers(0, 2**256)
    ),
)

verdict_flags = st.tuples(*[st.booleans()] * 5)


@st.composite
def verdicts(draw):
    signature_ok, position_ok, macs_ok, timing_ok, challenge_ok = draw(
        verdict_flags
    )
    bad_macs = (
        ()
        if macs_ok
        else tuple(
            draw(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=4))
        )
    )
    return GeoProofVerdict(
        accepted=signature_ok
        and position_ok
        and macs_ok
        and timing_ok
        and challenge_ok,
        signature_ok=signature_ok,
        position_ok=position_ok,
        macs_ok=macs_ok,
        timing_ok=timing_ok,
        challenge_ok=challenge_ok,
        max_rtt_ms=draw(finite_floats),
        rtt_max_ms=draw(finite_floats),
        bad_mac_indices=bad_macs,
    )


CODECS = {
    "segment": (segments, Segment.from_wire, lambda s: s.wire_bytes()),
    "round": (rounds, TimedRound.from_wire, lambda r: r.to_wire()),
    "request": (requests, AuditRequest.from_wire, lambda r: r.to_wire()),
    "transcript": (
        transcripts,
        SignedTranscript.from_wire,
        lambda t: t.to_wire(),
    ),
    "verdict": (verdicts(), GeoProofVerdict.from_wire, lambda v: v.to_wire()),
}


def _case(name):
    strategy, decoder, encoder = CODECS[name]
    return pytest.param(strategy, decoder, encoder, id=name)


ALL_CODECS = [_case(name) for name in CODECS]


class TestRoundTrip:
    @pytest.mark.parametrize("strategy, decoder, encoder", ALL_CODECS)
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_roundtrip_consumes_everything(
        self, strategy, decoder, encoder, data
    ):
        message = data.draw(strategy)
        wire = encoder(message)
        decoded = decode_exact(decoder, wire)
        assert decoded == message
        assert encoder(decoded) == wire

    @given(transcripts)
    @settings(max_examples=30, deadline=None)
    def test_transcript_payload_cache_matches_wire(self, transcript):
        decoded = decode_exact(SignedTranscript.from_wire, transcript.to_wire())
        assert decoded.signed_payload() == transcript.signed_payload()


class TestTruncation:
    @pytest.mark.parametrize("strategy, decoder, encoder", ALL_CODECS)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_every_prefix_fails_closed(self, strategy, decoder, encoder, data):
        message = data.draw(strategy)
        wire = encoder(message)
        cut = data.draw(st.integers(0, len(wire) - 1))
        with pytest.raises(ProtocolError):
            decode_exact(decoder, wire[:cut])


class TestConcatenationAndGarbage:
    @pytest.mark.parametrize("strategy, decoder, encoder", ALL_CODECS)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_trailing_bytes_fail_closed(self, strategy, decoder, encoder, data):
        message = data.draw(strategy)
        wire = encoder(message) + data.draw(st.binary(min_size=1, max_size=16))
        with pytest.raises(ProtocolError):
            decode_exact(decoder, wire)

    @pytest.mark.parametrize("strategy, decoder, encoder", ALL_CODECS)
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_garbage_never_accepted_non_canonically(
        self, strategy, decoder, encoder, data
    ):
        soup = data.draw(st.binary(max_size=64))
        try:
            decoded = decode_exact(decoder, soup)
        except ProtocolError:
            return
        # The only byte strings a codec may accept are canonical
        # encodings of real messages.
        assert encoder(decoded) == soup

    @given(st.binary(max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_transcript_garbage_always_rejected(self, soup):
        # Transcripts lead with a fixed magic, so byte soup (which will
        # not start with it) must always be rejected outright.
        with pytest.raises(ProtocolError):
            decode_exact(SignedTranscript.from_wire, soup)


class TestFailClosedShapes:
    def test_request_invalid_k_fails_closed(self):
        wire = (
            encode_length_prefixed(b"file")
            + encode_uint(4)  # n_segments
            + encode_uint(9)  # k > n_segments
            + encode_length_prefixed(b"n" * 16)
        )
        with pytest.raises(ProtocolError):
            decode_exact(AuditRequest.from_wire, wire)

    def test_request_short_nonce_fails_closed(self):
        wire = (
            encode_length_prefixed(b"file")
            + encode_uint(4)
            + encode_uint(2)
            + encode_length_prefixed(b"abc")
        )
        with pytest.raises(ProtocolError):
            decode_exact(AuditRequest.from_wire, wire)

    def test_round_nan_rtt_fails_closed(self):
        segment = Segment(index=0, payload=b"p", tag=b"t")
        wire = (
            encode_uint(0)
            + segment.wire_bytes()
            + encode_float(float("nan"))
        )
        with pytest.raises(ProtocolError):
            decode_exact(TimedRound.from_wire, wire)

    def test_transcript_out_of_range_position_fails_closed(self):
        transcript = _transcript()
        wire = transcript.to_wire()
        bad_lat = encode_float(91.0)
        good_lat = encode_float(transcript.position.latitude)
        assert wire.count(good_lat) == 1
        with pytest.raises(ProtocolError):
            decode_exact(
                SignedTranscript.from_wire,
                wire.replace(good_lat, bad_lat),
            )

    def test_transcript_padded_signature_int_fails_closed(self):
        transcript = _transcript()
        payload = transcript.signed_payload()
        e, s = transcript.signature
        padded = (
            payload
            + encode_length_prefixed(
                b"\x00" + e.to_bytes((e.bit_length() + 7) // 8 or 1, "big")
            )
            + encode_length_prefixed(
                s.to_bytes((s.bit_length() + 7) // 8 or 1, "big")
            )
        )
        with pytest.raises(ProtocolError):
            decode_exact(SignedTranscript.from_wire, padded)

    def test_verdict_unknown_flags_fail_closed(self):
        wire = GeoProofVerdict.from_wire  # codec under test
        body = encode_uint(1 << 5) + encode_float(1.0) + encode_float(2.0)
        body += encode_uint(0)  # empty bad-MAC list
        with pytest.raises(ProtocolError):
            decode_exact(wire, body)

    def test_verdict_cannot_claim_acceptance_with_failed_check(self):
        verdict = GeoProofVerdict(
            accepted=False,
            signature_ok=False,
            position_ok=True,
            macs_ok=True,
            timing_ok=True,
            challenge_ok=True,
            max_rtt_ms=1.0,
            rtt_max_ms=2.0,
        )
        decoded = decode_exact(GeoProofVerdict.from_wire, verdict.to_wire())
        assert decoded.accepted is False
        assert decoded.failure_reasons == ["signature"]

    def test_verdict_macs_ok_with_bad_list_fails_closed(self):
        body = (
            encode_uint(0b11111)
            + encode_float(1.0)
            + encode_float(2.0)
            + encode_uint(1)
            + encode_uint(7)
        )
        with pytest.raises(ProtocolError):
            decode_exact(GeoProofVerdict.from_wire, body)


def _transcript() -> SignedTranscript:
    return SignedTranscript(
        device_id=b"dev",
        file_id=b"file",
        nonce=b"n" * 16,
        rounds=(
            TimedRound(
                index=3,
                segment=Segment(index=3, payload=b"payload", tag=b"tag"),
                rtt_ms=1.25,
            ),
        ),
        position=GeoPoint(10.5, 20.25),
        signature=(12345, 67890),
    )
