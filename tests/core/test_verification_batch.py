"""verify_transcripts vs the scalar verify_transcript anchor.

The batch plane regroups the MAC and Schnorr arithmetic; the contract
is that on *any* population -- honest, forged-signature, wrong-key,
corrupted-MAC, replayed-nonce, duplicated-indices, and mixes of all of
them -- the verdict list equals running :func:`verify_transcript` job
by job, field for field, including ``bad_mac_indices``.
"""

import dataclasses

import pytest

from repro.cloud.adversary import CorruptionAttack
from repro.core.verification import (
    TranscriptVerification,
    verify_transcript,
    verify_transcripts,
)
from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import TEST_GROUP, SchnorrKeyPair
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow


def audit_job(session, file_id, k=5, **overrides):
    """Run one real protocol round; package it as a verification job."""
    record = session.tpa.record(file_id)
    request = session.tpa.make_request(file_id, k)
    transcript = session.verifier.run_audit(request, session.provider)
    job = TranscriptVerification(
        transcript=transcript,
        request=request,
        verifier_public_key=session.verifier.public_key,
        mac_key=record.mac_key,
        params=record.params,
        region=session.sla.region,
        rtt_max_ms=session.sla.rtt_max_ms,
    )
    return dataclasses.replace(job, **overrides) if overrides else job


def scalar_verdicts(jobs):
    return [
        verify_transcript(
            job.transcript,
            job.request,
            verifier_public_key=job.verifier_public_key,
            mac_key=job.mac_key,
            params=job.params,
            region=job.region,
            rtt_max_ms=job.rtt_max_ms,
        )
        for job in jobs
    ]


def tamper(job, **transcript_overrides):
    """Replace transcript fields (breaking the signature over them)."""
    return dataclasses.replace(
        job,
        transcript=dataclasses.replace(
            job.transcript, **transcript_overrides
        ),
    )


class TestHonestBatches:
    def test_batch_equals_scalar_on_honest_population(self):
        session, file_id, _ = build_session("vbatch-honest")
        jobs = [audit_job(session, file_id) for _ in range(6)]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert all(verdict.accepted for verdict in verdicts)

    def test_empty_batch(self):
        assert verify_transcripts([]) == []

    def test_single_job_batch(self):
        session, file_id, _ = build_session("vbatch-single")
        jobs = [audit_job(session, file_id)]
        assert verify_transcripts(jobs) == scalar_verdicts(jobs)


class TestAdversarialBatches:
    def test_forged_signature_culprit_isolated(self):
        session, file_id, _ = build_session("vbatch-forge")
        jobs = [audit_job(session, file_id) for _ in range(5)]
        commitment, s = jobs[2].transcript.signature
        jobs[2] = tamper(
            jobs[2], signature=(commitment, (s + 1) % TEST_GROUP.q)
        )
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert [verdict.signature_ok for verdict in verdicts] == [
            True, True, False, True, True,
        ]
        assert not verdicts[2].accepted

    def test_wrong_public_key_rejected(self):
        session, file_id, _ = build_session("vbatch-wrongkey")
        stranger = SchnorrKeyPair.generate(TEST_GROUP, seed=b"stranger")
        jobs = [
            audit_job(session, file_id),
            audit_job(session, file_id, verifier_public_key=stranger.public),
        ]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert [verdict.signature_ok for verdict in verdicts] == [True, False]

    def test_corrupted_mac_bad_indices_exact(self):
        # Full-corruption provider: the verifier signs what it was
        # served, so the signature verifies while every MAC fails --
        # bad_mac_indices must list the challenged indices exactly.
        session, file_id, _ = build_session("vbatch-mac")
        session.provider.set_strategy(
            CorruptionAttack("home", 1.0, DeterministicRNG("vbatch-adv"))
        )
        jobs = [audit_job(session, file_id, k=4) for _ in range(3)]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        for job, verdict in zip(jobs, verdicts):
            assert verdict.signature_ok
            assert not verdict.macs_ok
            assert verdict.bad_mac_indices == tuple(
                job.transcript.challenge_indices()
            )

    def test_replayed_transcript_fails_freshness(self):
        # An old transcript attached to a fresh request: stale nonce.
        session, file_id, _ = build_session("vbatch-replay")
        stale = audit_job(session, file_id)
        fresh = audit_job(session, file_id)
        replayed = dataclasses.replace(stale, request=fresh.request)
        jobs = [fresh, replayed]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert verdicts[0].accepted
        assert not verdicts[1].challenge_ok

    def test_duplicated_indices_fail_challenge_check(self):
        session, file_id, _ = build_session("vbatch-dup")
        job = audit_job(session, file_id, k=3)
        rounds = job.transcript.rounds
        jobs = [job, tamper(job, rounds=(rounds[0],) + rounds[:2])]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert not verdicts[1].challenge_ok

    def test_index_mismatched_round_skips_mac_batch(self):
        # Segment echoes a different index than the round claims: bad
        # by definition, exactly like the scalar short-circuit.
        session, file_id, _ = build_session("vbatch-mismatch")
        job = audit_job(session, file_id, k=3)
        rounds = list(job.transcript.rounds)
        lying = dataclasses.replace(
            rounds[1],
            segment=dataclasses.replace(
                rounds[1].segment, index=rounds[1].segment.index + 1
            ),
        )
        rounds[1] = lying
        jobs = [tamper(job, rounds=tuple(rounds))]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert verdicts[0].bad_mac_indices == (lying.index,)

    def test_mixed_population_matches_scalar_field_for_field(self):
        """One batch holding every failure mode at once."""
        session, file_id, _ = build_session("vbatch-mixed")
        honest = [audit_job(session, file_id) for _ in range(3)]
        commitment, s = honest[0].transcript.signature
        forged = tamper(
            audit_job(session, file_id),
            signature=(commitment, (s + 1) % TEST_GROUP.q),
        )
        stale = dataclasses.replace(
            audit_job(session, file_id),
            request=audit_job(session, file_id).request,
        )
        slow = dataclasses.replace(
            audit_job(session, file_id), rtt_max_ms=0.0001
        )
        session.provider.set_strategy(
            CorruptionAttack("home", 1.0, DeterministicRNG("vbatch-adv2"))
        )
        corrupted = audit_job(session, file_id, k=4)
        jobs = [honest[0], forged, honest[1], stale, corrupted, slow, honest[2]]
        verdicts = verify_transcripts(jobs)
        assert verdicts == scalar_verdicts(jobs)
        assert [verdict.accepted for verdict in verdicts] == [
            True, False, True, False, False, False, True,
        ]
        assert verdicts[4].bad_mac_indices == tuple(
            corrupted.transcript.challenge_indices()
        )
