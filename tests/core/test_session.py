"""Session orchestration: build, outsource, audit."""

import pytest

from repro.core.session import GeoProofSession
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import BoundingBox
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import extract_file, setup_file
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

class TestBuild:
    def test_default_region_around_datacentre(self, brisbane):
        session = GeoProofSession.build(datacentre_location=brisbane)
        assert session.sla.region.contains(brisbane)

    def test_custom_region(self, brisbane):
        box = BoundingBox(-40.0, -10.0, 110.0, 155.0)
        session = GeoProofSession.build(datacentre_location=brisbane, region=box)
        assert session.sla.region is box

    def test_sla_segment_bytes_matches_params(self, brisbane):
        session = GeoProofSession.build(
            datacentre_location=brisbane, params=TEST_PARAMS
        )
        assert session.sla.segment_bytes == (
            TEST_PARAMS.segment_bytes + TEST_PARAMS.tag_bytes
        )


class TestOutsource:
    def test_returns_record(self):
        session, file_id, data = build_session("sess-record")
        record = session.files[file_id]
        assert record.original_bytes == len(data)
        assert record.stored_bytes > record.original_bytes
        assert record.n_segments > 0

    def test_duplicate_rejected(self):
        session, file_id, _ = build_session("sess-dup")
        with pytest.raises(ConfigurationError):
            session.outsource(file_id, b"other data")

    def test_data_retrievable_from_provider(self):
        """What the provider stores is sufficient to extract the file."""
        session, file_id, data = build_session("sess-extract")
        store = session.provider.home_of(file_id).server.store
        encoded = store.file_meta(file_id)
        assert extract_file(encoded, session.files[file_id].keys) == data

    def test_distinct_files_distinct_keys(self, brisbane):
        session = GeoProofSession.build(
            datacentre_location=brisbane, params=TEST_PARAMS, seed="keys"
        )
        session.outsource(b"f1", b"data-one" * 100)
        session.outsource(b"f2", b"data-two" * 100)
        assert session.files[b"f1"].keys != session.files[b"f2"].keys


class TestAudit:
    def test_unknown_file(self):
        session, _, _ = build_session("sess-unknown")
        with pytest.raises(ConfigurationError):
            session.audit(b"ghost")

    def test_audit_many_accumulates(self):
        session, file_id, _ = build_session("sess-many")
        outcomes = session.audit_many(file_id, 5, k=5)
        assert len(outcomes) == 5
        assert all(o.verdict.accepted for o in outcomes)
        assert len(session.tpa.audit_log) == 5

    def test_audit_many_validates(self):
        session, file_id, _ = build_session("sess-many-bad")
        with pytest.raises(ConfigurationError):
            session.audit_many(file_id, 0)

    def test_clock_monotone_across_audits(self):
        session, file_id, _ = build_session("sess-clock")
        session.audit(file_id, k=5)
        t1 = session.verifier.clock.now_ms()
        session.audit(file_id, k=5)
        assert session.verifier.clock.now_ms() > t1
