"""Landmark triangulation of the verifier device (GPS-spoof defence)."""

import pytest

from repro.core.triangulation import (
    LandmarkTriangulator,
    spoof_detection_radius_km,
)
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.datasets import city


@pytest.fixture
def triangulator():
    return LandmarkTriangulator(
        {
            "sydney": city("sydney"),
            "melbourne": city("melbourne"),
            "perth": city("perth"),
        }
    )


class TestConstruction:
    def test_needs_two_landmarks(self):
        with pytest.raises(ConfigurationError):
            LandmarkTriangulator({"only": city("sydney")})

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            LandmarkTriangulator(
                {"a": city("sydney"), "b": city("perth")}, overhead_ms=-1.0
            )


class TestBoundArithmetic:
    def test_rtt_converts_at_internet_speed(self, triangulator):
        # overhead default = 16 ms floor; 19 ms RTT -> 3 ms flight ->
        # 4/9 c * 3 / 2 = 200 km.
        assert triangulator.rtt_to_bound_km(19.0) == pytest.approx(200.0)

    def test_sub_overhead_rtt_gives_zero(self, triangulator):
        assert triangulator.rtt_to_bound_km(10.0) == 0.0

    def test_negative_rtt_rejected(self, triangulator):
        with pytest.raises(ConfigurationError):
            triangulator.rtt_to_bound_km(-1.0)


class TestHonestDevice:
    def test_true_position_always_consistent(self, triangulator):
        brisbane = city("brisbane")
        result = triangulator.verify_device(brisbane, brisbane)
        assert result.consistent
        assert result.violated_landmarks == ()
        assert result.n_landmarks == 3

    def test_consistent_under_jitter(self, triangulator):
        brisbane = city("brisbane")
        rng = DeterministicRNG("tri-jitter")
        for _ in range(20):
            result = triangulator.verify_device(brisbane, brisbane, rng=rng)
            assert result.consistent  # jitter only inflates bounds

    def test_bounds_cover_true_distances(self, triangulator):
        brisbane = city("brisbane")
        from repro.geo.coords import haversine_km

        for observation in triangulator.measure(brisbane):
            true_distance = haversine_km(observation.landmark, brisbane)
            assert observation.distance_bound_km >= true_distance * 0.95


class TestSpoofing:
    def test_gross_spoof_caught(self, triangulator):
        result = triangulator.verify_device(
            claimed_position=city("singapore"),
            true_position=city("brisbane"),
        )
        assert not result.consistent
        assert len(result.violated_landmarks) >= 1
        assert result.max_excess_km > 1000.0

    def test_small_spoof_escapes(self, triangulator):
        # A 50 km displacement sits inside every bound's slack --
        # triangulation at Internet precision is coarse.
        brisbane = city("brisbane")
        nearby_fake = destination_point(brisbane, 45.0, 50.0)
        result = triangulator.verify_device(nearby_fake, brisbane)
        assert result.consistent

    def test_detection_radius_finite_and_sane(self, triangulator):
        radius = spoof_detection_radius_km(triangulator, city("brisbane"))
        assert 100.0 < radius < 3000.0

    def test_added_delay_only_loosens(self, triangulator):
        """The paper's caveat: the provider can delay landmark paths.

        Added delay inflates every bound, so a spoof that was caught
        can escape -- triangulation gives one-sided assurance only.
        """
        honest = triangulator.verify_device(
            city("singapore"), city("brisbane")
        )
        delayed = triangulator.verify_device(
            city("singapore"),
            city("brisbane"),
            adversary_added_delay_ms=100.0,
        )
        assert not honest.consistent
        assert delayed.consistent  # the attack the paper warns about

    def test_delay_cannot_fake_closer(self, triangulator):
        """The converse is impossible: bounds never shrink, so a device
        truly far away can never claim a position the physics excludes
        ... unless the claim is WITHIN the honest bounds anyway."""
        # Device truly in Singapore claims Brisbane: Sydney's bound is
        # ~6,300 km (true distance), Brisbane is ~730 km from Sydney --
        # inside the bound, so this direction is NOT caught by upper
        # bounds alone.  What IS impossible is producing a bound
        # *smaller* than the true distance:
        observations = triangulator.measure(
            city("singapore"), adversary_added_delay_ms=0.0
        )
        from repro.geo.coords import haversine_km

        for observation in observations:
            true_distance = haversine_km(
                observation.landmark, city("singapore")
            )
            assert observation.distance_bound_km >= true_distance * 0.9

    def test_adversary_cannot_remove_delay(self, triangulator):
        with pytest.raises(ConfigurationError):
            triangulator.measure(
                city("brisbane"), adversary_added_delay_ms=-5.0
            )


class TestCheckClaim:
    def test_empty_observations_rejected(self, triangulator):
        with pytest.raises(ConfigurationError):
            triangulator.check_claim(city("brisbane"), [])
