"""Protocol message validation and canonical payloads."""

import dataclasses

import pytest

from repro.core.messages import AuditRequest, SignedTranscript, TimedRound
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.por.file_format import Segment


def make_transcript(n_rounds=3):
    rounds = tuple(
        TimedRound(
            index=i,
            segment=Segment(index=i, payload=bytes([i]) * 8, tag=b"tag"),
            rtt_ms=10.0 + i,
        )
        for i in range(n_rounds)
    )
    return SignedTranscript(
        device_id=b"device",
        file_id=b"file",
        nonce=b"nonce-16-bytes!!",
        rounds=rounds,
        position=GeoPoint(-27.47, 153.03),
        signature=(1, 2),
    )


class TestAuditRequest:
    def test_valid(self):
        AuditRequest(b"f", 100, 10, b"nonce-16-bytes!!")

    def test_k_bounds(self):
        with pytest.raises(ConfigurationError):
            AuditRequest(b"f", 100, 0, b"nonce-16-bytes!!")
        with pytest.raises(ConfigurationError):
            AuditRequest(b"f", 100, 101, b"nonce-16-bytes!!")

    def test_nonce_length(self):
        with pytest.raises(ConfigurationError):
            AuditRequest(b"f", 100, 10, b"short")

    def test_zero_segments(self):
        with pytest.raises(ConfigurationError):
            AuditRequest(b"f", 0, 1, b"nonce-16-bytes!!")


class TestSignedTranscript:
    def test_round_statistics(self):
        transcript = make_transcript(3)
        assert transcript.k == 3
        assert transcript.max_rtt_ms == 12.0
        assert transcript.mean_rtt_ms == pytest.approx(11.0)
        assert transcript.challenge_indices() == [0, 1, 2]

    def test_empty_transcript_stats_raise(self):
        transcript = make_transcript(0)
        with pytest.raises(ConfigurationError):
            transcript.max_rtt_ms
        with pytest.raises(ConfigurationError):
            transcript.mean_rtt_ms

    def test_payload_binds_every_field(self):
        base = make_transcript()
        payload = base.signed_payload()
        variants = [
            dataclasses.replace(base, device_id=b"other"),
            dataclasses.replace(base, file_id=b"other"),
            dataclasses.replace(base, nonce=b"other-nonce-16b!"),
            dataclasses.replace(base, rounds=base.rounds[:-1]),
            dataclasses.replace(base, position=GeoPoint(1.0, 2.0)),
        ]
        for variant in variants:
            assert variant.signed_payload() != payload

    def test_payload_binds_timings(self):
        base = make_transcript()
        slow = dataclasses.replace(
            base,
            rounds=base.rounds[:-1]
            + (dataclasses.replace(base.rounds[-1], rtt_ms=99.0),),
        )
        assert slow.signed_payload() != base.signed_payload()

    def test_payload_binds_segment_content(self):
        base = make_transcript()
        forged_segment = Segment(index=0, payload=b"forged!!", tag=b"tag")
        forged = dataclasses.replace(
            base,
            rounds=(dataclasses.replace(base.rounds[0], segment=forged_segment),)
            + base.rounds[1:],
        )
        assert forged.signed_payload() != base.signed_payload()

    def test_payload_excludes_signature(self):
        # The signature is over the payload, not part of it.
        base = make_transcript()
        resigned = dataclasses.replace(base, signature=(9, 9))
        assert resigned.signed_payload() == base.signed_payload()
