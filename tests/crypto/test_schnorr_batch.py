"""Batch Schnorr plane: sign_many/verify_many vs the scalar anchor.

The batch verifier uses a random-linear-combination check with
bisection fallback, so the property that matters is *verdict
equivalence*: for every adversarial batch shape -- forged signatures,
wrong keys, tampered/malformed/out-of-range signatures, replayed
(cross-attached) signatures, duplicated messages -- the verdict vector
must equal ``[schnorr_verify(pk, m, sig) for ...]`` exactly, with the
culprit positions identified, not just "the batch failed".
"""

import pytest

from repro.crypto.schnorr import (
    TEST_GROUP,
    SchnorrKeyPair,
    schnorr_sign,
    schnorr_sign_many,
    schnorr_verify,
    schnorr_verify_many,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def keypair():
    return SchnorrKeyPair.generate(TEST_GROUP, seed=b"batch-test")


@pytest.fixture(scope="module")
def other():
    return SchnorrKeyPair.generate(TEST_GROUP, seed=b"batch-other")


def scalar_verdicts(public, messages, signatures):
    return [
        schnorr_verify(public, message, signature)
        for message, signature in zip(messages, signatures)
    ]


class TestSignMany:
    def test_matches_per_message_sign(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(20)]
        assert schnorr_sign_many(keypair.private, messages) == [
            schnorr_sign(keypair.private, message) for message in messages
        ]

    def test_empty(self, keypair):
        assert schnorr_sign_many(keypair.private, []) == []


class TestVerifyManyHonest:
    def test_all_valid_accepted(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(32)]
        signatures = schnorr_sign_many(keypair.private, messages)
        assert schnorr_verify_many(keypair.public, messages, signatures) == (
            [True] * 32
        )

    def test_empty_batch(self, keypair):
        assert schnorr_verify_many(keypair.public, [], []) == []

    def test_single_item_batch(self, keypair):
        signature = schnorr_sign(keypair.private, b"solo")
        assert schnorr_verify_many(keypair.public, [b"solo"], [signature]) == [
            True
        ]

    def test_duplicated_messages_accepted(self, keypair):
        # Identical (message, signature) pairs at several positions must
        # not confuse the linear combination.
        signature = schnorr_sign(keypair.private, b"dup")
        messages = [b"dup"] * 5
        assert schnorr_verify_many(
            keypair.public, messages, [signature] * 5
        ) == [True] * 5

    def test_length_mismatch_rejected(self, keypair):
        with pytest.raises(ConfigurationError):
            schnorr_verify_many(keypair.public, [b"a", b"b"], [(1, 1)])


class TestVerifyManyCulprits:
    def test_single_forged_signature_isolated(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(16)]
        signatures = schnorr_sign_many(keypair.private, messages)
        commitment, s = signatures[7]
        signatures[7] = (commitment, (s + 1) % TEST_GROUP.q)
        verdicts = schnorr_verify_many(keypair.public, messages, signatures)
        assert verdicts == [index != 7 for index in range(16)]

    def test_forged_commitment_isolated(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(9)]
        signatures = schnorr_sign_many(keypair.private, messages)
        commitment, s = signatures[0]
        signatures[0] = (
            commitment * TEST_GROUP.g % TEST_GROUP.p,
            s,
        )
        verdicts = schnorr_verify_many(keypair.public, messages, signatures)
        assert verdicts == [False] + [True] * 8

    def test_multiple_culprits_all_isolated(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(24)]
        signatures = schnorr_sign_many(keypair.private, messages)
        bad = {3, 4, 11, 23}
        for index in bad:
            commitment, s = signatures[index]
            signatures[index] = (commitment, (s + index + 1) % TEST_GROUP.q)
        verdicts = schnorr_verify_many(keypair.public, messages, signatures)
        assert verdicts == [index not in bad for index in range(24)]

    def test_all_forged(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(8)]
        signatures = [
            ((commitment * TEST_GROUP.g) % TEST_GROUP.p, s)
            for commitment, s in schnorr_sign_many(keypair.private, messages)
        ]
        assert schnorr_verify_many(keypair.public, messages, signatures) == (
            [False] * 8
        )

    def test_wrong_public_key_rejects_everything(self, keypair, other):
        messages = [f"msg-{i}".encode() for i in range(12)]
        signatures = schnorr_sign_many(keypair.private, messages)
        assert schnorr_verify_many(other.public, messages, signatures) == (
            [False] * 12
        )

    def test_replayed_signature_rejected(self, keypair):
        # Signature for message i attached to message j: valid bytes,
        # wrong challenge hash.
        messages = [f"msg-{i}".encode() for i in range(6)]
        signatures = schnorr_sign_many(keypair.private, messages)
        signatures[2], signatures[5] = signatures[5], signatures[2]
        verdicts = schnorr_verify_many(keypair.public, messages, signatures)
        assert verdicts == [True, True, False, True, True, False]

    def test_malformed_signatures_filtered_structurally(self, keypair):
        messages = [f"msg-{i}".encode() for i in range(6)]
        signatures = schnorr_sign_many(keypair.private, messages)
        signatures[0] = None
        signatures[1] = (1, 2, 3)
        signatures[3] = (TEST_GROUP.p, 1)  # commitment out of range
        signatures[4] = (1, TEST_GROUP.q)  # s out of range
        verdicts = schnorr_verify_many(keypair.public, messages, signatures)
        assert verdicts == [False, False, True, False, False, True]


class TestScalarEquivalenceSweep:
    def test_mixed_adversarial_batch_matches_scalar(self, keypair, other):
        """Every tampering shape in one batch; verdicts == scalar loop."""
        messages = [f"msg-{i}".encode() for i in range(40)]
        signatures = schnorr_sign_many(keypair.private, messages)
        # Forge a few s values and commitments.
        for index in (1, 13, 29):
            commitment, s = signatures[index]
            signatures[index] = (commitment, (s + 1) % TEST_GROUP.q)
        commitment, s = signatures[20]
        signatures[20] = ((commitment * 2) % TEST_GROUP.p, s)
        # Sign some positions under the wrong key.
        for index in (5, 6):
            signatures[index] = schnorr_sign(other.private, messages[index])
        # Replay a signature across messages.
        signatures[30] = signatures[31]
        # Structural garbage.
        signatures[35] = "not-a-signature"
        signatures[36] = (0, 0)
        expected = scalar_verdicts(keypair.public, messages, signatures)
        assert expected.count(False) == 9
        assert (
            schnorr_verify_many(keypair.public, messages, signatures)
            == expected
        )

    def test_randomized_culprit_positions_match_scalar(self, keypair):
        """Sweep culprit densities; batch == scalar at each density."""
        messages = [f"m-{i}".encode() for i in range(20)]
        clean = schnorr_sign_many(keypair.private, messages)
        for n_bad in (0, 1, 2, 10, 19, 20):
            signatures = list(clean)
            for index in range(n_bad):
                commitment, s = signatures[index]
                signatures[index] = (
                    commitment,
                    (s + 1 + index) % TEST_GROUP.q,
                )
            expected = [index >= n_bad for index in range(20)]
            assert scalar_verdicts(keypair.public, messages, signatures) == (
                expected
            )
            assert (
                schnorr_verify_many(keypair.public, messages, signatures)
                == expected
            )
