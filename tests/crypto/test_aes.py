"""AES against the FIPS-197 / SP 800-38A vectors plus properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES, aes_ctr_decrypt, aes_ctr_encrypt
from repro.errors import InvalidKeyError


class TestFIPSVectors:
    """Appendix C of FIPS-197: the canonical known-answer tests."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_encrypt(self):
        cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        assert cipher.encrypt_block(self.PLAINTEXT) == bytes.fromhex(
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_aes192_encrypt(self):
        cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"))
        assert cipher.encrypt_block(self.PLAINTEXT) == bytes.fromhex(
            "dda97ca4864cdfe06eaf70a0ec0d7191"
        )

    def test_aes256_encrypt(self):
        cipher = AES(
            bytes.fromhex(
                "000102030405060708090a0b0c0d0e0f"
                "101112131415161718191a1b1c1d1e1f"
            )
        )
        assert cipher.encrypt_block(self.PLAINTEXT) == bytes.fromhex(
            "8ea2b7ca516745bfeafc49904b496089"
        )

    def test_aes128_decrypt(self):
        cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        assert cipher.decrypt_block(
            bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        ) == self.PLAINTEXT


class TestSP80038ACTR:
    """SP 800-38A F.5.1: AES-128 CTR known-answer test."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    PLAINTEXT = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
    )
    CIPHERTEXT = bytes.fromhex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
    )

    def test_ctr_encrypt_vector(self):
        assert (
            aes_ctr_encrypt(self.KEY, self.COUNTER, self.PLAINTEXT)
            == self.CIPHERTEXT
        )

    def test_ctr_decrypt_vector(self):
        assert (
            aes_ctr_decrypt(self.KEY, self.COUNTER, self.CIPHERTEXT)
            == self.PLAINTEXT
        )

    def test_ctr_partial_block(self):
        short = self.PLAINTEXT[:10]
        assert (
            aes_ctr_encrypt(self.KEY, self.COUNTER, short)
            == self.CIPHERTEXT[:10]
        )


class TestValidation:
    def test_rejects_bad_key_length(self):
        with pytest.raises(InvalidKeyError):
            AES(b"short")

    def test_rejects_bad_block_length(self):
        with pytest.raises(InvalidKeyError):
            AES(b"0" * 16).encrypt_block(b"tiny")

    def test_rejects_bad_nonce_length(self):
        with pytest.raises(InvalidKeyError):
            aes_ctr_encrypt(b"0" * 16, b"short", b"data")


class TestProperties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_block_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_ctr_roundtrip(self, data):
        key, nonce = b"k" * 16, b"n" * 16
        assert aes_ctr_decrypt(key, nonce, aes_ctr_encrypt(key, nonce, data)) == data

    def test_ctr_counter_wraps(self):
        # Near-max counter: incrementing must wrap modulo 2^128, not raise.
        nonce = b"\xff" * 16
        data = b"x" * 48  # forces two increments past the wrap
        out = aes_ctr_encrypt(b"k" * 16, nonce, data)
        assert aes_ctr_decrypt(b"k" * 16, nonce, out) == data

    def test_different_keys_differ(self):
        block = b"\x00" * 16
        assert AES(b"a" * 16).encrypt_block(block) != AES(b"b" * 16).encrypt_block(block)
