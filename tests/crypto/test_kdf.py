"""HKDF against the RFC 5869 test vectors plus derive_subkeys tests."""

import pytest

from repro.crypto.kdf import derive_subkeys, hkdf, hkdf_expand, hkdf_extract
from repro.errors import ConfigurationError


class TestRFC5869Vectors:
    """Appendix A of RFC 5869 (SHA-256 cases)."""

    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_and_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestHKDFValidation:
    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            hkdf(b"ikm", length=0)

    def test_rejects_oversize(self):
        with pytest.raises(ConfigurationError):
            hkdf(b"ikm", length=255 * 32 + 1)

    def test_max_length_works(self):
        assert len(hkdf(b"ikm", length=255 * 32)) == 255 * 32


class TestDeriveSubkeys:
    def test_distinct_labels_distinct_keys(self):
        subkeys = derive_subkeys(b"master" * 4, ["enc", "perm", "mac"])
        assert len({subkeys["enc"], subkeys["perm"], subkeys["mac"]}) == 3

    def test_deterministic(self):
        a = derive_subkeys(b"master" * 4, ["enc"])
        b = derive_subkeys(b"master" * 4, ["enc"])
        assert a == b

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ConfigurationError):
            derive_subkeys(b"master" * 4, ["enc", "enc"])

    def test_custom_length(self):
        subkeys = derive_subkeys(b"master" * 4, ["x"], length=16)
        assert len(subkeys["x"]) == 16
