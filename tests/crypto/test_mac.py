"""Tests for truncated segment MACs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.mac import mac_tag, mac_tag_many, mac_verify, mac_verify_many
from repro.errors import ConfigurationError


class TestMacTag:
    def test_default_20_bits_is_3_bytes(self):
        tag = mac_tag(b"key", b"segment", 0, b"fid")
        assert len(tag) == 3

    def test_20_bit_tag_masks_trailing_bits(self):
        tag = mac_tag(b"key", b"segment", 0, b"fid", tag_bits=20)
        assert tag[-1] & 0x0F == 0  # low 4 bits of byte 3 must be zero

    def test_full_width_tag(self):
        tag = mac_tag(b"key", b"segment", 0, b"fid", tag_bits=256)
        assert len(tag) == 32

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            mac_tag(b"key", b"segment", 0, b"fid", tag_bits=0)

    def test_index_binding(self):
        assert mac_tag(b"k", b"s", 1, b"f") != mac_tag(b"k", b"s", 2, b"f")

    def test_file_binding(self):
        assert mac_tag(b"k", b"s", 1, b"f1") != mac_tag(b"k", b"s", 1, b"f2")

    def test_no_concatenation_ambiguity(self):
        # (segment="ab", fid="c") must differ from (segment="a", fid="bc").
        assert mac_tag(b"k", b"ab", 0, b"c") != mac_tag(b"k", b"a", 0, b"bc")


class TestMacVerify:
    @given(st.binary(max_size=64), st.integers(0, 2**32), st.binary(max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_verifies_own_tags(self, segment, index, fid):
        tag = mac_tag(b"key", segment, index, fid)
        assert mac_verify(b"key", segment, index, fid, tag)

    def test_rejects_wrong_key(self):
        tag = mac_tag(b"key-a", b"segment", 5, b"fid")
        assert not mac_verify(b"key-b", b"segment", 5, b"fid", tag)

    def test_rejects_tampered_segment(self):
        tag = mac_tag(b"key", b"segment", 5, b"fid")
        assert not mac_verify(b"key", b"segmenT", 5, b"fid", tag)

    def test_rejects_shifted_index(self):
        tag = mac_tag(b"key", b"segment", 5, b"fid")
        assert not mac_verify(b"key", b"segment", 6, b"fid", tag)

    def test_rejects_wrong_length_tag(self):
        tag = mac_tag(b"key", b"segment", 5, b"fid")
        assert not mac_verify(b"key", b"segment", 5, b"fid", tag + b"\x00")


class TestBatchTags:
    """mac_tag_many / mac_verify_many equal the per-segment calls."""

    @given(
        st.lists(st.binary(min_size=0, max_size=40), min_size=0, max_size=8),
        st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_tag_many_matches_scalar(self, segments, tag_bits):
        batch = mac_tag_many(b"key", segments, b"fid", tag_bits=tag_bits)
        scalar = [
            mac_tag(b"key", seg, i, b"fid", tag_bits=tag_bits)
            for i, seg in enumerate(segments)
        ]
        assert batch == scalar

    def test_explicit_indices(self):
        segments = [b"a", b"b"]
        batch = mac_tag_many(b"key", segments, b"fid", indices=[7, 3])
        assert batch == [
            mac_tag(b"key", b"a", 7, b"fid"),
            mac_tag(b"key", b"b", 3, b"fid"),
        ]

    def test_index_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            mac_tag_many(b"key", [b"a", b"b"], b"fid", indices=[1])

    def test_tag_bits_validated(self):
        with pytest.raises(ConfigurationError):
            mac_tag_many(b"key", [b"a"], b"fid", tag_bits=0)

    def test_verify_many(self):
        segments = [b"s0", b"s1", b"s2"]
        tags = mac_tag_many(b"key", segments, b"fid")
        results = mac_verify_many(b"key", segments, tags, b"fid")
        assert results == [True, True, True]
        tampered = [tags[0], b"\xff\xff\xf0", tags[2]]
        assert mac_verify_many(b"key", segments, tampered, b"fid") == [
            True,
            False,
            True,
        ]

    def test_verify_many_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            mac_verify_many(b"key", [b"a"], [], b"fid")

    def test_empty_batch(self):
        assert mac_tag_many(b"key", [], b"fid") == []
        assert mac_verify_many(b"key", [], [], b"fid") == []
