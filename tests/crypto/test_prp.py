"""Bijectivity and inversion properties of the Feistel PRP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prp import BlockPermutation, FeistelPRP
from repro.errors import ConfigurationError


class TestFeistelPRP:
    def test_domain_size(self):
        assert FeistelPRP(b"k", 4).domain_size == 256

    def test_rejects_few_rounds(self):
        with pytest.raises(ConfigurationError):
            FeistelPRP(b"k", 4, rounds=3)

    def test_bijective_on_small_domain(self):
        prp = FeistelPRP(b"key", 4)
        images = sorted(prp.forward(x) for x in range(256))
        assert images == list(range(256))

    def test_inverse(self):
        prp = FeistelPRP(b"key", 5)
        for x in range(0, prp.domain_size, 37):
            assert prp.inverse(prp.forward(x)) == x

    def test_out_of_domain(self):
        prp = FeistelPRP(b"key", 4)
        with pytest.raises(ConfigurationError):
            prp.forward(256)

    def test_key_sensitivity(self):
        a = FeistelPRP(b"key-a", 8)
        b = FeistelPRP(b"key-b", 8)
        differing = sum(1 for x in range(100) if a.forward(x) != b.forward(x))
        assert differing > 90


class TestBlockPermutation:
    @given(st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_bijective(self, n):
        perm = BlockPermutation(b"key", n)
        assert sorted(perm.forward(i) for i in range(n)) == list(range(n))

    @given(st.integers(1, 500), st.data())
    @settings(max_examples=30, deadline=None)
    def test_inverse(self, n, data):
        perm = BlockPermutation(b"key", n)
        i = data.draw(st.integers(0, n - 1))
        assert perm.inverse(perm.forward(i)) == i
        assert perm.forward(perm.inverse(i)) == i

    def test_permute_list_roundtrip(self):
        perm = BlockPermutation(b"key", 50)
        items = [f"item-{i}" for i in range(50)]
        assert perm.unpermute_list(perm.permute_list(items)) == items

    def test_permute_list_moves_elements(self):
        perm = BlockPermutation(b"key", 100)
        items = list(range(100))
        shuffled = perm.permute_list(items)
        assert shuffled != items  # astronomically unlikely to be identity
        assert sorted(shuffled) == items

    def test_permute_list_length_check(self):
        perm = BlockPermutation(b"key", 10)
        with pytest.raises(ConfigurationError):
            perm.permute_list([1, 2, 3])

    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigurationError):
            BlockPermutation(b"key", 0)

    def test_singleton_domain(self):
        perm = BlockPermutation(b"key", 1)
        assert perm.forward(0) == 0
        assert perm.inverse(0) == 0

    def test_key_changes_permutation(self):
        a = BlockPermutation(b"key-a", 200)
        b = BlockPermutation(b"key-b", 200)
        assert [a.forward(i) for i in range(200)] != [
            b.forward(i) for i in range(200)
        ]
