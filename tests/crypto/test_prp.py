"""Bijectivity and inversion properties of the Feistel PRP.

The batch engine (``forward_many`` / ``permutation_table``) must agree
*exactly* with scalar evaluation: a fresh :class:`BlockPermutation`'s
``forward``/``inverse`` never consult a cached table, so comparing a
fresh-instance scalar sweep against a batch call on a second instance
pins the two code paths to identical outputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prp import BlockPermutation, FeistelPRP
from repro.errors import ConfigurationError


def _scalar_forward(key: bytes, n: int) -> list:
    """Ground-truth scalar sweep on an instance with no cached table."""
    perm = BlockPermutation(key, n)
    return [perm.forward(i) for i in range(n)]


class TestFeistelPRP:
    def test_domain_size(self):
        assert FeistelPRP(b"k", 4).domain_size == 256

    def test_rejects_few_rounds(self):
        with pytest.raises(ConfigurationError):
            FeistelPRP(b"k", 4, rounds=3)

    def test_bijective_on_small_domain(self):
        prp = FeistelPRP(b"key", 4)
        images = sorted(prp.forward(x) for x in range(256))
        assert images == list(range(256))

    def test_inverse(self):
        prp = FeistelPRP(b"key", 5)
        for x in range(0, prp.domain_size, 37):
            assert prp.inverse(prp.forward(x)) == x

    def test_out_of_domain(self):
        prp = FeistelPRP(b"key", 4)
        with pytest.raises(ConfigurationError):
            prp.forward(256)

    def test_key_sensitivity(self):
        a = FeistelPRP(b"key-a", 8)
        b = FeistelPRP(b"key-b", 8)
        differing = sum(1 for x in range(100) if a.forward(x) != b.forward(x))
        assert differing > 90


class TestBlockPermutation:
    @given(st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_bijective(self, n):
        perm = BlockPermutation(b"key", n)
        assert sorted(perm.forward(i) for i in range(n)) == list(range(n))

    @given(st.integers(1, 500), st.data())
    @settings(max_examples=30, deadline=None)
    def test_inverse(self, n, data):
        perm = BlockPermutation(b"key", n)
        i = data.draw(st.integers(0, n - 1))
        assert perm.inverse(perm.forward(i)) == i
        assert perm.forward(perm.inverse(i)) == i

    def test_permute_list_roundtrip(self):
        perm = BlockPermutation(b"key", 50)
        items = [f"item-{i}" for i in range(50)]
        assert perm.unpermute_list(perm.permute_list(items)) == items

    def test_permute_list_moves_elements(self):
        perm = BlockPermutation(b"key", 100)
        items = list(range(100))
        shuffled = perm.permute_list(items)
        assert shuffled != items  # astronomically unlikely to be identity
        assert sorted(shuffled) == items

    def test_permute_list_length_check(self):
        perm = BlockPermutation(b"key", 10)
        with pytest.raises(ConfigurationError):
            perm.permute_list([1, 2, 3])

    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigurationError):
            BlockPermutation(b"key", 0)

    def test_singleton_domain(self):
        perm = BlockPermutation(b"key", 1)
        assert perm.forward(0) == 0
        assert perm.inverse(0) == 0

    def test_key_changes_permutation(self):
        a = BlockPermutation(b"key-a", 200)
        b = BlockPermutation(b"key-b", 200)
        assert [a.forward(i) for i in range(200)] != [
            b.forward(i) for i in range(200)
        ]


class TestFeistelBatch:
    """FeistelPRP.forward_many / inverse_many vs the scalar rounds."""

    @given(st.integers(1, 11), st.binary(min_size=1, max_size=32))
    @settings(max_examples=20, deadline=None)
    def test_forward_many_matches_scalar(self, half_bits, key):
        prp = FeistelPRP(key, half_bits)
        scalar = FeistelPRP(key, half_bits)
        values = list(range(0, prp.domain_size, max(1, prp.domain_size // 64)))
        assert prp.forward_many(values) == [scalar.forward(v) for v in values]

    @given(st.integers(1, 11), st.binary(min_size=1, max_size=32))
    @settings(max_examples=20, deadline=None)
    def test_inverse_many_matches_scalar(self, half_bits, key):
        prp = FeistelPRP(key, half_bits)
        scalar = FeistelPRP(key, half_bits)
        values = list(range(0, prp.domain_size, max(1, prp.domain_size // 64)))
        assert prp.inverse_many(values) == [scalar.inverse(v) for v in values]

    def test_empty_batch(self):
        prp = FeistelPRP(b"key", 4)
        assert prp.forward_many([]) == []
        assert prp.inverse_many([]) == []

    def test_batch_rejects_out_of_domain(self):
        prp = FeistelPRP(b"key", 4)
        with pytest.raises(ConfigurationError):
            prp.forward_many([0, 256])
        with pytest.raises(ConfigurationError):
            prp.inverse_many([-1, 3])

    def test_bijective_via_batch(self):
        # Full-table path: a dense batch over the whole domain must
        # still be a bijection, and invert exactly.
        prp = FeistelPRP(b"key", 5)
        images = prp.forward_many(range(prp.domain_size))
        assert sorted(images) == list(range(prp.domain_size))
        assert prp.inverse_many(images) == list(range(prp.domain_size))

    def test_non_byte_aligned_half_bits(self):
        # half_bits in {1..16} \ {8, 16} exercise the mask/_half_bytes
        # handling off byte boundaries; exhaustive where cheap.
        for half_bits in (1, 2, 3, 5, 7, 9, 12):
            prp = FeistelPRP(b"edge-key", half_bits)
            size = prp.domain_size
            sample = range(size) if size <= 1 << 12 else range(0, size, 997)
            images = prp.forward_many(list(sample))
            assert len(set(images)) == len(list(sample))
            assert prp.inverse_many(images) == list(sample)

    def test_wide_half_reaches_past_one_digest(self):
        # half_bits > 256: the round function needs more than one
        # digest; the truncated-digest bug would zero the top bits of
        # every round output.  Bijectivity survives either way, so
        # check the round outputs themselves.
        prp = FeistelPRP(b"wide-key", 300)
        outputs = prp._round_outputs(0, [1, 2, 3])
        assert any(v >> 256 for v in outputs)
        assert prp.inverse(prp.forward(12345)) == 12345


class TestBlockPermutationBatch:
    """The tentpole contract: batch == scalar, exactly."""

    @given(st.integers(1, 1024), st.binary(min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_forward_many_matches_scalar(self, n, key):
        expected = _scalar_forward(key, n)
        assert BlockPermutation(key, n).forward_many(range(n)) == expected

    @given(st.integers(1, 1024), st.binary(min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_table_and_lists_match_scalar(self, n, key):
        expected = _scalar_forward(key, n)
        perm = BlockPermutation(key, n)
        assert list(perm.permutation_table()) == expected
        items = list(range(n))
        permuted = perm.permute_list(items)
        assert [permuted[p] for p in expected] == items
        assert perm.unpermute_list(permuted) == items

    @given(st.integers(1, 1024), st.binary(min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_inverse_many_matches_scalar(self, n, key):
        scalar = BlockPermutation(key, n)
        expected = [scalar.inverse(i) for i in range(n)]
        assert BlockPermutation(key, n).inverse_many(range(n)) == expected

    def test_dense_sweep_small_sizes(self):
        # Exhaustive over every size up to 64: catches off-by-ones the
        # randomized sweep might skip (n == 1, 2, powers of two, 2^k+1).
        for n in range(1, 65):
            key = b"sweep-%d" % n
            expected = _scalar_forward(key, n)
            perm = BlockPermutation(key, n)
            assert perm.forward_many(range(n)) == expected
            assert sorted(expected) == list(range(n))
            assert perm.inverse_many(expected) == list(range(n))

    def test_scalar_uses_cached_table(self):
        perm = BlockPermutation(b"key", 100)
        before = [perm.forward(i) for i in range(100)]
        perm.permutation_table()
        assert [perm.forward(i) for i in range(100)] == before
        assert [perm.inverse(before[i]) for i in range(100)] == list(range(100))

    def test_batch_rejects_out_of_range(self):
        perm = BlockPermutation(b"key", 10)
        with pytest.raises(ConfigurationError):
            perm.forward_many([0, 10])
        with pytest.raises(ConfigurationError):
            perm.inverse_many([-1])

    def test_empty_batch(self):
        perm = BlockPermutation(b"key", 10)
        assert perm.forward_many([]) == []
        assert perm.inverse_many([]) == []

    def test_degenerate_domains(self):
        # n == 1 and n == 2 are the cycle-walking worst cases: the
        # covering domain (always >= 4) is mostly out of range.
        for n in (1, 2):
            perm = BlockPermutation(b"tiny", n)
            assert sorted(perm.forward_many(range(n))) == list(range(n))
            assert perm.unpermute_list(perm.permute_list(list(range(n)))) == list(
                range(n)
            )
            for i in range(n):
                assert perm.inverse(perm.forward(i)) == i

    def test_duplicate_indices_allowed(self):
        perm = BlockPermutation(b"key", 50)
        out = perm.forward_many([7, 7, 7])
        assert out[0] == out[1] == out[2] == perm.forward(7)
