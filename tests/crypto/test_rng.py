"""Determinism and distribution tests for the HMAC-DRBG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG("seed")
        b = DeterministicRNG("seed")
        assert a.random_bytes(100) == b.random_bytes(100)

    def test_different_seeds_differ(self):
        assert DeterministicRNG("a").random_bytes(32) != DeterministicRNG(
            "b"
        ).random_bytes(32)

    def test_int_and_bytes_seeds(self):
        DeterministicRNG(12345).random_bytes(8)
        DeterministicRNG(b"bytes").random_bytes(8)

    def test_rejects_bad_seed_type(self):
        with pytest.raises(ConfigurationError):
            DeterministicRNG(3.14)

    def test_fork_independence(self):
        parent = DeterministicRNG("seed")
        child_a = parent.fork("a")
        child_b = parent.fork("b")
        assert child_a.random_bytes(32) != child_b.random_bytes(32)

    def test_fork_does_not_disturb_parent(self):
        a = DeterministicRNG("seed")
        b = DeterministicRNG("seed")
        a.fork("child").random_bytes(1000)
        assert a.random_bytes(32) == b.random_bytes(32)

    def test_fork_many_matches_scalar_forks(self):
        """Batch fork derivation is byte-identical to per-label fork()."""
        parent = DeterministicRNG("seed")
        labels = [f"stream-{i}" for i in range(17)] + ["", "challenge-abc"]
        batch = parent.fork_many(labels)
        assert len(batch) == len(labels)
        for label, child in zip(labels, batch):
            assert child.random_bytes(64) == parent.fork(label).random_bytes(64)

    def test_fork_many_does_not_disturb_parent(self):
        a = DeterministicRNG("seed")
        b = DeterministicRNG("seed")
        for child in a.fork_many(["x", "y", "z"]):
            child.random_bytes(100)
        assert a.random_bytes(32) == b.random_bytes(32)

    def test_fork_many_empty(self):
        assert DeterministicRNG("seed").fork_many([]) == []

    def test_chunked_reads_match_bulk(self):
        a = DeterministicRNG("seed")
        b = DeterministicRNG("seed")
        chunked = a.random_bytes(10) + a.random_bytes(22)
        assert chunked == b.random_bytes(32)


class TestIntegerSampling:
    @given(st.integers(1, 10**12))
    @settings(max_examples=50, deadline=None)
    def test_randrange_in_bounds(self, upper):
        value = DeterministicRNG(upper).randrange(upper)
        assert 0 <= value < upper

    def test_randint_inclusive(self):
        rng = DeterministicRNG("seed")
        values = {rng.randint(3, 5) for _ in range(100)}
        assert values == {3, 4, 5}

    def test_randint_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DeterministicRNG("s").randint(5, 4)

    def test_sample_indices_distinct(self):
        rng = DeterministicRNG("seed")
        sample = rng.sample_indices(1000, 100)
        assert len(set(sample)) == 100
        assert all(0 <= i < 1000 for i in sample)

    def test_sample_indices_full_population(self):
        rng = DeterministicRNG("seed")
        assert sorted(rng.sample_indices(10, 10)) == list(range(10))

    def test_sample_indices_huge_population(self):
        rng = DeterministicRNG("seed")
        sample = rng.sample_indices(10**15, 50)
        assert len(set(sample)) == 50

    def test_sample_indices_rejects_oversample(self):
        with pytest.raises(ConfigurationError):
            DeterministicRNG("s").sample_indices(5, 6)

    def test_sample_roughly_uniform(self):
        # Each of 10 buckets should get ~1/10 of mass across many draws.
        rng = DeterministicRNG("uniformity")
        counts = [0] * 10
        for _ in range(500):
            for i in rng.sample_indices(10, 3):
                counts[i] += 1
        expected = 500 * 3 / 10
        assert all(0.7 * expected < c < 1.3 * expected for c in counts), counts

    def test_shuffle_permutes(self):
        rng = DeterministicRNG("seed")
        items = list(range(100))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_choice(self):
        rng = DeterministicRNG("seed")
        assert rng.choice([42]) == 42
        with pytest.raises(ConfigurationError):
            rng.choice([])


class TestContinuousSampling:
    def test_uniform_bounds(self):
        rng = DeterministicRNG("seed")
        for _ in range(200):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_expovariate_positive_with_sane_mean(self):
        rng = DeterministicRNG("seed")
        samples = [rng.expovariate(2.0) for _ in range(2000)]
        assert all(s >= 0 for s in samples)
        mean = sum(samples) / len(samples)
        assert 0.4 < mean < 0.6  # true mean 0.5

    def test_gauss_moments(self):
        rng = DeterministicRNG("seed")
        samples = [rng.gauss(10.0, 2.0) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert 9.8 < mean < 10.2
        assert 3.0 < var < 5.0

    def test_bernoulli_rate(self):
        rng = DeterministicRNG("seed")
        hits = sum(rng.bernoulli(0.3) for _ in range(3000))
        assert 800 < hits < 1000

    def test_bernoulli_validates(self):
        with pytest.raises(ConfigurationError):
            DeterministicRNG("s").bernoulli(1.5)

    def test_expovariate_validates(self):
        with pytest.raises(ConfigurationError):
            DeterministicRNG("s").expovariate(0.0)
