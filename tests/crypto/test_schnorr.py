"""Schnorr signature tests on the embedded test group."""

import pytest

from repro.crypto.schnorr import (
    SchnorrGroup,
    SchnorrKeyPair,
    TEST_GROUP,
    require_valid_signature,
    schnorr_sign,
    schnorr_verify,
)
from repro.errors import ConfigurationError, SignatureError


@pytest.fixture(scope="module")
def keypair():
    return SchnorrKeyPair.generate(TEST_GROUP, seed=b"unit-test")


class TestGroupParameters:
    def test_test_group_valid(self):
        TEST_GROUP.validate()

    def test_generator_has_order_q(self):
        assert pow(TEST_GROUP.g, TEST_GROUP.q, TEST_GROUP.p) == 1

    def test_invalid_group_rejected(self):
        with pytest.raises(ConfigurationError):
            SchnorrGroup(p=23, q=7, g=2).validate()  # 7 does not divide 22


class TestKeyGeneration:
    def test_seeded_is_deterministic(self):
        a = SchnorrKeyPair.generate(TEST_GROUP, seed=b"x")
        b = SchnorrKeyPair.generate(TEST_GROUP, seed=b"x")
        assert a.private.x == b.private.x

    def test_different_seeds_differ(self):
        a = SchnorrKeyPair.generate(TEST_GROUP, seed=b"x")
        b = SchnorrKeyPair.generate(TEST_GROUP, seed=b"y")
        assert a.private.x != b.private.x

    def test_public_matches_private(self, keypair):
        assert keypair.public == keypair.private.public_key()

    def test_private_in_range(self, keypair):
        assert 1 <= keypair.private.x < TEST_GROUP.q


class TestSignVerify:
    def test_roundtrip(self, keypair):
        signature = schnorr_sign(keypair.private, b"message")
        assert schnorr_verify(keypair.public, b"message", signature)

    def test_rejects_modified_message(self, keypair):
        signature = schnorr_sign(keypair.private, b"message")
        assert not schnorr_verify(keypair.public, b"messagE", signature)

    def test_rejects_wrong_key(self, keypair):
        other = SchnorrKeyPair.generate(TEST_GROUP, seed=b"other")
        signature = schnorr_sign(keypair.private, b"message")
        assert not schnorr_verify(other.public, b"message", signature)

    def test_rejects_tampered_signature(self, keypair):
        e, s = schnorr_sign(keypair.private, b"message")
        assert not schnorr_verify(keypair.public, b"message", (e, (s + 1) % TEST_GROUP.q))
        assert not schnorr_verify(keypair.public, b"message", ((e + 1) % TEST_GROUP.q, s))

    def test_rejects_out_of_range_signature(self, keypair):
        assert not schnorr_verify(keypair.public, b"m", (TEST_GROUP.q, 1))
        assert not schnorr_verify(keypair.public, b"m", (-1, 1))

    def test_rejects_malformed_signature(self, keypair):
        assert not schnorr_verify(keypair.public, b"m", None)
        assert not schnorr_verify(keypair.public, b"m", (1, 2, 3))

    def test_deterministic_nonce(self, keypair):
        assert schnorr_sign(keypair.private, b"m") == schnorr_sign(
            keypair.private, b"m"
        )

    def test_distinct_messages_distinct_signatures(self, keypair):
        assert schnorr_sign(keypair.private, b"m1") != schnorr_sign(
            keypair.private, b"m2"
        )

    def test_require_valid_raises(self, keypair):
        with pytest.raises(SignatureError):
            require_valid_signature(keypair.public, b"m", (1, 1))
