"""Tests for the HMAC-SHA256 PRF wrappers."""

import hashlib
import hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prf import DIGEST_SIZE, prf, prf_int, prf_many, prf_stream
from repro.errors import ConfigurationError


class TestPRF:
    def test_matches_hmac_construction(self):
        key, label, message = b"k", b"label", b"msg"
        expected = hmac.new(key, b"label\x00msg", hashlib.sha256).digest()
        assert prf(key, label, message) == expected

    def test_rejects_nul_in_label(self):
        with pytest.raises(ConfigurationError):
            prf(b"k", b"bad\x00label", b"m")

    def test_label_separates_domains(self):
        assert prf(b"k", b"a", b"m") != prf(b"k", b"b", b"m")

    def test_deterministic(self):
        assert prf(b"k", b"l", b"m") == prf(b"k", b"l", b"m")


class TestPRFMany:
    def test_matches_scalar_prf(self):
        messages = [b"", b"a", b"bb", bytes(100), b"a" * 1000]
        assert list(prf_many(b"k", b"l", messages)) == [
            prf(b"k", b"l", m) for m in messages
        ]

    def test_empty(self):
        assert list(prf_many(b"k", b"l", [])) == []

    def test_rejects_nul_in_label(self):
        with pytest.raises(ConfigurationError):
            list(prf_many(b"k", b"bad\x00label", [b"m"]))

    @given(
        st.binary(min_size=1, max_size=64),
        st.lists(st.binary(max_size=32), max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_scalar_equivalence_property(self, key, messages):
        assert list(prf_many(key, b"label", messages)) == [
            prf(key, b"label", m) for m in messages
        ]


class TestPRFStream:
    def test_length_exact(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(prf_stream(b"k", b"l", b"m", n)) == n

    def test_prefix_consistency(self):
        long = prf_stream(b"k", b"l", b"m", 100)
        short = prf_stream(b"k", b"l", b"m", 40)
        assert long[:40] == short

    def test_rejects_negative_length(self):
        with pytest.raises(ConfigurationError):
            prf_stream(b"k", b"l", b"m", -1)


class TestPRFInt:
    def test_upper_one_is_zero(self):
        assert prf_int(b"k", b"l", b"m", 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            prf_int(b"k", b"l", b"m", 0)

    @given(st.integers(2, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_in_range(self, upper):
        value = prf_int(b"key", b"label", upper.to_bytes(4, "big"), upper)
        assert 0 <= value < upper

    def test_roughly_uniform(self):
        # Chi-squared-style sanity: 1000 draws over 10 buckets should
        # not concentrate pathologically.
        counts = [0] * 10
        for i in range(1000):
            counts[prf_int(b"k", b"l", i.to_bytes(4, "big"), 10)] += 1
        assert all(60 <= c <= 140 for c in counts), counts

    def test_wide_bounds_reach_past_one_digest(self):
        # Regression: the sampling chunk used to be truncated to one
        # 32-byte digest, so for upper > 2^256 the mask reached past
        # the sampled bytes and values >= 2^256 were never produced.
        upper = 1 << 300
        draws = [
            prf_int(b"k", b"wide", i.to_bytes(4, "big"), upper)
            for i in range(8)
        ]
        assert all(0 <= v < upper for v in draws)
        # A uniform draw from [0, 2^300) is below 2^256 w.p. 2^-44;
        # eight independent draws all landing there would mean the bug.
        assert max(draws) >= 1 << (8 * DIGEST_SIZE)

    def test_wide_bounds_cover_top_bits(self):
        # The top byte beyond the first digest must actually vary.
        upper = 1 << 272
        top_bytes = {
            prf_int(b"k", b"wide2", i.to_bytes(4, "big"), upper)
            >> (8 * DIGEST_SIZE)
            for i in range(64)
        }
        assert len(top_bytes) > 1

    def test_narrow_bounds_unchanged_by_wide_fix(self):
        # The <= 32-byte path is the original construction; pin the
        # value (computed with the seed implementation) so
        # protocol-visible outputs cannot drift silently.
        assert prf_int(b"key", b"label", b"msg", 1000) == 419
        assert 0 <= prf_int(b"key", b"label", b"msg", 1 << 256) < 1 << 256
