"""Tests for the HMAC-SHA256 PRF wrappers."""

import hashlib
import hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prf import prf, prf_int, prf_stream
from repro.errors import ConfigurationError


class TestPRF:
    def test_matches_hmac_construction(self):
        key, label, message = b"k", b"label", b"msg"
        expected = hmac.new(key, b"label\x00msg", hashlib.sha256).digest()
        assert prf(key, label, message) == expected

    def test_rejects_nul_in_label(self):
        with pytest.raises(ConfigurationError):
            prf(b"k", b"bad\x00label", b"m")

    def test_label_separates_domains(self):
        assert prf(b"k", b"a", b"m") != prf(b"k", b"b", b"m")

    def test_deterministic(self):
        assert prf(b"k", b"l", b"m") == prf(b"k", b"l", b"m")


class TestPRFStream:
    def test_length_exact(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(prf_stream(b"k", b"l", b"m", n)) == n

    def test_prefix_consistency(self):
        long = prf_stream(b"k", b"l", b"m", 100)
        short = prf_stream(b"k", b"l", b"m", 40)
        assert long[:40] == short

    def test_rejects_negative_length(self):
        with pytest.raises(ConfigurationError):
            prf_stream(b"k", b"l", b"m", -1)


class TestPRFInt:
    def test_upper_one_is_zero(self):
        assert prf_int(b"k", b"l", b"m", 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            prf_int(b"k", b"l", b"m", 0)

    @given(st.integers(2, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_in_range(self, upper):
        value = prf_int(b"key", b"label", upper.to_bytes(4, "big"), upper)
        assert 0 <= value < upper

    def test_roughly_uniform(self):
        # Chi-squared-style sanity: 1000 draws over 10 buckets should
        # not concentrate pathologically.
        counts = [0] * 10
        for i in range(1000):
            counts[prf_int(b"k", b"l", i.to_bytes(4, "big"), 10)] += 1
        assert all(60 <= c <= 140 for c in counts), counts
