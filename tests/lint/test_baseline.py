"""Baseline semantics: absorb, expire, scope, and update."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import Baseline, BaselineEntry, run_lint, update_baseline

from tests.lint.conftest import SRC

pytestmark = pytest.mark.lint

BAD = "import time\nstamp = time.time()\n"
GOOD = "def tick(clock):\n    return clock.now_ms()\n"


def entry_for(finding, justification="vetted"):
    return BaselineEntry(
        rule=finding.rule,
        path=finding.path,
        snippet=finding.snippet,
        justification=justification,
        line=finding.line,
    )


class TestApply:
    def test_matching_entry_absorbs_finding(self, lint_tree):
        first = lint_tree({SRC: BAD})
        baseline = Baseline((entry_for(first.findings[0]),))
        report = lint_tree({}, baseline=baseline)
        assert report.ok
        assert report.findings == []
        assert report.n_baselined == 1
        assert report.stale_baseline == []

    def test_entry_survives_line_drift(self, lint_tree):
        first = lint_tree({SRC: BAD})
        baseline = Baseline((entry_for(first.findings[0]),))
        # Same offending line, pushed two lines down: still absorbed.
        report = lint_tree(
            {SRC: "import time\npad_ms = 1\npad2_ms = 2\nstamp = time.time()\n"},
            baseline=baseline,
        )
        assert report.ok
        assert report.n_baselined == 1

    def test_stale_entry_fails_the_run(self, lint_tree):
        first = lint_tree({SRC: BAD})
        matching = entry_for(first.findings[0])
        bogus = BaselineEntry(
            rule="SIM001",
            path=first.findings[0].path,
            snippet="this_line_was_fixed = time.time()",
            justification="stale",
        )
        report = lint_tree({}, baseline=Baseline((matching, bogus)))
        assert not report.ok
        assert report.findings == []
        assert report.stale_baseline == [bogus]
        assert "stale" in report.render()

    def test_one_entry_absorbs_only_one_duplicate(self, lint_tree):
        # Two identical offending lines -> two findings, one entry.
        first = lint_tree({SRC: BAD + "stamp = time.time()\n"})
        assert len(first.findings) == 2
        baseline = Baseline((entry_for(first.findings[0]),))
        report = lint_tree({}, baseline=baseline)
        assert len(report.findings) == 1
        assert report.n_baselined == 1

    def test_unscanned_path_is_out_of_scope_not_stale(
        self, lint_tree, tmp_path
    ):
        lint_tree({SRC: GOOD})
        elsewhere = BaselineEntry(
            rule="SIM001",
            path="somewhere/else.py",
            snippet="stamp = time.time()",
            justification="different subtree",
        )
        report = run_lint(
            (str(tmp_path),), baseline=Baseline((elsewhere,))
        )
        assert report.ok
        assert report.stale_baseline == []

    def test_unselected_rule_is_out_of_scope_not_stale(self, lint_tree):
        first = lint_tree({SRC: BAD})
        baseline = Baseline((entry_for(first.findings[0]),))
        # Scanning only CRY leaves the SIM001 entry unjudged.
        report = lint_tree({}, rule_ids=("CRY",), baseline=baseline)
        assert report.ok
        assert report.stale_baseline == []


class TestLoadSave:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        entry = BaselineEntry(
            rule="SIM001", path="a.py", snippet="x", justification="why", line=3
        )
        Baseline((entry,)).save(path)
        assert Baseline.load(path).entries == (entry,)

    def test_malformed_json_is_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            Baseline.load(path)

    def test_wrong_version_is_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError, match="version"):
            Baseline.load(path)

    def test_entry_missing_keys_is_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"rule": "SIM001"}]})
        )
        with pytest.raises(ConfigurationError, match="entry 0"):
            Baseline.load(path)


class TestUpdate:
    def test_update_records_current_findings(self, lint_tree, tmp_path):
        lint_tree({SRC: BAD})
        baseline_path = tmp_path / "baseline.json"
        refreshed = update_baseline((str(tmp_path),), baseline_path)
        assert len(refreshed.entries) == 1
        assert refreshed.entries[0].rule == "SIM001"
        assert refreshed.entries[0].justification == "TODO: justify"
        report = run_lint(
            (str(tmp_path),), baseline=Baseline.load(baseline_path)
        )
        assert report.ok

    def test_update_preserves_surviving_justifications(
        self, lint_tree, tmp_path
    ):
        lint_tree({SRC: BAD})
        baseline_path = tmp_path / "baseline.json"
        update_baseline((str(tmp_path),), baseline_path)
        payload = json.loads(baseline_path.read_text())
        payload["entries"][0]["justification"] = "reviewed 2026-08"
        baseline_path.write_text(json.dumps(payload))
        refreshed = update_baseline((str(tmp_path),), baseline_path)
        assert refreshed.entries[0].justification == "reviewed 2026-08"

    def test_update_drops_fixed_findings(self, lint_tree, tmp_path):
        lint_tree({SRC: BAD})
        baseline_path = tmp_path / "baseline.json"
        update_baseline((str(tmp_path),), baseline_path)
        lint_tree({SRC: GOOD})  # the violation is fixed
        refreshed = update_baseline((str(tmp_path),), baseline_path)
        assert refreshed.entries == ()
