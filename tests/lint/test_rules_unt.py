"""UNT rules: unit-suffix naming and mixed-unit arithmetic."""

import pytest

from tests.lint.conftest import SRC, rule_ids_of

pytestmark = pytest.mark.lint


class TestUNT001UnitSuffix:
    def test_bare_timeout_assignment_flagged(self, lint_tree):
        report = lint_tree({SRC: "timeout = 5\n"})
        assert rule_ids_of(report) == ["UNT001"]
        assert "timeout" in report.findings[0].message

    def test_bare_delay_parameter_flagged(self, lint_tree):
        report = lint_tree({SRC: "def wait(delay):\n    return delay\n"})
        assert rule_ids_of(report) == ["UNT001"]

    def test_bare_attribute_assignment_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "class Probe:\n"
                  "    def __init__(self):\n"
                  "        self.rtt = 0.0\n"}
        )
        assert rule_ids_of(report) == ["UNT001"]

    def test_tuple_unpacking_flags_each_name(self, lint_tree):
        report = lint_tree({SRC: "rtt, distance = 1.0, 2.0\n"})
        assert rule_ids_of(report) == ["UNT001", "UNT001"]

    def test_suffixed_names_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "timeout_ms = 5.0\n"
                  "distance_km = 12.5\n"
                  "radius_blocks = 16\n"
                  "setup_seconds = 0.25\n"
                  "def wait(delay_ms, deadline_slots):\n"
                  "    return delay_ms\n"}
        )
        assert report.findings == []

    def test_self_and_cls_exempt(self, lint_tree):
        report = lint_tree(
            {SRC: "class Probe:\n"
                  "    def ping(self, rtt_ms):\n"
                  "        return rtt_ms\n"}
        )
        assert report.findings == []

    def test_non_unit_names_allowed(self, lint_tree):
        report = lint_tree({SRC: "count = 3\nlabel = 'x'\n"})
        assert report.findings == []


class TestUNT002MixedUnits:
    def test_add_ms_to_seconds_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def total(rtt_ms, setup_seconds):\n"
                  "    return rtt_ms + setup_seconds\n"}
        )
        assert rule_ids_of(report) == ["UNT002"]
        assert "conversion" in report.findings[0].message

    def test_compare_ms_to_hours_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def late(delay_ms, window_hours):\n"
                  "    return delay_ms > window_hours\n"}
        )
        assert rule_ids_of(report) == ["UNT002"]

    def test_assign_seconds_to_ms_name_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def convert(setup_seconds):\n"
                  "    total_ms = setup_seconds\n"
                  "    return total_ms\n"}
        )
        assert rule_ids_of(report) == ["UNT002"]

    def test_km_plus_metres_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def span(leg_km, gap_m):\n"
                  "    return leg_km + gap_m\n"}
        )
        assert rule_ids_of(report) == ["UNT002"]

    def test_explicit_conversion_allowed(self, lint_tree):
        # Multiplication is what a conversion looks like.
        report = lint_tree(
            {SRC: "def convert(setup_seconds):\n"
                  "    total_ms = setup_seconds * 1000.0\n"
                  "    return total_ms\n"}
        )
        assert report.findings == []

    def test_same_unit_arithmetic_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def total(a_ms, b_ms):\n    return a_ms + b_ms\n"}
        )
        assert report.findings == []

    def test_time_vs_distance_not_conflated(self, lint_tree):
        # Different dimensions: not a unit mix-up this rule judges.
        report = lint_tree(
            {SRC: "def weird(a_ms, b_km):\n    return a_ms > b_km\n"}
        )
        assert report.findings == []
