"""SIM rules: wall clocks and unseeded randomness."""

import pytest

from tests.lint.conftest import SCRIPT, SRC, rule_ids_of

pytestmark = pytest.mark.lint


class TestSIM001WallClock:
    def test_time_time_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\nstamp = time.time()\n"}
        )
        assert rule_ids_of(report) == ["SIM001"]
        assert "SimClock" in report.findings[0].message

    def test_perf_counter_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\nt0 = time.perf_counter()\n"}
        )
        assert rule_ids_of(report) == ["SIM001"]

    def test_datetime_now_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "import datetime\nwhen = datetime.datetime.now()\n"}
        )
        assert rule_ids_of(report) == ["SIM001"]

    def test_wall_clock_in_benchmark_allowed(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "import time\nt0 = time.perf_counter()\n"}
        )
        assert report.findings == []

    def test_injected_clock_in_src_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def tick(clock):\n    return clock.now_ms()\n"}
        )
        assert report.findings == []

    def test_service_package_allowlisted(self, lint_tree):
        # repro.service is deployment code: flush deadlines and health
        # probes legitimately read the host clock (docs/INVARIANTS.md).
        report = lint_tree(
            {
                "src/repro/service/daemon.py": (
                    "import time\nnow_ms = time.monotonic() * 1000.0\n"
                )
            }
        )
        assert report.findings == []

    def test_allowlist_does_not_leak_to_sibling_packages(self, lint_tree):
        # The exemption is the exact package, not a name prefix.
        report = lint_tree(
            {
                "src/repro/servicex/mod.py": (
                    "import time\nstamp = time.monotonic()\n"
                )
            }
        )
        assert rule_ids_of(report) == ["SIM001"]

    def test_obs_package_not_allowlisted(self, lint_tree):
        # The observability plane is NOT exempt: its wall domain must
        # funnel through util/wallclock.wall_seconds(), the tree's one
        # pragma'd read.  A raw time.time() in repro.obs still fails.
        report = lint_tree(
            {
                "src/repro/obs/metrics.py": (
                    "import time\nstamp = time.time()\n"
                )
            }
        )
        assert rule_ids_of(report) == ["SIM001"]

    def test_obs_wall_clock_via_shim_allowed(self, lint_tree):
        # ...while the sanctioned spelling (importing the shim) is
        # clean: SIM001 matches direct time.*/datetime.* calls only.
        report = lint_tree(
            {
                "src/repro/obs/tracing.py": (
                    "from repro.util.wallclock import wall_seconds\n"
                    "start_s = wall_seconds()\n"
                )
            }
        )
        assert report.findings == []


class TestSIM002Randomness:
    def test_import_random_in_src_flagged(self, lint_tree):
        report = lint_tree({SRC: "import random\n"})
        assert rule_ids_of(report) == ["SIM002"]

    def test_from_random_import_in_src_flagged(self, lint_tree):
        report = lint_tree({SRC: "from random import choice\n"})
        assert rule_ids_of(report) == ["SIM002"]

    def test_seeded_random_in_src_still_flagged(self, lint_tree):
        # Even seeded, random.Random bypasses the PRF streams in src.
        report = lint_tree(
            {SRC: "import random  # repro: lint-ok[SIM002] -- fixture\n"
                  "rng = random.Random(42)\n"}
        )
        assert rule_ids_of(report) == ["SIM002"]

    def test_global_random_fn_in_benchmark_flagged(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "import random\nx = random.random()\n"}
        )
        assert rule_ids_of(report) == ["SIM002"]
        assert "global" in report.findings[0].message

    def test_unseeded_random_in_benchmark_flagged(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "import random\nrng = random.Random()\n"}
        )
        assert rule_ids_of(report) == ["SIM002"]
        assert "unseeded" in report.findings[0].message

    def test_seeded_random_in_benchmark_allowed(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "import random\nrng = random.Random(42)\n"}
        )
        assert report.findings == []
