"""Pragma suppression: scope, families, and typo rejection."""

import pytest

from repro.errors import ConfigurationError

from tests.lint.conftest import SRC

pytestmark = pytest.mark.lint

BAD_LINE = "stamp = time.time()"


class TestPragmaScope:
    def test_same_line_pragma_suppresses(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  f"{BAD_LINE}  # repro: lint-ok[SIM001] -- fixture\n"}
        )
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_standalone_pragma_covers_next_line(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  "# repro: lint-ok[SIM001] -- fixture\n"
                  f"{BAD_LINE}\n"}
        )
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_standalone_pragma_does_not_cover_two_lines_down(
        self, lint_tree
    ):
        report = lint_tree(
            {SRC: "import time\n"
                  "# repro: lint-ok[SIM001] -- fixture\n"
                  "ok_ms = 1\n"
                  f"{BAD_LINE}\n"}
        )
        assert [f.rule for f in report.findings] == ["SIM001"]

    def test_family_pragma_suppresses_member_rule(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  f"{BAD_LINE}  # repro: lint-ok[SIM] -- fixture\n"}
        )
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  f"{BAD_LINE}  # repro: lint-ok[CRY001] -- wrong rule\n"}
        )
        assert [f.rule for f in report.findings] == ["SIM001"]
        assert report.n_suppressed == 0

    def test_multiple_rules_in_one_pragma(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  "timeout = time.time()"
                  "  # repro: lint-ok[SIM001, UNT001] -- fixture\n"}
        )
        assert report.findings == []
        assert report.n_suppressed == 2


class TestPragmaValidation:
    def test_unknown_rule_in_pragma_is_configuration_error(
        self, lint_tree
    ):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            lint_tree({SRC: "x = 1  # repro: lint-ok[NOPE123] -- typo\n"})

    def test_empty_pragma_is_configuration_error(self, lint_tree):
        with pytest.raises(ConfigurationError, match="empty"):
            lint_tree({SRC: "x = 1  # repro: lint-ok[ ] -- nothing\n"})
