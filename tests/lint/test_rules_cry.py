"""CRY rules: constant-time compares, entropy scope, key exposure."""

import pytest

from tests.lint.conftest import SCRIPT, SRC, rule_ids_of

pytestmark = pytest.mark.lint

CRYPTO = "src/repro/crypto/demo.py"


class TestCRY001VariableTimeCompare:
    def test_tag_equality_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(tag, expected):\n    return tag == expected\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]
        assert "compare_digest" in report.findings[0].message

    def test_digest_call_equality_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(h, want):\n    return h.digest() == want\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]

    def test_signature_inequality_flagged(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "def bad(signature, other):\n"
                     "    return signature != other\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]

    def test_none_check_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def absent(tag):\n    return tag == None  # noqa: E711\n"}
        )
        assert report.findings == []

    def test_non_digest_equality_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def same(count, want):\n    return count == want\n"}
        )
        assert report.findings == []

    def test_compare_digest_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "import hmac\n"
                  "def check(tag, expected):\n"
                  "    return hmac.compare_digest(tag, expected)\n"}
        )
        assert report.findings == []

    def test_prf_derived_compare_flagged(self, lint_tree):
        # The sentinel-POR bug shape: neither side is named like a
        # digest, but the expected value is a keyed PRF output.
        report = lint_tree(
            {SRC: "def check(self, block, sentinel_id):\n"
                  "    return block != self._sentinel_value(sentinel_id)\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]
        assert "PRF-derived" in report.findings[0].message

    def test_prf_stream_compare_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "from repro.crypto.prf import prf_stream\n"
                  "def check(key, got):\n"
                  "    return got == prf_stream(key, b'x', b'y', 16)\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]

    def test_kdf_compare_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(got, material):\n"
                  "    return got == kdf_expand(material)\n"}
        )
        assert rule_ids_of(report) == ["CRY001"]

    def test_ordinary_helper_call_allowed(self, lint_tree):
        # Tight name pattern: a helper that merely computes a count is
        # not PRF-derived material.
        report = lint_tree(
            {SRC: "def check(self, got):\n"
                  "    return got == self.expected_blocks()\n"}
        )
        assert report.findings == []

    def test_prf_named_variable_not_flagged(self, lint_tree):
        # Only *calls* mark the expected side as freshly PRF-derived;
        # plain variables stay governed by the digest-name pattern.
        report = lint_tree(
            {SRC: "def check(prf_label, want):\n"
                  "    return prf_label == want\n"}
        )
        assert report.findings == []


class TestCRY002EntropyScope:
    def test_secrets_outside_crypto_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "import secrets\nnonce = secrets.token_bytes(16)\n"}
        )
        assert rule_ids_of(report) == ["CRY002"]

    def test_os_urandom_in_benchmark_flagged(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "import os\npayload = os.urandom(64)\n"}
        )
        assert rule_ids_of(report) == ["CRY002"]

    def test_uuid4_outside_crypto_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "import uuid\nrun_id = uuid.uuid4()\n"}
        )
        assert rule_ids_of(report) == ["CRY002"]

    def test_entropy_inside_crypto_allowed(self, lint_tree):
        report = lint_tree(
            {CRYPTO: "import os\nseed = os.urandom(32)\n"}
        )
        assert report.findings == []


class TestCRY003KeyExposure:
    def test_plain_key_field_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Keys:\n"
                  "    mac_key: bytes\n"}
        )
        assert rule_ids_of(report) == ["CRY003"]
        assert "repr=False" in report.findings[0].message

    def test_repr_false_key_field_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "from dataclasses import dataclass, field\n"
                  "@dataclass\n"
                  "class Keys:\n"
                  "    mac_key: bytes = field(repr=False)\n"}
        )
        assert report.findings == []

    def test_public_key_field_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Device:\n"
                  "    public_key: bytes\n"}
        )
        assert report.findings == []

    def test_qualified_public_key_field_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Job:\n"
                  "    verifier_public_key: bytes\n"}
        )
        assert report.findings == []

    def test_to_dict_emitting_key_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "class Record:\n"
                  "    def to_dict(self):\n"
                  "        return {'mac_key': self.mac_key}\n"}
        )
        assert "CRY003" in rule_ids_of(report)

    def test_repr_reading_secret_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "class Vault:\n"
                  "    def __repr__(self):\n"
                  "        return f'Vault({self.shared_secret!r})'\n"}
        )
        assert "CRY003" in rule_ids_of(report)

    def test_to_dict_without_keys_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "class Report:\n"
                  "    def to_dict(self):\n"
                  "        return {'n_files': self.n_files}\n"}
        )
        assert report.findings == []
