"""VEC001: HAS_NUMPY guards must leave the scalar path reachable."""

import pytest

from tests.lint.conftest import SRC, rule_ids_of

pytestmark = pytest.mark.lint


class TestVEC001ScalarFallback:
    def test_trailing_positive_guard_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "HAS_NUMPY = True\n"
                  "def encode(data):\n"
                  "    if HAS_NUMPY:\n"
                  "        return _vector_encode(data)\n"}
        )
        assert rule_ids_of(report) == ["VEC001"]
        assert "falls through" in report.findings[0].message

    def test_guard_with_following_scalar_path_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "HAS_NUMPY = True\n"
                  "def encode(data):\n"
                  "    if HAS_NUMPY:\n"
                  "        return _vector_encode(data)\n"
                  "    return _scalar_encode(data)\n"}
        )
        assert report.findings == []

    def test_guard_with_else_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "HAS_NUMPY = True\n"
                  "def encode(data):\n"
                  "    if HAS_NUMPY:\n"
                  "        out = _vector_encode(data)\n"
                  "    else:\n"
                  "        out = _scalar_encode(data)\n"
                  "    return out\n"}
        )
        assert report.findings == []

    def test_silent_negative_guard_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "HAS_NUMPY = True\n"
                  "def warm_tables():\n"
                  "    if not HAS_NUMPY:\n"
                  "        pass\n"}
        )
        assert rule_ids_of(report) == ["VEC001"]
        assert "silently skips" in report.findings[0].message

    def test_negative_guard_raising_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "from repro.errors import ConfigurationError\n"
                  "HAS_NUMPY = True\n"
                  "def require_numpy():\n"
                  "    if not HAS_NUMPY:\n"
                  "        raise ConfigurationError('install the fast extra')\n"}
        )
        assert report.findings == []

    def test_negative_guard_returning_value_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "HAS_NUMPY = True\n"
                  "def encode(data):\n"
                  "    if not HAS_NUMPY:\n"
                  "        return _scalar_encode(data)\n"
                  "    return _vector_encode(data)\n"}
        )
        assert report.findings == []

    def test_attribute_flag_reference_flagged(self, lint_tree):
        # `mod.HAS_NUMPY` spellings count too.
        report = lint_tree(
            {SRC: "import repro.gf.gf256_vec as vec\n"
                  "def encode(data):\n"
                  "    if vec.HAS_NUMPY:\n"
                  "        return _vector_encode(data)\n"}
        )
        assert rule_ids_of(report) == ["VEC001"]

    def test_unrelated_if_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def encode(data, fast):\n"
                  "    if fast:\n"
                  "        return data\n"}
        )
        assert report.findings == []
