"""Engine plumbing: discovery, registry resolution, module mapping."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import RULES, discover_files, get_rule, resolve_rules, run_lint
from repro.lint.registry import module_name_for

from tests.lint.conftest import SRC

pytestmark = pytest.mark.lint


class TestRegistry:
    def test_all_rule_families_registered(self):
        families = {rule_id.rstrip("0123456789") for rule_id in RULES}
        assert families == {"SIM", "CRY", "ERR", "UNT", "VEC"}

    def test_every_rule_has_explainable_metadata(self):
        for rule in RULES.values():
            assert rule.id and rule.title and rule.rationale
            assert rule.node_types

    def test_resolve_family_expands_to_members(self):
        selected = resolve_rules(("SIM",))
        assert set(selected) == {"SIM001", "SIM002"}

    def test_resolve_exact_id(self):
        assert set(resolve_rules(("CRY001",))) == {"CRY001"}

    def test_resolve_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            resolve_rules(("BOGUS",))

    def test_get_rule_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("BOGUS")


class TestDiscovery:
    def test_overlapping_args_deduplicate(self, tmp_path):
        target = tmp_path / SRC
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        files = discover_files((str(tmp_path), str(target)))
        assert len(files) == 1

    def test_non_python_file_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(ConfigurationError, match="not a python file"):
            discover_files((str(target),))

    def test_empty_path_list_rejected(self):
        with pytest.raises(ConfigurationError, match="no paths"):
            discover_files(())

    def test_n_files_counts_scanned_files(self, lint_tree):
        report = lint_tree(
            {SRC: "x = 1\n", "src/repro/demo/other.py": "y = 2\n"}
        )
        assert report.n_files == 2


class TestModuleMapping:
    def test_src_file_maps_to_dotted_module(self):
        assert (
            module_name_for("src/repro/netsim/clock.py")
            == "repro.netsim.clock"
        )

    def test_init_maps_to_package(self):
        assert module_name_for("src/repro/crypto/__init__.py") == "repro.crypto"

    def test_tmp_tree_behaves_like_real_layout(self):
        assert (
            module_name_for("/tmp/pytest-1/src/repro/demo/mod.py")
            == "repro.demo.mod"
        )

    def test_non_src_path_is_script(self):
        assert module_name_for("benchmarks/bench_rs.py") is None


class TestReport:
    def test_render_summarises_counts(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  "stamp = time.time()\n"
                  "ok = time.time()  # repro: lint-ok[SIM001] -- fixture\n"}
        )
        rendered = report.render()
        assert "1 finding(s)" in rendered
        assert "1 pragma-suppressed" in rendered
        assert "SIM001" in rendered

    def test_findings_sorted_by_position(self, lint_tree):
        report = lint_tree(
            {SRC: "import time\n"
                  "timeout = 1\n"
                  "stamp = time.time()\n"}
        )
        assert [f.rule for f in report.findings] == ["UNT001", "SIM001"]
        assert [f.line for f in report.findings] == [2, 3]

    def test_rule_subset_recorded_in_report(self, lint_tree):
        report = lint_tree({SRC: "x = 1\n"}, rule_ids=("ERR", "VEC001"))
        assert report.rules == ("ERR001", "ERR002", "VEC001")


class TestUnreadableInput:
    def test_syntax_error_is_configuration_error(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def broken(:\n")
        with pytest.raises(ConfigurationError, match="syntax error"):
            run_lint((str(target),))
