"""Regression tests for violations the lint sweep fixed.

These pin the *behavioral* outcome of the CRY003 fixes: key material
must not surface in reprs regardless of what the linter says.
"""

import pytest

from repro.cloud.sla import SLAPolicy
from repro.cloud.tpa import FileRecord
from repro.geo.coords import GeoPoint
from repro.geo.regions import CircularRegion
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys

pytestmark = pytest.mark.lint


class TestKeyReprHygiene:
    def test_por_keys_repr_hides_all_keys(self):
        keys = PORKeys.derive(b"master-key-0123456789abcdef")
        rendered = repr(keys)
        for secret in (
            keys.encryption_key,
            keys.permutation_key,
            keys.mac_key,
        ):
            assert repr(secret) not in rendered
            assert secret.hex() not in rendered
        assert "encryption_key" not in rendered

    def test_file_record_repr_hides_mac_key(self):
        record = FileRecord(
            file_id=b"f1",
            n_segments=4,
            mac_key=b"super-secret-mac-key-bytes",
            params=TEST_PARAMS,
            sla=SLAPolicy(
                region=CircularRegion(GeoPoint(-27.5, 153.0), 100.0)
            ),
        )
        rendered = repr(record)
        assert "super-secret" not in rendered
        assert "mac_key" not in rendered
        # Non-secret fields still render normally.
        assert "n_segments=4" in rendered
