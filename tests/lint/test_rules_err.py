"""ERR rules: the error-policy contract (ReproError, no asserts)."""

import pytest

from tests.lint.conftest import SCRIPT, SRC, rule_ids_of

pytestmark = pytest.mark.lint


class TestERR001BuiltinRaise:
    def test_raise_valueerror_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(n):\n"
                  "    if n < 0:\n"
                  "        raise ValueError('negative')\n"}
        )
        assert rule_ids_of(report) == ["ERR001"]
        assert "ConfigurationError" in report.findings[0].message

    def test_raise_typeerror_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(n):\n"
                  "    raise TypeError('bad type')\n"}
        )
        assert rule_ids_of(report) == ["ERR001"]

    def test_raise_configurationerror_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "from repro.errors import ConfigurationError\n"
                  "def check(n):\n"
                  "    if n < 0:\n"
                  "        raise ConfigurationError('negative')\n"}
        )
        assert report.findings == []

    def test_bare_reraise_allowed(self, lint_tree):
        report = lint_tree(
            {SRC: "def passthrough(fn):\n"
                  "    try:\n"
                  "        return fn()\n"
                  "    except Exception:\n"
                  "        raise\n"}
        )
        assert report.findings == []

    def test_notimplementederror_allowed(self, lint_tree):
        # Abstract hooks are not validation.
        report = lint_tree(
            {SRC: "class Base:\n"
                  "    def hook(self):\n"
                  "        raise NotImplementedError\n"}
        )
        assert report.findings == []

    def test_raise_valueerror_in_benchmark_allowed(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "def check(n):\n"
                     "    raise ValueError('scripts may use builtins')\n"}
        )
        assert report.findings == []


class TestERR002Assert:
    def test_assert_in_src_flagged(self, lint_tree):
        report = lint_tree(
            {SRC: "def check(n):\n    assert n > 0\n"}
        )
        assert rule_ids_of(report) == ["ERR002"]
        assert "python -O" in report.findings[0].message

    def test_assert_outside_src_allowed(self, lint_tree):
        report = lint_tree(
            {SCRIPT: "def gate(n):\n    assert n > 0\n"}
        )
        assert report.findings == []
