"""Shared helpers for the lint fixture suite.

Every test builds a throwaway source tree under ``tmp_path`` and lints
it; because :func:`repro.lint.registry.module_name_for` is purely
lexical, a fixture file at ``tmp_path/src/repro/demo/mod.py`` gets the
same "library code" treatment as the real tree, while one at
``tmp_path/benchmarks/bench.py`` is scanned as script code.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import run_lint

#: Canonical fixture locations: library code vs script code.
SRC = "src/repro/demo/mod.py"
SCRIPT = "benchmarks/bench_demo.py"


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""

    def _lint(files, *, rule_ids=None, baseline=None):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_lint(
            (str(tmp_path),), rule_ids=rule_ids, baseline=baseline
        )

    return _lint


def rule_ids_of(report):
    """The multiset of rule ids a report flagged, sorted."""
    return sorted(finding.rule for finding in report.findings)
