"""The `repro lint` subcommand: exit codes, JSON, explain, baseline."""

import json
from pathlib import Path

import pytest

from repro.cli import main

from tests.lint.conftest import SRC

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = "import time\nstamp = time.time()\n"
GOOD = "def tick(clock):\n    return clock.now_ms()\n"


def write_tree(tmp_path, source):
    target = tmp_path / SRC
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD)
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_1(self, tmp_path, capsys):
        write_tree(tmp_path, BAD)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD)
        assert main(["lint", str(tmp_path), "--rules", "NOPE"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        write_tree(tmp_path, "def broken(:\n")
        assert main(["lint", str(tmp_path)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_2(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD)
        code = main(
            ["lint", str(tmp_path), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestJson:
    def test_stdout_json_shape(self, tmp_path, capsys):
        write_tree(tmp_path, BAD)
        assert main(["lint", str(tmp_path), "--json", "-"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version",
            "ok",
            "n_files",
            "rules",
            "findings",
            "n_suppressed",
            "n_baselined",
            "stale_baseline",
        }
        assert payload["ok"] is False
        assert payload["n_files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "SIM001"
        assert finding["line"] == 2
        assert finding["snippet"] == "stamp = time.time()"

    def test_json_to_file(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD)
        out_path = tmp_path / "report.json"
        assert main(["lint", str(tmp_path), "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        assert f"wrote {out_path}" in capsys.readouterr().out


class TestExplain:
    @pytest.mark.parametrize(
        "rule_id", ["SIM001", "SIM002", "CRY001", "CRY002", "CRY003",
                    "ERR001", "ERR002", "UNT001", "UNT002", "VEC001"]
    )
    def test_every_rule_explains(self, rule_id, capsys):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{rule_id}:")
        assert len(out.splitlines()) >= 3  # title, blank, rationale

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--explain", "XXX999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err


class TestBaselineFlow:
    def test_update_then_lint_clean(self, tmp_path, capsys):
        write_tree(tmp_path, BAD)
        baseline = tmp_path / "baseline.json"
        code = main(
            ["lint", str(tmp_path), "--baseline", str(baseline),
             "--update-baseline"]
        )
        assert code == 0
        assert baseline.exists()
        assert "wrote" in capsys.readouterr().out
        assert (
            main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        )

    def test_stale_baseline_fails(self, tmp_path, capsys):
        write_tree(tmp_path, BAD)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(tmp_path), "--baseline", str(baseline),
              "--update-baseline"])
        write_tree(tmp_path, GOOD)  # violation fixed, entry now stale
        code = main(["lint", str(tmp_path), "--baseline", str(baseline)])
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_rules_subset_only_runs_those(self, tmp_path, capsys):
        write_tree(tmp_path, BAD + "timeout = 5\n")
        assert main(["lint", str(tmp_path), "--rules", "UNT"]) == 1
        out = capsys.readouterr().out
        assert "UNT001" in out
        assert "SIM001" not in out


class TestDogfood:
    def test_repo_tree_lints_clean(self, monkeypatch, capsys):
        """The acceptance gate: the real tree has zero live findings."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
