"""Table/series renderers."""

import pytest

from repro.analysis.reporting import format_comparison, format_series, format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert "2.500" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_decimals(self):
        text = format_table(["v"], [[3.14159]], decimals=1)
        assert "3.1" in text and "3.14" not in text

    def test_empty_rows_ok(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])
        with pytest.raises(ConfigurationError):
            format_table(["a"], [[1, 2]])

    def test_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        # All rows equal width per column -> same total length.
        assert len(lines[2]) == len(lines[3]) or lines[3].endswith(("1", "2"))


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series("distance", "latency", [(100, 20.0), (200, 30.0)])
        assert "distance" in text and "latency" in text
        assert "30.000" in text


class TestFormatComparison:
    def test_reports_delta(self):
        line = format_comparison("lookup", 13.1055, 13.1055, unit="ms")
        assert "paper 13.105 ms" in line  # f-string half-even rounding
        assert "+0.0%" in line

    def test_relative_error(self):
        line = format_comparison("bound", 360.0, 396.0)
        assert "+10.0%" in line
