"""Experiment runners: the table/figure reproductions as testable facts."""

import pytest

from repro.analysis.experiments import (
    fig6_paper_bound_km,
    fig6_relay_sweep,
    fig6_tight_bound_km,
    table1_hdd_latency,
    table2_lan_latency,
    table3_correlation,
    table3_internet_latency,
)


# The figure sweeps run many full audits per test: slow lane.
pytestmark = pytest.mark.slow

class TestTable1:
    def test_five_rows_sorted_by_latency(self):
        rows = table1_hdd_latency()
        assert len(rows) == 5
        lookups = [r.lookup_ms for r in rows]
        assert lookups == sorted(lookups)

    def test_paper_values(self):
        by_name = {r.name: r for r in table1_hdd_latency()}
        assert by_name["WD 2500JD"].lookup_ms == pytest.approx(13.1055, abs=1e-3)
        assert by_name["IBM 36Z15"].lookup_ms == pytest.approx(5.406, abs=1e-2)

    def test_decomposition_sums(self):
        for row in table1_hdd_latency():
            assert row.lookup_ms == pytest.approx(
                row.seek_ms + row.rotate_ms + row.transfer_ms
            )


class TestTable2:
    def test_ten_rows_all_under_1ms(self):
        rows = table2_lan_latency()
        assert len(rows) == 10
        assert all(r.under_1ms for r in rows)
        assert all(r.rtt_ms < 1.0 for r in rows)

    def test_deterministic_given_seed(self):
        assert table2_lan_latency(seed="x") == table2_lan_latency(seed="x")


class TestTable3:
    def test_nine_rows(self):
        assert len(table3_internet_latency()) == 9

    def test_within_25_percent_of_paper(self):
        for row in table3_internet_latency():
            relative = abs(row.model_latency_ms - row.paper_latency_ms)
            assert relative / row.paper_latency_ms < 0.25, row.url

    def test_positive_correlation(self):
        """The paper's conclusion for Table III."""
        assert table3_correlation() > 0.95

    def test_monotone_shape(self):
        rows = table3_internet_latency()
        ordered = sorted(rows, key=lambda r: r.paper_distance_km)
        latencies = [r.model_latency_ms for r in ordered]
        assert latencies == sorted(latencies)


class TestFig6:
    def test_paper_bound(self):
        assert fig6_paper_bound_km() == pytest.approx(360.4, abs=0.5)

    def test_tight_bound(self):
        assert 700 < fig6_tight_bound_km() < 730

    def test_margin_extends_bound(self):
        assert fig6_tight_bound_km(margin_ms=5.0) > fig6_tight_bound_km()

    def test_sweep_crossover(self):
        """Honest local serving passes; every relay distance fails."""
        rows = fig6_relay_sweep(distances_km=[0.0, 100.0, 500.0, 3000.0], k=8)
        assert not rows[0].detected  # honest
        assert all(r.detected for r in rows[1:])  # relays caught

    def test_rtt_grows_with_distance(self):
        rows = fig6_relay_sweep(distances_km=[100.0, 1000.0, 3000.0], k=5)
        rtts = [r.max_rtt_ms for r in rows]
        assert rtts == sorted(rtts)
