"""The aggregated deployment security report."""

import pytest

from repro.analysis.security import analyse_deployment
from repro.cloud.sla import SLAPolicy
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import CircularRegion
from repro.por.parameters import PORParams


@pytest.fixture
def sla(brisbane):
    return SLAPolicy(region=CircularRegion(brisbane, 100.0))


class TestAnalyseDeployment:
    def test_paper_scale_deployment(self, sla):
        """1M segments, 0.5 % corruption, 1000 rounds (Section V-C)."""
        report = analyse_deployment(
            n_segments=1_000_000,
            sla=sla,
            corruption_fraction=0.005,
            k_rounds=1000,
        )
        assert 0.99 < report.per_challenge_detection < 0.995
        assert report.detection_after_10_audits > 0.999999
        assert report.irretrievability_bound < 1.0 / 200_000
        assert report.rtt_max_ms == pytest.approx(sla.rtt_max_ms)
        assert 650 < report.relay_bound_km < 750

    def test_default_k_from_sla(self, sla):
        report = analyse_deployment(n_segments=1000, sla=sla)
        assert report.k_rounds == sla.min_rounds

    def test_margin_headroom(self, brisbane):
        padded = SLAPolicy(
            region=CircularRegion(brisbane, 100.0), margin_ms=3.0
        )
        report = analyse_deployment(n_segments=1000, sla=padded)
        assert report.margin_headroom_km == pytest.approx(200.0, abs=1.0)

    def test_summary_lines_mention_key_numbers(self, sla):
        report = analyse_deployment(n_segments=1000, sla=sla)
        text = "\n".join(report.summary_lines())
        assert "Delta-t_max" in text
        assert "relay distance bound" in text

    def test_validation(self, sla):
        with pytest.raises(ConfigurationError):
            analyse_deployment(n_segments=0, sla=sla)
        with pytest.raises(ConfigurationError):
            analyse_deployment(n_segments=10, sla=sla, corruption_fraction=1.5)

    def test_k_capped_by_segments(self, sla):
        report = analyse_deployment(n_segments=10, sla=sla, k_rounds=100)
        assert 0.0 <= report.per_challenge_detection <= 1.0
