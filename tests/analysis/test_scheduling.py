"""Audit-scheduling arithmetic."""

import pytest

from repro.analysis.scheduling import (
    AuditSchedule,
    audits_until_detection,
    cheapest_schedule,
    expected_audits_until_detection,
    plan_schedule,
)
from repro.errors import ConfigurationError


class TestAuditsUntilDetection:
    def test_certain_detection_needs_one(self):
        assert audits_until_detection(1.0, 0.99) == 1

    def test_paper_rate(self):
        # p = 0.713 per audit -> 4 audits reach 99 %.
        n = audits_until_detection(0.713, 0.99)
        assert n == 4
        assert 1 - (1 - 0.713) ** n >= 0.99
        assert 1 - (1 - 0.713) ** (n - 1) < 0.99

    def test_zero_confidence(self):
        assert audits_until_detection(0.5, 0.0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            audits_until_detection(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            audits_until_detection(0.5, 1.0)


class TestExpectedAudits:
    def test_geometric_mean(self):
        assert expected_audits_until_detection(0.5) == pytest.approx(2.0)
        assert expected_audits_until_detection(0.713) == pytest.approx(1.4025, abs=1e-3)


class TestPlanSchedule:
    def test_paper_parameters(self):
        schedule = plan_schedule(
            epsilon=0.005, k_rounds=250, interval_hours=24.0
        )
        assert schedule.per_audit_detection == pytest.approx(0.714, abs=0.01)
        assert schedule.audits_to_confidence == 4
        assert schedule.hours_to_confidence == pytest.approx(96.0)

    def test_daily_cost(self):
        schedule = plan_schedule(
            epsilon=0.01, k_rounds=100, interval_hours=12.0, round_cost_ms=16.0
        )
        # Two audits/day x 100 rounds x 16 ms = 3200 ms of verifier time.
        assert schedule.daily_audit_time_ms == pytest.approx(3200.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_schedule(epsilon=0.0, k_rounds=10, interval_hours=1.0)
        with pytest.raises(ConfigurationError):
            plan_schedule(epsilon=0.01, k_rounds=0, interval_hours=1.0)


class TestCheapestSchedule:
    def test_picks_smallest_sufficient_k(self):
        schedule = cheapest_schedule(
            epsilon=0.01,
            interval_hours=24.0,
            max_detection_latency_hours=24.0 * 7,
        )
        # k must catch 1 % corruption within 7 daily audits at 99 %.
        assert schedule.hours_to_confidence <= 24.0 * 7
        # And the next-smaller candidate must NOT suffice.
        candidates = [5, 10, 25, 50, 100, 250, 500, 1000]
        smaller = [k for k in candidates if k < schedule.k_rounds]
        if smaller:
            weaker = plan_schedule(
                epsilon=0.01, k_rounds=smaller[-1], interval_hours=24.0
            )
            assert weaker.hours_to_confidence > 24.0 * 7

    def test_impossible_deadline_raises(self):
        with pytest.raises(ConfigurationError):
            cheapest_schedule(
                epsilon=0.0001,
                interval_hours=24.0,
                max_detection_latency_hours=24.0,
                k_candidates=[5, 10],
            )

    def test_tighter_deadline_needs_bigger_k(self):
        loose = cheapest_schedule(
            epsilon=0.005,
            interval_hours=24.0,
            max_detection_latency_hours=24.0 * 30,
        )
        tight = cheapest_schedule(
            epsilon=0.005,
            interval_hours=24.0,
            max_detection_latency_hours=24.0 * 3,
        )
        assert tight.k_rounds >= loose.k_rounds
