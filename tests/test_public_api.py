"""Public-API hygiene: exports resolve, everything public is documented."""

import importlib
import inspect

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cloud",
    "repro.core",
    "repro.crypto",
    "repro.distbound",
    "repro.economics",
    "repro.erasure",
    "repro.fleet",
    "repro.geo",
    "repro.geoloc",
    "repro.gf",
    "repro.netsim",
    "repro.obs",
    "repro.por",
    "repro.storage",
    "repro.util",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_package_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert getattr(package, name, None) is not None, (
                f"{package_name}.{name}"
            )

    def test_lazy_core_exports(self):
        import repro.core as core

        assert core.GeoProofSession is not None
        assert core.DynamicGeoProofSession is not None
        with pytest.raises(AttributeError):
            core.does_not_exist


class TestDocumentation:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_package_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__) > 40, package_name

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_class_methods_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, undocumented

    def test_version_string(self):
        assert repro.__version__ == "1.0.0"
