"""Shared fixtures.

Small, fast parameter sets are the default everywhere: TEST_PARAMS uses
4-byte blocks and RS(15, 11) so a full setup pipeline runs in
milliseconds, while the (slower) paper parameters are exercised by a
handful of dedicated tests and the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys


@pytest.fixture
def rng() -> DeterministicRNG:
    """A fresh deterministic RNG per test."""
    return DeterministicRNG("test-fixture-seed")


@pytest.fixture
def keys() -> PORKeys:
    """POR keys derived from a fixed master key."""
    return PORKeys.derive(b"master-key-0123456789abcdef-fixture")


@pytest.fixture
def small_params():
    """The fast test parameter set (4-byte blocks, RS(15, 11))."""
    return TEST_PARAMS


@pytest.fixture
def brisbane() -> GeoPoint:
    """The paper's home location."""
    return GeoPoint(-27.4698, 153.0251, "Brisbane")


@pytest.fixture
def sample_data(rng) -> bytes:
    """20 kB of pseudorandom file data."""
    return rng.fork("sample-data").random_bytes(20_000)


def build_session(seed: str = "session", file_bytes: int = 20_000):
    """Build a ready-to-audit session with one outsourced file.

    Shared by cloud/core/integration tests; returns (session, file_id,
    original_data).
    """
    from repro.core.session import GeoProofSession

    session = GeoProofSession.build(
        datacentre_location=GeoPoint(-27.4698, 153.0251),
        params=TEST_PARAMS,
        seed=seed,
    )
    data = DeterministicRNG(f"{seed}-data").random_bytes(file_bytes)
    session.outsource(b"test-file", data)
    return session, b"test-file", data
