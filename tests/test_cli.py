"""CLI subcommands: exit codes and printed content."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "WD 2500JD" in out
        assert "13.1055" in out

    def test_table1_custom_read_size(self, capsys):
        assert main(["table1", "--read-bytes", "4096"]) == 0
        assert "4096-byte read" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Other Campus" in out
        assert out.count("yes") == 10  # all placements under 1 ms

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "uwa.edu.au" in out
        assert "correlation" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--distances", "0", "500", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "paper relay bound: 360" in out
        assert "yes" in out and "no" in out


class TestAudit:
    def test_honest_audit_exit_zero(self, capsys):
        assert main(["audit", "--size", "15000", "--rounds", "8"]) == 0
        out = capsys.readouterr().out
        assert "accepted: True" in out

    def test_relay_attack_detected_exit_zero(self, capsys):
        # Exit 0 = the outcome matched expectations (attack detected).
        code = main(
            ["audit", "--size", "15000", "--rounds", "8", "--attack", "relay"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted: False" in out
        assert "timing" in out

    def test_corruption_attack(self, capsys):
        code = main(
            [
                "audit",
                "--size",
                "15000",
                "--rounds",
                "30",
                "--attack",
                "corrupt",
                "--epsilon",
                "0.3",
            ]
        )
        out = capsys.readouterr().out
        # Detection is probabilistic but eps=0.3, k=30 -> p ~ 1-1e-5.
        assert code == 0
        assert "mac" in out


class TestFleet:
    def test_corrupt_fleet_detected_exit_zero(self, capsys):
        code = main(
            [
                "fleet",
                "--files", "9",
                "--hours", "6",
                "--slot-minutes", "30",
                "--seed", "cli-test",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet audit run" in out
        assert "risk-weighted" in out
        assert "first violation detected" in out
        assert "batches" in out

    def test_honest_fleet_reports_no_violations(self, capsys):
        code = main(
            [
                "fleet",
                "--files", "6",
                "--hours", "3",
                "--violation", "none",
                "--strategy", "round-robin",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(none)" in out
        assert "1.000" in out  # every tenant fully accepted

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--strategy", "random"])

    def test_event_engine_reports_lanes(self, capsys):
        code = main(
            [
                "fleet",
                "--files", "9",
                "--hours", "6",
                "--slot-minutes", "30",
                "--seed", "cli-test",
                "--engine", "event",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Audit lanes" in out
        assert "concurrency speedup" in out
        assert "first violation detected" in out

    def test_unknown_engine_exits_2_via_repro_errors(self, capsys):
        """Engine validation is the fleet's ConfigurationError, not
        argparse: bad values exit 2 with the library's message."""
        code = main(["fleet", "--files", "3", "--engine", "threads"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown engine" in err

    def test_bad_lane_queue_exits_2(self, capsys):
        code = main(["fleet", "--files", "3", "--lanes", "0"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--lanes must be >= 1" in err

    def test_json_to_stdout_is_machine_readable(self, capsys):
        import json

        code = main(
            [
                "fleet",
                "--files", "6",
                "--hours", "3",
                "--slot-minutes", "30",
                "--seed", "cli-test",
                "--engine", "event",
                "--json", "-",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)  # pure JSON: no table mixed in
        assert payload["engine"] == "event"
        assert payload["n_audits"] > 0
        assert payload["lanes"] and payload["spindles"]
        assert {"executed_at", "spindle_wait_ms"} <= set(payload["events"][0])

    def test_json_to_file_keeps_the_table(self, capsys, tmp_path):
        import json

        target = tmp_path / "report.json"
        code = main(
            [
                "fleet",
                "--files", "6",
                "--hours", "3",
                "--slot-minutes", "30",
                "--seed", "cli-test",
                "--json", str(target),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fleet audit run" in out  # table still printed
        payload = json.loads(target.read_text())
        assert payload["n_files"] == 6

    def test_work_stealing_strategy_with_replicas_and_spindles(self, capsys):
        code = main(
            [
                "fleet",
                "--files", "8",
                "--providers", "2",
                "--hours", "4",
                "--slot-minutes", "30",
                "--seed", "cli-test",
                "--engine", "event",
                "--strategy", "work-stealing",
                "--replicas", "2",
                "--spindles", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "work-stealing" in out
        assert "Storage spindles" in out

    def test_bad_spindle_count_exits_2(self, capsys):
        code = main(
            ["fleet", "--files", "4", "--providers", "2", "--spindles", "5"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "spindles" in err


class TestEconomics:
    QUICK = [
        "economics",
        "--files", "6",
        "--hours", "12",
        "--seed", "cli-test",
        "--skip-equivalence",
    ]

    def test_prefetch_sweep_meets_bound_exit_zero(self, capsys):
        code = main(
            self.QUICK + ["--cache-fractions", "0", "0.5", "1",
                          "--engine", "slot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Adversary campaign" in out
        assert "Cache sweep" in out
        assert "Per-tenant defence pricing" in out
        assert "break-even cache size" in out
        assert "detection bound (1 - (cache/file)^k): met" in out

    def test_json_to_stdout_is_machine_readable(self, capsys):
        import json

        code = main(
            self.QUICK
            + ["--cache-fractions", "0", "1", "--engine", "slot",
               "--json", "-"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)  # pure JSON: no table mixed in
        assert payload["bound_satisfied"] is True
        assert payload["break_even_cache_bytes"] > 0
        assert payload["attack"] == "prefetch-relay"
        assert len(payload["cells"]) == 2
        assert len(payload["quotes"]) == 3
        # The full-cache cell escapes detection; the empty cache never.
        by_fraction = {c["cache_fraction"]: c for c in payload["cells"]}
        assert by_fraction[0.0]["observed_detection_rate"] == 1.0
        assert by_fraction[1.0]["observed_detection_rate"] == 0.0

    def test_json_to_file_keeps_the_table(self, capsys, tmp_path):
        import json

        target = tmp_path / "economics.json"
        code = main(
            self.QUICK
            + ["--cache-fractions", "0.5", "--engine", "slot",
               "--json", str(target)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Adversary campaign" in out  # table still printed
        payload = json.loads(target.read_text())
        assert payload["cells"][0]["cache_fraction"] == 0.5

    def test_unknown_engine_exits_2_via_repro_errors(self, capsys):
        code = main(self.QUICK + ["--engine", "threads"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown engine" in err

    def test_unknown_attack_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["economics", "--attack", "teleport"])

    def test_deletion_campaign_runs(self, capsys):
        code = main(
            self.QUICK + ["--attack", "deletion", "--engine", "slot",
                          "--delete-fraction", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "deletion" in out

    def test_deletion_json_is_strictly_valid(self, capsys):
        # Regression pin: deletion cells used to leak NaN into the
        # JSON payload, breaking strict parsers.
        import json

        code = main(
            self.QUICK + ["--attack", "deletion", "--engine", "slot",
                          "--json", "-"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out, parse_constant=lambda c: (
            pytest.fail(f"non-finite constant {c!r} in JSON")
        ))
        assert payload["cells"][0]["detection_probability"] is None


class TestAnalyse:
    def test_paper_scale(self, capsys):
        code = main(
            [
                "analyse",
                "--segments",
                "1000000",
                "--epsilon",
                "0.005",
                "--rounds",
                "1000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Delta-t_max" in out
        assert "relay distance bound" in out
