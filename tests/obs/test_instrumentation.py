"""Observability does not perturb: fleets replay identically with it on.

Three pins:

* the metrics snapshot and the sim-domain span stream are a pure
  function of the seed (two identical runs, identical bytes);
* the registry's fleet counters agree with the ``FleetReport``
  aggregates they mirror;
* a fully-instrumented run emits the *same report* as an
  uninstrumented one -- tracing reads injected clocks, never advances
  them, so the determinism anchors (slot-vs-event, same-seed replay)
  hold with the plane enabled.
"""

import json

from repro import obs
from repro.fleet.strategies import RoundRobinStrategy
from repro.fleet.demo import build_demo_fleet
from repro.obs import MetricsRegistry, Tracer


def run_demo(*, engine="event", enabled=True, seed="obs-fleet"):
    registry = MetricsRegistry(enabled=enabled)
    trace = Tracer(maxlen=100_000, enabled=enabled)
    with obs.use_registry(registry, trace):
        fleet = build_demo_fleet(
            n_files=9,
            n_providers=3,
            strategy=RoundRobinStrategy(),
            seed=seed,
            violation="corrupt",
            slot_minutes=30.0,
            batch_size=4,
            engine=engine,
        )
        report = fleet.run(hours=6.0)
    return report, registry, trace


def family_total(registry, name):
    """Sum a counter family's children out of the JSON snapshot."""
    for family in registry.snapshot()["families"]:
        if family["name"] == name:
            return sum(series["value"] for series in family["series"])
    return 0.0


def sim_snapshot(registry):
    """The snapshot minus wall-valued families.

    ``*_seconds_total`` counters accumulate real compute cost (the
    vetted wall-clock measurements), so they differ run to run; every
    other family is a pure function of the seed.
    """
    snap = registry.snapshot()
    snap["families"] = [
        family
        for family in snap["families"]
        if not family["name"].endswith("_seconds_total")
    ]
    return snap


class TestDeterministicInstrumentation:
    def test_same_seed_same_snapshot_and_span_stream(self):
        _, first_reg, first_trace = run_demo()
        _, second_reg, second_trace = run_demo()
        assert json.dumps(
            sim_snapshot(first_reg), sort_keys=True
        ) == json.dumps(sim_snapshot(second_reg), sort_keys=True)
        # Wall-domain spans time real compute; only the sim stream is
        # replayable byte for byte.
        assert first_trace.spans("sim") == second_trace.spans("sim")
        assert len(first_trace.spans("sim")) > 0

    def test_fleet_spans_are_sim_domain_only(self):
        _, _, trace = run_demo()
        spans = trace.spans()
        # Fleet batch spans read lane clocks; TPA flush spans are the
        # vetted wall-domain measurement of real verify compute.
        assert any(span.domain == "sim" for span in spans)
        for span in spans:
            if span.domain == "sim":
                assert span.name.startswith("fleet.batch:")
                assert span.end_ms >= span.start_ms

    def test_counters_mirror_report_aggregates(self):
        report, registry, _ = run_demo()
        assert (
            family_total(registry, "repro_fleet_audits_total")
            == report.n_audits
        )
        assert (
            family_total(registry, "repro_fleet_batches_total")
            == report.n_batches
        )


class TestNoPerturbation:
    def test_instrumented_event_report_identical_to_plain(self):
        instrumented, _, _ = run_demo(enabled=True)
        plain, _, _ = run_demo(enabled=False)
        # Frozen dataclasses compare field by field: every event,
        # timestamp and aggregate must match exactly.
        assert instrumented == plain

    def test_instrumented_slot_report_identical_to_plain(self):
        instrumented, _, _ = run_demo(engine="slot", enabled=True)
        plain, _, _ = run_demo(engine="slot", enabled=False)
        assert instrumented == plain

    def test_global_plane_untouched_after_scoped_runs(self):
        run_demo()
        assert not obs.metrics().enabled
        assert not obs.tracer().enabled
