"""The metrics registry: exposition invariants, bounded histograms.

The two export surfaces are contracts: Prometheus text must parse and
honour the histogram invariants (cumulative ``_bucket`` ending at
``+Inf == _count``), and :meth:`MetricsRegistry.snapshot` must be a
stable JSON round-trip.  A disabled registry must allocate nothing.
"""

import json
import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    iter_quantiles,
)

#: ``name{labels} value`` -- every non-comment exposition line.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)


def parse_exposition(text):
    """Parse Prometheus text into (helps, types, samples) or fail."""
    helps, types, samples = {}, {}, []
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
        else:
            match = _SAMPLE_RE.match(line)
            assert match is not None, f"unparseable line: {line!r}"
            samples.append(
                (
                    match.group("name"),
                    match.group("labels") or "",
                    match.group("value"),
                )
            )
    return helps, types, samples


class TestHistogramValue:
    def test_count_sum_max_mean(self):
        hist = HistogramValue((1.0, 10.0))
        for value in (0.5, 2.0, 2.5, 20.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 25.0
        assert hist.max_value == 20.0
        assert hist.mean == 6.25

    def test_cumulative_buckets_end_at_inf_with_total_count(self):
        hist = HistogramValue((1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        buckets = list(hist.cumulative_buckets())
        assert buckets == [(1.0, 1), (10.0, 2), (math.inf, 3)]
        # Cumulative counts never decrease.
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)

    def test_boundary_value_lands_in_its_le_bucket(self):
        hist = HistogramValue((1.0, 10.0))
        hist.observe(1.0)  # le="1.0" is inclusive
        assert list(hist.cumulative_buckets())[0] == (1.0, 1)

    def test_quantiles_interpolate_and_clamp_to_max(self):
        hist = HistogramValue((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        assert 0.0 < hist.quantile(0.5) <= 2.0
        # The top quantile cannot exceed the observed max, even though
        # the containing bucket's upper bound is higher.
        assert hist.quantile(0.99) <= hist.max_value

    def test_overflow_quantile_reports_exact_max(self):
        hist = HistogramValue((1.0,))
        hist.observe(123.0)
        assert hist.quantile(0.99) == 123.0

    def test_empty_histogram_is_all_zero(self):
        hist = HistogramValue()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_clear_resets_everything(self):
        hist = HistogramValue((1.0,))
        hist.observe(5.0)
        hist.clear()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.max_value == 0.0

    def test_to_dict_spells_the_last_bound_plus_inf(self):
        hist = HistogramValue((1.0,))
        hist.observe(2.0)
        data = hist.to_dict()
        assert data["buckets"][-1] == ["+Inf", 1]
        # The dict is JSON-clean (no float("inf") leaking through).
        assert json.loads(json.dumps(data)) == data

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramValue(())
        with pytest.raises(ConfigurationError):
            HistogramValue((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            HistogramValue((2.0, 1.0))

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramValue().quantile(1.5)

    def test_iter_quantiles_keys(self):
        hist = HistogramValue((1.0,))
        hist.observe(0.5)
        assert set(iter_quantiles(hist, (0.5, 0.99))) == {"p50", "p99"}


class TestRegistry:
    def test_families_are_idempotent_by_name(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_things_total", "things")
        second = registry.counter("repro_things_total", "things")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", "things")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_things_total", "things")

    def test_labelnames_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", "things", ("site",))
        with pytest.raises(ConfigurationError):
            registry.counter("repro_things_total", "things", ("lane",))

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_things_total", "things", ("site",))
        with pytest.raises(ConfigurationError):
            family.labels("a", "b")

    def test_bad_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name", "nope")
        with pytest.raises(ConfigurationError):
            registry.counter("9leading", "nope")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "nope", ("bad-label",))

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_things_total", "things")
        with pytest.raises(ConfigurationError):
            family.inc(-1.0)

    def test_series_count_counts_children(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_things_total", "things", ("s",))
        family.labels("a").inc()
        family.labels("b").inc()
        family.labels("a").inc()  # same child, no new series
        assert registry.series_count == 2


class TestPrometheusExposition:
    def test_every_line_parses_with_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a counter", ("site",)).labels(
            "bne"
        ).inc(3)
        registry.gauge("repro_b", "a gauge").set(1.5)
        registry.histogram(
            "repro_c_ms", "a histogram", buckets=(1.0, 10.0)
        ).observe(2.0)
        helps, types, samples = parse_exposition(registry.to_prometheus())
        assert helps == {
            "repro_a_total": "a counter",
            "repro_b": "a gauge",
            "repro_c_ms": "a histogram",
        }
        assert types == {
            "repro_a_total": "counter",
            "repro_b": "gauge",
            "repro_c_ms": "histogram",
        }
        names = [name for name, _, _ in samples]
        assert "repro_a_total" in names
        assert "repro_b" in names

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a", ("site",)).labels(
            'b\n"x\\'
        ).inc()
        text = registry.to_prometheus()
        assert 'site="b\\n\\"x\\\\"' in text
        # Still one physical line per sample: the newline was escaped.
        _, _, samples = parse_exposition(text)
        assert len(samples) == 1

    def test_histogram_bucket_sum_count_invariants(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "repro_c_ms", "c", ("lane",), buckets=(1.0, 10.0)
        )
        for value in (0.5, 5.0, 50.0):
            family.labels("hot").observe(value)
        _, _, samples = parse_exposition(registry.to_prometheus())
        buckets = [s for s in samples if s[0] == "repro_c_ms_bucket"]
        assert [s[2] for s in buckets] == ["1", "2", "3"]
        assert 'le="+Inf"' in buckets[-1][1]
        (count,) = [s for s in samples if s[0] == "repro_c_ms_count"]
        assert count[2] == "3"  # +Inf bucket == _count
        (total,) = [s for s in samples if s[0] == "repro_c_ms_sum"]
        assert float(total[2]) == 55.5

    def test_empty_registry_emits_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestSnapshot:
    def test_json_round_trip_is_lossless_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a", ("site",)).labels("x").inc(2)
        registry.histogram("repro_c_ms", "c").observe(3.0)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap
        # Snapshots are deterministic: same registry, same bytes.
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            registry.snapshot(), sort_keys=True
        )

    def test_families_and_series_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "z")
        registry.counter("repro_a_total", "a", ("s",)).labels("b").inc()
        registry.counter("repro_a_total", "a", ("s",)).labels("a").inc()
        snap = registry.snapshot()
        assert [f["name"] for f in snap["families"]] == [
            "repro_a_total",
            "repro_z_total",
        ]
        assert [
            s["labels"]["s"] for s in snap["families"][0]["series"]
        ] == ["a", "b"]


class TestDisabledRegistry:
    def test_disabled_mode_allocates_no_series(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_a_total", "a", ("site",))
        gauge = registry.gauge("repro_b", "b")
        hist = registry.histogram("repro_c_ms", "c")
        # All instrumentation calls are accepted and do nothing.
        counter.labels("x").inc()
        counter.labels("x").inc(5.0)
        gauge.set(2.0)
        gauge.labels().dec()
        hist.observe(1.0)
        hist.labels().observe(2.0)
        assert registry.series_count == 0
        assert registry.family_names() == ()
        assert registry.to_prometheus() == ""
        assert registry.snapshot() == {"enabled": False, "families": []}

    def test_disabled_families_are_one_shared_object(self):
        registry = MetricsRegistry(enabled=False)
        a = registry.counter("repro_a_total", "a")
        b = registry.histogram("repro_b_ms", "b", buckets=DEFAULT_BUCKETS)
        assert a is b
        assert a.labels("anything", "at", "all") is a
