"""Dual-clock tracing: sim spans from injected clocks, bounded ring."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.netsim.clock import SimClock
from repro.obs import Span, Tracer


class TestSimSpans:
    def test_span_reads_the_injected_clock(self):
        clock = SimClock()
        tracer = Tracer()
        with tracer.span("work", clock=clock):
            clock.advance(12.5)
        (span,) = tracer.spans()
        assert span == Span("work", "sim", 0.0, 12.5)
        assert span.duration_ms == 12.5

    def test_span_never_advances_the_clock(self):
        clock = SimClock()
        with Tracer().span("idle", clock=clock):
            pass
        assert clock.now_ms() == 0.0

    def test_span_recorded_even_when_body_raises(self):
        clock = SimClock()
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", clock=clock):
                clock.advance(1.0)
                raise ValueError("boom")
        assert tracer.spans()[0].duration_ms == 1.0


class TestWallSpans:
    def test_wall_span_uses_the_wall_domain(self):
        tracer = Tracer()
        with tracer.wall_span("flush"):
            pass
        (span,) = tracer.spans()
        assert span.domain == "wall"
        assert span.end_ms >= span.start_ms

    def test_domain_filter(self):
        tracer = Tracer()
        with tracer.wall_span("w"):
            pass
        with tracer.span("s", clock=SimClock()):
            pass
        assert [s.name for s in tracer.spans("wall")] == ["w"]
        assert [s.name for s in tracer.spans("sim")] == ["s"]
        with pytest.raises(ConfigurationError):
            tracer.spans("cpu")


class TestRing:
    def test_ring_keeps_only_the_newest_maxlen(self):
        tracer = Tracer(maxlen=4)
        for i in range(10):
            tracer.record(Span(f"s{i}", "sim", 0.0, float(i)))
        assert tracer.n_recorded == 10
        assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_clear_keeps_the_lifetime_counter(self):
        tracer = Tracer()
        tracer.record(Span("s", "sim", 0.0, 1.0))
        tracer.clear()
        assert tracer.spans() == ()
        assert tracer.n_recorded == 1

    def test_maxlen_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(maxlen=0)


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        clock = SimClock()
        tracer = Tracer(enabled=False)
        tracer.record(Span("manual", "sim", 0.0, 1.0))
        with tracer.span("sim-side", clock=clock):
            clock.advance(1.0)
        with tracer.wall_span("wall-side"):
            pass
        assert tracer.spans() == ()
        assert tracer.n_recorded == 0

    def test_set_enabled_toggles_recording(self):
        tracer = Tracer(enabled=False)
        tracer.set_enabled(True)
        tracer.record(Span("s", "sim", 0.0, 1.0))
        assert tracer.n_recorded == 1
        assert tracer.enabled


class TestDump:
    def test_dump_jsonl_round_trips(self, tmp_path):
        clock = SimClock()
        tracer = Tracer()
        with tracer.span("a", clock=clock):
            clock.advance(3.0)
        with tracer.wall_span("b"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert rows[0]["name"] == "a"
        assert rows[0]["domain"] == "sim"
        assert rows[0]["duration_ms"] == 3.0
        assert rows[1]["domain"] == "wall"
