"""The closed-form LRU model vs the simulated cache.

The satellite property sweep: over (cache_bytes, file size, k rounds)
the analytic hit rate must track a real
:class:`~repro.storage.cache.LRUCache` driven with the verifier's
exact challenge-drawing discipline, and the exact escape probability
must respect the paper's with-replacement bound.
"""

import math

import pytest

from repro.economics.cache_model import LRUHitModel, simulate_hit_rate
from repro.errors import ConfigurationError

ENTRY = 30

#: The property grid: (n_segments, cache_fraction, k_rounds).  Spans
#: empty, fractional, and full caches across file sizes and audit
#: depths; every cell's sample mean must sit within tolerance of the
#: closed form.
SWEEP = [
    (32, 0.0, 4),
    (32, 0.5, 4),
    (32, 1.0, 4),
    (64, 0.25, 6),
    (64, 0.75, 6),
    (128, 0.1, 8),
    (128, 0.5, 8),
    (128, 0.9, 8),
    (256, 0.33, 10),
]


class TestModelAlgebra:
    def test_hit_rate_is_capacity_over_population(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 10, entry_bytes=ENTRY, n_segments=40
        )
        assert model.capacity_entries == 10
        assert model.hit_rate == pytest.approx(0.25)

    def test_partial_entry_does_not_count(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 10 + ENTRY - 1,
            entry_bytes=ENTRY,
            n_segments=40,
        )
        assert model.capacity_entries == 10

    def test_oversized_cache_saturates_at_population(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 1000, entry_bytes=ENTRY, n_segments=40
        )
        assert model.cached_entries == 40
        assert model.hit_rate == 1.0
        assert model.prewarm_bytes == 40 * ENTRY

    def test_for_files_sums_populations(self):
        merged = LRUHitModel.for_files(ENTRY * 30, ENTRY, [10, 20, 30])
        assert merged.n_segments == 60
        assert merged.hit_rate == pytest.approx(0.5)

    def test_escape_zero_when_cache_smaller_than_k(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 3, entry_bytes=ENTRY, n_segments=100
        )
        assert model.escape_probability(4) == 0.0
        assert model.detection_probability(4) == 1.0

    def test_escape_one_for_full_cache(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 50, entry_bytes=ENTRY, n_segments=50
        )
        assert model.escape_probability(10) == pytest.approx(1.0)
        assert model.paper_bound(10) == pytest.approx(0.0)

    @pytest.mark.parametrize("n,frac,k", SWEEP)
    def test_exact_escape_never_exceeds_paper_bound(self, n, frac, k):
        """Hypergeometric escape <= hit^k: the bound is conservative."""
        model = LRUHitModel(
            cache_bytes=round(frac * n) * ENTRY,
            entry_bytes=ENTRY,
            n_segments=n,
        )
        assert (
            model.escape_probability(k)
            <= model.hit_rate**k + 1e-12
        )
        assert (
            model.detection_probability(k)
            >= model.paper_bound(k) - 1e-12
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LRUHitModel(cache_bytes=-1, entry_bytes=ENTRY, n_segments=10)
        with pytest.raises(ConfigurationError):
            LRUHitModel(cache_bytes=0, entry_bytes=0, n_segments=10)
        with pytest.raises(ConfigurationError):
            LRUHitModel(cache_bytes=0, entry_bytes=ENTRY, n_segments=0)
        model = LRUHitModel(
            cache_bytes=ENTRY, entry_bytes=ENTRY, n_segments=10
        )
        with pytest.raises(ConfigurationError):
            model.escape_probability(0)
        with pytest.raises(ConfigurationError):
            model.paper_bound(-1)


class TestColdStart:
    def test_expected_distinct_coupon_collector(self):
        # After n draws from n, roughly (1 - 1/e) n distinct.
        expected = LRUHitModel.expected_distinct(100, 100)
        assert expected == pytest.approx(100 * (1 - math.e**-1), rel=0.01)
        assert LRUHitModel.expected_distinct(100, 0) == 0.0
        assert LRUHitModel.expected_distinct(1, 5) == 1.0

    def test_cold_hit_rate_below_steady_state(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 64, entry_bytes=ENTRY, n_segments=128
        )
        cold = model.cold_hit_rate(50)
        assert 0.0 < cold < model.hit_rate

    def test_cold_hit_rate_approaches_steady_state(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 16, entry_bytes=ENTRY, n_segments=64
        )
        # With a long window the warm tail dominates the cold head.
        assert model.cold_hit_rate(5000) == pytest.approx(
            model.hit_rate, abs=0.02
        )


class TestAnalyticTracksSimulation:
    """The satellite sweep: closed form vs the real LRUCache."""

    @pytest.mark.parametrize("n,frac,k", SWEEP)
    def test_prewarmed_hit_rate_within_tolerance(self, n, frac, k):
        model = LRUHitModel(
            cache_bytes=round(frac * n) * ENTRY,
            entry_bytes=ENTRY,
            n_segments=n,
        )
        simulated = simulate_hit_rate(
            cache_bytes=round(frac * n) * ENTRY,
            entry_bytes=ENTRY,
            n_segments=n,
            n_audits=300,
            k_rounds=k,
            seed=f"sweep-{n}-{frac}-{k}",
        )
        assert simulated == pytest.approx(model.hit_rate, abs=0.06)

    def test_degenerate_extremes_are_exact(self):
        for frac, expected in ((0.0, 0.0), (1.0, 1.0)):
            simulated = simulate_hit_rate(
                cache_bytes=round(frac * 64) * ENTRY,
                entry_bytes=ENTRY,
                n_segments=64,
                n_audits=50,
                k_rounds=6,
                seed="extremes",
            )
            assert simulated == expected

    def test_cold_start_tracks_cold_model(self):
        model = LRUHitModel(
            cache_bytes=ENTRY * 32, entry_bytes=ENTRY, n_segments=64
        )
        n_audits, k = 100, 6
        simulated = simulate_hit_rate(
            cache_bytes=ENTRY * 32,
            entry_bytes=ENTRY,
            n_segments=64,
            n_audits=n_audits,
            k_rounds=k,
            seed="cold-start",
            prewarm=False,
        )
        assert simulated == pytest.approx(
            model.cold_hit_rate(n_audits * k), abs=0.06
        )

    def test_zero_capacity_cache_never_hits(self):
        assert (
            simulate_hit_rate(
                cache_bytes=0,
                entry_bytes=ENTRY,
                n_segments=32,
                n_audits=20,
                k_rounds=4,
                seed="zero",
            )
            == 0.0
        )

    def test_simulation_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_hit_rate(
                cache_bytes=0,
                entry_bytes=ENTRY,
                n_segments=10,
                n_audits=0,
                k_rounds=2,
            )
        with pytest.raises(ConfigurationError):
            simulate_hit_rate(
                cache_bytes=0,
                entry_bytes=ENTRY,
                n_segments=10,
                n_audits=5,
                k_rounds=11,  # k > population
            )
