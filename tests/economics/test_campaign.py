"""AdversaryCampaign: injection, measurement, engine equivalence.

Each campaign cell pays full POR setups for a fresh fleet, so the
end-to-end sweeps live in the slow lane; a handful of single-cell
checks stay fast.
"""

import pytest

from repro.cloud.adversary import DeletionAttack, PrefetchRelayAttack
from repro.economics.campaign import (
    ATTACKS,
    AdversaryCampaign,
    DEFAULT_SWEEP_FRACTIONS,
)
from repro.errors import ConfigurationError


def quick_campaign(**overrides) -> AdversaryCampaign:
    kwargs = dict(
        n_providers=3,
        n_files=6,
        k_rounds=6,
        hours=6.0,
        seed="campaign-test",
    )
    kwargs.update(overrides)
    return AdversaryCampaign(**kwargs)


class TestConfiguration:
    def test_unknown_attack_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryCampaign(attack="teleport")

    def test_bad_delete_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversaryCampaign(attack="deletion", delete_fraction=1.5)

    def test_bad_cache_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            quick_campaign().run_cell(cache_fraction=2.0)

    def test_cacheless_attacks_reject_nonzero_cache(self):
        # Regression pin: a relay/deletion cell with a non-zero cache
        # fraction used to account a phantom cache (analytic hit rate
        # and RAM ledger for RAM that was never installed).
        for attack in ("relay", "deletion"):
            with pytest.raises(ConfigurationError, match="no cache"):
                quick_campaign(attack=attack).run_cell(
                    cache_fraction=0.5
                )

    def test_cacheless_attacks_reject_explicit_sweep(self):
        # Regression pin: an explicit cache sweep for a cacheless
        # attack used to be silently replaced with one zero cell.
        from repro.economics import build_economics_report

        with pytest.raises(ConfigurationError, match="no cache"):
            quick_campaign(attack="relay").sweep(
                cache_fractions=(0.0, 0.5)
            )
        with pytest.raises(ConfigurationError, match="no cache"):
            build_economics_report(
                quick_campaign(attack="deletion"),
                cache_fractions=(0.5,),
                engines=("slot",),
            )

    def test_attack_registry(self):
        assert set(ATTACKS) == {"prefetch-relay", "relay", "deletion"}
        assert all(0.0 <= f <= 1.0 for f in DEFAULT_SWEEP_FRACTIONS)


class TestGeometry:
    def test_victim_is_the_last_provider(self):
        campaign = quick_campaign()
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        assert geometry.provider == "provider-3"
        assert geometry.tenant == "tenant-3"
        assert geometry.n_files == 2  # 6 files over 3 providers
        assert geometry.n_segments == sum(
            n for _, n in geometry.segments_per_file
        )
        assert geometry.entry_bytes > 0
        assert geometry.rtt_max_ms > 0

    def test_geometry_matches_fleet_records(self):
        campaign = quick_campaign()
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        for file_id, n_segments in geometry.segments_per_file:
            record = fleet.record(geometry.provider, file_id)
            assert record.n_segments == n_segments


class TestInjection:
    def test_prefetch_injection_relocates_and_prewarm_is_metered(self):
        campaign = quick_campaign()
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        cache_bytes = geometry.n_segments * geometry.entry_bytes // 2
        strategy = campaign.inject(fleet, geometry, cache_bytes)
        assert isinstance(strategy, PrefetchRelayAttack)
        # The hook recorded the misbehaviour...
        assert fleet.adversaries() == {
            geometry.provider: "PrefetchRelayAttack"
        }
        # ...the files physically moved offshore...
        provider = fleet.provider(geometry.provider)
        for file_id, _ in geometry.segments_per_file:
            assert provider.home_of(file_id).name == "singapore"
        # ...and the prewarm was metered, bytes and dollars.
        assert strategy.prewarmed_bytes > 0
        assert strategy.prewarm_cost_usd > 0
        assert strategy.cache.n_entries > 0

    def test_prewarm_split_is_proportional(self):
        campaign = quick_campaign()
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        capacity = geometry.n_segments // 2
        strategy = campaign.inject(
            fleet, geometry, capacity * geometry.entry_bytes
        )
        # Every victim file got ~half its segments warmed.
        warmed_per_file: dict = {}
        for (file_id, _index) in strategy.cache._entries:
            warmed_per_file[file_id] = warmed_per_file.get(file_id, 0) + 1
        for file_id, n_segments in geometry.segments_per_file:
            assert warmed_per_file[file_id] == (
                capacity * n_segments // geometry.n_segments
            )

    def test_deletion_injection_stays_onshore(self):
        campaign = quick_campaign(attack="deletion")
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        strategy = campaign.inject(fleet, geometry, 0)
        assert isinstance(strategy, DeletionAttack)
        provider = fleet.provider(geometry.provider)
        assert "singapore" not in provider.datacentre_names()


class TestSingleCells:
    def test_empty_cache_detected_every_audit(self):
        cell = quick_campaign().run_cell(
            cache_fraction=0.0, engine="slot"
        )
        assert cell.observed_detection_rate == 1.0
        assert cell.detection_bound == 1.0
        assert cell.all_files_detected
        assert cell.first_detection_hours is not None
        assert cell.bound_met
        assert cell.relayed_bytes > 0
        assert cell.prewarmed_bytes == 0

    def test_full_cache_escapes_timing(self):
        cell = quick_campaign().run_cell(
            cache_fraction=1.0, engine="slot"
        )
        assert cell.observed_detection_rate == 0.0
        assert cell.detection_bound == 0.0
        assert cell.simulated_hit_rate == 1.0
        assert cell.n_detected_files == 0
        assert cell.bound_met  # vacuously: 0 >= 0
        # Economics still say no: RAM for the whole file dwarfs the
        # storage delta, so the "winning" attack loses money forever.
        assert cell.economics is not None
        assert not cell.economics.profitable

    def test_half_cache_tracks_model_and_bound(self):
        cell = quick_campaign(hours=12.0).run_cell(
            cache_fraction=0.5, engine="slot"
        )
        assert cell.analytic_hit_rate == pytest.approx(0.5, abs=0.01)
        assert cell.hit_rate_error < 0.08
        assert cell.bound_met
        assert cell.victim_audits > 0
        assert cell.tenant_detection_hours == cell.first_detection_hours

    def test_deletion_cell_detected_by_macs(self):
        cell = quick_campaign(
            attack="deletion", delete_fraction=0.5, hours=12.0
        ).run_cell(engine="slot")
        assert cell.detection_bound is None  # timing bound n/a
        assert cell.detection_probability is None
        assert cell.bound_margin is None and cell.bound_met
        assert cell.economics is None
        assert cell.observed_detection_rate > 0.5
        assert cell.n_detected_files > 0

    def test_deletion_cell_exports_valid_json(self):
        # Regression pin: the cache-model-n/a detection probability
        # used to export as float('nan'), producing invalid JSON.
        import json

        cell = quick_campaign(attack="deletion").run_cell(engine="slot")
        payload = json.dumps(cell.to_dict(), allow_nan=False)
        assert json.loads(payload)["detection_probability"] is None

    def test_relay_campaign_installs_a_true_relay_attack(self):
        # Regression pin: plain relay campaigns used to install a
        # PrefetchRelayAttack(cache_bytes=0), so FleetReport named the
        # wrong strategy.
        campaign = quick_campaign(attack="relay")
        fleet, geometry = campaign.prepare_cell("slot")
        campaign.inject(fleet, geometry, 0)
        assert fleet.adversaries() == {"provider-3": "RelayAttack"}


@pytest.mark.slow
class TestSweeps:
    def test_relay_campaign_is_one_cell_per_engine(self):
        cells = quick_campaign(attack="relay").sweep()
        assert [c.engine for c in cells] == ["slot", "event"]
        assert all(c.cache_bytes == 0 for c in cells)
        assert all(c.observed_detection_rate == 1.0 for c in cells)

    def test_prefetch_sweep_covers_engines_by_fractions(self):
        campaign = quick_campaign(hours=12.0)
        fractions = (0.0, 0.5, 1.0)
        cells = campaign.sweep(
            cache_fractions=fractions, engines=("slot", "event")
        )
        assert len(cells) == 6
        assert all(cell.bound_met for cell in cells)
        # Monotone physics along each engine's sweep: more cache,
        # higher hit rate, later (or never) detection.
        for engine in ("slot", "event"):
            row = [c for c in cells if c.engine == engine]
            hits = [c.simulated_hit_rate for c in row]
            assert hits == sorted(hits)
            assert row[0].all_files_detected
            assert row[-1].n_detected_files == 0

    def test_event_engine_detects_sooner_than_slot(self):
        """The PR 3 concurrency win carries into adversary campaigns:
        the victim lane audits immediately instead of waiting for the
        global loop to reach it."""
        campaign = quick_campaign(hours=12.0)
        slot = campaign.run_cell(cache_fraction=0.0, engine="slot")
        event = campaign.run_cell(cache_fraction=0.0, engine="event")
        assert event.first_detection_hours < slot.first_detection_hours

    def test_slot_event_equivalence_with_adversary(self):
        assert quick_campaign().slot_event_streams_match()

    def test_deterministic_cells(self):
        a = quick_campaign().run_cell(cache_fraction=0.5, engine="slot")
        b = quick_campaign().run_cell(cache_fraction=0.5, engine="slot")
        assert a == b
