"""CostModel: validation, resource pricing, break-even algebra."""

import pytest

from repro.economics.costs import BYTES_PER_GB, CostModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        model = CostModel()
        assert model.storage_usd_per_gb_month > 0

    @pytest.mark.parametrize(
        "field",
        [
            "storage_usd_per_gb_month",
            "remote_storage_usd_per_gb_month",
            "ram_usd_per_gb_month",
            "bandwidth_usd_per_gb",
            "audit_overhead_usd",
            "violation_penalty_usd",
        ],
    )
    def test_negative_prices_rejected(self, field):
        with pytest.raises(ConfigurationError):
            CostModel(**{field: -0.01})

    def test_zero_prices_allowed(self):
        # Free resources are legitimate modelling inputs (e.g. an
        # attacker with sunk RAM).
        CostModel(ram_usd_per_gb_month=0.0)


class TestPricing:
    def test_storage_scales_linearly(self):
        model = CostModel(storage_usd_per_gb_month=0.02)
        assert model.storage_usd(BYTES_PER_GB) == pytest.approx(0.02)
        assert model.storage_usd(BYTES_PER_GB, months=3.0) == pytest.approx(
            0.06
        )
        assert model.storage_usd(BYTES_PER_GB // 2) == pytest.approx(0.01)

    def test_relay_savings_is_the_storage_delta(self):
        model = CostModel(
            storage_usd_per_gb_month=0.03,
            remote_storage_usd_per_gb_month=0.01,
        )
        assert model.relay_savings_usd(BYTES_PER_GB) == pytest.approx(0.02)

    def test_relay_savings_negative_when_remote_dearer(self):
        model = CostModel(
            storage_usd_per_gb_month=0.01,
            remote_storage_usd_per_gb_month=0.03,
        )
        assert model.relay_savings_usd(BYTES_PER_GB) < 0

    def test_audit_usd_overhead_plus_traffic(self):
        model = CostModel(
            audit_overhead_usd=0.001, bandwidth_usd_per_gb=1.0
        )
        # 10 audits x 5 rounds x 1000 bytes = 50 kB of traffic.
        cost = model.audit_usd(10, 5, 1000)
        assert cost == pytest.approx(0.01 + 50_000 / BYTES_PER_GB)

    def test_to_dict_round_trips(self):
        model = CostModel()
        assert CostModel(**model.to_dict()) == model


class TestBreakEven:
    def test_break_even_formula(self):
        model = CostModel(
            storage_usd_per_gb_month=0.03,
            remote_storage_usd_per_gb_month=0.01,
            ram_usd_per_gb_month=2.0,
        )
        # c* = file * delta / ram = file * 0.02 / 2.0 = 1% of the file.
        assert model.break_even_cache_bytes(1_000_000) == 10_000

    def test_break_even_capped_at_file_size(self):
        cheap_ram = CostModel(
            storage_usd_per_gb_month=0.03,
            remote_storage_usd_per_gb_month=0.01,
            ram_usd_per_gb_month=0.001,
        )
        assert cheap_ram.break_even_cache_bytes(1_000_000) == 1_000_000

    def test_free_ram_break_even_is_the_file(self):
        model = CostModel(ram_usd_per_gb_month=0.0)
        assert model.break_even_cache_bytes(500) == 500

    def test_no_savings_no_rational_cache(self):
        model = CostModel(
            storage_usd_per_gb_month=0.01,
            remote_storage_usd_per_gb_month=0.01,
        )
        assert model.break_even_cache_bytes(1_000_000) == 0

    def test_rejects_nonpositive_file(self):
        with pytest.raises(ConfigurationError):
            CostModel().break_even_cache_bytes(0)
