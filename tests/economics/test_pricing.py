"""Attacker ledgers and per-tenant defence quotes."""

import math

import pytest

from repro.economics.cache_model import LRUHitModel
from repro.economics.costs import CostModel
from repro.economics.pricing import (
    attack_economics,
    finite_or_none,
    min_deterrent_audit_rate,
    price_tenant,
)
from repro.errors import ConfigurationError

GB = 1_000_000_000
ENTRY = 4096

#: A 100 GB victim: big enough that the dollar amounts are readable.
FILE_BYTES = 100 * GB
N_SEGMENTS = FILE_BYTES // ENTRY


def model_for(fraction: float) -> LRUHitModel:
    return LRUHitModel(
        cache_bytes=round(fraction * N_SEGMENTS) * ENTRY,
        entry_bytes=ENTRY,
        n_segments=N_SEGMENTS,
    )


class TestAttackEconomics:
    def test_empty_cache_caught_first_audit(self):
        ledger = attack_economics(
            cost_model=CostModel(),
            hit_model=model_for(0.0),
            k_rounds=10,
            audits_per_month=30.0,
            file_bytes=FILE_BYTES,
        )
        assert ledger.detection_probability == 1.0
        # One audit in: 1/30th of a month of savings vs the penalty.
        assert ledger.expected_months_to_detection == pytest.approx(
            1 / 30
        )
        assert not ledger.profitable
        assert ledger.roi < 0

    def test_full_cache_never_caught(self):
        ledger = attack_economics(
            cost_model=CostModel(),
            hit_model=model_for(1.0),
            k_rounds=10,
            audits_per_month=30.0,
            file_bytes=FILE_BYTES,
        )
        assert ledger.detection_probability == 0.0
        assert math.isinf(ledger.expected_months_to_detection)
        # RAM for the whole file costs far more than the storage
        # delta saves: infinitely-long losses.
        assert ledger.expected_profit_usd == -math.inf
        assert not ledger.profitable

    def test_full_cache_with_free_ram_is_undeterrable(self):
        free_ram = CostModel(ram_usd_per_gb_month=0.0)
        ledger = attack_economics(
            cost_model=free_ram,
            hit_model=model_for(1.0),
            k_rounds=10,
            audits_per_month=30.0,
            file_bytes=FILE_BYTES,
        )
        assert ledger.expected_profit_usd == math.inf
        assert ledger.profitable

    def test_zero_audit_rate_never_detects(self):
        ledger = attack_economics(
            cost_model=CostModel(ram_usd_per_gb_month=0.0),
            hit_model=model_for(0.1),
            k_rounds=10,
            audits_per_month=0.0,
            file_bytes=FILE_BYTES,
        )
        assert math.isinf(ledger.expected_months_to_detection)
        assert ledger.profitable  # free cache, no audits: pure savings

    def test_savings_scale_with_storage_delta(self):
        wide = CostModel(
            storage_usd_per_gb_month=0.05,
            remote_storage_usd_per_gb_month=0.01,
        )
        ledger = attack_economics(
            cost_model=wide,
            hit_model=model_for(0.0),
            k_rounds=5,
            audits_per_month=10.0,
            file_bytes=FILE_BYTES,
        )
        assert ledger.savings_usd_per_month == pytest.approx(
            100 * 0.04
        )

    def test_to_dict_sanitises_infinities(self):
        ledger = attack_economics(
            cost_model=CostModel(),
            hit_model=model_for(1.0),
            k_rounds=10,
            audits_per_month=30.0,
            file_bytes=FILE_BYTES,
        )
        payload = ledger.to_dict()
        assert payload["expected_months_to_detection"] is None
        assert payload["expected_profit_usd"] is None
        assert payload["profitable"] is False


class TestMinDeterrentRate:
    def test_higher_penalty_needs_fewer_audits(self):
        kwargs = dict(
            entry_bytes=ENTRY,
            n_segments=N_SEGMENTS,
            k_rounds=10,
            file_bytes=FILE_BYTES,
        )
        lax, _ = min_deterrent_audit_rate(
            cost_model=CostModel(violation_penalty_usd=10.0), **kwargs
        )
        strict, _ = min_deterrent_audit_rate(
            cost_model=CostModel(violation_penalty_usd=1000.0), **kwargs
        )
        assert 0 < strict < lax

    def test_rate_zero_when_relay_saves_nothing(self):
        rate, _ = min_deterrent_audit_rate(
            cost_model=CostModel(
                storage_usd_per_gb_month=0.01,
                remote_storage_usd_per_gb_month=0.01,
            ),
            entry_bytes=ENTRY,
            n_segments=N_SEGMENTS,
            k_rounds=10,
            file_bytes=FILE_BYTES,
        )
        assert rate == 0.0

    def test_free_full_file_ram_is_undeterrable(self):
        rate, model = min_deterrent_audit_rate(
            cost_model=CostModel(ram_usd_per_gb_month=0.0),
            entry_bytes=ENTRY,
            n_segments=N_SEGMENTS,
            k_rounds=10,
            file_bytes=FILE_BYTES,
        )
        assert math.isinf(rate)
        assert model.hit_rate == 1.0

    def test_deterrence_solves_the_profit_equation(self):
        """At the returned rate the worst cache's profit is ~zero; any
        higher rate drives it negative."""
        cost_model = CostModel()
        rate, worst = min_deterrent_audit_rate(
            cost_model=cost_model,
            entry_bytes=ENTRY,
            n_segments=N_SEGMENTS,
            k_rounds=10,
            file_bytes=FILE_BYTES,
        )
        assert rate > 0
        at_threshold = attack_economics(
            cost_model=cost_model,
            hit_model=worst,
            k_rounds=10,
            audits_per_month=rate,
            file_bytes=FILE_BYTES,
        )
        assert at_threshold.expected_profit_usd == pytest.approx(
            0.0, abs=1e-6
        )
        above = attack_economics(
            cost_model=cost_model,
            hit_model=worst,
            k_rounds=10,
            audits_per_month=rate * 1.5,
            file_bytes=FILE_BYTES,
        )
        assert above.expected_profit_usd < 0

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            min_deterrent_audit_rate(
                cost_model=CostModel(),
                entry_bytes=ENTRY,
                n_segments=N_SEGMENTS,
                k_rounds=10,
                file_bytes=FILE_BYTES,
                cache_fractions=(0.5, 1.5),
            )
        with pytest.raises(ConfigurationError):
            min_deterrent_audit_rate(
                cost_model=CostModel(),
                entry_bytes=ENTRY,
                n_segments=N_SEGMENTS,
                k_rounds=10,
                file_bytes=FILE_BYTES,
                cache_fractions=(),
            )


class TestTenantQuote:
    def quote(self, **overrides):
        kwargs = dict(
            tenant="alice",
            provider="acme",
            cost_model=CostModel(),
            file_bytes=FILE_BYTES,
            entry_bytes=ENTRY,
            n_segments=N_SEGMENTS,
            k_rounds=50,
            rtt_max_ms=16.1,
        )
        kwargs.update(overrides)
        return price_tenant(**kwargs)

    def test_quote_covers_the_minimum_rate(self):
        quote = self.quote()
        assert quote.deterrable
        assert quote.audits_per_month >= quote.min_audits_per_month
        assert quote.price_usd_per_month > quote.audit_cost_usd_per_month

    def test_floor_applies_when_attack_already_uneconomic(self):
        quote = self.quote(
            cost_model=CostModel(
                storage_usd_per_gb_month=0.01,
                remote_storage_usd_per_gb_month=0.01,
            ),
            floor_audits_per_month=2.0,
        )
        assert quote.min_audits_per_month == 0.0
        assert quote.audits_per_month == 2.0

    def test_undeterrable_quote_is_flagged(self):
        quote = self.quote(
            cost_model=CostModel(ram_usd_per_gb_month=0.0)
        )
        assert not quote.deterrable
        assert math.isinf(quote.audits_per_month)
        payload = quote.to_dict()
        assert payload["min_audits_per_month"] is None
        assert payload["deterrable"] is False

    def test_timing_radius_present_with_budget(self):
        quote = self.quote()
        assert quote.timing_radius_km is not None
        assert quote.timing_radius_km > 0
        assert self.quote(rtt_max_ms=None).timing_radius_km is None

    def test_to_dict_round_trips_to_json(self):
        import json

        payload = json.dumps(self.quote().to_dict())
        assert json.loads(payload)["tenant"] == "alice"


class TestFiniteOrNone:
    def test_sanitisation(self):
        assert finite_or_none(1.5) == 1.5
        assert finite_or_none(0.0) == 0.0
        assert finite_or_none(math.inf) is None
        assert finite_or_none(-math.inf) is None
        assert finite_or_none(math.nan) is None
        assert finite_or_none(None) is None
