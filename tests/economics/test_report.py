"""EconomicsReport assembly, aggregates, rendering and JSON export."""

import json

import pytest

from repro.economics import AdversaryCampaign, build_economics_report


@pytest.fixture(scope="module")
def report():
    """One small end-to-end report shared by every test here."""
    campaign = AdversaryCampaign(
        n_providers=3,
        n_files=6,
        k_rounds=6,
        hours=12.0,
        seed="report-test",
    )
    return build_economics_report(
        campaign,
        cache_fractions=(0.0, 0.5, 1.0),
        engines=("slot", "event"),
        check_equivalence=True,
    )


pytestmark = pytest.mark.slow


class TestAggregates:
    def test_cells_cover_the_grid(self, report):
        assert len(report.cells) == 6
        assert {c.engine for c in report.cells} == {"slot", "event"}

    def test_bound_satisfied(self, report):
        assert report.bound_satisfied
        assert report.min_bound_margin is not None

    def test_equivalence_anchor_holds(self, report):
        assert report.equivalence_ok is True

    def test_hit_rate_agreement(self, report):
        assert report.max_hit_rate_error < 0.08

    def test_defence_priced_out(self, report):
        # Commodity prices: no swept cache size is profitable, and
        # the rational attacker's cache cap is a sliver of the file.
        assert report.profitable_cache_bytes is None
        assert (
            0
            < report.break_even_cache_bytes
            < report.geometry.stored_bytes
        )

    def test_quotes_cover_every_tenant(self, report):
        assert [q.tenant for q in report.quotes] == [
            "tenant-1",
            "tenant-2",
            "tenant-3",
        ]
        assert report.quote_for("tenant-2").provider == "provider-2"
        assert report.quote_for("nobody") is None
        for quote in report.quotes:
            assert quote.deterrable
            assert quote.timing_radius_km is not None

    def test_roi_curve_per_engine(self, report):
        for engine in ("slot", "event"):
            curve = report.roi_curve(engine)
            assert len(curve) == 3
            cache_sizes = [size for size, _ in curve]
            assert cache_sizes == sorted(cache_sizes)
            # Every point of the curve is loss-making or unbounded
            # RAM burn (None = -inf after JSON sanitisation).
            assert all(roi is None or roi < 0 for _, roi in curve)


class TestExport:
    def test_to_dict_is_json_serialisable(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["attack"] == "prefetch-relay"
        assert payload["bound_satisfied"] is True
        assert payload["equivalence_ok"] is True
        assert len(payload["cells"]) == 6
        assert len(payload["quotes"]) == 3
        assert payload["victim"]["provider"] == "provider-3"
        assert set(payload["roi_curves"]) == {"slot", "event"}

    def test_render_mentions_every_section(self, report):
        rendered = report.render()
        assert "Adversary campaign" in rendered
        assert "Cache sweep" in rendered
        assert "Per-tenant defence pricing" in rendered
        assert "break-even cache size" in rendered
        assert "detection bound (1 - (cache/file)^k): met" in rendered
        assert "slot-vs-event stream equivalence" in rendered

    def test_fleet_reports_name_the_adversary(self):
        campaign = AdversaryCampaign(
            n_providers=2, n_files=4, hours=3.0, seed="adv-name"
        )
        fleet = campaign.build_fleet()
        geometry = campaign.measure_geometry(fleet)
        campaign.inject(fleet, geometry, 0)
        fleet_report = fleet.run(hours=3.0)
        assert fleet_report.adversaries == (
            ("provider-2", "PrefetchRelayAttack"),
        )
        assert "PrefetchRelayAttack" in fleet_report.render()
        assert fleet_report.to_dict()["adversaries"] == {
            "provider-2": "PrefetchRelayAttack"
        }
        # Per-tenant detection latency surfaced for the victim tenant.
        victim = fleet_report.tenant_summary(geometry.tenant)
        assert victim.first_detection_hours is not None
        honest = fleet_report.tenant_summary("tenant-1")
        assert honest.first_detection_hours is None
