"""The partial-relocation adversary and the max-gate argument."""

import pytest

from repro.cloud.adversary import PartialRelocationAttack
from repro.cloud.provider import DataCentre
from repro.crypto.rng import DeterministicRNG
from repro.geo.datasets import city
from repro.storage.hdd import IBM_36Z15
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

def relocated_session(local_fraction, seed="partial"):
    session, file_id, _ = build_session(seed)
    session.provider.add_datacentre(
        DataCentre("remote", city("singapore"), disk=IBM_36Z15)
    )
    session.provider.relocate(file_id, "remote")
    attack = PartialRelocationAttack(
        "home", "remote", local_fraction, DeterministicRNG(f"{seed}-adv")
    )
    session.provider.set_strategy(attack)
    return session, file_id, attack


class TestServingSplit:
    def test_hot_segments_served_fast(self):
        session, file_id, attack = relocated_session(0.5)
        local = attack.local_indices(session.provider, file_id)
        hot = next(iter(local))
        result = session.provider.handle_request(file_id, hot)
        assert "hot" in result.served_by
        assert result.elapsed_ms < 16.0

    def test_cold_segments_relayed_slow(self):
        session, file_id, attack = relocated_session(0.5)
        n = session.files[file_id].n_segments
        local = attack.local_indices(session.provider, file_id)
        cold = next(i for i in range(n) if i not in local)
        result = session.provider.handle_request(file_id, cold)
        assert "->" in result.served_by
        assert result.elapsed_ms > 50.0

    def test_local_set_size(self):
        session, file_id, attack = relocated_session(0.25)
        n = session.files[file_id].n_segments
        assert len(attack.local_indices(session.provider, file_id)) == round(0.25 * n)


class TestDetection:
    def test_detection_rate_tracks_one_minus_fraction_power_k(self):
        """P(caught) = 1 - local_fraction^k, the max-gate guarantee."""
        session, file_id, _ = relocated_session(0.8, seed="partial-stats")
        k, trials = 10, 25
        detected = sum(
            1
            for _ in range(trials)
            if not session.audit(file_id, k=k).verdict.accepted
        )
        theory = 1.0 - 0.8**k  # ~0.89
        assert detected / trials == pytest.approx(theory, abs=0.2)

    def test_mostly_local_still_caught_with_enough_rounds(self):
        # 95 % local: one audit with k = 100 -> P(escape) = 0.95^100 ~ 0.6%.
        session, file_id, _ = relocated_session(0.95, seed="partial-95")
        outcome = session.audit(file_id, k=100)
        assert not outcome.verdict.accepted
        assert "timing" in outcome.verdict.failure_reasons

    def test_mean_rtt_hides_what_max_reveals(self):
        """The ablation's point: with 90 % local, the mean round time
        stays near-honest while the max screams."""
        session, file_id, _ = relocated_session(0.9, seed="partial-mean")
        outcome = session.audit(file_id, k=40)
        transcript = outcome.transcript
        honest_round = 13.5
        assert transcript.mean_rtt_ms < 3.0 * honest_round
        assert transcript.max_rtt_ms > 5.0 * honest_round

    def test_full_local_fraction_is_honest_relay_free(self):
        session, file_id, _ = relocated_session(1.0, seed="partial-full")
        outcome = session.audit(file_id, k=15)
        # Everything served at front disk speed -> passes timing.  (The
        # data is still *stored* remotely: this is the cache-limit
        # caveat, same as the full-prefetch case.)
        assert outcome.verdict.timing_ok
