"""Provider, data centres, placement and relocation."""

import pytest

from repro.cloud.provider import CloudProvider, DataCentre
from repro.errors import BlockNotFoundError, ConfigurationError
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file
from repro.storage.hdd import HDDModel, IBM_36Z15, WD_2500JD


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def provider(keys, sample_data, brisbane):
    provider = CloudProvider("acme")
    provider.add_datacentre(DataCentre("bne", brisbane))
    provider.add_datacentre(
        DataCentre("syd", GeoPoint(-33.87, 151.21), disk=IBM_36Z15)
    )
    encoded = setup_file(sample_data, keys, b"prov-file", TEST_PARAMS)
    provider.upload(encoded, "bne")
    return provider


class TestFleet:
    def test_duplicate_datacentre_rejected(self, provider, brisbane):
        with pytest.raises(ConfigurationError):
            provider.add_datacentre(DataCentre("bne", brisbane))

    def test_unknown_datacentre(self, provider):
        with pytest.raises(ConfigurationError):
            provider.datacentre("nowhere")

    def test_names(self, provider):
        assert set(provider.datacentre_names()) == {"bne", "syd"}


class TestPlacement:
    def test_home_tracking(self, provider):
        assert provider.home_of(b"prov-file").name == "bne"

    def test_unknown_file(self, provider):
        with pytest.raises(BlockNotFoundError):
            provider.home_of(b"ghost")

    def test_honest_serving_charges_home_disk(self, provider):
        result = provider.handle_request(b"prov-file", 0)
        assert result.served_by == "bne"
        expected = HDDModel(WD_2500JD).lookup_ms(result.segment.size_bytes)
        assert result.elapsed_ms == pytest.approx(expected)

    def test_relocation_moves_data(self, provider):
        provider.relocate(b"prov-file", "syd")
        assert provider.home_of(b"prov-file").name == "syd"
        assert not provider.datacentre("bne").server.store.has_file(b"prov-file")
        assert provider.datacentre("syd").server.store.has_file(b"prov-file")

    def test_relocated_file_serves_identically(self, provider):
        before = provider.handle_request(b"prov-file", 3).segment
        provider.relocate(b"prov-file", "syd")
        after = provider.handle_request(b"prov-file", 3).segment
        assert before == after

    def test_relocation_preserves_mutations(self, provider):
        from repro.por.file_format import Segment

        store = provider.datacentre("bne").server.store
        original = store.get_segment(b"prov-file", 1)
        mutated = Segment(1, bytes(len(original.payload)), original.tag)
        store.overwrite_segment(b"prov-file", mutated)
        provider.relocate(b"prov-file", "syd")
        assert provider.handle_request(b"prov-file", 1).segment == mutated


class TestStrategy:
    def test_strategy_intercepts(self, provider):
        class Echo:
            def handle_request(self, prov, file_id, index):
                from repro.cloud.provider import ServeResult
                from repro.por.file_format import Segment

                return ServeResult(
                    segment=Segment(index, b"", b""),
                    elapsed_ms=0.0,
                    served_by="intercepted",
                )

        provider.set_strategy(Echo())
        assert provider.handle_request(b"prov-file", 0).served_by == "intercepted"

    def test_clearing_strategy_restores_honesty(self, provider):
        provider.set_strategy(None)
        assert provider.handle_request(b"prov-file", 0).served_by == "bne"

    def test_internet_rtt_between_sites(self, provider):
        bne = provider.datacentre("bne")
        syd = provider.datacentre("syd")
        rtt = provider.internet_rtt_ms(bne, syd)
        # Brisbane-Sydney ~730 km: base 16 + propagation ~11 + hops.
        assert 20.0 < rtt < 50.0
