"""CloudProvider.replicate_to semantics."""

import pytest

from repro.cloud.provider import CloudProvider, DataCentre
from repro.errors import BlockNotFoundError, ConfigurationError
from repro.geo.datasets import city
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys, setup_file


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def two_site_provider(keys, sample_data):
    provider = CloudProvider("acme")
    provider.add_datacentre(DataCentre("syd", city("sydney")))
    provider.add_datacentre(DataCentre("per", city("perth")))
    encoded = setup_file(sample_data, keys, b"repl-file", TEST_PARAMS)
    provider.upload(encoded, "syd")
    return provider, encoded


class TestReplicateTo:
    def test_copy_created_home_unchanged(self, two_site_provider):
        provider, encoded = two_site_provider
        provider.replicate_to(b"repl-file", "per")
        assert provider.home_of(b"repl-file").name == "syd"
        assert provider.datacentre("per").server.store.has_file(b"repl-file")
        assert provider.datacentre("syd").server.store.has_file(b"repl-file")

    def test_copies_identical(self, two_site_provider):
        provider, encoded = two_site_provider
        provider.replicate_to(b"repl-file", "per")
        for index in (0, 5, encoded.n_segments - 1):
            a = provider.datacentre("syd").server.store.get_segment(b"repl-file", index)
            b = provider.datacentre("per").server.store.get_segment(b"repl-file", index)
            assert a == b

    def test_duplicate_replication_rejected(self, two_site_provider):
        provider, _ = two_site_provider
        provider.replicate_to(b"repl-file", "per")
        with pytest.raises(ConfigurationError):
            provider.replicate_to(b"repl-file", "per")

    def test_unknown_file_rejected(self, two_site_provider):
        provider, _ = two_site_provider
        with pytest.raises(BlockNotFoundError):
            provider.replicate_to(b"ghost", "per")

    def test_unknown_destination_rejected(self, two_site_provider):
        provider, _ = two_site_provider
        with pytest.raises(ConfigurationError):
            provider.replicate_to(b"repl-file", "nowhere")

    def test_replica_carries_current_mutations(self, two_site_provider):
        from repro.por.file_format import Segment

        provider, _ = two_site_provider
        store = provider.datacentre("syd").server.store
        original = store.get_segment(b"repl-file", 2)
        mutated = Segment(2, bytes(len(original.payload)), original.tag)
        store.overwrite_segment(b"repl-file", mutated)
        provider.replicate_to(b"repl-file", "per")
        assert (
            provider.datacentre("per").server.store.get_segment(b"repl-file", 2)
            == mutated
        )

    def test_strategy_property_reflects_installs(self, two_site_provider):
        provider, _ = two_site_provider
        assert provider.strategy is None
        marker = object()
        provider.set_strategy(marker)
        assert provider.strategy is marker
        provider.set_strategy(None)
        assert provider.strategy is None
