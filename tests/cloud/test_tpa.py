"""The third-party auditor: registration, audits, reporting."""

import pytest

from repro.errors import ConfigurationError
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

class TestRegistration:
    def test_duplicate_registration_rejected(self):
        session, file_id, _ = build_session("tpa-dup")
        record = session.files[file_id]
        with pytest.raises(ConfigurationError):
            session.tpa.register_file(
                file_id,
                record.n_segments,
                record.keys.mac_key,
                session.params,
                session.sla,
            )

    def test_unknown_file(self):
        session, _, _ = build_session("tpa-unknown")
        with pytest.raises(ConfigurationError):
            session.tpa.record(b"ghost")


class TestAuditing:
    def test_honest_audit_accepted_and_logged(self):
        session, file_id, _ = build_session("tpa-honest")
        outcome = session.audit(file_id, k=10)
        assert outcome.verdict.accepted
        assert session.tpa.audit_log == [outcome]
        assert outcome.duration_ms > 0

    def test_default_k_from_sla(self):
        session, file_id, _ = build_session("tpa-defaults")
        outcome = session.audit(file_id)
        assert outcome.request.k == session.sla.min_rounds

    def test_nonces_are_fresh(self):
        session, file_id, _ = build_session("tpa-nonce")
        a = session.audit(file_id, k=5)
        b = session.audit(file_id, k=5)
        assert a.request.nonce != b.request.nonce

    def test_rtt_override(self):
        session, file_id, _ = build_session("tpa-override")
        strict = session.audit(file_id, k=5, rtt_max_ms=0.001)
        assert not strict.verdict.accepted
        assert "timing" in strict.verdict.failure_reasons


class TestReporting:
    def test_acceptance_rate(self):
        session, file_id, _ = build_session("tpa-rate")
        session.audit(file_id, k=5)
        session.audit(file_id, k=5, rtt_max_ms=0.001)  # forced reject
        assert session.tpa.acceptance_rate() == pytest.approx(0.5)

    def test_empty_log_rate(self):
        session, _, _ = build_session("tpa-empty")
        assert session.tpa.acceptance_rate() == 0.0

    def test_failures_by_reason(self):
        session, file_id, _ = build_session("tpa-hist")
        session.audit(file_id, k=5, rtt_max_ms=0.001)
        session.audit(file_id, k=5, rtt_max_ms=0.001)
        histogram = session.tpa.failures_by_reason()
        assert histogram.get("timing") == 2
