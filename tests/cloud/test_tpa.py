"""The third-party auditor: registration, audits, reporting."""

import pytest

from repro.cloud.tpa import ThirdPartyAuditor
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

class TestRegistration:
    def test_duplicate_registration_rejected(self):
        session, file_id, _ = build_session("tpa-dup")
        record = session.files[file_id]
        with pytest.raises(ConfigurationError):
            session.tpa.register_file(
                file_id,
                record.n_segments,
                record.keys.mac_key,
                session.params,
                session.sla,
            )

    def test_unknown_file(self):
        session, _, _ = build_session("tpa-unknown")
        with pytest.raises(ConfigurationError):
            session.tpa.record(b"ghost")


class TestAuditing:
    def test_honest_audit_accepted_and_logged(self):
        session, file_id, _ = build_session("tpa-honest")
        outcome = session.audit(file_id, k=10)
        assert outcome.verdict.accepted
        assert session.tpa.audit_log == [outcome]
        assert outcome.duration_ms > 0

    def test_default_k_from_sla(self):
        session, file_id, _ = build_session("tpa-defaults")
        outcome = session.audit(file_id)
        assert outcome.request.k == session.sla.min_rounds

    def test_nonces_are_fresh(self):
        session, file_id, _ = build_session("tpa-nonce")
        a = session.audit(file_id, k=5)
        b = session.audit(file_id, k=5)
        assert a.request.nonce != b.request.nonce

    def test_rtt_override(self):
        session, file_id, _ = build_session("tpa-override")
        strict = session.audit(file_id, k=5, rtt_max_ms=0.001)
        assert not strict.verdict.accepted
        assert "timing" in strict.verdict.failure_reasons


class TestDeferredVerification:
    def test_deferred_outcomes_equal_immediate(self):
        """Same seed, both modes: the outcome lists must be ``==``."""
        immediate_session, file_id, _ = build_session("tpa-defer")
        deferred_session, _, _ = build_session("tpa-defer")
        immediate = [
            immediate_session.tpa.audit(
                file_id,
                immediate_session.verifier,
                immediate_session.provider,
                k=5,
            )
            for _ in range(4)
        ]
        for _ in range(4):
            deferred_session.tpa.audit_deferred(
                file_id,
                deferred_session.verifier,
                deferred_session.provider,
                k=5,
            )
        assert deferred_session.tpa.pending_count == 4
        flushed = deferred_session.tpa.flush_verdicts()
        assert flushed == immediate
        assert deferred_session.tpa.pending_count == 0
        assert list(deferred_session.tpa.audit_log) == list(
            immediate_session.tpa.audit_log
        )

    def test_flush_empty_is_noop(self):
        session, _, _ = build_session("tpa-noflush")
        assert session.tpa.flush_verdicts() == []
        assert session.tpa.audit_log == []

    def test_audit_many_wraps_collect_then_flush(self):
        session, file_id, _ = build_session("tpa-many")
        outcomes = session.tpa.audit_many(
            [file_id, file_id, file_id],
            session.verifier,
            session.provider,
            k=5,
        )
        assert len(outcomes) == 3
        assert all(outcome.verdict.accepted for outcome in outcomes)
        assert list(session.tpa.audit_log) == outcomes

    def test_deferred_counts_failures(self):
        session, file_id, _ = build_session("tpa-defer-fail")
        session.tpa.audit_deferred(
            file_id, session.verifier, session.provider, k=5
        )
        session.tpa.audit_deferred(
            file_id,
            session.verifier,
            session.provider,
            k=5,
            rtt_max_ms=0.001,
        )
        session.tpa.flush_verdicts()
        assert session.tpa.acceptance_rate() == pytest.approx(0.5)
        assert session.tpa.failures_by_reason().get("timing") == 1


class TestBoundedAuditLog:
    def test_ring_keeps_most_recent(self):
        session, file_id, _ = build_session("tpa-ring")
        bounded = ThirdPartyAuditor(
            "ring", DeterministicRNG("ring"), max_log=2
        )
        record = session.tpa.record(file_id)
        bounded.register_file(
            file_id,
            record.n_segments,
            record.mac_key,
            record.params,
            record.sla,
        )
        outcomes = [
            bounded.audit(file_id, session.verifier, session.provider, k=5)
            for _ in range(5)
        ]
        assert list(bounded.audit_log) == outcomes[-2:]

    def test_counters_exact_after_eviction(self):
        session, file_id, _ = build_session("tpa-ring-count")
        bounded = ThirdPartyAuditor(
            "ring", DeterministicRNG("ring"), max_log=1
        )
        record = session.tpa.record(file_id)
        bounded.register_file(
            file_id,
            record.n_segments,
            record.mac_key,
            record.params,
            record.sla,
        )
        for _ in range(3):
            bounded.audit(file_id, session.verifier, session.provider, k=5)
        bounded.audit(
            file_id,
            session.verifier,
            session.provider,
            k=5,
            rtt_max_ms=0.001,
        )
        # One outcome retained, four counted.
        assert len(bounded.audit_log) == 1
        assert bounded.acceptance_rate() == pytest.approx(0.75)
        assert bounded.failures_by_reason().get("timing") == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            ThirdPartyAuditor("bad", DeterministicRNG("bad"), max_log=0)


class TestReporting:
    def test_acceptance_rate(self):
        session, file_id, _ = build_session("tpa-rate")
        session.audit(file_id, k=5)
        session.audit(file_id, k=5, rtt_max_ms=0.001)  # forced reject
        assert session.tpa.acceptance_rate() == pytest.approx(0.5)

    def test_empty_log_rate(self):
        session, _, _ = build_session("tpa-empty")
        assert session.tpa.acceptance_rate() == 0.0

    def test_failures_by_reason(self):
        session, file_id, _ = build_session("tpa-hist")
        session.audit(file_id, k=5, rtt_max_ms=0.001)
        session.audit(file_id, k=5, rtt_max_ms=0.001)
        histogram = session.tpa.failures_by_reason()
        assert histogram.get("timing") == 2
