"""The verifier device: challenges, timing, signatures, GPS."""

import pytest

from repro.cloud.provider import CloudProvider, DataCentre
from repro.cloud.verifier import VerifierDevice
from repro.core.messages import AuditRequest
from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import schnorr_verify
from repro.errors import ConfigurationError
from repro.geo.gps import GPSSpoofer
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def deployment(keys, sample_data, brisbane):
    provider = CloudProvider("acme")
    provider.add_datacentre(DataCentre("bne", brisbane))
    encoded = setup_file(sample_data, keys, b"vd-file", TEST_PARAMS)
    provider.upload(encoded, "bne")
    verifier = VerifierDevice(
        b"device-1", brisbane, rng=DeterministicRNG("device")
    )
    request = AuditRequest(
        file_id=b"vd-file", n_segments=encoded.n_segments, k=12, nonce=b"n" * 16
    )
    return provider, verifier, request, encoded


class TestChallengeGeneration:
    def test_distinct_in_range(self, deployment, rng):
        _, verifier, request, encoded = deployment
        challenge = verifier.generate_challenge(request, rng)
        assert len(challenge) == 12
        assert len(set(challenge)) == 12
        assert all(0 <= c < encoded.n_segments for c in challenge)

    def test_bad_k_rejected(self, deployment, rng):
        _, verifier, request, encoded = deployment
        bad = AuditRequest(
            file_id=b"vd-file",
            n_segments=encoded.n_segments,
            k=encoded.n_segments,
            nonce=b"n" * 16,
        )
        verifier.generate_challenge(bad, rng)  # k == n is allowed
        with pytest.raises(ConfigurationError):
            AuditRequest(
                file_id=b"f", n_segments=10, k=11, nonce=b"n" * 16
            )


class TestRunAudit:
    def test_transcript_shape(self, deployment):
        provider, verifier, request, _ = deployment
        transcript = verifier.run_audit(request, provider)
        assert transcript.k == 12
        assert transcript.file_id == b"vd-file"
        assert transcript.nonce == request.nonce
        assert len(set(transcript.challenge_indices())) == 12

    def test_rtts_include_disk_time(self, deployment):
        provider, verifier, request, _ = deployment
        transcript = verifier.run_audit(request, provider)
        # WD 2500JD lookup ~13 ms dominates; LAN adds a little.
        assert all(12.0 < r.rtt_ms < 16.0 for r in transcript.rounds)

    def test_signature_verifies(self, deployment):
        provider, verifier, request, _ = deployment
        transcript = verifier.run_audit(request, provider)
        assert schnorr_verify(
            verifier.public_key, transcript.signed_payload(), transcript.signature
        )

    def test_signature_breaks_on_tamper(self, deployment):
        import dataclasses

        provider, verifier, request, _ = deployment
        transcript = verifier.run_audit(request, provider)
        tampered = dataclasses.replace(transcript, nonce=b"x" * 16)
        assert not schnorr_verify(
            verifier.public_key, tampered.signed_payload(), transcript.signature
        )

    def test_fresh_nonce_fresh_challenges(self, deployment):
        provider, verifier, _, encoded = deployment
        a = verifier.run_audit(
            AuditRequest(b"vd-file", encoded.n_segments, 12, b"n1" * 8), provider
        )
        b = verifier.run_audit(
            AuditRequest(b"vd-file", encoded.n_segments, 12, b"n2" * 8), provider
        )
        assert a.challenge_indices() != b.challenge_indices()

    def test_clock_advances(self, deployment):
        provider, verifier, request, _ = deployment
        before = verifier.clock.now_ms()
        verifier.run_audit(request, provider)
        # 12 rounds x ~13 ms disk time each.
        assert verifier.clock.now_ms() - before > 12 * 12.0

    def test_gps_position_reported(self, deployment, brisbane):
        provider, verifier, request, _ = deployment
        transcript = verifier.run_audit(request, provider)
        assert transcript.position.latitude == pytest.approx(brisbane.latitude)

    def test_spoofed_gps_reported(self, deployment):
        provider, verifier, request, _ = deployment
        fake = GeoPoint(1.35, 103.82)
        verifier.gps.attach_spoofer(GPSSpoofer(fake))
        transcript = verifier.run_audit(request, provider)
        assert transcript.position.latitude == pytest.approx(1.35, abs=0.01)
