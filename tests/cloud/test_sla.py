"""SLA policy and its timing-budget arithmetic."""

import pytest

from repro.cloud.sla import SLAPolicy
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import CircularRegion
from repro.storage.hdd import IBM_36Z15, WD_2500JD


@pytest.fixture
def region(brisbane):
    return CircularRegion(brisbane, 100.0)


class TestSLAPolicy:
    def test_paper_budget(self, region):
        """Default SLA reproduces the paper's Delta-t_max ~ 16 ms."""
        sla = SLAPolicy(region=region)
        assert sla.lookup_budget_ms == pytest.approx(13.1055, abs=0.01)
        assert sla.rtt_max_ms == pytest.approx(16.1055, abs=0.01)

    def test_fast_disk_tightens_budget(self, region):
        slow = SLAPolicy(region=region, disk=WD_2500JD)
        fast = SLAPolicy(region=region, disk=IBM_36Z15)
        assert fast.rtt_max_ms < slow.rtt_max_ms

    def test_margin_added(self, region):
        base = SLAPolicy(region=region)
        padded = SLAPolicy(region=region, margin_ms=2.0)
        assert padded.rtt_max_ms == pytest.approx(base.rtt_max_ms + 2.0)

    def test_segment_size_term(self, region):
        small = SLAPolicy(region=region, segment_bytes=512)
        large = SLAPolicy(region=region, segment_bytes=8192)
        assert large.rtt_max_ms > small.rtt_max_ms

    def test_validation(self, region):
        with pytest.raises(ConfigurationError):
            SLAPolicy(region=region, lan_rtt_budget_ms=0.0)
        with pytest.raises(ConfigurationError):
            SLAPolicy(region=region, min_rounds=0)
        with pytest.raises(ConfigurationError):
            SLAPolicy(region=region, segment_bytes=0)
