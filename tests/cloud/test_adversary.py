"""Adversary strategies end-to-end against GeoProof audits."""

import pytest

from repro.cloud.adversary import (
    CorruptionAttack,
    DeletionAttack,
    PrefetchRelayAttack,
    RelayAttack,
)
from repro.cloud.provider import DataCentre
from repro.crypto.rng import DeterministicRNG
from repro.geo.datasets import city
from repro.storage.hdd import IBM_36Z15
from tests.conftest import build_session


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

def add_remote(session, name="remote", where="singapore", disk=IBM_36Z15):
    session.provider.add_datacentre(DataCentre(name, city(where), disk=disk))


class TestRelayAttack:
    def test_detected_by_timing(self):
        session, file_id, _ = build_session("relay")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        session.provider.set_strategy(RelayAttack("home", "remote"))
        outcome = session.audit(file_id, k=10)
        assert not outcome.verdict.accepted
        assert outcome.verdict.failure_reasons == ["timing"]

    def test_segments_still_authentic(self):
        # The relay serves *correct* data -- only the timing betrays it.
        session, file_id, _ = build_session("relay-mac")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        session.provider.set_strategy(RelayAttack("home", "remote"))
        outcome = session.audit(file_id, k=10)
        assert outcome.verdict.macs_ok
        assert not outcome.verdict.timing_ok

    def test_nearby_relay_with_tight_budget(self):
        # A relay to a site in the same metro: the Internet base RTT
        # alone (~16 ms) blows the ~16 ms budget on top of disk time.
        session, file_id, _ = build_session("relay-near")
        add_remote(session, where="sydney")
        session.provider.relocate(file_id, "remote")
        session.provider.set_strategy(RelayAttack("home", "remote"))
        outcome = session.audit(file_id, k=10)
        assert not outcome.verdict.accepted

    def test_forwarding_overhead_validated(self):
        with pytest.raises(Exception):
            RelayAttack("a", "b", forwarding_overhead_ms=-1.0)


class TestPrefetchRelayAttack:
    def test_full_prefetch_defeats_timing(self):
        """The documented limitation: a fully RAM-cached front passes.

        (At which point the data effectively *is* at the front site --
        GeoProof bounds where the data is served from.)
        """
        session, file_id, _ = build_session("prefetch-full")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        attack.prewarm(
            session.provider, file_id, list(range(session.files[file_id].n_segments))
        )
        session.provider.set_strategy(attack)
        outcome = session.audit(file_id, k=10)
        assert outcome.verdict.accepted

    def test_partial_prefetch_caught_by_max_rtt(self):
        """Caching 50 % of segments: one miss among k rounds is fatal."""
        session, file_id, _ = build_session("prefetch-half")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        n = session.files[file_id].n_segments
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        attack.prewarm(session.provider, file_id, list(range(n // 2)))
        session.provider.set_strategy(attack)
        outcome = session.audit(file_id, k=20)
        # P(all 20 challenges in cached half) = 2^-20.
        assert not outcome.verdict.accepted

    def test_prewarm_is_metered_through_the_server(self):
        """Warming pays remote disk accounting and counts its bytes."""
        session, file_id, _ = build_session("prefetch-meter")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        remote = session.provider.datacentre("remote")
        n = session.files[file_id].n_segments
        lookups_before = remote.server.n_lookups
        disk_before = remote.server.total_disk_ms
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        warmed = attack.prewarm(session.provider, file_id, list(range(n)))
        assert warmed == n
        assert remote.server.n_lookups == lookups_before + n
        assert remote.server.total_disk_ms > disk_before
        assert attack.prewarmed_bytes > 0
        stats = attack.cache_stats()
        assert stats["prewarmed_bytes"] == attack.prewarmed_bytes
        assert stats["n_entries"] == n
        assert stats["prewarm_cost_usd"] == 0.0  # no cost model passed

    def test_prewarm_priced_by_cost_model(self):
        class PerByte:
            def bandwidth_usd(self, n_bytes):
                return n_bytes * 2.0

        session, file_id, _ = build_session("prefetch-priced")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        attack.prewarm(
            session.provider, file_id, [0, 1, 2], cost_model=PerByte()
        )
        assert attack.prewarm_cost_usd == pytest.approx(
            attack.prewarmed_bytes * 2.0
        )

    def test_relayed_bytes_metered_on_misses_only(self):
        session, file_id, _ = build_session("prefetch-relay-bytes")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        assert attack.relayed_bytes == 0
        attack.handle_request(session.provider, file_id, 3)  # miss: relayed
        moved = attack.relayed_bytes
        assert moved > 0
        attack.handle_request(session.provider, file_id, 3)  # hit: local
        assert attack.relayed_bytes == moved

    def test_cache_learns_from_traffic(self):
        session, file_id, _ = build_session("prefetch-learn")
        add_remote(session)
        session.provider.relocate(file_id, "remote")
        attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
        session.provider.set_strategy(attack)
        first = attack.handle_request(session.provider, file_id, 7)
        second = attack.handle_request(session.provider, file_id, 7)
        assert second.elapsed_ms < first.elapsed_ms


class TestCorruptionAttack:
    def test_detection_rate_tracks_theory(self):
        session, file_id, _ = build_session("corrupt")
        attack = CorruptionAttack("home", 0.10, DeterministicRNG("adv"))
        session.provider.set_strategy(attack)
        detections = sum(
            1 for _ in range(30) if not session.audit(file_id, k=20).verdict.accepted
        )
        # theory: 1 - 0.9^20 ~ 0.88 -> expect most audits to detect.
        assert detections >= 20

    def test_failure_reason_is_mac(self):
        session, file_id, _ = build_session("corrupt-reason")
        attack = CorruptionAttack("home", 1.0, DeterministicRNG("adv"))
        session.provider.set_strategy(attack)
        outcome = session.audit(file_id, k=5)
        assert not outcome.verdict.accepted
        assert "mac" in outcome.verdict.failure_reasons
        assert len(outcome.verdict.bad_mac_indices) == 5

    def test_zero_fraction_is_honest(self):
        session, file_id, _ = build_session("corrupt-zero")
        attack = CorruptionAttack("home", 0.0, DeterministicRNG("adv"))
        session.provider.set_strategy(attack)
        assert session.audit(file_id, k=10).verdict.accepted


class TestDeletionAttack:
    def test_substitution_detected(self):
        session, file_id, _ = build_session("delete")
        attack = DeletionAttack("home", 0.5, DeterministicRNG("adv"))
        session.provider.set_strategy(attack)
        outcome = session.audit(file_id, k=20)
        assert not outcome.verdict.accepted
        assert "mac" in outcome.verdict.failure_reasons

    def test_deleted_sets_lazy_and_stable(self):
        session, file_id, _ = build_session("delete-stable")
        attack = DeletionAttack("home", 0.3, DeterministicRNG("adv"))
        first = attack.deleted_indices(session.provider, file_id)
        second = attack.deleted_indices(session.provider, file_id)
        assert first is second
        n = session.files[file_id].n_segments
        assert len(first) == round(0.3 * n)
