"""Batch protocol plane: run_audits / audit_deferred_many pins.

The daemon's throughput path (one ``fork_many`` sweep, inlined LAN
arithmetic, one ``schnorr_sign_many`` call) must be *request-for-request
identical* to the scalar protocol loop -- same transcripts, same
signatures, same clock readings, same verdicts.  These tests pin that
equivalence, including under adversarial providers and with the
non-default code paths (no device RNG, custom LAN subclass).
"""

import dataclasses

import pytest

from repro.cloud.adversary import CorruptionAttack, RelayAttack
from repro.cloud.provider import DataCentre
from repro.core.messages import AuditRequest
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.netsim.latency import LANModel
from tests.conftest import build_session

# Full POR setup per session: slow lane.
pytestmark = pytest.mark.slow


def make_requests(session, file_id, n, k=5, seed="batch-nonce"):
    """Fixed-nonce requests so both sessions see identical inputs."""
    record = session.tpa.record(file_id)
    nonce_rng = DeterministicRNG(seed)
    return [
        AuditRequest(
            file_id=file_id,
            n_segments=record.n_segments,
            k=k,
            nonce=nonce_rng.random_bytes(16),
        )
        for _ in range(n)
    ]


def assert_runs_match_scalar(scalar_session, batch_session, requests):
    """run_audits == [run_audit(...)] with identical clock boundaries."""
    scalar = []
    for request in requests:
        started = scalar_session.verifier.clock.now_ms()
        transcript = scalar_session.verifier.run_audit(
            request, scalar_session.provider
        )
        finished = scalar_session.verifier.clock.now_ms()
        scalar.append((transcript, started, finished))

    runs = batch_session.verifier.run_audits(requests, batch_session.provider)

    assert len(runs) == len(scalar)
    for run, (transcript, started, finished) in zip(runs, scalar):
        assert run.transcript == transcript
        assert run.transcript.signed_payload() == transcript.signed_payload()
        assert run.transcript.signature == transcript.signature
        assert run.started_ms == started
        assert run.finished_ms == finished
    assert (
        batch_session.verifier.clock.now_ms()
        == scalar_session.verifier.clock.now_ms()
    )


class TestRunAuditsEquivalence:
    def test_honest_batch_matches_scalar(self):
        scalar_session, file_id, _ = build_session("batch-pin")
        batch_session, _, _ = build_session("batch-pin")
        requests = make_requests(scalar_session, file_id, 8)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_multiple_files_share_one_batch(self):
        scalar_session, file_id, _ = build_session("batch-two-files")
        batch_session, _, _ = build_session("batch-two-files")
        extra = DeterministicRNG("batch-extra-data").random_bytes(12_000)
        scalar_session.outsource(b"second-file", extra)
        batch_session.outsource(b"second-file", extra)
        requests = make_requests(
            scalar_session, file_id, 3
        ) + make_requests(scalar_session, b"second-file", 3, seed="batch-n2")
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_corrupting_provider_matches_scalar(self):
        """Adversarial serves (different payload bytes) stay identical."""
        scalar_session, file_id, _ = build_session("batch-corrupt")
        batch_session, _, _ = build_session("batch-corrupt")
        scalar_session.provider.set_strategy(
            CorruptionAttack("home", 0.5, DeterministicRNG("corrupt"))
        )
        batch_session.provider.set_strategy(
            CorruptionAttack("home", 0.5, DeterministicRNG("corrupt"))
        )
        requests = make_requests(scalar_session, file_id, 6)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_relay_provider_matches_scalar(self):
        """Relay serves change elapsed_ms per round; timings must pin."""
        scalar_session, file_id, _ = build_session("batch-relay")
        batch_session, _, _ = build_session("batch-relay")
        for session in (scalar_session, batch_session):
            session.provider.add_datacentre(
                DataCentre("remote", GeoPoint(-33.8688, 151.2093, "Sydney"))
            )
            session.provider.relocate(file_id, "remote")
            session.provider.set_strategy(RelayAttack("home", "remote"))
        requests = make_requests(scalar_session, file_id, 4)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_no_device_rng_falls_back_per_nonce(self):
        """rng=None path: per-nonce parents, still scalar-identical."""
        scalar_session, file_id, _ = build_session("batch-nornng")
        batch_session, _, _ = build_session("batch-nornng")
        scalar_session.verifier._rng = None
        batch_session.verifier._rng = None
        requests = make_requests(scalar_session, file_id, 4)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_custom_lan_subclass_uses_model_path(self):
        """A LANModel subclass must bypass the inline fast path and
        still match the scalar loop (which always calls the model)."""

        @dataclasses.dataclass
        class DoubledLAN(LANModel):
            def one_way_ms(self, distance_km, payload_bytes=0, rng=None):
                return 2.0 * super().one_way_ms(distance_km, payload_bytes, rng)

        scalar_session, file_id, _ = build_session("batch-lan-sub")
        batch_session, _, _ = build_session("batch-lan-sub")
        scalar_session.verifier.lan = DoubledLAN()
        batch_session.verifier.lan = DoubledLAN()
        requests = make_requests(scalar_session, file_id, 4)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_zero_jitter_lan(self):
        """jitter_ms=0 draws nothing from the jitter stream."""
        scalar_session, file_id, _ = build_session("batch-nojit")
        batch_session, _, _ = build_session("batch-nojit")
        scalar_session.verifier.lan = LANModel(jitter_ms=0.0)
        batch_session.verifier.lan = LANModel(jitter_ms=0.0)
        requests = make_requests(scalar_session, file_id, 4)
        assert_runs_match_scalar(scalar_session, batch_session, requests)

    def test_explicit_shared_rng(self):
        """An explicitly passed RNG overrides the device RNG, batch too."""
        scalar_session, file_id, _ = build_session("batch-explicit")
        batch_session, _, _ = build_session("batch-explicit")
        requests = make_requests(scalar_session, file_id, 3)
        scalar = [
            scalar_session.verifier.run_audit(
                request,
                scalar_session.provider,
                rng=DeterministicRNG("override"),
            )
            for request in requests
        ]
        runs = batch_session.verifier.run_audits(
            requests, batch_session.provider, rng=DeterministicRNG("override")
        )
        assert [run.transcript for run in runs] == scalar

    def test_empty_batch(self):
        session, _, _ = build_session("batch-empty")
        before = session.verifier.clock.now_ms()
        assert session.verifier.run_audits([], session.provider) == []
        assert session.verifier.clock.now_ms() == before

    def test_batch_payload_memo_is_correct(self):
        """The seeded _signed_payload cache equals a fresh encoding."""
        session, file_id, _ = build_session("batch-memo")
        requests = make_requests(session, file_id, 2)
        runs = session.verifier.run_audits(requests, session.provider)
        for run in runs:
            cached = run.transcript.signed_payload()
            fresh = dataclasses.replace(run.transcript).signed_payload()
            assert cached == fresh


class TestAuditDeferredMany:
    def test_matches_deferred_loop(self):
        loop_session, file_id, _ = build_session("many-pin")
        batch_session, _, _ = build_session("many-pin")
        for _ in range(6):
            loop_session.tpa.audit_deferred(
                file_id, loop_session.verifier, loop_session.provider, k=5
            )
        batch_session.tpa.audit_deferred_many(
            [file_id] * 6, batch_session.verifier, batch_session.provider, k=5
        )
        assert batch_session.tpa.pending_count == 6
        assert (
            batch_session.tpa.flush_verdicts()
            == loop_session.tpa.flush_verdicts()
        )

    def test_mixed_population_verdicts_match_scalar_audit(self):
        """Honest + corrupted + strict-SLA verdicts pin to audit()."""
        scalar_session, file_id, _ = build_session("many-mixed")
        batch_session, _, _ = build_session("many-mixed")
        scalar_session.provider.set_strategy(
            CorruptionAttack("home", 1.0, DeterministicRNG("mix"))
        )
        batch_session.provider.set_strategy(
            CorruptionAttack("home", 1.0, DeterministicRNG("mix"))
        )
        scalar = [
            scalar_session.tpa.audit(
                file_id, scalar_session.verifier, scalar_session.provider, k=5
            )
            for _ in range(4)
        ]
        batch_session.tpa.audit_deferred_many(
            [file_id] * 4, batch_session.verifier, batch_session.provider, k=5
        )
        batch = batch_session.tpa.flush_verdicts()
        assert batch == scalar
        assert all(not outcome.verdict.accepted for outcome in batch)
        assert all(not outcome.verdict.macs_ok for outcome in batch)

    def test_rtt_and_region_overrides_forwarded(self):
        session, file_id, _ = build_session("many-overrides")
        session.tpa.audit_deferred_many(
            [file_id] * 2,
            session.verifier,
            session.provider,
            k=5,
            rtt_max_ms=0.001,
        )
        outcomes = session.tpa.flush_verdicts()
        assert all(not o.verdict.accepted for o in outcomes)
        assert all(not o.verdict.timing_ok for o in outcomes)

    def test_empty_file_list_is_noop(self):
        session, _, _ = build_session("many-empty")
        session.tpa.audit_deferred_many(
            [], session.verifier, session.provider
        )
        assert session.tpa.pending_count == 0

    def test_interleaves_with_scalar_deferred(self):
        """Mixing audit_deferred and audit_deferred_many keeps the
        nonce stream and submission order scalar-identical."""
        loop_session, file_id, _ = build_session("many-interleave")
        mixed_session, _, _ = build_session("many-interleave")
        for _ in range(4):
            loop_session.tpa.audit_deferred(
                file_id, loop_session.verifier, loop_session.provider, k=5
            )
        mixed_session.tpa.audit_deferred(
            file_id, mixed_session.verifier, mixed_session.provider, k=5
        )
        mixed_session.tpa.audit_deferred_many(
            [file_id] * 2, mixed_session.verifier, mixed_session.provider, k=5
        )
        mixed_session.tpa.audit_deferred(
            file_id, mixed_session.verifier, mixed_session.provider, k=5
        )
        assert (
            mixed_session.tpa.flush_verdicts()
            == loop_session.tpa.flush_verdicts()
        )
