"""Replication audits: counting provably distinct replicas."""

import pytest

from repro.cloud.provider import CloudProvider, DataCentre
from repro.cloud.replication import (
    NearestCopyStrategy,
    ReplicaSite,
    ReplicationAuditor,
)
from repro.cloud.sla import SLAPolicy
from repro.cloud.tpa import ThirdPartyAuditor
from repro.cloud.verifier import VerifierDevice
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.datasets import city
from repro.geo.regions import CircularRegion
from repro.netsim.clock import SimClock
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys, setup_file

# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

SITES = ["sydney", "perth", "singapore"]


def build_deployment(replicate_to: list[str]):
    """Provider with copies at 'sydney' + ``replicate_to``; 3 sites."""
    rng = DeterministicRNG("replication-tests")
    provider = CloudProvider("acme", rng=rng.fork("provider"))
    for name in SITES:
        provider.add_datacentre(DataCentre(name, city(name)))
    keys = PORKeys.derive(b"replication-test-master-key")
    data = rng.fork("data").random_bytes(20_000)
    encoded = setup_file(data, keys, b"f", TEST_PARAMS)
    provider.upload(encoded, "sydney")
    for name in replicate_to:
        provider.replicate_to(b"f", name)
    tpa = ThirdPartyAuditor("tpa", rng.fork("tpa"))
    clock = SimClock()
    auditor = ReplicationAuditor(tpa)
    sydney_sla = None
    for name in SITES:
        sla = SLAPolicy(region=CircularRegion(city(name), 100.0))
        if name == "sydney":
            sydney_sla = sla
        verifier = VerifierDevice(
            f"verifier-{name}".encode(),
            city(name),
            clock=clock,
            rng=rng.fork(f"verifier-{name}"),
        )
        auditor.add_site(ReplicaSite(name=name, verifier=verifier, sla=sla))
    tpa.register_file(b"f", encoded.n_segments, keys.mac_key, TEST_PARAMS, sydney_sla)
    return provider, auditor


class TestHonestReplication:
    def test_full_replication_witnesses_all_sites(self):
        provider, auditor = build_deployment(replicate_to=["perth", "singapore"])
        verdict = auditor.audit_round(b"f", provider, k=10)
        assert verdict.all_sites_ok
        assert verdict.distinct_replicas == 3
        assert verdict.meets(3)
        assert verdict.insufficient_separation == []

    def test_outcomes_logged_per_site(self):
        provider, auditor = build_deployment(replicate_to=["perth", "singapore"])
        verdict = auditor.audit_round(b"f", provider, k=10)
        assert set(verdict.outcomes) == set(SITES)


class TestSkimpedReplication:
    def test_missing_replica_detected(self):
        """Two copies instead of three: the uncovered site fails."""
        provider, auditor = build_deployment(replicate_to=["perth"])
        verdict = auditor.audit_round(b"f", provider, k=10)
        assert sorted(verdict.accepted_sites) == ["perth", "sydney"]
        assert verdict.distinct_replicas == 2
        assert not verdict.meets(3)
        assert verdict.meets(2)

    def test_single_copy_serves_only_its_own_site(self):
        provider, auditor = build_deployment(replicate_to=[])
        verdict = auditor.audit_round(b"f", provider, k=10)
        assert verdict.accepted_sites == ["sydney"]
        assert verdict.distinct_replicas == 1

    def test_remote_serving_fails_on_timing(self):
        provider, auditor = build_deployment(replicate_to=[])
        verdict = auditor.audit_round(b"f", provider, k=10)
        singapore = verdict.outcomes["singapore"].verdict
        assert not singapore.accepted
        assert not singapore.timing_ok
        # The data itself verified fine -- it is just far away.
        assert singapore.macs_ok


class TestSeparationFilter:
    def test_nearby_sites_not_double_counted(self):
        """Two verifiers in the same metro can be served by one copy;
        the pairwise-separation rule credits only one replica."""
        rng = DeterministicRNG("nearby")
        provider = CloudProvider("acme", rng=rng.fork("p"))
        provider.add_datacentre(DataCentre("sydney-a", city("sydney")))
        keys = PORKeys.derive(b"nearby-sites-master-key-00")
        encoded = setup_file(
            rng.fork("d").random_bytes(10_000), keys, b"f", TEST_PARAMS
        )
        provider.upload(encoded, "sydney-a")
        tpa = ThirdPartyAuditor("tpa", rng.fork("tpa"))
        clock = SimClock()
        auditor = ReplicationAuditor(tpa)
        sla = SLAPolicy(region=CircularRegion(city("sydney"), 100.0))
        for suffix in ("east", "west"):
            verifier = VerifierDevice(
                f"v-{suffix}".encode(),
                city("sydney"),
                clock=clock,
                rng=rng.fork(suffix),
            )
            auditor.add_site(
                ReplicaSite(name=f"syd-{suffix}", verifier=verifier, sla=sla)
            )
        tpa.register_file(b"f", encoded.n_segments, keys.mac_key, TEST_PARAMS, sla)
        verdict = auditor.audit_round(b"f", provider, k=10)
        assert len(verdict.accepted_sites) == 2  # both audits pass...
        assert verdict.distinct_replicas == 1  # ...but one replica proven
        assert len(verdict.insufficient_separation) == 1


class TestValidation:
    def test_duplicate_site_rejected(self):
        provider, auditor = build_deployment(replicate_to=[])
        site = auditor.sites()[0]
        with pytest.raises(ConfigurationError):
            auditor.add_site(site)

    def test_empty_auditor_rejected(self):
        rng = DeterministicRNG("empty")
        auditor = ReplicationAuditor(ThirdPartyAuditor("t", rng))
        with pytest.raises(ConfigurationError):
            auditor.audit_round(b"f", CloudProvider("acme"))

    def test_nearest_strategy_requires_a_holder(self):
        provider = CloudProvider("acme")
        provider.add_datacentre(DataCentre("syd", city("sydney")))
        strategy = NearestCopyStrategy(city("sydney"))
        with pytest.raises(ConfigurationError):
            strategy.handle_request(provider, b"ghost", 0)

    def test_timing_radius_positive(self):
        provider, auditor = build_deployment(replicate_to=[])
        for site in auditor.sites():
            assert site.timing_radius_km > 500.0  # ~16 ms at 4/9 c


class TestTimingRadiusFormula:
    """The fleet's separation filter leans on this exact arithmetic."""

    def test_radius_is_one_way_internet_flight_of_the_budget(self):
        from repro.netsim.latency import INTERNET_SPEED_KM_PER_MS

        sla = SLAPolicy(region=CircularRegion(city("sydney"), 100.0))
        verifier = VerifierDevice(
            b"v-radius", city("sydney"), clock=SimClock()
        )
        site = ReplicaSite(name="sydney", verifier=verifier, sla=sla)
        assert site.timing_radius_km == pytest.approx(
            INTERNET_SPEED_KM_PER_MS * sla.rtt_max_ms / 2.0
        )

    def test_radius_scales_with_the_timing_budget(self):
        verifier = VerifierDevice(
            b"v-scale", city("sydney"), clock=SimClock()
        )
        tight = ReplicaSite(
            name="tight",
            verifier=verifier,
            sla=SLAPolicy(region=CircularRegion(city("sydney"), 100.0)),
        )
        loose = ReplicaSite(
            name="loose",
            verifier=verifier,
            sla=SLAPolicy(
                region=CircularRegion(city("sydney"), 100.0),
                margin_ms=10.0,
            ),
        )
        # Every millisecond of margin is separation the filter loses:
        # a looser budget certifies a larger (weaker) radius.
        assert loose.timing_radius_km > tight.timing_radius_km
