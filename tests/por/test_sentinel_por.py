"""Sentinel-based POR (the Juels-Kaliski original)."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.por.parameters import TEST_PARAMS
from repro.por.sentinel_por import (
    SentinelChallenge,
    SentinelPORClient,
    SentinelPORServer,
)

MASTER = b"sentinel-master-key-0123456789"


@pytest.fixture
def sentinel_pair(sample_data):
    client = SentinelPORClient(MASTER, b"sent-file", 60, TEST_PARAMS)
    blocks = client.encode(sample_data[:4000])
    return client, SentinelPORServer(blocks), blocks


class TestEncode:
    def test_includes_sentinels(self, sentinel_pair, sample_data):
        client, _, blocks = sentinel_pair
        layout = TEST_PARAMS.stripe_layout
        from repro.util.bitops import ceil_div

        data_blocks = ceil_div(4000, TEST_PARAMS.block_bytes)
        chunks = ceil_div(data_blocks, layout.data_blocks)
        assert len(blocks) == chunks * layout.total_blocks + 60

    def test_uniform_block_size(self, sentinel_pair):
        _, _, blocks = sentinel_pair
        assert all(len(b) == TEST_PARAMS.block_bytes for b in blocks)

    def test_rejects_zero_sentinels(self):
        with pytest.raises(ConfigurationError):
            SentinelPORClient(MASTER, b"f", 0, TEST_PARAMS)


class TestChallenge:
    def test_consumes_sentinels(self, sentinel_pair):
        client, _, _ = sentinel_pair
        assert client.sentinels_remaining == 60
        client.make_challenge(10)
        assert client.sentinels_remaining == 50

    def test_exhaustion(self, sentinel_pair):
        client, _, _ = sentinel_pair
        client.make_challenge(60)
        with pytest.raises(ConfigurationError):
            client.make_challenge(1)

    def test_requires_encode_first(self):
        client = SentinelPORClient(MASTER, b"f", 10, TEST_PARAMS)
        with pytest.raises(ProtocolError):
            client.make_challenge(1)

    def test_positions_distinct(self, sentinel_pair):
        client, _, blocks = sentinel_pair
        challenge = client.make_challenge(20)
        assert len(set(challenge.positions)) == 20
        assert all(0 <= p < len(blocks) for p in challenge.positions)


class TestVerification:
    def test_honest_server_passes(self, sentinel_pair):
        client, server, _ = sentinel_pair
        challenge = client.make_challenge(15)
        assert client.verify_response(challenge, server.respond(challenge))

    def test_total_corruption_detected(self, sentinel_pair):
        client, _, blocks = sentinel_pair
        hostile = SentinelPORServer([bytes(TEST_PARAMS.block_bytes)] * len(blocks))
        challenge = client.make_challenge(10)
        assert not client.verify_response(challenge, hostile.respond(challenge))

    def test_partial_corruption_detection_rate(self, sample_data):
        # Corrupt 20 % of storage; a 10-sentinel challenge should
        # usually catch it (p = 1 - 0.8^10 ~ 0.89).
        client = SentinelPORClient(MASTER, b"stat-file", 50, TEST_PARAMS)
        blocks = client.encode(sample_data[:4000])
        corrupted = list(blocks)
        for i in range(0, len(corrupted), 5):
            corrupted[i] = bytes(TEST_PARAMS.block_bytes)
        server = SentinelPORServer(corrupted)
        detections = 0
        for _ in range(5):
            challenge = client.make_challenge(10)
            if not client.verify_response(challenge, server.respond(challenge)):
                detections += 1
        assert detections >= 3

    def test_short_response_rejected(self, sentinel_pair):
        from repro.por.sentinel_por import SentinelResponse

        client, server, _ = sentinel_pair
        challenge = client.make_challenge(5)
        response = server.respond(challenge)
        assert not client.verify_response(
            challenge, SentinelResponse(blocks=response.blocks[:-1])
        )
