"""POS scheme comparison (the Section IV trade-off, quantified)."""

import pytest

from repro.errors import ConfigurationError
from repro.por.compare import (
    compare_schemes,
    equal_detection_parameters,
    mac_por_costs,
    sentinel_por_costs,
)
from repro.por.parameters import PORParams

MB = 1024 * 1024


class TestMacPorCosts:
    def test_reusable_forever(self):
        costs = mac_por_costs(10 * MB, 250)
        assert costs.audits_supported == float("inf")

    def test_response_bandwidth(self):
        params = PORParams()
        costs = mac_por_costs(10 * MB, 100, params)
        assert costs.response_bytes == 100 * (
            params.segment_bytes + params.tag_bytes
        )

    def test_proves_data(self):
        costs = mac_por_costs(10 * MB, 100)
        assert costs.data_proven_per_audit_bytes > 0

    def test_k_bounded_by_segments(self):
        with pytest.raises(ConfigurationError):
            mac_por_costs(1000, 10**9)


class TestSentinelPorCosts:
    def test_consumable(self):
        costs = sentinel_por_costs(10 * MB, 100, 1000)
        assert costs.audits_supported == 10

    def test_query_supply_checked(self):
        with pytest.raises(ConfigurationError):
            sentinel_por_costs(10 * MB, 100, 50)

    def test_smaller_responses_than_mac(self):
        mac = mac_por_costs(10 * MB, 100)
        sentinel = sentinel_por_costs(10 * MB, 100, 10_000)
        assert sentinel.response_bytes < mac.response_bytes

    def test_sentinels_prove_no_data(self):
        costs = sentinel_por_costs(10 * MB, 100, 10_000)
        assert costs.data_proven_per_audit_bytes == 0


class TestEqualDetection:
    def test_paper_operating_point(self):
        assert equal_detection_parameters(0.005, 0.713) in (249, 250)

    def test_comparison_at_equal_security(self):
        mac, sentinel = compare_schemes(100 * MB)
        assert mac.scheme == "mac-por"
        assert sentinel.scheme == "sentinel-por"
        # Structural facts the paper's choice rests on:
        assert mac.audits_supported == float("inf")
        assert sentinel.audits_supported < float("inf")
        # Sentinel storage overhead with a year's supply stays modest
        # (sentinels are single blocks).
        assert sentinel.storage_overhead_fraction < mac.storage_overhead_fraction + 0.05
        # MAC responses cost more bandwidth but prove actual file data.
        assert mac.response_bytes > sentinel.response_bytes
        assert mac.data_proven_per_audit_bytes > 0

    def test_sentinel_overhead_grows_with_supply(self):
        lean = sentinel_por_costs(10 * MB, 100, 1_000)
        fat = sentinel_por_costs(10 * MB, 100, 1_000_000)
        assert fat.storage_overhead_fraction > lean.storage_overhead_fraction
