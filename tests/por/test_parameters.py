"""Parameter sets and the paper's overhead arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.por.parameters import PAPER_PARAMS, PORParams, TEST_PARAMS


class TestValidation:
    def test_paper_defaults(self):
        params = PORParams()
        assert params.block_bits == 128
        assert params.block_bytes == 16
        assert params.segment_blocks == 5
        assert params.tag_bits == 20

    def test_rejects_non_byte_blocks(self):
        with pytest.raises(ConfigurationError):
            PORParams(block_bits=129)

    def test_rejects_bad_ecc(self):
        with pytest.raises(ConfigurationError):
            PORParams(ecc_data_blocks=255, ecc_total_blocks=255)

    def test_rejects_zero_segment(self):
        with pytest.raises(ConfigurationError):
            PORParams(segment_blocks=0)

    def test_rejects_oversize_tag(self):
        with pytest.raises(ConfigurationError):
            PORParams(tag_bits=257)


class TestPaperArithmetic:
    """Section V-A/V-B worked example."""

    def test_segment_is_660_bits(self):
        assert PAPER_PARAMS.segment_bits == 660

    def test_ecc_expansion_about_14_percent(self):
        assert 0.14 < PAPER_PARAMS.ecc_expansion < 0.15

    def test_mac_expansion_about_3_percent(self):
        assert 0.025 <= PAPER_PARAMS.mac_expansion < 0.035
        assert 0.025 < PAPER_PARAMS.mac_expansion_of_segment() < 0.035

    def test_total_expansion_about_16_5_percent(self):
        # ECC + MAC combined; the paper rounds to "about 16.5 %".
        assert 0.16 < PAPER_PARAMS.total_expansion < 0.19

    def test_2gb_file_block_count(self):
        two_gb = 2 * 2**30
        assert PAPER_PARAMS.data_blocks_for(two_gb) == 2**27

    def test_2gb_encoded_blocks_jk(self):
        two_gb = 2 * 2**30
        encoded = PAPER_PARAMS.encoded_blocks_jk(two_gb)
        # ceil(2^27 * 255/223) = 153,477,672; the paper prints
        # 153,008,209 (see DESIGN.md note) -- within 0.4 % of it.
        assert encoded == 153_477_672
        assert abs(encoded - 153_008_209) / encoded < 0.005

    def test_whole_chunk_accounting_at_least_jk(self):
        two_gb = 2 * 2**30
        assert PAPER_PARAMS.encoded_blocks_for(two_gb) >= PAPER_PARAMS.encoded_blocks_jk(
            two_gb
        )


class TestCounting:
    def test_zero_file(self):
        assert PAPER_PARAMS.data_blocks_for(0) == 0
        assert PAPER_PARAMS.measured_expansion(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMS.data_blocks_for(-1)

    def test_segments_cover_blocks(self):
        for size in (1, 100, 10_000, 1_000_000):
            blocks = TEST_PARAMS.encoded_blocks_for(size)
            segments = TEST_PARAMS.segments_for(size)
            assert segments * TEST_PARAMS.segment_blocks >= blocks

    def test_measured_expansion_close_to_nominal_for_large_files(self):
        size = 50_000_000
        measured = PAPER_PARAMS.measured_expansion(size)
        assert abs(measured - PAPER_PARAMS.total_expansion) < 0.02

    def test_stripe_layout_consistent(self):
        layout = TEST_PARAMS.stripe_layout
        assert layout.block_bytes == TEST_PARAMS.block_bytes
        assert layout.data_blocks == TEST_PARAMS.ecc_data_blocks
