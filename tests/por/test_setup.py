"""The five-step setup pipeline and extraction (retrievability)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.mac import mac_verify
from repro.errors import ConfigurationError
from repro.por.file_format import Segment
from repro.por.parameters import PORParams, TEST_PARAMS
from repro.por.setup import PORKeys, extract_file, setup_file


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

class TestKeys:
    def test_derivation_deterministic(self):
        a = PORKeys.derive(b"master-key-16byte")
        b = PORKeys.derive(b"master-key-16byte")
        assert a == b

    def test_subkeys_distinct(self):
        keys = PORKeys.derive(b"master-key-16byte")
        assert len({keys.encryption_key, keys.permutation_key, keys.mac_key}) == 3

    def test_rejects_short_master(self):
        with pytest.raises(ConfigurationError):
            PORKeys.derive(b"short")


class TestSetup:
    def test_every_segment_tagged_correctly(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        for segment in encoded.segments:
            assert mac_verify(
                keys.mac_key,
                segment.payload,
                segment.index,
                b"fid",
                segment.tag,
                tag_bits=TEST_PARAMS.tag_bits,
            )

    def test_output_encrypted(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        flat = b"".join(s.payload for s in encoded.segments)
        # The plaintext must not appear anywhere in the stored bytes.
        assert sample_data[:64] not in flat

    def test_expansion_close_to_nominal(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        ratio = encoded.stored_bytes / len(sample_data)
        assert 1.0 < ratio < 1.0 + TEST_PARAMS.total_expansion + 0.25

    def test_empty_file(self, keys):
        encoded = setup_file(b"", keys, b"fid", TEST_PARAMS)
        assert encoded.n_segments >= 1
        assert extract_file(encoded, keys) == b""

    def test_different_fids_different_ciphertexts(self, keys):
        data = b"same-data" * 100
        a = setup_file(data, keys, b"fid-a", TEST_PARAMS)
        b = setup_file(data, keys, b"fid-b", TEST_PARAMS)
        assert a.segments[0].payload != b.segments[0].payload


class TestExtraction:
    @given(st.binary(min_size=0, max_size=3000))
    @settings(max_examples=15, deadline=None)
    def test_lossless_roundtrip(self, data):
        keys = PORKeys.derive(b"prop-master-key-0")
        encoded = setup_file(data, keys, b"prop", TEST_PARAMS)
        assert extract_file(encoded, keys) == data

    def test_survives_single_corrupted_segment(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        segment = encoded.segments[3]
        encoded.segments[3] = Segment(
            index=3, payload=bytes(len(segment.payload)), tag=segment.tag
        )
        assert extract_file(encoded, keys) == sample_data

    def test_survives_scattered_corruption(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        # Corrupt every 40th segment: the PRP scatters each segment's
        # blocks across chunks, and erasure decoding heals them.
        for index in range(0, encoded.n_segments, 40):
            old = encoded.segments[index]
            encoded.segments[index] = Segment(
                index=index, payload=b"\xde" * len(old.payload), tag=old.tag
            )
        assert extract_file(encoded, keys) == sample_data

    def test_wrong_keys_fail(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        other = PORKeys.derive(b"completely-different-master")
        # With wrong keys every tag fails -> all segments erased -> the
        # decoder cannot recover.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            extract_file(encoded, other)

    def test_skip_tag_verification(self, keys, sample_data):
        encoded = setup_file(sample_data, keys, b"fid", TEST_PARAMS)
        assert extract_file(encoded, keys, verify_tags=False) == sample_data


class TestPaperParams:
    def test_roundtrip_with_paper_parameters(self, keys):
        # One full chunk of 223 16-byte blocks plus change.
        data = bytes(i % 256 for i in range(4000))
        encoded = setup_file(data, keys, b"paper", PORParams())
        assert extract_file(encoded, keys) == data
        assert encoded.params.segment_bits == 660


class TestSetupWorkers:
    """Process-sharded setup is byte-identical to the serial pipeline."""

    def test_sharded_setup_byte_identical(self, keys):
        data = bytes((7 * i) % 256 for i in range(3000))  # multiple chunks
        serial = setup_file(data, keys, b"fid", TEST_PARAMS)
        sharded = setup_file(data, keys, b"fid", TEST_PARAMS, workers=2)
        assert serial.n_data_blocks == sharded.n_data_blocks
        assert [
            (s.index, s.payload, s.tag) for s in serial.segments
        ] == [(s.index, s.payload, s.tag) for s in sharded.segments]

    def test_sharded_setup_roundtrips(self, keys):
        data = b"sharded-roundtrip" * 200
        encoded = setup_file(data, keys, b"fid", TEST_PARAMS, workers=2)
        assert extract_file(encoded, keys) == data

    def test_workers_validated(self, keys):
        with pytest.raises(ConfigurationError):
            setup_file(b"x", keys, b"fid", TEST_PARAMS, workers=0)
