"""Merkle tree membership proofs and updates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, VerificationError
from repro.por.merkle import MerkleTree


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.n_leaves == 1
        assert MerkleTree.verify_proof(tree.root, b"only", 0, tree.proof(0))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MerkleTree([])

    def test_root_changes_with_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_count_matters(self):
        assert MerkleTree([b"a"]).root != MerkleTree([b"a", b"a"]).root


class TestProofs:
    @given(st.integers(1, 40), st.data())
    @settings(max_examples=30, deadline=None)
    def test_all_leaves_provable(self, n, data):
        leaves = [f"leaf-{i}".encode() for i in range(n)]
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(0, n - 1))
        assert MerkleTree.verify_proof(
            tree.root, leaves[index], index, tree.proof(index)
        )

    def test_wrong_leaf_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not MerkleTree.verify_proof(tree.root, b"x", 1, tree.proof(1))

    def test_wrong_root_fails(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not MerkleTree.verify_proof(b"\x00" * 32, b"b", 1, tree.proof(1))

    def test_proof_for_other_index_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not MerkleTree.verify_proof(tree.root, b"b", 1, tree.proof(2))

    def test_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(ConfigurationError):
            tree.proof(1)

    def test_require_valid_raises(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(VerificationError):
            MerkleTree.require_valid_proof(tree.root, b"x", 0, tree.proof(0))

    def test_leaf_node_domain_separation(self):
        # A leaf equal to an interior-node preimage must not verify as
        # that node (second-preimage resistance via prefixes).
        tree = MerkleTree([b"a", b"b"])
        import hashlib

        fake_leaf = (
            hashlib.sha256(b"\x00" + (0).to_bytes(8, "big") + b"a").digest()
            + hashlib.sha256(b"\x00" + (1).to_bytes(8, "big") + b"b").digest()
        )
        assert not MerkleTree.verify_proof(tree.root, fake_leaf, 0, [])

    def test_index_bound_into_proof(self):
        # The same leaf value at two positions yields distinct proofs:
        # presenting position 2's proof for index 0 must fail even
        # though the leaf bytes match.
        tree = MerkleTree([b"same", b"other", b"same", b"x"])
        assert MerkleTree.verify_proof(tree.root, b"same", 2, tree.proof(2))
        assert not MerkleTree.verify_proof(tree.root, b"same", 0, tree.proof(2))


class TestUpdates:
    @given(st.integers(2, 33), st.data())
    @settings(max_examples=30, deadline=None)
    def test_update_then_verify(self, n, data):
        leaves = [f"leaf-{i}".encode() for i in range(n)]
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(0, n - 1))
        tree.update(index, b"replacement")
        assert MerkleTree.verify_proof(
            tree.root, b"replacement", index, tree.proof(index)
        )
        # An untouched sibling still verifies against the new root.
        other = (index + 1) % n
        assert MerkleTree.verify_proof(
            tree.root, leaves[other], other, tree.proof(other)
        )

    def test_update_equals_rebuild(self):
        leaves = [b"a", b"b", b"c", b"d", b"e"]
        tree = MerkleTree(leaves)
        tree.update(2, b"X")
        rebuilt = MerkleTree([b"a", b"b", b"X", b"d", b"e"])
        assert tree.root == rebuilt.root

    def test_old_leaf_no_longer_verifies(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.proof(1)
        tree.update(1, b"B")
        assert not MerkleTree.verify_proof(tree.root, b"b", 1, proof)
