"""Closed-form detection/retrievability bounds (Section V-C claims)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.por.analysis import (
    chunk_failure_probability,
    cumulative_detection,
    detection_probability,
    detection_probability_binomial,
    file_irretrievability_probability,
    queries_for_detection,
)


class TestDetectionProbability:
    def test_zero_corruption(self):
        assert detection_probability(1000, 0, 100) == 0.0

    def test_zero_queries(self):
        assert detection_probability(1000, 10, 0) == 0.0

    def test_certain_detection(self):
        # Querying more than the clean segments guarantees a hit.
        assert detection_probability(10, 5, 6) == 1.0

    def test_monotone_in_queries(self):
        values = [detection_probability(10_000, 50, q) for q in (10, 100, 1000)]
        assert values[0] < values[1] < values[2]

    def test_matches_binomial_for_small_q(self):
        hyper = detection_probability(1_000_000, 5000, 1000)
        binom = detection_probability_binomial(0.005, 1000)
        assert abs(hyper - binom) < 0.01

    def test_paper_figures(self):
        """The paper's 71.3 % claim (see DESIGN.md note)."""
        # Reading 1: eps = 0.5 %, q = 1000 -> 99.3 %, not 71.3 %.
        q1000 = detection_probability_binomial(0.005, 1000)
        assert 0.99 < q1000 < 0.995
        # Reading 2: 71.3 % needs q ~= 249 at eps = 0.5 %.
        assert queries_for_detection(0.005, 0.713) in (249, 250)
        # Reading 3: 71.3 % at q = 1000 needs eps ~= 0.125 %.
        assert 0.70 < detection_probability_binomial(0.00125, 1000) < 0.72

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detection_probability(0, 0, 0)
        with pytest.raises(ConfigurationError):
            detection_probability(10, 11, 0)
        with pytest.raises(ConfigurationError):
            detection_probability(10, 0, 11)


class TestQueriesForDetection:
    def test_roundtrip(self):
        q = queries_for_detection(0.01, 0.9)
        assert detection_probability_binomial(0.01, q) >= 0.9
        assert detection_probability_binomial(0.01, q - 1) < 0.9

    def test_zero_target(self):
        assert queries_for_detection(0.01, 0.0) == 0

    def test_rejects_certain_target(self):
        with pytest.raises(ConfigurationError):
            queries_for_detection(0.01, 1.0)


class TestCumulativeDetection:
    def test_paper_statement(self):
        # "detection ... is a cumulative process": repeated audits
        # drive detection toward certainty.
        per = 0.713
        assert cumulative_detection(per, 1) == pytest.approx(0.713)
        assert cumulative_detection(per, 5) > 0.997

    def test_zero_challenges(self):
        assert cumulative_detection(0.5, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cumulative_detection(0.5, -1)


class TestChunkFailure:
    def test_zero_epsilon(self):
        assert chunk_failure_probability(255, 16, 0.0) == 0.0

    def test_certain_failure(self):
        assert chunk_failure_probability(255, 16, 1.0) == 1.0

    def test_paper_regime_negligible(self):
        # eps = 0.5 % against a 16-error radius on 255 blocks: the
        # binomial tail is astronomically small.
        p = chunk_failure_probability(255, 16, 0.005)
        assert p < 1e-12

    def test_monotone_in_epsilon(self):
        a = chunk_failure_probability(255, 16, 0.01)
        b = chunk_failure_probability(255, 16, 0.05)
        assert a < b

    def test_matches_direct_sum_small_case(self):
        # n = 4, radius 1, eps = 0.3: P(X >= 2) by hand.
        eps = 0.3
        expected = sum(
            math.comb(4, k) * eps**k * (1 - eps) ** (4 - k) for k in (2, 3, 4)
        )
        assert chunk_failure_probability(4, 1, eps) == pytest.approx(expected)


class TestFileIrretrievability:
    def test_paper_claim_bound(self):
        """Corrupting 0.5 % must make loss < 1/200,000 (paper claim 1)."""
        two_gb_chunks = (2 * 2**30 // 16) // 223 + 1
        p = file_irretrievability_probability(two_gb_chunks, 255, 16, 0.005)
        assert p < 1.0 / 200_000

    def test_scales_with_chunks(self):
        small = file_irretrievability_probability(10, 255, 16, 0.05)
        large = file_irretrievability_probability(1000, 255, 16, 0.05)
        assert small < large <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            file_irretrievability_probability(0, 255, 16, 0.005)
