"""Dynamic POR: audits survive updates, forgeries are caught."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import BlockNotFoundError, ConfigurationError, VerificationError
from repro.por.dynamic import DynamicPOR, DynamicPORServer, DynamicProof


@pytest.fixture
def dpor_pair(keys, rng):
    client = DynamicPOR(keys.mac_key, b"dpor-test")
    blocks = [rng.fork(f"b{i}").random_bytes(16) for i in range(25)]
    server = client.outsource(blocks)
    return client, server, blocks


class TestOutsource:
    def test_sets_root_and_count(self, dpor_pair):
        client, server, blocks = dpor_pair
        assert client.root == server.tree.root
        assert client.n_blocks == len(blocks)

    def test_rejects_empty(self, keys):
        with pytest.raises(ConfigurationError):
            DynamicPOR(keys.mac_key, b"f").outsource([])


class TestAudit:
    def test_honest_proofs_verify(self, dpor_pair, rng):
        client, server, _ = dpor_pair
        for index in client.make_challenge(10, rng):
            assert client.verify(server.prove(index))

    def test_challenge_bounds(self, dpor_pair, rng):
        client, _, _ = dpor_pair
        with pytest.raises(ConfigurationError):
            client.make_challenge(0, rng)
        with pytest.raises(ConfigurationError):
            client.make_challenge(26, rng)

    def test_unoutsourced_client_rejects(self, keys, rng):
        client = DynamicPOR(keys.mac_key, b"f")
        with pytest.raises(ConfigurationError):
            client.make_challenge(1, rng)

    def test_tampered_block_fails(self, dpor_pair):
        client, server, _ = dpor_pair
        proof = server.prove(3)
        forged = DynamicProof(
            index=3, block=b"\x00" * 16, tag=proof.tag, path=proof.path
        )
        assert not client.verify(forged)

    def test_swapped_position_fails(self, dpor_pair):
        # Serving block 7 for challenge 3: the tag verifies (tags are
        # content-bound) but the Merkle leaf hash binds the index, so
        # the proof must fail for the wrong position.
        client, server, _ = dpor_pair
        honest_7 = server.prove(7)
        forged = DynamicProof(
            index=3, block=honest_7.block, tag=honest_7.tag, path=honest_7.path
        )
        assert not client.verify(forged)

    def test_missing_block(self, dpor_pair):
        _, server, _ = dpor_pair
        with pytest.raises(BlockNotFoundError):
            server.prove(99)

    def test_require_valid(self, dpor_pair):
        client, server, _ = dpor_pair
        proof = server.prove(0)
        forged = DynamicProof(0, b"\x11" * 16, proof.tag, proof.path)
        with pytest.raises(VerificationError):
            client.require_valid(forged)


class TestUpdates:
    def test_update_then_audit(self, dpor_pair, rng):
        client, server, _ = dpor_pair
        client.update_block(server, 5, b"fresh-data-16by!")
        assert client.verify(server.prove(5))
        # Unrelated blocks still verify after the root rolled forward.
        assert client.verify(server.prove(6))

    def test_stale_root_rejects_old_content(self, dpor_pair):
        client, server, blocks = dpor_pair
        old_proof = server.prove(5)
        client.update_block(server, 5, b"fresh-data-16by!")
        assert not client.verify(old_proof)

    def test_multiple_updates(self, dpor_pair):
        client, server, _ = dpor_pair
        for index in (0, 12, 24, 12):
            client.update_block(server, index, f"update-{index}".encode().ljust(16))
            assert client.verify(server.prove(index))

    def test_inconsistent_server_update_detected(self, dpor_pair, monkeypatch):
        client, server, _ = dpor_pair
        original = server.apply_update

        def lying_update(index, new_block, new_tag):
            original(index, b"\x00" * 16, new_tag)  # applies wrong data

        monkeypatch.setattr(server, "apply_update", lying_update)
        with pytest.raises(VerificationError):
            client.update_block(server, 2, b"honest-content!!")
