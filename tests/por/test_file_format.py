"""Segment and EncodedFile container tests."""

import pytest

from repro.errors import BlockNotFoundError, ConfigurationError
from repro.por.file_format import EncodedFile, Segment
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys, setup_file


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def encoded(keys, sample_data):
    return setup_file(sample_data, keys, b"fmt-test", TEST_PARAMS)


class TestSegment:
    def test_wire_roundtrip(self):
        segment = Segment(index=7, payload=b"payload-bytes", tag=b"tag")
        parsed, offset = Segment.from_wire(segment.wire_bytes())
        assert parsed == segment
        assert offset == len(segment.wire_bytes())

    def test_size(self):
        assert Segment(0, b"12345", b"67").size_bytes == 7

    def test_wire_concatenation(self):
        a = Segment(0, b"a", b"t1")
        b = Segment(1, b"bb", b"t2")
        blob = a.wire_bytes() + b.wire_bytes()
        first, offset = Segment.from_wire(blob)
        second, _ = Segment.from_wire(blob, offset)
        assert (first, second) == (a, b)


class TestEncodedFile:
    def test_segment_lookup(self, encoded):
        assert encoded.segment(0).index == 0
        assert encoded.segment(encoded.n_segments - 1).index == encoded.n_segments - 1

    def test_missing_segment(self, encoded):
        with pytest.raises(BlockNotFoundError):
            encoded.segment(encoded.n_segments)

    def test_rejects_misindexed_segments(self):
        bad = [Segment(index=1, payload=b"x" * 12, tag=b"t")]
        with pytest.raises(ConfigurationError):
            EncodedFile(b"f", TEST_PARAMS, bad, 10, 3)

    def test_blocks_reassembly(self, encoded):
        blocks = encoded.blocks()
        assert all(len(b) == TEST_PARAMS.block_bytes for b in blocks)
        assert len(blocks) == encoded.n_segments * TEST_PARAMS.segment_blocks

    def test_stored_bytes(self, encoded):
        per_segment = TEST_PARAMS.segment_bytes + TEST_PARAMS.tag_bytes
        assert encoded.stored_bytes == encoded.n_segments * per_segment

    def test_serialisation_roundtrip(self, encoded):
        blob = encoded.to_bytes()
        parsed = EncodedFile.from_bytes(blob)
        assert parsed.file_id == encoded.file_id
        assert parsed.original_length == encoded.original_length
        assert parsed.n_data_blocks == encoded.n_data_blocks
        assert parsed.params == encoded.params
        assert parsed.segments == encoded.segments
