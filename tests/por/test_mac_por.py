"""The MAC-based POR challenge/response protocol."""

import pytest

from repro.errors import BlockNotFoundError, ConfigurationError, VerificationError
from repro.por.file_format import Segment
from repro.por.mac_por import MacPORClient, MacPORServer, PORChallenge
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def por_pair(keys, sample_data):
    encoded = setup_file(sample_data, keys, b"por-test", TEST_PARAMS)
    server = MacPORServer(encoded)
    client = MacPORClient(keys.mac_key, b"por-test", encoded.n_segments, TEST_PARAMS)
    return client, server, encoded


class TestChallenge:
    def test_indices_distinct_and_in_range(self, por_pair, rng):
        client, _, encoded = por_pair
        challenge = client.make_challenge(25, rng)
        assert len(set(challenge.indices)) == 25
        assert all(0 <= i < encoded.n_segments for i in challenge.indices)

    def test_nonce_present(self, por_pair, rng):
        client, _, _ = por_pair
        assert len(client.make_challenge(5, rng).nonce) == 16

    def test_k_bounds(self, por_pair, rng):
        client, _, encoded = por_pair
        with pytest.raises(ConfigurationError):
            client.make_challenge(0, rng)
        with pytest.raises(ConfigurationError):
            client.make_challenge(encoded.n_segments + 1, rng)

    def test_challenges_vary(self, por_pair, rng):
        client, _, _ = por_pair
        a = client.make_challenge(10, rng)
        b = client.make_challenge(10, rng)
        assert a.indices != b.indices or a.nonce != b.nonce

    def test_wire_bytes_cover_indices_and_nonce(self, por_pair, rng):
        client, _, _ = por_pair
        a = client.make_challenge(5, rng, nonce=b"n" * 16)
        b = PORChallenge(indices=a.indices, nonce=b"m" * 16)
        assert a.wire_bytes() != b.wire_bytes()


class TestHonestServer:
    def test_response_verifies(self, por_pair, rng):
        client, server, _ = por_pair
        challenge = client.make_challenge(30, rng)
        report = client.verify_response(challenge, server.respond(challenge))
        assert report.ok
        assert report.checked == 30

    def test_require_valid_passes(self, por_pair, rng):
        client, server, _ = por_pair
        challenge = client.make_challenge(10, rng)
        client.require_valid(challenge, server.respond(challenge))

    def test_respond_one(self, por_pair):
        _, server, encoded = por_pair
        assert server.respond_one(3) == encoded.segments[3]

    def test_missing_segment_raises(self, por_pair, rng):
        client, server, encoded = por_pair
        challenge = PORChallenge(indices=(encoded.n_segments,), nonce=b"n" * 16)
        with pytest.raises(BlockNotFoundError):
            server.respond(challenge)


class TestDishonestServer:
    def test_corrupted_payload_detected(self, por_pair, rng):
        client, server, encoded = por_pair
        victim = 5
        old = encoded.segments[victim]
        encoded.segments[victim] = Segment(
            index=victim, payload=b"\x00" * len(old.payload), tag=old.tag
        )
        challenge = PORChallenge(indices=(victim,), nonce=b"n" * 16)
        report = client.verify_response(challenge, server.respond(challenge))
        assert not report.ok
        assert report.bad_indices == [victim]

    def test_substituted_segment_detected(self, por_pair, rng):
        # Serving segment 7's data for index 5 must fail (index bound).
        client, server, encoded = por_pair
        donor = encoded.segments[7]
        forged = Segment(index=5, payload=donor.payload, tag=donor.tag)
        encoded.segments[5] = forged
        challenge = PORChallenge(indices=(5,), nonce=b"n" * 16)
        report = client.verify_response(challenge, server.respond(challenge))
        assert not report.ok

    def test_wrong_index_label_detected(self, por_pair):
        client, _, encoded = por_pair
        segment = encoded.segments[4]
        relabelled = Segment(index=9, payload=segment.payload, tag=segment.tag)
        assert not client.verify_segment(4, relabelled)

    def test_missing_answer_detected(self, por_pair, rng):
        from repro.por.mac_por import PORResponse

        client, server, _ = por_pair
        challenge = client.make_challenge(5, rng)
        response = server.respond(challenge)
        truncated = PORResponse(segments=response.segments[:-1])
        report = client.verify_response(challenge, truncated)
        assert not report.ok
        assert len(report.missing_indices) == 1

    def test_require_valid_raises(self, por_pair, rng):
        client, server, encoded = por_pair
        old = encoded.segments[0]
        encoded.segments[0] = Segment(0, b"\x00" * len(old.payload), old.tag)
        challenge = PORChallenge(indices=(0,), nonce=b"n" * 16)
        with pytest.raises(VerificationError):
            client.require_valid(challenge, server.respond(challenge))


class TestClientValidation:
    def test_rejects_zero_segments(self, keys):
        with pytest.raises(ConfigurationError):
            MacPORClient(keys.mac_key, b"f", 0, TEST_PARAMS)
