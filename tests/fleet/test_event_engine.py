"""The event engine: per-datacentre lanes, equivalence, concurrency."""

import pytest

from repro.cloud.adversary import CorruptionAttack
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.fleet import AuditFleet, RoundRobinStrategy
from repro.fleet.demo import build_demo_fleet
from repro.geo.datasets import city


def single_site_fleet(engine):
    """One provider, one data centre, a mix of clean and rotted files."""
    fleet = AuditFleet(
        seed="engine-equivalence",
        slot_minutes=30.0,
        batch_size=3,
        engine=engine,
    )
    fleet.add_provider("p", [("bne", city("brisbane"))])
    data_rng = DeterministicRNG("engine-equivalence-data")
    for i in range(5):
        fleet.register(
            tenant="t",
            provider="p",
            datacentre="bne",
            file_id=f"f-{i}".encode(),
            data=data_rng.fork(str(i)).random_bytes(2_000),
            epsilon=0.30,
        )
    fleet.provider("p").set_strategy(
        CorruptionAttack("bne", 0.30, DeterministicRNG("engine-rot"))
    )
    return fleet


def two_site_fleet(engine, *, slot_minutes=30.0):
    """Honest provider at one site, corrupting provider at another."""
    fleet = AuditFleet(
        seed="two-site",
        slot_minutes=slot_minutes,
        batch_size=2,
        engine=engine,
    )
    fleet.add_provider("honest", [("bne", city("brisbane"))])
    fleet.add_provider("rotter", [("mel", city("melbourne"))])
    data_rng = DeterministicRNG("two-site-data")
    for provider, site in (("honest", "bne"), ("rotter", "mel")):
        for i in range(3):
            fleet.register(
                tenant=provider,
                provider=provider,
                datacentre=site,
                file_id=f"{provider}-{i}".encode(),
                data=data_rng.fork(f"{provider}-{i}").random_bytes(2_000),
                epsilon=0.30,
            )
    fleet.provider("rotter").set_strategy(
        CorruptionAttack("mel", 0.30, DeterministicRNG("two-site-rot"))
    )
    return fleet


class TestEquivalence:
    def test_single_site_slot_and_event_identical(self):
        """One data centre: the two engines must emit the same stream.

        Same audits, same order, same timestamps, same verdicts, same
        violations -- the event engine's per-lane ranking degenerates
        to the fleet-wide ranking when only one lane exists.
        """
        slot = single_site_fleet("slot").run(hours=6.0)
        event = single_site_fleet("event").run(hours=6.0)
        assert slot.events == event.events
        assert slot.violations == event.violations
        assert slot.verdict_breakdown == event.verdict_breakdown
        assert slot.tenants == event.tenants
        assert slot.n_batches == event.n_batches
        assert slot.overhead_saved_ms == event.overhead_saved_ms
        # Even the lane accounting agrees: one lane, same busy time.
        assert slot.lanes == event.lanes
        assert slot.engine == "slot" and event.engine == "event"

    def test_run_engine_override_is_per_run(self):
        fleet = single_site_fleet("slot")
        report = fleet.run(hours=1.0, engine="event")
        assert report.engine == "event"
        assert fleet.engine == "slot"
        assert fleet.run(hours=1.0).engine == "slot"


class TestDeterminism:
    def test_same_seed_identical_event_reports(self):
        def run():
            return build_demo_fleet(
                n_files=9,
                n_providers=3,
                seed="event-determinism",
                violation="corrupt",
                slot_minutes=30.0,
                engine="event",
            ).run(hours=6.0)

        first, second = run(), run()
        # Frozen dataclasses compare field by field: every event,
        # lane row, timestamp and aggregate must match exactly.
        assert first == second
        assert first.render() == second.render()

    def test_merged_timeline_is_time_ordered(self):
        report = two_site_fleet("event").run(hours=6.0)
        times = [e.at_ms for e in report.events]
        assert times == sorted(times)


class TestConcurrency:
    def test_corruption_detected_without_delaying_other_site(self):
        """A rotting site is caught while the honest site keeps cadence.

        Under the serial slot loop the two sites share one batch per
        slot, so each gets only every other slot; under the event
        engine each lane dispatches every slot.  The honest lane must
        therefore audit at least as often as the *whole* slot fleet
        gave it, and the violation still gets caught.
        """
        hours = 6.0
        slot = two_site_fleet("slot").run(hours=hours)
        event = two_site_fleet("event").run(hours=hours)

        def audits_at(report, provider):
            return sum(1 for e in report.events if e.provider == provider)

        # The violation is detected under both engines...
        assert slot.first_detection_hours() is not None
        assert event.first_detection_hours() is not None
        # ...but the event engine audits every site every slot: both
        # sites get strictly more audits than under the shared loop.
        for provider in ("honest", "rotter"):
            assert audits_at(event, provider) > audits_at(slot, provider)
        # Full cadence at the honest site: one batch per slot.
        honest_lane = next(
            lane for lane in event.lanes if lane.provider == "honest"
        )
        assert honest_lane.n_batches == int(hours * 60 / 30.0)
        assert honest_lane.dropped_slots == 0

    def test_lane_stats_expose_overlap(self):
        report = two_site_fleet("event").run(hours=6.0)
        assert len(report.lanes) == 2
        assert all(lane.busy_ms > 0 for lane in report.lanes)
        assert all(lane.disk_busy_ms > 0 for lane in report.lanes)
        assert all(0.0 < lane.utilization < 1.0 for lane in report.lanes)
        assert report.concurrency_speedup > 1.0
        # The slot engine reports the same sites but, serial by
        # construction, claims no overlap.
        slot = two_site_fleet("slot").run(hours=6.0)
        assert [l.site for l in slot.lanes] == [l.site for l in report.lanes]
        assert slot.concurrency_speedup == 1.0

    def test_saturated_lane_sheds_slots(self):
        """Sub-millisecond slots overload the lane's bounded queue."""
        fleet = two_site_fleet("event", slot_minutes=0.001)
        report = fleet.run(hours=0.01)
        saturated = [lane for lane in report.lanes if lane.dropped_slots]
        assert saturated, "expected the overloaded lanes to shed slots"
        assert all(
            lane.peak_queue_depth <= fleet.lane_queue_limit
            for lane in report.lanes
        )


class TestHorizonOverrun:
    def test_overrunning_audits_flagged_in_both_engines(self):
        """Regression: events past the horizon are flagged, not silent.

        With sub-millisecond slots every audit overruns; the final
        batch spills past the horizon in both engines and each spilled
        event carries ``overran_horizon``.
        """
        hours = 0.01  # 36 simulated seconds; each audit costs ~100 ms+
        horizon_ms = hours * 3_600_000.0
        for engine in ("slot", "event"):
            fleet = single_site_fleet(engine)
            fleet.slot_minutes = 0.001
            report = fleet.run(hours=hours)
            flagged = [e for e in report.events if e.overran_horizon]
            assert flagged, f"{engine}: expected horizon-spilling events"
            for event in report.events:
                assert event.overran_horizon == (event.at_ms > horizon_ms)
            assert report.n_overrun_events == len(flagged)

    def test_no_flags_inside_the_horizon(self):
        report = single_site_fleet("slot").run(hours=6.0)
        assert report.n_overrun_events == 0
        assert all(not e.overran_horizon for e in report.events)


class TestValidation:
    def test_unknown_engine_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            AuditFleet(seed="bad", engine="threads")

    def test_unknown_engine_rejected_at_run(self):
        fleet = single_site_fleet("slot")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            fleet.run(hours=1.0, engine="fibers")

    def test_lane_queue_limit_validated(self):
        with pytest.raises(ConfigurationError, match="lane_queue_limit"):
            AuditFleet(seed="bad-lanes", lane_queue_limit=0)
