"""Determinism: the same seed must reproduce the identical FleetReport."""

from repro.fleet import RiskWeightedStrategy
from repro.fleet.demo import build_demo_fleet


def run_demo(seed: str, strategy_factory=RiskWeightedStrategy):
    fleet = build_demo_fleet(
        n_files=9,
        n_providers=3,
        strategy=strategy_factory(),
        seed=seed,
        violation="corrupt",
        slot_minutes=30.0,
    )
    return fleet.run(hours=6.0)


class TestDeterminism:
    def test_same_seed_identical_report(self):
        first = run_demo("determinism")
        second = run_demo("determinism")
        # Frozen dataclasses compare field by field: every event,
        # timestamp, verdict and aggregate must match exactly.
        assert first == second
        assert first.render() == second.render()

    def test_same_seed_identical_events(self):
        first = run_demo("determinism-events")
        second = run_demo("determinism-events")
        assert first.events == second.events
        assert first.violations == second.violations

    def test_different_seed_diverges(self):
        # Challenge sets, payloads and jitter all derive from the
        # seed, so some observable timing must differ.
        first = run_demo("seed-a")
        second = run_demo("seed-b")
        assert first != second
