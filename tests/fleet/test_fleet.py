"""End-to-end fleet auditing: three providers, two of them misbehaving."""

import pytest

from repro.cloud.adversary import CorruptionAttack, RelayAttack
from repro.cloud.provider import DataCentre
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.fleet import AuditFleet, DeadlineStrategy, RoundRobinStrategy
from repro.geo.datasets import city
from repro.storage.hdd import IBM_36Z15


def register_files(fleet, tenant, provider, site, n, *, epsilon=0.05):
    data_rng = DeterministicRNG(f"{tenant}-data")
    for i in range(n):
        fleet.register(
            tenant=tenant,
            provider=provider,
            datacentre=site,
            file_id=f"{tenant}-{i}".encode(),
            data=data_rng.fork(str(i)).random_bytes(2_000),
            epsilon=epsilon,
        )


@pytest.fixture
def mixed_fleet():
    """Honest, relaying and corrupting providers with two files each."""
    fleet = AuditFleet(seed="mixed-fleet", slot_minutes=30.0, batch_size=4)
    fleet.add_provider("honest", [("brisbane", city("brisbane"))])
    fleet.add_provider("relayer", [("sydney", city("sydney"))])
    fleet.add_provider("rotter", [("melbourne", city("melbourne"))])
    register_files(fleet, "alice", "honest", "brisbane", 2)
    register_files(fleet, "bob", "relayer", "sydney", 2)
    register_files(fleet, "carol", "rotter", "melbourne", 2, epsilon=0.30)

    # The relayer quietly moved bob's data to Singapore (Fig. 6).
    relayer = fleet.provider("relayer")
    relayer.add_datacentre(
        DataCentre("singapore", city("singapore"), disk=IBM_36Z15)
    )
    for task in fleet.tasks():
        if task.provider_name == "relayer":
            relayer.relocate(task.file_id, "singapore")
    relayer.set_strategy(RelayAttack("sydney", "singapore"))

    # The rotter serves locally but 30 % of segments are bit-rotted.
    fleet.provider("rotter").set_strategy(
        CorruptionAttack("melbourne", 0.30, DeterministicRNG("rot"))
    )
    return fleet


class TestEndToEnd:
    def test_both_adversaries_detected(self, mixed_fleet):
        report = mixed_fleet.run(hours=24.0, strategy=RoundRobinStrategy())

        assert report.n_providers == 3
        assert report.n_files == 6
        assert report.n_audits > 0

        # The honest tenant is never flagged.
        alice = report.tenant_summary("alice")
        assert alice.n_audits > 0
        assert alice.acceptance_rate == 1.0

        # Every relayed file trips the timing bound...
        flagged = {v.file_id: v for v in report.violations}
        for i in range(2):
            violation = flagged[f"bob-{i}".encode()]
            assert "timing" in violation.failure_reasons
            assert violation.provider == "relayer"
        # ...and every corrupted file trips the MAC check.
        rotted = [v for v in report.violations if v.provider == "rotter"]
        assert rotted
        assert all("mac" in v.failure_reasons for v in rotted)

        # Detection latency is reported in simulated hours.
        for violation in report.violations:
            assert 0.0 <= violation.detected_at_hours <= 24.0
        assert report.detection_hours(b"bob-0") is not None
        assert report.detection_hours(b"alice-0") is None

        # The verdict breakdown counts both failure modes.
        breakdown = dict(report.verdict_breakdown)
        assert breakdown["timing"] > 0
        assert breakdown["mac"] > 0
        assert breakdown["accepted"] > 0

    def test_rendered_report_has_all_sections(self, mixed_fleet):
        report = mixed_fleet.run(hours=6.0)
        rendered = report.render()
        for heading in (
            "Fleet audit run",
            "Per-tenant acceptance",
            "Verdict breakdown",
            "Violations detected",
        ):
            assert heading in rendered


class TestMechanics:
    def test_shared_clock_advances_across_audits(self, mixed_fleet):
        start = mixed_fleet.clock.now_ms()
        report = mixed_fleet.run(hours=2.0)
        assert mixed_fleet.clock.now_ms() > start
        times = [e.at_ms for e in report.events]
        assert times == sorted(times)

    def test_batches_share_a_datacentre(self, mixed_fleet):
        batch = mixed_fleet.next_batch()
        assert 1 <= len(batch) <= mixed_fleet.batch_size
        assert len({t.site for t in batch}) == 1

    def test_batching_amortises_dispatch_overhead(self, mixed_fleet):
        report = mixed_fleet.run(hours=6.0)
        assert report.n_batches < report.n_audits
        assert report.overhead_saved_ms == pytest.approx(
            (report.n_audits - report.n_batches)
            * mixed_fleet.dispatch_overhead_ms
        )

    def test_strategy_override_is_recorded_but_not_persisted(self, mixed_fleet):
        installed = mixed_fleet.strategy
        report = mixed_fleet.run(hours=1.0, strategy=DeadlineStrategy())
        assert report.strategy == "deadline"
        # The override is per-run; the installed policy is untouched.
        assert mixed_fleet.strategy is installed
        assert mixed_fleet.run(hours=1.0).strategy == installed.name

    def test_throughput_property(self, mixed_fleet):
        report = mixed_fleet.run(hours=6.0)
        assert report.audits_per_simulated_hour == pytest.approx(
            report.n_audits / 6.0
        )


class TestOverrunClamp:
    def test_run_stops_at_horizon_when_audits_overrun_slots(self):
        """Sub-millisecond slots must not run the nominal slot count."""
        fleet = AuditFleet(seed="overrun", slot_minutes=0.001, batch_size=1)
        fleet.add_provider("p", [("bne", city("brisbane"))])
        register_files(fleet, "t", "p", "bne", 1)
        hours = 0.01  # 36 simulated seconds; each audit costs ~100 ms+
        report = fleet.run(hours=hours)
        # The clock, not the slot counter, bounds the run: far fewer
        # batches than the nominal 600 slots, and only the final batch
        # may spill past the horizon.
        assert report.n_batches < 600
        horizon_ms = hours * 3_600_000.0
        last_slot = report.events[-1].slot
        assert all(
            e.at_ms <= horizon_ms
            for e in report.events
            if e.slot != last_slot
        )


class TestKeyIndependence:
    def test_same_file_id_on_two_providers_gets_distinct_keys(self):
        fleet = AuditFleet(seed="key-independence")
        fleet.add_provider("p1", [("bne", city("brisbane"))])
        fleet.add_provider("p2", [("syd", city("sydney"))])
        data = DeterministicRNG("same-data").random_bytes(2_000)
        for provider, site in (("p1", "bne"), ("p2", "syd")):
            fleet.register(
                tenant="t",
                provider=provider,
                datacentre=site,
                file_id=b"shared-name",
                data=data,
            )
        first = fleet.record("p1", b"shared-name")
        second = fleet.record("p2", b"shared-name")
        assert first.keys.mac_key != second.keys.mac_key

    def test_hyphenated_names_cannot_alias_key_derivation(self):
        """('a', 'b-p') and ('a-b', 'p') must not share a fork label."""
        fleet = AuditFleet(seed="alias")
        fleet.add_provider("b-p", [("bne", city("brisbane"))])
        fleet.add_provider("p", [("syd", city("sydney"))])
        data = DeterministicRNG("alias-data").random_bytes(2_000)
        fleet.register(
            tenant="a", provider="b-p", datacentre="bne",
            file_id=b"F", data=data,
        )
        fleet.register(
            tenant="a-b", provider="p", datacentre="syd",
            file_id=b"F", data=data,
        )
        assert (
            fleet.record("b-p", b"F").keys.mac_key
            != fleet.record("p", b"F").keys.mac_key
        )

    def test_detection_hours_scoped_by_provider(self):
        """A shared file id flagged on one provider must not taint the
        other provider's clean copy in report lookups."""
        fleet = AuditFleet(seed="scoped-detection", slot_minutes=30.0)
        fleet.add_provider("clean", [("bne", city("brisbane"))])
        fleet.add_provider("dirty", [("syd", city("sydney"))])
        data = DeterministicRNG("scoped-data").random_bytes(2_000)
        for provider, site in (("clean", "bne"), ("dirty", "syd")):
            fleet.register(
                tenant=provider, provider=provider, datacentre=site,
                file_id=b"shared", data=data, epsilon=0.30,
            )
        fleet.provider("dirty").set_strategy(
            CorruptionAttack("syd", 0.30, DeterministicRNG("rot2"))
        )
        report = fleet.run(hours=12.0, strategy=RoundRobinStrategy())
        assert report.detection_hours(b"shared", provider="dirty") is not None
        assert report.detection_hours(b"shared", provider="clean") is None
        # Unscoped lookup still answers (earliest across providers).
        assert report.detection_hours(b"shared") == report.detection_hours(
            b"shared", provider="dirty"
        )


class TestInjectAdversary:
    """The economics hook: install, relocate, record, restore."""

    def build(self):
        fleet = AuditFleet(seed="inject", slot_minutes=30.0)
        fleet.add_provider("p", [("bne", city("brisbane"))])
        register_files(fleet, "t", "p", "bne", 2)
        return fleet

    def test_unknown_provider_rejected(self):
        fleet = self.build()
        with pytest.raises(ConfigurationError):
            fleet.inject_adversary("ghost", RelayAttack("bne", "syd"))

    def test_unknown_relocation_site_fails_fast(self):
        fleet = self.build()
        with pytest.raises(ConfigurationError):
            fleet.inject_adversary(
                "p", RelayAttack("bne", "syd"), relocate_to="syd"
            )

    def test_relocates_installs_and_records(self):
        fleet = self.build()
        provider = fleet.provider("p")
        provider.add_datacentre(
            DataCentre("syd", city("sydney"), disk=IBM_36Z15)
        )
        strategy = RelayAttack("bne", "syd")
        fleet.inject_adversary("p", strategy, relocate_to="syd")
        assert provider.strategy is strategy
        assert fleet.adversaries() == {"p": "RelayAttack"}
        for task in fleet.tasks():
            assert provider.home_of(task.file_id).name == "syd"
        report = fleet.run(hours=3.0)
        assert report.adversaries == (("p", "RelayAttack"),)
        assert report.acceptance_rate == 0.0
        # Per-tenant detection latency surfaced on the summary row.
        assert (
            report.tenant_summary("t").first_detection_hours
            == report.first_detection_hours()
        )
        assert report.to_dict()["tenants"][0][
            "first_detection_hours"
        ] is not None

    def test_none_restores_honest_serving_but_keeps_record(self):
        fleet = self.build()
        fleet.inject_adversary(
            "p",
            CorruptionAttack("bne", 0.5, DeterministicRNG("inject")),
        )
        fleet.inject_adversary("p", None)
        assert fleet.provider("p").strategy is None
        assert fleet.adversaries() == {"p": "CorruptionAttack"}


class TestRegistration:
    def test_duplicate_file_rejected(self):
        fleet = AuditFleet(seed="dup")
        fleet.add_provider("p", [("bne", city("brisbane"))])
        register_files(fleet, "t", "p", "bne", 1)
        with pytest.raises(ConfigurationError):
            register_files(fleet, "t", "p", "bne", 1)

    def test_unknown_provider_rejected(self):
        fleet = AuditFleet(seed="unknown")
        with pytest.raises(ConfigurationError):
            fleet.register(
                tenant="t",
                provider="ghost",
                datacentre="bne",
                file_id=b"f",
                data=b"x" * 100,
            )

    def test_duplicate_provider_rejected(self):
        fleet = AuditFleet(seed="dup-provider")
        fleet.add_provider("p", [("bne", city("brisbane"))])
        with pytest.raises(ConfigurationError):
            fleet.add_provider("p", [("syd", city("sydney"))])

    def test_provider_needs_a_datacentre(self):
        fleet = AuditFleet(seed="no-dc")
        with pytest.raises(ConfigurationError):
            fleet.add_provider("p", [])

    def test_empty_fleet_cannot_run(self):
        fleet = AuditFleet(seed="empty")
        with pytest.raises(ConfigurationError):
            fleet.run(hours=1.0)

    def test_site_without_verifier_rejected_at_registration(self):
        """A site added behind the fleet's back must fail fast."""
        from repro.cloud.provider import DataCentre

        fleet = AuditFleet(seed="no-verifier")
        provider = fleet.add_provider("p", [("bne", city("brisbane"))])
        provider.add_datacentre(DataCentre("syd", city("sydney")))
        with pytest.raises(ConfigurationError, match="no verifier"):
            fleet.register(
                tenant="t",
                provider="p",
                datacentre="syd",
                file_id=b"f",
                data=b"x" * 500,
            )

    def test_tenant_file_count_spans_providers(self):
        """The same file id on two providers is two files for the tenant."""
        fleet = AuditFleet(seed="span")
        fleet.add_provider("p1", [("bne", city("brisbane"))])
        fleet.add_provider("p2", [("syd", city("sydney"))])
        data = DeterministicRNG("span-data").random_bytes(2_000)
        for provider, site in (("p1", "bne"), ("p2", "syd")):
            fleet.register(
                tenant="t", provider=provider, datacentre=site,
                file_id=b"backup", data=data,
            )
        report = fleet.run(hours=1.0)
        assert report.tenant_summary("t").n_files == 2

    def test_record_lookup(self):
        fleet = AuditFleet(seed="record")
        fleet.add_provider("p", [("bne", city("brisbane"))])
        register_files(fleet, "t", "p", "bne", 1)
        record = fleet.record("p", b"t-0")
        assert record.n_segments > 0
        with pytest.raises(ConfigurationError):
            fleet.record("p", b"ghost")


class TestSetupWorkers:
    """The outsourcing pipeline can shard RS encoding across processes."""

    def test_setup_workers_validated(self):
        for bad in (0, -1, 2.5):
            with pytest.raises(ConfigurationError):
                AuditFleet(setup_workers=bad)

    def test_sharded_registration_matches_serial(self):
        def build(workers):
            fleet = AuditFleet(seed="workers-fleet", setup_workers=workers)
            fleet.add_provider("acme", [("brisbane", city("brisbane"))])
            fleet.register(
                tenant="alice",
                provider="acme",
                datacentre="brisbane",
                file_id=b"file-1",
                data=DeterministicRNG("workers-data").random_bytes(4_000),
            )
            return fleet

        serial, sharded = build(None), build(2)
        store_serial = serial.provider("acme").datacentre("brisbane").server.store
        store_sharded = sharded.provider("acme").datacentre("brisbane").server.store
        n = store_serial.n_segments(b"file-1")
        assert n == store_sharded.n_segments(b"file-1")
        for index in range(n):
            seg_a = store_serial.get_segment(b"file-1", index)
            seg_b = store_sharded.get_segment(b"file-1", index)
            assert (seg_a.payload, seg_a.tag) == (seg_b.payload, seg_b.tag)
