"""Strategy-ordering unit tests: rankings are exact and deterministic."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.strategies import (
    MS_PER_HOUR,
    AuditTask,
    DeadlineStrategy,
    RiskWeightedStrategy,
    RoundRobinStrategy,
    make_strategy,
)


def task(
    order: int,
    *,
    epsilon: float = 0.05,
    interval_hours: float = 6.0,
    last_audit_ms: float | None = None,
    registered_ms: float = 0.0,
    datacentre: str = "bne",
    provider: str = "acme",
) -> AuditTask:
    return AuditTask(
        tenant=f"tenant-{order}",
        provider_name=provider,
        file_id=f"file-{order}".encode(),
        datacentre=datacentre,
        interval_hours=interval_hours,
        epsilon=epsilon,
        k_rounds=10,
        order=order,
        registered_ms=registered_ms,
        last_audit_ms=last_audit_ms,
    )


def ranking(strategy, tasks, now_ms=0.0):
    return [t.order for t in strategy.rank(tasks, now_ms)]


class TestAuditTask:
    def test_due_follows_last_audit(self):
        t = task(0, interval_hours=2.0, last_audit_ms=MS_PER_HOUR)
        assert t.due_ms() == pytest.approx(3 * MS_PER_HOUR)

    def test_due_follows_registration_when_never_audited(self):
        t = task(0, interval_hours=2.0, registered_ms=MS_PER_HOUR)
        assert t.due_ms() == pytest.approx(3 * MS_PER_HOUR)

    def test_exposure_clamped_non_negative(self):
        t = task(0, registered_ms=MS_PER_HOUR)
        assert t.exposure_hours(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            task(0, epsilon=1.5)
        with pytest.raises(ConfigurationError):
            task(0, interval_hours=0.0)


class TestRoundRobin:
    def test_fresh_queue_follows_registration_order(self):
        tasks = [task(2), task(0), task(1)]
        assert ranking(RoundRobinStrategy(), tasks) == [0, 1, 2]

    def test_least_recently_audited_first(self):
        tasks = [
            task(0, last_audit_ms=300.0),
            task(1, last_audit_ms=100.0),
            task(2, last_audit_ms=200.0),
        ]
        assert ranking(RoundRobinStrategy(), tasks, 400.0) == [1, 2, 0]

    def test_never_audited_precede_audited(self):
        tasks = [task(0, last_audit_ms=5.0), task(1)]
        assert ranking(RoundRobinStrategy(), tasks, 10.0) == [1, 0]

    def test_full_rotation_is_fair(self):
        """Simulating pick-then-update sweeps every task exactly once."""
        tasks = [task(i) for i in range(5)]
        strategy = RoundRobinStrategy()
        picked = []
        for step in range(5):
            head = strategy.rank(tasks, float(step))[0]
            picked.append(head.order)
            head.last_audit_ms = float(step)
        assert picked == [0, 1, 2, 3, 4]


class TestRiskWeighted:
    def test_higher_epsilon_wins_at_start(self):
        tasks = [task(0, epsilon=0.02), task(1, epsilon=0.20)]
        assert ranking(RiskWeightedStrategy(), tasks) == [1, 0]

    def test_neglect_eventually_beats_risk(self):
        """A low-risk file left unaudited long enough takes the slot."""
        strategy = RiskWeightedStrategy()
        risky = task(0, epsilon=0.20, last_audit_ms=0.0)
        stale = task(1, epsilon=0.02, last_audit_ms=0.0)
        now = 0.0
        assert ranking(strategy, [risky, stale], now)[0] == 0
        # After enough neglect the stale file's accumulated exposure
        # dominates the risky file's per-audit detection edge.
        risky.last_audit_ms = 199 * MS_PER_HOUR
        assert ranking(strategy, [risky, stale], 200 * MS_PER_HOUR)[0] == 1

    def test_score_is_detection_times_exposure(self):
        strategy = RiskWeightedStrategy()
        t = task(0, epsilon=0.10, interval_hours=6.0, last_audit_ms=0.0)
        p = 1.0 - 0.9**10
        assert strategy.score(t, 4 * MS_PER_HOUR) == pytest.approx(p * 10.0)

    def test_tie_breaks_on_registration_order(self):
        tasks = [task(1), task(0)]
        assert ranking(RiskWeightedStrategy(), tasks) == [0, 1]


class TestDeadline:
    def test_earliest_due_first(self):
        tasks = [
            task(0, interval_hours=8.0),
            task(1, interval_hours=2.0),
            task(2, interval_hours=4.0),
        ]
        assert ranking(DeadlineStrategy(), tasks) == [1, 2, 0]

    def test_recent_audit_pushes_deadline_back(self):
        tasks = [
            task(0, interval_hours=2.0, last_audit_ms=5 * MS_PER_HOUR),
            task(1, interval_hours=2.0, last_audit_ms=1 * MS_PER_HOUR),
        ]
        assert ranking(DeadlineStrategy(), tasks, 6 * MS_PER_HOUR) == [1, 0]

    def test_tie_breaks_on_registration_order(self):
        tasks = [task(1), task(0)]
        assert ranking(DeadlineStrategy(), tasks) == [0, 1]


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("round-robin", RoundRobinStrategy),
            ("risk-weighted", RiskWeightedStrategy),
            ("deadline", DeadlineStrategy),
        ],
    )
    def test_make_strategy(self, name, cls):
        strategy = make_strategy(name)
        assert isinstance(strategy, cls)
        assert strategy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("random")
