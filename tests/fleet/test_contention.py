"""Shared spindles, replicated placement, and lane-aware scheduling."""

import json

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.fleet import (
    AuditFleet,
    DeadlineStrategy,
    FleetLoadView,
    LaneLoad,
    RiskWeightedStrategy,
    RoundRobinStrategy,
    WorkStealingStrategy,
)
from repro.fleet.demo import build_contention_fleet, rot_at_rest
from repro.fleet.strategies import MS_PER_HOUR, AuditTask
from repro.geo.datasets import city


def replicated_fleet(engine, *, spindles=None, replicas=2, strategy=None):
    """One provider, two far-apart sites, replicated files."""
    fleet = AuditFleet(
        seed="replicated",
        strategy=strategy,
        slot_minutes=30.0,
        batch_size=2,
        engine=engine,
    )
    fleet.add_provider(
        "acme",
        [("bne", city("brisbane")), ("per", city("perth"))],
        spindles=spindles,
    )
    data_rng = DeterministicRNG("replicated-data")
    for i in range(3):
        fleet.register(
            tenant="t",
            provider="acme",
            datacentre="bne",
            file_id=f"f-{i}".encode(),
            data=data_rng.fork(str(i)).random_bytes(2_000),
            replicas=replicas,
        )
    return fleet


class TestReplicatedPlacement:
    def test_replicas_are_stored_at_sibling_sites(self):
        fleet = replicated_fleet("event")
        provider = fleet.provider("acme")
        for i in range(3):
            file_id = f"f-{i}".encode()
            assert provider.datacentre("per").server.store.has_file(file_id)
            task = next(t for t in fleet.tasks() if t.file_id == file_id)
            assert task.replica_datacentres == ("per",)

    def test_replica_site_records_pair_verifier_and_site_sla(self):
        fleet = replicated_fleet("event")
        sites = fleet.replica_sites("acme", b"f-0")
        assert list(sites) == ["per"]
        replica = sites["per"]
        # The replica SLA is centred on the *replica* site, not home.
        assert replica.sla.region.contains(city("perth"))
        assert not replica.sla.region.contains(city("brisbane"))
        assert replica.verifier is fleet.deployment("acme").verifier_for("per")
        # timing_radius_km (used by the separation filter) is the
        # one-way Internet flight the timing budget allows.
        assert replica.timing_radius_km > 0

    def test_unreplicated_file_has_no_records(self):
        fleet = replicated_fleet("event", replicas=1)
        assert fleet.replica_sites("acme", b"f-0") == {}
        task = next(iter(fleet.tasks()))
        assert task.replica_datacentres == ()

    def test_replicas_bounded_by_site_count(self):
        fleet = replicated_fleet("event")
        with pytest.raises(ConfigurationError, match="replicas"):
            fleet.register(
                tenant="t",
                provider="acme",
                datacentre="bne",
                file_id=b"too-many",
                data=b"x" * 500,
                replicas=3,
            )

    def test_explicit_replica_sites_validated(self):
        fleet = replicated_fleet("event", replicas=1)
        with pytest.raises(ConfigurationError, match="duplicate replica"):
            fleet.register(
                tenant="t",
                provider="acme",
                datacentre="bne",
                file_id=b"dup",
                data=b"x" * 500,
                replica_datacentres=["bne"],
            )

    def test_replicated_audits_still_accepted_at_home(self):
        report = replicated_fleet("event").run(hours=1.0)
        assert report.acceptance_rate == 1.0
        assert all(e.executed_at == e.datacentre for e in report.events)

    def test_replication_auditor_counts_distinct_copies(self):
        """Fleet placement feeds ReplicationAuditor.audit_round."""
        fleet = replicated_fleet("event")
        auditor = fleet.replication_auditor("acme", b"f-0")
        verdict = auditor.audit_round(b"f-0", fleet.provider("acme"), k=6)
        # Brisbane and Perth are far beyond the sum of their timing
        # radii, so both accepted audits witness distinct replicas.
        assert verdict.all_sites_ok
        assert verdict.distinct_replicas == 2

    def test_replication_auditor_flags_nearby_sites(self):
        """Sites inside two timing radii cannot double-count a copy."""
        fleet = AuditFleet(seed="near", slot_minutes=30.0)
        fleet.add_provider(
            "acme", [("bne", city("brisbane")), ("syd", city("sydney"))]
        )
        fleet.register(
            tenant="t",
            provider="acme",
            datacentre="bne",
            file_id=b"f",
            data=b"y" * 2_000,
            replicas=2,
        )
        auditor = fleet.replication_auditor("acme", b"f")
        verdict = auditor.audit_round(b"f", fleet.provider("acme"), k=6)
        assert verdict.all_sites_ok
        assert verdict.distinct_replicas == 1
        assert verdict.insufficient_separation


class TestSpindleSharing:
    def test_spindle_count_validated(self):
        fleet = AuditFleet(seed="bad-spindles")
        with pytest.raises(ConfigurationError, match="spindles"):
            fleet.add_provider(
                "acme", [("bne", city("brisbane"))], spindles=2
            )

    def test_shared_spindle_backs_multiple_sites(self):
        fleet = replicated_fleet("event", spindles=1)
        provider = fleet.provider("acme")
        assert (
            provider.datacentre("bne").server
            is provider.datacentre("per").server
        )

    def test_dedicated_spindles_never_wait(self):
        report = replicated_fleet("event").run(hours=1.0)
        assert len(report.spindles) == 2
        assert all(not s.shared for s in report.spindles)
        assert all(s.wait_ms == 0.0 for s in report.spindles)
        assert report.n_contention_timeouts == 0
        assert all(e.spindle_wait_ms == 0.0 for e in report.events)

    def test_contended_spindles_report_waits(self):
        fleet, _ = build_contention_fleet(
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=1,
        )
        report = fleet.run(hours=0.005)
        assert len(report.spindles) == 1
        spindle = report.spindles[0]
        assert spindle.shared and len(spindle.sites) == 4
        assert spindle.wait_ms > 0
        assert spindle.n_waited > 0
        assert spindle.peak_wait_ms > 0
        assert 0 < spindle.utilization
        assert report.total_spindle_wait_ms == spindle.wait_ms
        # The waits surface per lane and per event as well.
        assert any(lane.spindle_wait_ms > 0 for lane in report.lanes)
        assert any(e.spindle_wait_ms > 0 for e in report.events)

    def test_contention_induces_false_timeouts(self):
        """Queue waits push honest audits over Delta-t_max."""
        fleet, rotted = build_contention_fleet(
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=1,
        )
        report = fleet.run(hours=0.005)
        assert report.n_contention_timeouts > 0
        flagged = [e for e in report.events if e.contention_timeout]
        assert all(
            "timing" in e.failure_reasons and e.spindle_wait_ms > 0
            for e in flagged
        )
        # An uncontended build of the same scenario shows none.
        dedicated, _ = build_contention_fleet(
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=None,
        )
        assert dedicated.run(hours=0.005).n_contention_timeouts == 0

    def test_spindle_stats_are_per_run_deltas(self):
        """A second run must not re-report the first run's lookups."""
        fleet = replicated_fleet("event")
        first = fleet.run(hours=1.0)
        second = fleet.run(hours=1.0)
        first_requests = sum(s.n_requests for s in first.spindles)
        second_requests = sum(s.n_requests for s in second.spindles)
        assert first_requests > 0
        # Same workload, same horizon: the second run's delta equals
        # the first's instead of the first's total plus its own.
        assert second_requests == first_requests
        assert sum(s.busy_ms for s in second.spindles) == pytest.approx(
            sum(s.busy_ms for s in first.spindles)
        )


class TestWorkStealing:
    def test_idle_lanes_steal_from_the_saturated_home(self):
        fleet, _ = build_contention_fleet(
            strategy=WorkStealingStrategy(),
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=2,
        )
        report = fleet.run(hours=0.005)
        assert report.n_stolen_audits > 0
        stolen = [e for e in report.events if e.stolen]
        # Stolen audits run at a replica site of the hot home lane...
        assert all(e.datacentre == "brisbane" for e in stolen)
        assert all(e.executed_at != "brisbane" for e in stolen)
        # ...and the executing lanes account for them.
        thieves = {e.executed_at for e in stolen}
        for lane in report.lanes:
            if lane.datacentre in thieves:
                assert lane.stolen_audits > 0
        # The hot lane itself never steals (cold files are unreplicated).
        hot = next(l for l in report.lanes if l.datacentre == "brisbane")
        assert hot.stolen_audits == 0

    def test_stealing_updates_shared_task_bookkeeping(self):
        fleet, _ = build_contention_fleet(
            strategy=WorkStealingStrategy(),
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=2,
        )
        fleet.run(hours=0.005)
        stolen_tasks = [t for t in fleet.tasks() if t.stolen_audits]
        assert stolen_tasks
        assert all(t.audits >= t.stolen_audits for t in stolen_tasks)

    @pytest.mark.slow
    def test_stealing_beats_round_robin_on_detection(self):
        """The acceptance-criteria gate, in-suite at test scale."""
        detections = {}
        for name, strategy in (
            ("rr", RoundRobinStrategy()),
            ("ws", WorkStealingStrategy()),
        ):
            fleet, rotted = build_contention_fleet(
                strategy=strategy,
                hot_files=12, k_rounds=6, batch_size=2,
                slot_minutes=0.0025, spindles=2,
            )
            report = fleet.run(hours=0.02)
            caught = [report.detection_hours(f, "acme") for f in rotted]
            assert all(c is not None for c in caught), f"{name} missed rot"
            detections[name] = max(caught)
        assert detections["ws"] < detections["rr"]

    def test_slot_engine_falls_back_to_base_policy(self):
        """Without lane views there is nothing to steal."""
        fleet, _ = build_contention_fleet(
            strategy=WorkStealingStrategy(),
            hot_files=4, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=2, engine="slot",
        )
        report = fleet.run(hours=0.002)
        assert report.n_stolen_audits == 0


class TestEquivalenceAnchor:
    """replicas=1 + dedicated spindles: event stream == slot stream."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            RoundRobinStrategy,
            RiskWeightedStrategy,
            DeadlineStrategy,
            WorkStealingStrategy,
        ],
        ids=lambda f: f().name,
    )
    def test_uncontended_engines_identical(self, strategy_factory):
        def run(engine):
            fleet = AuditFleet(
                seed="anchor",
                strategy=strategy_factory(),
                slot_minutes=30.0,
                batch_size=3,
                engine=engine,
            )
            fleet.add_provider("p", [("bne", city("brisbane"))])
            data_rng = DeterministicRNG("anchor-data")
            for i in range(4):
                fleet.register(
                    tenant="t",
                    provider="p",
                    datacentre="bne",
                    file_id=f"f-{i}".encode(),
                    data=data_rng.fork(str(i)).random_bytes(2_000),
                )
            return fleet.run(hours=4.0)

        slot, event = run("slot"), run("event")
        assert slot.events == event.events
        assert slot.violations == event.violations
        assert slot.lanes == event.lanes
        assert slot.spindles == event.spindles
        assert slot.n_contention_timeouts == event.n_contention_timeouts == 0
        assert slot.n_stolen_audits == event.n_stolen_audits == 0


class TestJSONExport:
    def test_to_dict_round_trips_through_json(self):
        fleet, rotted = build_contention_fleet(
            strategy=WorkStealingStrategy(),
            hot_files=6, k_rounds=4, batch_size=2, slot_minutes=0.0025,
            spindles=2,
        )
        report = fleet.run(hours=0.005)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["engine"] == "event"
        assert payload["strategy"] == "work-stealing"
        assert payload["n_audits"] == report.n_audits
        assert payload["n_stolen_audits"] == report.n_stolen_audits
        assert len(payload["lanes"]) == len(report.lanes)
        assert len(payload["spindles"]) == len(report.spindles)
        assert len(payload["events"]) == report.n_audits
        spindle = payload["spindles"][0]
        assert {"wait_ms", "busy_ms", "utilization", "sites"} <= set(spindle)
        event = payload["events"][0]
        assert {"executed_at", "stolen", "spindle_wait_ms"} <= set(event)

    def test_events_can_be_omitted(self):
        report = replicated_fleet("event").run(hours=0.5)
        assert "events" not in report.to_dict(include_events=False)


class TestRotAtRest:
    def test_rot_is_consistent_across_replicas(self):
        fleet = replicated_fleet("event")
        provider = fleet.provider("acme")
        n_rotted = rot_at_rest(provider, b"f-0", fraction=0.5, seed="s")
        assert n_rotted > 0
        home = provider.datacentre("bne").server.store
        replica = provider.datacentre("per").server.store
        differing = [
            i
            for i in range(home.n_segments(b"f-0"))
            if home.get_segment(b"f-0", i).payload
            != replica.get_segment(b"f-0", i).payload
        ]
        assert differing == []  # both copies rotted identically

    def test_rot_fraction_validated(self):
        fleet = replicated_fleet("event")
        with pytest.raises(ConfigurationError, match="fraction"):
            rot_at_rest(fleet.provider("acme"), b"f-0", fraction=1.5)

    def test_rotted_file_fails_mac_wherever_audited(self):
        fleet = replicated_fleet("event")
        rot_at_rest(fleet.provider("acme"), b"f-0", fraction=1.0)
        report = fleet.run(hours=1.0)
        assert report.detection_hours(b"f-0", "acme") is not None
        violation = next(v for v in report.violations if v.file_id == b"f-0")
        assert "mac" in violation.failure_reasons


class TestLaneAwareRankings:
    """Queue-depth-aware rank_lane, exercised on fabricated loads."""

    def make_task(self, order, *, interval_hours=6.0, last_audit_ms=None,
                  epsilon=0.05, replica_datacentres=()):
        return AuditTask(
            tenant="t",
            provider_name="p",
            file_id=f"f-{order}".encode(),
            datacentre="a",
            interval_hours=interval_hours,
            epsilon=epsilon,
            k_rounds=5,
            order=order,
            registered_ms=0.0,
            last_audit_ms=last_audit_ms,
            replica_datacentres=replica_datacentres,
        )

    def loaded(self, site, queue_depth, *, busy_ms=1000.0, n_dispatched=1):
        return LaneLoad(
            site=site,
            queue_depth=queue_depth,
            frontier_ms=0.0,
            busy_ms=busy_ms,
            n_dispatched=n_dispatched,
        )

    def test_unloaded_lane_matches_fleet_ranking(self):
        tasks = [self.make_task(i) for i in range(3)]
        lane = self.loaded(("p", "a"), 0)
        for strategy in (RiskWeightedStrategy(), DeadlineStrategy()):
            assert strategy.rank_lane(tasks, 0.0, lane, None) == (
                strategy.rank(tasks, 0.0)
            )

    def test_risk_weighted_scores_at_expected_service_time(self):
        # Task 0: low risk, long interval -- its big interval term
        # wins at dispatch time.  Task 1: high risk, short interval --
        # its exposure accrues ~4x faster (higher per-audit detection
        # probability), so two hours of queue backlog flip the order.
        strategy = RiskWeightedStrategy()
        t0 = self.make_task(
            0, interval_hours=30.0, epsilon=0.05, last_audit_ms=0.0
        )
        t1 = self.make_task(
            1, interval_hours=6.0, epsilon=0.50, last_audit_ms=0.0
        )
        now = 0.0
        assert strategy.rank([t0, t1], now)[0] is t0
        backlogged = self.loaded(
            ("p", "a"), 2, busy_ms=MS_PER_HOUR, n_dispatched=1
        )
        assert strategy.rank_lane([t0, t1], now, backlogged, None)[0] is t1

    def test_deadline_parks_hopeless_tasks_behind_salvageable(self):
        strategy = DeadlineStrategy()
        # Hopeless: due long ago with a tiny interval -- by service
        # time it will be overdue by far more than one interval.
        hopeless = self.make_task(0, interval_hours=0.1, last_audit_ms=0.0)
        salvageable = self.make_task(1, interval_hours=6.0, last_audit_ms=0.0)
        now = 1.0 * MS_PER_HOUR
        # Plain EDF puts the overdue task first...
        assert strategy.rank([hopeless, salvageable], now)[0] is hopeless
        # ...but a saturated lane reshuffles it behind the salvageable.
        backlogged = self.loaded(
            ("p", "a"), 2, busy_ms=MS_PER_HOUR, n_dispatched=1
        )
        ranked = strategy.rank_lane(
            [hopeless, salvageable], now, backlogged, None
        )
        assert ranked[0] is salvageable

    def test_work_stealing_requires_imbalance_and_replica(self):
        strategy = WorkStealingStrategy()
        local = self.make_task(0)
        remote_replicated = AuditTask(
            tenant="t", provider_name="p", file_id=b"r-1", datacentre="b",
            interval_hours=6.0, epsilon=0.05, k_rounds=5, order=1,
            registered_ms=0.0, replica_datacentres=("a",),
        )
        remote_plain = AuditTask(
            tenant="t", provider_name="p", file_id=b"r-2", datacentre="b",
            interval_hours=6.0, epsilon=0.05, k_rounds=5, order=2,
            registered_ms=0.0,
        )
        loads = [
            self.loaded(("p", "a"), 0),
            self.loaded(("p", "b"), 3),
        ]
        view = FleetLoadView(
            loads=loads,
            tasks_by_site={
                ("p", "a"): [local],
                ("p", "b"): [remote_replicated, remote_plain],
            },
        )
        ranked = strategy.rank_lane([local], 0.0, loads[0], view)
        # Local work first, then only the replicated sibling task.
        assert ranked == [local, remote_replicated]
        # A lane as backed up as the victim steals nothing.
        busy_thief = self.loaded(("p", "a"), 3)
        assert strategy.rank_lane([local], 0.0, busy_thief, view) == [local]
        # And without views (slot engine) it is the base policy.
        assert strategy.rank_lane([local], 0.0) == [local]

    def test_steal_threshold_validated(self):
        with pytest.raises(ConfigurationError, match="steal_threshold"):
            WorkStealingStrategy(steal_threshold=0)
