"""StorageProvider contract: validate / exists / lookup across backends."""

import pytest

from repro.errors import (
    BlockNotFoundError,
    ConfigurationError,
    StorageUnavailableError,
)
from repro.por.file_format import Segment
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file
from repro.storage.contract import (
    InMemoryStorage,
    MAX_FILE_ID_BYTES,
    OnDiskStorage,
    SimulatedHDDStorage,
    StorageProvider,
)
from repro.storage.server import StorageServer

# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow


@pytest.fixture
def encoded(keys, sample_data):
    return setup_file(sample_data, keys, b"contract-file", TEST_PARAMS)


def all_backends(tmp_path, name="backend"):
    return [
        InMemoryStorage(name),
        OnDiskStorage(name, str(tmp_path / name)),
        SimulatedHDDStorage(name),
    ]


class TestValidate:
    @pytest.mark.parametrize(
        "bad", ["not-bytes", b"", 42, None, b"x" * (MAX_FILE_ID_BYTES + 1)]
    )
    def test_rejects_bad_ids(self, bad):
        backend = InMemoryStorage()
        with pytest.raises(ConfigurationError):
            backend.validate(bad)

    def test_valid_id_round_trips(self):
        backend = InMemoryStorage()
        assert backend.validate(b"fine") == b"fine"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            InMemoryStorage("")


class TestContractAcrossBackends:
    def test_exists_and_lookup(self, encoded, tmp_path):
        for backend in all_backends(tmp_path):
            assert not backend.exists(encoded.file_id)
            backend.put_file(encoded)
            assert backend.exists(encoded.file_id)
            assert backend.exists(encoded.file_id, 0)
            assert not backend.exists(encoded.file_id, encoded.n_segments)
            assert not backend.exists(b"ghost")
            result = backend.lookup(encoded.file_id, 3)
            assert result.segment == encoded.segments[3]
            assert result.served_by == backend.name
            assert result.elapsed_ms >= 0.0
            assert backend.n_lookups == 1

    def test_missing_file_and_segment_raise(self, encoded, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put_file(encoded)
            with pytest.raises(BlockNotFoundError):
                backend.lookup(b"ghost", 0)
            with pytest.raises(BlockNotFoundError):
                backend.lookup(encoded.file_id, encoded.n_segments)

    def test_duplicate_put_rejected(self, encoded, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put_file(encoded)
            with pytest.raises(ConfigurationError):
                backend.put_file(encoded)

    def test_delete_file(self, encoded, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put_file(encoded)
            backend.delete_file(encoded.file_id)
            assert not backend.exists(encoded.file_id)
            assert backend.file_ids() == []
            with pytest.raises(BlockNotFoundError):
                backend.delete_file(encoded.file_id)

    def test_file_ids(self, encoded, tmp_path):
        for backend in all_backends(tmp_path):
            backend.put_file(encoded)
            assert backend.file_ids() == [encoded.file_id]

    def test_handle_request_serve_shape(self, encoded, tmp_path):
        """The CloudProvider duck type the audit loop relies on."""
        for backend in all_backends(tmp_path):
            backend.put_file(encoded)
            serve = backend.handle_request(encoded.file_id, 1)
            assert serve.segment == encoded.segments[1]
            assert serve.elapsed_ms >= 0.0
            with pytest.raises(ConfigurationError):
                backend.handle_request("not-bytes", 0)


class TestInMemoryStorage:
    def test_lookup_free_and_memoized(self, encoded):
        backend = InMemoryStorage()
        backend.put_file(encoded)
        first = backend.lookup(encoded.file_id, 0)
        assert first.elapsed_ms == 0.0
        assert backend.lookup(encoded.file_id, 0) is first

    def test_overwrite_invalidates_memo(self, encoded):
        backend = InMemoryStorage()
        backend.put_file(encoded)
        original = backend.lookup(encoded.file_id, 0)
        tampered = Segment(
            index=0,
            payload=bytes(len(original.segment.payload)),
            tag=original.segment.tag,
        )
        backend.overwrite_segment(encoded.file_id, tampered)
        assert backend.lookup(encoded.file_id, 0).segment == tampered

    def test_overwrite_unknown_rejected(self, encoded):
        backend = InMemoryStorage()
        with pytest.raises(BlockNotFoundError):
            backend.overwrite_segment(encoded.file_id, encoded.segments[0])


class TestOnDiskStorage:
    def test_survives_reopen(self, encoded, tmp_path):
        root = str(tmp_path / "persist")
        OnDiskStorage("writer", root).put_file(encoded)
        reader = OnDiskStorage("reader", root)
        assert reader.exists(encoded.file_id)
        assert reader.file_ids() == [encoded.file_id]
        result = reader.lookup(encoded.file_id, 2)
        assert result.segment == encoded.segments[2]

    def test_corrupt_container_fails_closed(self, encoded, tmp_path):
        root = tmp_path / "corrupt"
        backend = OnDiskStorage("disk", str(root))
        backend.put_file(encoded)
        path = root / (encoded.file_id.hex() + ".gpf")
        path.write_bytes(b"\x00\x01garbage")
        fresh = OnDiskStorage("disk", str(root))
        with pytest.raises(StorageUnavailableError):
            fresh.lookup(encoded.file_id, 0)

    def test_foreign_files_ignored(self, encoded, tmp_path):
        root = tmp_path / "mixed"
        backend = OnDiskStorage("disk", str(root))
        backend.put_file(encoded)
        (root / "README.txt").write_text("not a container")
        (root / "zz.gpf").write_bytes(b"")  # non-hex stem
        assert backend.file_ids() == [encoded.file_id]


class TestSimulatedHDDStorage:
    def test_charges_server_disk_time(self, encoded):
        backend = SimulatedHDDStorage("hdd")
        backend.put_file(encoded)
        reference = StorageServer()
        reference.store.put_file(encoded)
        expected = reference.lookup(encoded.file_id, 0)
        result = backend.lookup(encoded.file_id, 0)
        assert result.elapsed_ms == expected.elapsed_ms
        assert result.elapsed_ms > 0.0


class TestAuditOverContract:
    def test_full_audit_against_in_memory_backend(self):
        """A registry-selected RAM backend can serve a whole audit."""
        from tests.conftest import build_session

        session, file_id, _ = build_session("contract-audit")
        container = session.provider.home_of(file_id).server.store.file_meta(
            file_id
        )
        backend = InMemoryStorage("ram")
        backend.put_file(container)
        outcome = session.tpa.audit(
            file_id, session.verifier, backend, k=5
        )
        assert outcome.verdict.accepted

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            StorageProvider("abstract")
