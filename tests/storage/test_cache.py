"""LRU cache behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.cache import LRUCache


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = LRUCache(100)
        assert cache.get("k") is None
        cache.put("k", b"value")
        assert cache.get("k") == b"value"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_hit_rate(self):
        cache = LRUCache(100)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("x")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate(self):
        assert LRUCache(10).hit_rate == 0.0

    def test_overwrite_updates_bytes(self):
        cache = LRUCache(100)
        cache.put("k", b"12345")
        cache.put("k", b"12")
        assert cache.used_bytes == 2
        assert cache.n_entries == 1


class TestAdversarialEdges:
    """The shapes a prefetching adversary would actually hit."""

    def test_entry_larger_than_capacity_not_cached(self):
        cache = LRUCache(4)
        cache.put("big", b"12345")
        assert cache.get("big") is None
        assert cache.n_entries == 0
        assert cache.used_bytes == 0

    def test_oversized_entry_does_not_evict_existing(self):
        cache = LRUCache(4)
        cache.put("keep", b"1234")
        cache.put("big", b"12345")  # rejected, must not disturb "keep"
        assert cache.get("keep") == b"1234"
        assert cache.used_bytes == 4

    def test_oversized_put_evicts_stale_entry(self):
        # Regression pin: putting a value larger than capacity used to
        # return early and leave the key's *previous* value cached, so
        # the next get served stale data.
        cache = LRUCache(4)
        cache.put("k", b"old")
        cache.put("k", b"too-big")  # rejected -- but "old" must go too
        assert cache.get("k") is None
        assert cache.n_entries == 0
        assert cache.used_bytes == 0

    def test_oversized_put_at_zero_capacity_evicts_stale_empty(self):
        cache = LRUCache(0)
        cache.put("k", b"")         # the only value a 0-byte budget fits
        cache.put("k", b"x")        # rejected, must not resurrect b""
        assert cache.get("k") is None
        assert cache.n_entries == 0

    def test_zero_capacity_hit_rate_accounting(self):
        cache = LRUCache(0)
        assert cache.hit_rate == 0.0
        cache.put("k", b"v")        # rejected: nothing cached
        assert cache.get("k") is None
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.hit_rate == 0.0
        cache.put("empty", b"")
        assert cache.get("empty") == b""
        assert cache.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_clear_resets(self):
        cache = LRUCache(0)
        cache.put("empty", b"")
        cache.get("empty")
        cache.get("ghost")
        cache.clear()
        assert cache.n_entries == 0
        assert cache.used_bytes == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate == 0.0

    def test_exact_capacity_entry_is_cached(self):
        cache = LRUCache(4)
        cache.put("fit", b"1234")
        assert cache.get("fit") == b"1234"
        assert cache.used_bytes == 4

    def test_zero_capacity_caches_nothing(self):
        cache = LRUCache(0)
        cache.put("k", b"v")
        assert cache.get("k") is None
        assert cache.n_entries == 0
        # Only the empty value fits a zero-byte budget.
        cache.put("empty", b"")
        assert cache.get("empty") == b""

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(-1)

    def test_eviction_order_under_repeated_get_refreshes(self):
        cache = LRUCache(9)
        cache.put("a", b"111")
        cache.put("b", b"222")
        cache.put("c", b"333")
        # Refresh a twice and c once: eviction order must become b, a.
        cache.get("a")
        cache.get("c")
        cache.get("a")
        cache.put("d", b"444")  # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == b"111"
        cache.put("e", b"555")  # evicts c (a was refreshed again above)
        assert cache.get("c") is None
        assert cache.get("a") == b"111"
        assert cache.get("e") == b"555"

    def test_put_refresh_also_updates_recency(self):
        cache = LRUCache(6)
        cache.put("a", b"111")
        cache.put("b", b"222")
        cache.put("a", b"111")  # re-put refreshes a
        cache.put("c", b"333")  # so b is the LRU victim
        assert cache.get("b") is None
        assert cache.get("a") == b"111"

    def test_hit_rate_accounting_through_eviction(self):
        cache = LRUCache(6)
        cache.put("a", b"111")
        cache.put("b", b"222")
        assert cache.get("a") == b"111"      # hit
        cache.put("c", b"333")               # evicts b
        assert cache.get("b") is None        # miss
        assert cache.get("c") == b"333"      # hit
        assert cache.get("ghost") is None    # miss
        assert cache.hits == 2
        assert cache.misses == 2
        assert cache.hit_rate == pytest.approx(0.5)
        # Rejected oversized puts must not count as lookups.
        cache.put("big", b"1234567")
        assert cache.hits + cache.misses == 4

    def test_clear_resets_accounting(self):
        cache = LRUCache(10)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("x")
        cache.clear()
        assert cache.hit_rate == 0.0
        assert cache.used_bytes == 0
        assert cache.n_entries == 0
        assert cache.get("a") is None


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(10)
        cache.put("a", b"11111")
        cache.put("b", b"22222")
        cache.get("a")  # refresh a
        cache.put("c", b"33333")  # evicts b (LRU)
        assert cache.get("a") == b"11111"
        assert cache.get("b") is None
        assert cache.get("c") == b"33333"

    def test_capacity_respected(self):
        cache = LRUCache(10)
        for i in range(10):
            cache.put(i, bytes(3))
        assert cache.used_bytes <= 10

    def test_oversize_object_not_cached(self):
        cache = LRUCache(4)
        cache.put("big", b"12345")
        assert cache.get("big") is None
        assert cache.used_bytes == 0

    def test_zero_capacity(self):
        cache = LRUCache(0)
        cache.put("k", b"")
        assert cache.used_bytes == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(-1)


class TestClear:
    def test_clear_resets_everything(self):
        cache = LRUCache(100)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("x")
        cache.clear()
        assert cache.n_entries == 0
        assert cache.used_bytes == 0
        assert cache.hits == 0
        assert cache.misses == 0
