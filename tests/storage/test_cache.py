"""LRU cache behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.cache import LRUCache


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = LRUCache(100)
        assert cache.get("k") is None
        cache.put("k", b"value")
        assert cache.get("k") == b"value"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_hit_rate(self):
        cache = LRUCache(100)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("x")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate(self):
        assert LRUCache(10).hit_rate == 0.0

    def test_overwrite_updates_bytes(self):
        cache = LRUCache(100)
        cache.put("k", b"12345")
        cache.put("k", b"12")
        assert cache.used_bytes == 2
        assert cache.n_entries == 1


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(10)
        cache.put("a", b"11111")
        cache.put("b", b"22222")
        cache.get("a")  # refresh a
        cache.put("c", b"33333")  # evicts b (LRU)
        assert cache.get("a") == b"11111"
        assert cache.get("b") is None
        assert cache.get("c") == b"33333"

    def test_capacity_respected(self):
        cache = LRUCache(10)
        for i in range(10):
            cache.put(i, bytes(3))
        assert cache.used_bytes <= 10

    def test_oversize_object_not_cached(self):
        cache = LRUCache(4)
        cache.put("big", b"12345")
        assert cache.get("big") is None
        assert cache.used_bytes == 0

    def test_zero_capacity(self):
        cache = LRUCache(0)
        cache.put("k", b"")
        assert cache.used_bytes == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(-1)


class TestClear:
    def test_clear_resets_everything(self):
        cache = LRUCache(100)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("x")
        cache.clear()
        assert cache.n_entries == 0
        assert cache.used_bytes == 0
        assert cache.hits == 0
        assert cache.misses == 0
