"""HDD latency model against the paper's Table I and worked examples."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.storage.hdd import (
    DISK_CATALOGUE,
    HDDModel,
    HDDSpec,
    HITACHI_DK23DA,
    IBM_36Z15,
    IBM_40GNX,
    IBM_73LZX,
    WD_2500JD,
    fastest_disk,
    typical_disk,
)


class TestCatalogue:
    def test_five_disks(self):
        assert len(DISK_CATALOGUE) == 5

    def test_table1_values(self):
        assert IBM_36Z15.rpm == 15_000 and IBM_36Z15.avg_seek_ms == 3.4
        assert IBM_73LZX.rpm == 10_000 and IBM_73LZX.avg_rotate_ms == 3.0
        assert WD_2500JD.rpm == 7_200 and WD_2500JD.avg_seek_ms == 8.9
        assert IBM_40GNX.rpm == 5_400 and IBM_40GNX.avg_seek_ms == 12.0
        assert HITACHI_DK23DA.rpm == 4_200 and HITACHI_DK23DA.avg_rotate_ms == 7.1

    def test_higher_rpm_lower_latency(self):
        """Table I's headline: RPM up -> look-up latency down."""
        lookups = [HDDModel(spec).lookup_ms(512) for spec in DISK_CATALOGUE]
        assert lookups == sorted(lookups)

    def test_helpers(self):
        assert fastest_disk() is IBM_36Z15
        assert typical_disk() is WD_2500JD


class TestPaperArithmetic:
    def test_wd2500jd_transfer_term(self):
        """512*8 / 748e3 = 5.48e-3 ms (Section V-D)."""
        model = HDDModel(WD_2500JD)
        assert model.transfer_ms(512) == pytest.approx(5.48e-3, rel=0.01)

    def test_wd2500jd_lookup(self):
        """The paper's honest-provider look-up: 13.1055 ms."""
        assert HDDModel(WD_2500JD).lookup_ms(512) == pytest.approx(13.1055, abs=1e-3)

    def test_ibm36z15_lookup(self):
        """The paper's adversary look-up: 5.406 ms."""
        assert HDDModel(IBM_36Z15).lookup_ms(512) == pytest.approx(5.406, abs=1e-2)

    def test_rotation_time_from_rpm(self):
        # 7200 RPM -> 8.33 ms per revolution; the datasheet's average
        # rotational latency is half of that.
        assert WD_2500JD.full_rotation_ms == pytest.approx(8.333, abs=0.01)
        assert WD_2500JD.avg_rotate_ms == pytest.approx(
            WD_2500JD.full_rotation_ms / 2.0, rel=0.01
        )


class TestModel:
    def test_transfer_scales_with_bytes(self):
        model = HDDModel(WD_2500JD)
        assert model.transfer_ms(1024) == pytest.approx(2 * model.transfer_ms(512))

    def test_rejects_negative_bytes(self):
        with pytest.raises(ConfigurationError):
            HDDModel(WD_2500JD).transfer_ms(-1)

    def test_sequential_read_cheaper_per_byte(self):
        model = HDDModel(WD_2500JD)
        random_cost = 10 * model.lookup_ms(4096)
        sequential_cost = model.sequential_read_ms(10 * 4096)
        assert sequential_cost < random_cost

    def test_stochastic_lookup_mean_near_average(self):
        model = HDDModel(WD_2500JD)
        rng = DeterministicRNG("hdd")
        samples = [model.sample_lookup_ms(rng, 512) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.lookup_ms(512), rel=0.05)

    def test_stochastic_lookup_positive(self):
        model = HDDModel(IBM_36Z15)
        rng = DeterministicRNG("hdd2")
        assert all(model.sample_lookup_ms(rng) > 0 for _ in range(100))

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            HDDSpec("bad", 0, 1.0, 1.0, 1.0)
