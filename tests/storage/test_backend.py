"""Object store semantics."""

import pytest

from repro.errors import BlockNotFoundError, ConfigurationError
from repro.por.file_format import Segment
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file
from repro.storage.backend import ObjectStore


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def store_with_file(keys, sample_data):
    store = ObjectStore()
    encoded = setup_file(sample_data, keys, b"backend-test", TEST_PARAMS)
    store.put_file(encoded)
    return store, encoded


class TestIngest:
    def test_put_and_query(self, store_with_file):
        store, encoded = store_with_file
        assert store.has_file(b"backend-test")
        assert store.n_segments(b"backend-test") == encoded.n_segments
        assert store.file_ids() == [b"backend-test"]

    def test_duplicate_rejected(self, store_with_file, keys, sample_data):
        store, encoded = store_with_file
        with pytest.raises(ConfigurationError):
            store.put_file(encoded)

    def test_delete(self, store_with_file):
        store, _ = store_with_file
        store.delete_file(b"backend-test")
        assert not store.has_file(b"backend-test")

    def test_delete_missing(self):
        with pytest.raises(BlockNotFoundError):
            ObjectStore().delete_file(b"ghost")

    def test_file_meta(self, store_with_file):
        store, encoded = store_with_file
        assert store.file_meta(b"backend-test").original_length == encoded.original_length


class TestAccess:
    def test_get_segment(self, store_with_file):
        store, encoded = store_with_file
        assert store.get_segment(b"backend-test", 0) == encoded.segments[0]

    def test_missing_file(self):
        with pytest.raises(BlockNotFoundError):
            ObjectStore().get_segment(b"ghost", 0)

    def test_missing_segment(self, store_with_file):
        store, encoded = store_with_file
        with pytest.raises(BlockNotFoundError):
            store.get_segment(b"backend-test", encoded.n_segments)

    def test_segment_size(self, store_with_file):
        store, _ = store_with_file
        expected = TEST_PARAMS.segment_bytes + TEST_PARAMS.tag_bytes
        assert store.segment_size_bytes(b"backend-test") == expected


class TestMutation:
    def test_overwrite_segment(self, store_with_file):
        store, _ = store_with_file
        original = store.get_segment(b"backend-test", 3)
        forged = Segment(index=3, payload=bytes(len(original.payload)), tag=original.tag)
        store.overwrite_segment(b"backend-test", forged)
        assert store.get_segment(b"backend-test", 3) == forged

    def test_overwrite_missing_rejected(self, store_with_file):
        store, encoded = store_with_file
        ghost = Segment(index=encoded.n_segments, payload=b"x" * 12, tag=b"t")
        with pytest.raises(BlockNotFoundError):
            store.overwrite_segment(b"backend-test", ghost)

    def test_drop_segment(self, store_with_file):
        store, _ = store_with_file
        store.drop_segment(b"backend-test", 5)
        with pytest.raises(BlockNotFoundError):
            store.get_segment(b"backend-test", 5)

    def test_drop_twice_rejected(self, store_with_file):
        store, _ = store_with_file
        store.drop_segment(b"backend-test", 5)
        with pytest.raises(BlockNotFoundError):
            store.drop_segment(b"backend-test", 5)
