"""Storage server: lookup timing and caching."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file
from repro.storage.hdd import HDDModel, IBM_36Z15, WD_2500JD
from repro.storage.server import StorageServer


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def loaded_server(keys, sample_data):
    server = StorageServer(WD_2500JD)
    encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
    server.store.put_file(encoded)
    return server, encoded


class TestDeterministicLookup:
    def test_charges_datasheet_average(self, loaded_server):
        server, _ = loaded_server
        result = server.lookup(b"srv", 0)
        expected = HDDModel(WD_2500JD).lookup_ms(result.segment.size_bytes)
        assert result.elapsed_ms == pytest.approx(expected)
        assert not result.cache_hit

    def test_fast_disk_is_faster(self, keys, sample_data):
        slow = StorageServer(WD_2500JD)
        fast = StorageServer(IBM_36Z15)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        slow.store.put_file(encoded)
        fast.store.put_file(encoded)
        assert fast.lookup(b"srv", 0).elapsed_ms < slow.lookup(b"srv", 0).elapsed_ms

    def test_queue_delay_added(self, keys, sample_data):
        server = StorageServer(WD_2500JD, queue_delay_ms=1.5)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        base = HDDModel(WD_2500JD).lookup_ms(
            encoded.segments[0].size_bytes
        )
        assert server.lookup(b"srv", 0).elapsed_ms == pytest.approx(base + 1.5)

    def test_statistics(self, loaded_server):
        server, _ = loaded_server
        for i in range(5):
            server.lookup(b"srv", i)
        assert server.n_lookups == 5
        assert server.mean_disk_ms > 0


class TestStochasticLookup:
    def test_varies_and_averages_out(self, keys, sample_data):
        server = StorageServer(
            WD_2500JD, deterministic=False, rng=DeterministicRNG("disk")
        )
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        samples = [server.lookup(b"srv", i % encoded.n_segments).elapsed_ms for i in range(300)]
        assert len(set(samples)) > 10
        mean = sum(samples) / len(samples)
        expected = HDDModel(WD_2500JD).lookup_ms(encoded.segments[0].size_bytes)
        assert mean == pytest.approx(expected, rel=0.15)


class TestCaching:
    def test_cache_hit_skips_disk(self, keys, sample_data):
        server = StorageServer(WD_2500JD, cache_bytes=10**6)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        first = server.lookup(b"srv", 0)
        second = server.lookup(b"srv", 0)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.elapsed_ms < first.elapsed_ms
        assert second.segment == first.segment

    def test_prefetch(self, keys, sample_data):
        server = StorageServer(WD_2500JD, cache_bytes=10**6)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        warmed = server.prefetch(b"srv", [0, 1, 2, 999999])
        assert warmed == 3
        assert server.lookup(b"srv", 1).cache_hit

    def test_small_cache_bounded_hit_rate(self, keys, sample_data):
        # Cache a tenth of the file; uniform random lookups should hit
        # roughly a tenth of the time.
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        segment_bytes = encoded.segments[0].wire_bytes()
        cache_bytes = len(segment_bytes) * (encoded.n_segments // 10)
        server = StorageServer(WD_2500JD, cache_bytes=cache_bytes)
        server.store.put_file(encoded)
        rng = DeterministicRNG("load")
        for _ in range(2000):
            server.lookup(b"srv", rng.randrange(encoded.n_segments))
        assert server.cache.hit_rate < 0.2


class TestSharedSpindleMode:
    """The queued shared-resource mode (see the module design note)."""

    def make_shared(self, keys, sample_data, n_sites=2):
        """``n_sites`` servers sharing one spindle, one file each."""
        from repro.netsim.resources import SpindleQueue

        spindle = SpindleQueue("shared-0")
        servers = []
        for i in range(n_sites):
            server = StorageServer(WD_2500JD, spindle=spindle)
            encoded = setup_file(sample_data, keys, f"f{i}".encode(), TEST_PARAMS)
            server.store.put_file(encoded)
            servers.append(server)
        return spindle, servers

    def test_unbound_clock_serves_unqueued(self, keys, sample_data):
        """Queued mode needs arrival times; without a clock, legacy."""
        spindle, (server, _) = self.make_shared(keys, sample_data)
        result = server.lookup(b"f0", 0)
        assert result.wait_ms == 0.0
        assert spindle.n_requests == 0

    def test_dedicated_requester_never_waits(self, keys, sample_data):
        from repro.netsim.clock import SimClock

        spindle, (server, _) = self.make_shared(keys, sample_data)
        clock = SimClock()
        with server.timed_with(clock):
            for i in range(4):
                result = server.lookup(b"f0", i)
                clock.advance(result.elapsed_ms)  # the protocol engine
                assert result.wait_ms == 0.0
        assert spindle.n_requests == 4
        assert spindle.wait_ms == 0.0

    def test_contending_requesters_queue(self, keys, sample_data):
        """A lane behind the frontier pays the wait in elapsed_ms."""
        from repro.netsim.clock import SimClock

        spindle, (a, b) = self.make_shared(keys, sample_data)
        fast, slow = SimClock(), SimClock()
        with a.timed_with(fast):
            first = a.lookup(b"f0", 0)
            fast.advance(first.elapsed_ms)
        with b.timed_with(slow):  # still at t=0: queues behind a
            second = b.lookup(b"f1", 0)
        assert second.wait_ms == pytest.approx(first.elapsed_ms)
        assert second.elapsed_ms == pytest.approx(
            second.wait_ms + HDDModel(WD_2500JD).lookup_ms(second.segment.size_bytes)
        )
        assert b.total_wait_ms == second.wait_ms

    def test_wait_classified_on_lane_clock(self, keys, sample_data):
        from repro.netsim.lanes import LaneClock

        spindle, (a, b) = self.make_shared(keys, sample_data)
        spindle.acquire(0.0, 100.0)  # preload the frontier
        lane = LaneClock("lane")
        with b.timed_with(lane):
            result = b.lookup(b"f1", 0)
        assert result.wait_ms == pytest.approx(100.0)
        assert lane.waiting_ms == pytest.approx(100.0)

    def test_serve_window_splits_wait_from_disk(self, keys, sample_data):
        from repro.netsim.clock import SimClock

        spindle, (a, b) = self.make_shared(keys, sample_data)
        spindle.acquire(0.0, 50.0)
        clock = SimClock()
        with b.timed_with(clock), b.serve_window() as window:
            b.lookup(b"f1", 0)
        assert window.lookups == 1
        assert window.wait_ms == pytest.approx(50.0)
        assert window.disk_ms > 0
        assert window.serve_ms == pytest.approx(window.wait_ms + window.disk_ms)

    def test_lookup_batch_pays_one_head_of_line_wait(self, keys, sample_data):
        from repro.netsim.clock import SimClock

        spindle, (a, b) = self.make_shared(keys, sample_data)
        spindle.acquire(0.0, 40.0)
        clock = SimClock()
        with b.timed_with(clock):
            results = b.lookup_batch(b"f1", [0, 1, 2])
        assert [r.wait_ms for r in results] == pytest.approx([40.0, 0.0, 0.0])
        assert all(not r.cache_hit for r in results)
        assert [r.segment.index for r in results] == [0, 1, 2]

    def test_lookup_batch_unqueued_falls_back_to_loop(self, keys, sample_data):
        server = StorageServer(WD_2500JD)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        results = server.lookup_batch(b"srv", [0, 1])
        assert len(results) == 2
        assert all(r.wait_ms == 0.0 for r in results)

    def test_lookup_batch_answers_cache_hits_from_ram(self, keys, sample_data):
        from repro.netsim.clock import SimClock
        from repro.netsim.resources import SpindleQueue

        server = StorageServer(
            WD_2500JD, cache_bytes=10**6, spindle=SpindleQueue("s")
        )
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        clock = SimClock()
        with server.timed_with(clock):
            server.lookup(b"srv", 0)
            results = server.lookup_batch(b"srv", [0, 1])
        assert results[0].cache_hit and results[0].wait_ms == 0.0
        assert not results[1].cache_hit
