"""Storage server: lookup timing and caching."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import setup_file
from repro.storage.hdd import HDDModel, IBM_36Z15, WD_2500JD
from repro.storage.server import StorageServer


# Every test here pays a full POR setup in its fixtures: slow lane.
pytestmark = pytest.mark.slow

@pytest.fixture
def loaded_server(keys, sample_data):
    server = StorageServer(WD_2500JD)
    encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
    server.store.put_file(encoded)
    return server, encoded


class TestDeterministicLookup:
    def test_charges_datasheet_average(self, loaded_server):
        server, _ = loaded_server
        result = server.lookup(b"srv", 0)
        expected = HDDModel(WD_2500JD).lookup_ms(result.segment.size_bytes)
        assert result.elapsed_ms == pytest.approx(expected)
        assert not result.cache_hit

    def test_fast_disk_is_faster(self, keys, sample_data):
        slow = StorageServer(WD_2500JD)
        fast = StorageServer(IBM_36Z15)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        slow.store.put_file(encoded)
        fast.store.put_file(encoded)
        assert fast.lookup(b"srv", 0).elapsed_ms < slow.lookup(b"srv", 0).elapsed_ms

    def test_queue_delay_added(self, keys, sample_data):
        server = StorageServer(WD_2500JD, queue_delay_ms=1.5)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        base = HDDModel(WD_2500JD).lookup_ms(
            encoded.segments[0].size_bytes
        )
        assert server.lookup(b"srv", 0).elapsed_ms == pytest.approx(base + 1.5)

    def test_statistics(self, loaded_server):
        server, _ = loaded_server
        for i in range(5):
            server.lookup(b"srv", i)
        assert server.n_lookups == 5
        assert server.mean_disk_ms > 0


class TestStochasticLookup:
    def test_varies_and_averages_out(self, keys, sample_data):
        server = StorageServer(
            WD_2500JD, deterministic=False, rng=DeterministicRNG("disk")
        )
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        samples = [server.lookup(b"srv", i % encoded.n_segments).elapsed_ms for i in range(300)]
        assert len(set(samples)) > 10
        mean = sum(samples) / len(samples)
        expected = HDDModel(WD_2500JD).lookup_ms(encoded.segments[0].size_bytes)
        assert mean == pytest.approx(expected, rel=0.15)


class TestCaching:
    def test_cache_hit_skips_disk(self, keys, sample_data):
        server = StorageServer(WD_2500JD, cache_bytes=10**6)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        first = server.lookup(b"srv", 0)
        second = server.lookup(b"srv", 0)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.elapsed_ms < first.elapsed_ms
        assert second.segment == first.segment

    def test_prefetch(self, keys, sample_data):
        server = StorageServer(WD_2500JD, cache_bytes=10**6)
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        server.store.put_file(encoded)
        warmed = server.prefetch(b"srv", [0, 1, 2, 999999])
        assert warmed == 3
        assert server.lookup(b"srv", 1).cache_hit

    def test_small_cache_bounded_hit_rate(self, keys, sample_data):
        # Cache a tenth of the file; uniform random lookups should hit
        # roughly a tenth of the time.
        encoded = setup_file(sample_data, keys, b"srv", TEST_PARAMS)
        segment_bytes = encoded.segments[0].wire_bytes()
        cache_bytes = len(segment_bytes) * (encoded.n_segments // 10)
        server = StorageServer(WD_2500JD, cache_bytes=cache_bytes)
        server.store.put_file(encoded)
        rng = DeterministicRNG("load")
        for _ in range(2000):
            server.lookup(b"srv", rng.randrange(encoded.n_segments))
        assert server.cache.hit_rate < 0.2
