"""Benches for the paper's named extensions.

* Verifier triangulation (Section V-C's GPS-spoof countermeasure):
  detection radius and the added-delay evasion the paper warns about.
* Replication diversity (the Benson et al. scenario): replicas
  witnessed vs replicas actually kept.
* Dynamic GeoProof (Section IV): budget growth with file size and the
  audit cost next to the static scheme.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.core.dynamic_session import DynamicGeoProofSession, dynamic_rtt_budget
from repro.core.triangulation import (
    LandmarkTriangulator,
    spoof_detection_radius_km,
)
from repro.crypto.rng import DeterministicRNG
from repro.geo.datasets import city
from repro.geo.regions import CircularRegion


def test_triangulation_detection_radius(benchmark):
    """How far can a spoofed GPS fix drift before landmarks catch it?"""

    def sweep():
        rows = []
        configurations = {
            "3 AU landmarks": {
                "sydney": city("sydney"),
                "melbourne": city("melbourne"),
                "perth": city("perth"),
            },
            "2 east-coast landmarks": {
                "sydney": city("sydney"),
                "melbourne": city("melbourne"),
            },
            "5 landmarks (+SG, NZ)": {
                "sydney": city("sydney"),
                "melbourne": city("melbourne"),
                "perth": city("perth"),
                "singapore": city("singapore"),
                "auckland": city("auckland"),
            },
        }
        for label, landmarks in configurations.items():
            triangulator = LandmarkTriangulator(landmarks)
            radius_km = spoof_detection_radius_km(triangulator, city("brisbane"))
            rows.append((label, radius_km))
        return rows

    rows = benchmark(sweep)
    record_table(
        "triangulation",
        format_table(
            ["landmark set", "spoof detection radius km"],
            [list(r) for r in rows],
            title="Extension -- triangulation of V (Section V-C)",
            decimals=0,
        ),
    )
    radii = dict(rows)
    # More landmarks -> tighter (or equal) detection radius.
    assert radii["5 landmarks (+SG, NZ)"] <= radii["2 east-coast landmarks"]
    # All finite: gross spoofs are always caught.
    assert all(radius < float("inf") for radius in radii.values())


def test_triangulation_delay_evasion(benchmark):
    """The paper's caveat: provider-added delay loosens the bounds."""
    triangulator = LandmarkTriangulator(
        {
            "sydney": city("sydney"),
            "melbourne": city("melbourne"),
            "perth": city("perth"),
        }
    )

    def sweep():
        rows = []
        for delay in (0.0, 20.0, 50.0, 100.0):
            result = triangulator.verify_device(
                city("singapore"),
                city("brisbane"),
                adversary_added_delay_ms=delay,
            )
            rows.append((delay, result.consistent))
        return rows

    rows = benchmark(sweep)
    record_table(
        "triangulation-delay",
        format_table(
            ["added delay ms", "Singapore spoof escapes"],
            [list(r) for r in rows],
            title="Extension -- added-delay evasion of triangulation",
        ),
    )
    by_delay_ms = dict(rows)
    assert by_delay_ms[0.0] is False  # caught with honest paths
    assert by_delay_ms[100.0] is True  # the paper's warned-about evasion


def test_replication_witness_count(benchmark):
    """Replicas witnessed == replicas actually kept (1, 2, 3)."""
    from benchmarks._support import build_replication_deployment

    def sweep():
        rows = []
        for kept in (["sydney"], ["sydney", "perth"], ["sydney", "perth", "singapore"]):
            provider, auditor = build_replication_deployment(kept)
            verdict = auditor.audit_round(b"f", provider, k=10)
            rows.append((len(kept), verdict.distinct_replicas))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "replication",
        format_table(
            ["replicas kept", "replicas witnessed"],
            [list(r) for r in rows],
            title="Extension -- replication diversity audit",
        ),
    )
    for kept, witnessed in rows:
        assert witnessed == kept


def test_dynamic_budget_scaling(benchmark):
    """Dynamic rounds pay a log2(n) Merkle-path transfer term."""

    def sweep():
        return [
            (n, dynamic_rtt_budget(n, 4096).rtt_max_ms)
            for n in (2**8, 2**12, 2**16, 2**20, 2**24)
        ]

    rows = benchmark(sweep)
    record_table(
        "dynamic-budget",
        format_table(
            ["blocks n", "Delta-t_max ms"],
            [list(r) for r in rows],
            title="Extension -- dynamic GeoProof budget vs file size",
            decimals=4,
        ),
    )
    budgets = [budget for _, budget in rows]
    assert budgets == sorted(budgets)
    # Logarithmic: equal increments per 2^4 step.
    steps = [b2 - b1 for b1, b2 in zip(budgets[1:], budgets[2:])]
    for step in steps[1:]:
        assert step == pytest.approx(steps[0], rel=0.05)


def test_dynamic_audit_end_to_end(benchmark):
    """A full dynamic audit round (20 challenges + updates)."""
    brisbane = city("brisbane")
    session = DynamicGeoProofSession(
        datacentre_location=brisbane,
        region=CircularRegion(brisbane, 100.0),
        block_bytes=512,
        seed="dyn-bench",
    )
    session.outsource(b"f", DeterministicRNG("dyn-bench").random_bytes(60_000))

    def audit_with_updates():
        session.update_block(1, b"u" * 512)
        _, verdict = session.run_audit(20)
        return verdict

    verdict = benchmark(audit_with_updates)
    assert verdict.accepted
