"""Table II: LAN latency within QUT -- all placements < 1 ms.

The paper pinged ten machines 0-45 km apart inside the university
network and measured < 1 ms everywhere; the simulated LAN must land in
the same envelope.
"""

from benchmarks.conftest import record_table
from repro.analysis.experiments import table2_lan_latency
from repro.analysis.reporting import format_table


def test_table2_reproduction(benchmark):
    rows = benchmark(table2_lan_latency)

    rendered = format_table(
        ["machine", "location", "distance km", "RTT ms", "paper"],
        [
            [r.machine, r.location_label, r.distance_km, r.rtt_ms, "< 1 ms"]
            for r in rows
        ],
        title="Table II -- LAN latency within QUT (simulated)",
        decimals=4,
    )
    record_table("table2", rendered)

    # Shape: the paper's envelope -- every placement under 1 ms.
    assert all(r.under_1ms for r in rows)
    # Distance still matters inside the envelope: the 45 km placement
    # is the slowest.
    slowest = max(rows, key=lambda r: r.rtt_ms)
    assert slowest.distance_km == 45.0


def test_table2_worst_case_with_load(benchmark):
    """Even heavy jitter draws keep the 45 km placement under ~1 ms --
    the margin the paper's Delta-t_VP = 3 ms budget allows is wide."""
    from repro.crypto.rng import DeterministicRNG
    from repro.netsim.latency import LANModel

    def worst_of_many():
        rng = DeterministicRNG("t2-load")
        lan = LANModel(n_switches=6)
        return max(lan.rtt_ms(45.0, 64, rng) for _ in range(500))

    worst = benchmark(worst_of_many)
    assert worst < 3.0  # the paper's LAN budget
