"""Claim C4: geolocation baselines are coarse and non-adversarial.

Section III-B: "most of the geolocation techniques lack accuracy and
flexibility.  For instance, most provide location estimates with
worst-case errors of over 1000 km."  The bench runs all five baselines
over a continental topology and reports median/worst errors, then
contrasts them with GeoProof's bound-style guarantee.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.geo.coords import GeoPoint
from repro.geoloc.geocluster import BGPTable, GeoCluster
from repro.geoloc.geoping import GeoPing
from repro.geoloc.geotrack import DNSHintDatabase, GeoTrack
from repro.geoloc.octant import OctantLike
from repro.geoloc.tbg import TopologyBasedGeolocation
from repro.netsim.topology import NetworkTopology, Node

# A sparse continental deployment: three landmarks on one coast, with
# targets spread across the continent -- the regime where the paper's
# ">1000 km worst case" materialises.
SITES = {
    "bne-lm": GeoPoint(-27.47, 153.03),
    "syd-lm": GeoPoint(-33.87, 151.21),
    "mel-lm": GeoPoint(-37.81, 144.96),
}
TARGETS = {
    "target-cbr": GeoPoint(-35.28, 149.13),  # near the landmarks
    "target-adl": GeoPoint(-34.93, 138.60),  # 600+ km out
    "target-per": GeoPoint(-31.95, 115.86),  # across the continent
    "target-dar": GeoPoint(-12.46, 130.84),  # far north
}
LANDMARKS = list(SITES)


def build_topology() -> NetworkTopology:
    topology = NetworkTopology()
    for name, position in SITES.items():
        topology.add_node(Node(name, position, kind="landmark"))
    topology.add_node(
        Node("core-syd.isp.net", GeoPoint(-33.86, 151.20), kind="router")
    )
    topology.add_node(
        Node("core-mel.isp.net", GeoPoint(-37.80, 144.95), kind="router")
    )
    for name, position in TARGETS.items():
        topology.add_node(Node(name, position, kind="target"))
    topology.add_link("bne-lm", "core-syd.isp.net", inflation=1.3)
    topology.add_link("syd-lm", "core-syd.isp.net", latency_ms=0.3)
    topology.add_link("core-syd.isp.net", "core-mel.isp.net", inflation=1.3)
    topology.add_link("mel-lm", "core-mel.isp.net", latency_ms=0.3)
    topology.add_link("core-syd.isp.net", "target-cbr", inflation=1.3)
    topology.add_link("core-mel.isp.net", "target-adl", inflation=1.3)
    topology.add_link("core-mel.isp.net", "target-per", inflation=1.6)
    topology.add_link("bne-lm", "target-dar", inflation=1.6)
    return topology


def build_schemes(topology):
    dns = DNSHintDatabase()
    dns.add("syd", SITES["syd-lm"])
    dns.add("mel", SITES["mel-lm"])
    bgp = BGPTable()
    bgp.announce("10")  # one continental prefix: coarse clustering
    for i, name in enumerate(TARGETS):
        bgp.assign_address(name, f"10.{i}.0.1")
    bgp.add_known_location("10", SITES["syd-lm"])
    bgp.add_known_location("10", SITES["mel-lm"])
    return [
        GeoPing(topology, LANDMARKS),
        OctantLike(topology, LANDMARKS, grid_step_km=80.0),
        TopologyBasedGeolocation(topology, LANDMARKS),
        GeoTrack(topology, LANDMARKS, dns),
        GeoCluster(topology, LANDMARKS, bgp),
    ]


def test_geoloc_baseline_errors(benchmark):
    def run_survey():
        topology = build_topology()
        results = {}
        for scheme in build_schemes(topology):
            errors = [scheme.score(target).error_km for target in TARGETS]
            results[scheme.name] = (
                sum(errors) / len(errors),
                max(errors),
            )
        return results

    results = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    rendered = format_table(
        ["scheme", "mean error km", "worst error km"],
        [[name, mean, worst] for name, (mean, worst) in results.items()],
        title="C4 -- geolocation baselines on a sparse continental topology",
        decimals=0,
    )
    record_table("geoloc", rendered)

    # The paper's claim: worst-case errors beyond 1000 km are the norm.
    schemes_over_1000 = sum(1 for _, worst in results.values() if worst > 1000.0)
    assert schemes_over_1000 >= 3

    # And no scheme is adversarially sound: none can even represent a
    # 'provider is lying' outcome -- contrasted in EXPERIMENTS.md with
    # GeoProof's timing bound, which the fig6 bench shows catching an
    # actively dishonest provider.


def test_geoloc_dense_landmarks_help(benchmark):
    """Sanity: adding a Perth landmark collapses the Perth error --
    accuracy is landmark-density-bound, as the paper notes."""

    def compare():
        sparse_topology = build_topology()
        sparse = GeoPing(sparse_topology, LANDMARKS).score("target-per").error_km
        dense_topology = build_topology()
        dense_topology.add_node(
            Node("per-lm", GeoPoint(-31.95, 115.87), kind="landmark")
        )
        dense_topology.add_link("per-lm", "target-per", latency_ms=0.5)
        dense = (
            GeoPing(dense_topology, LANDMARKS + ["per-lm"])
            .score("target-per")
            .error_km
        )
        return sparse, dense

    sparse, dense = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert dense < sparse
    assert sparse > 1000.0
    assert dense < 100.0
