"""Shared deployment builders for the benchmark suite."""

from __future__ import annotations

from repro.cloud.provider import CloudProvider, DataCentre
from repro.cloud.replication import ReplicaSite, ReplicationAuditor
from repro.cloud.sla import SLAPolicy
from repro.cloud.tpa import ThirdPartyAuditor
from repro.cloud.verifier import VerifierDevice
from repro.crypto.rng import DeterministicRNG
from repro.geo.datasets import city
from repro.geo.regions import CircularRegion
from repro.netsim.clock import SimClock
from repro.por.parameters import TEST_PARAMS
from repro.por.setup import PORKeys, setup_file

REPLICA_SITES = ["sydney", "perth", "singapore"]


def build_replication_deployment(kept_copies: list[str]):
    """A 3-site replication contract with copies only at ``kept_copies``.

    ``kept_copies`` must include "sydney" (the upload site).  Returns
    (provider, replication_auditor) ready for ``audit_round``.
    """
    rng = DeterministicRNG(f"replication-bench-{'-'.join(kept_copies)}")
    provider = CloudProvider("acme", rng=rng.fork("provider"))
    for name in REPLICA_SITES:
        provider.add_datacentre(DataCentre(name, city(name)))
    keys = PORKeys.derive(b"replication-bench-master-key")
    data = rng.fork("data").random_bytes(20_000)
    encoded = setup_file(data, keys, b"f", TEST_PARAMS)
    provider.upload(encoded, "sydney")
    for name in kept_copies:
        if name != "sydney":
            provider.replicate_to(b"f", name)
    tpa = ThirdPartyAuditor("tpa", rng.fork("tpa"))
    clock = SimClock()
    auditor = ReplicationAuditor(tpa)
    registration_sla = None
    for name in REPLICA_SITES:
        sla = SLAPolicy(region=CircularRegion(city(name), 100.0))
        registration_sla = registration_sla or sla
        auditor.add_site(
            ReplicaSite(
                name=name,
                verifier=VerifierDevice(
                    f"verifier-{name}".encode(),
                    city(name),
                    clock=clock,
                    rng=rng.fork(f"verifier-{name}"),
                ),
                sla=sla,
            )
        )
    tpa.register_file(
        b"f", encoded.n_segments, keys.mac_key, TEST_PARAMS, registration_sla
    )
    return provider, auditor
