"""Table III: Internet latency within Australia.

Nine hosts, 8-3605 km from a Brisbane ADSL2 vantage, RTTs 18-82 ms.
The reproduced claim is the *shape*: a strong positive distance-latency
relationship with every modelled RTT within 25 % of the measured row.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.experiments import table3_correlation, table3_internet_latency
from repro.analysis.reporting import format_table


def test_table3_reproduction(benchmark):
    rows = benchmark(table3_internet_latency)

    rendered = format_table(
        ["url", "paper km", "paper ms", "model ms", "delta %"],
        [
            [
                r.url,
                r.paper_distance_km,
                r.paper_latency_ms,
                r.model_latency_ms,
                100.0 * (r.model_latency_ms - r.paper_latency_ms) / r.paper_latency_ms,
            ]
            for r in rows
        ],
        title="Table III -- Internet latency within Australia",
        decimals=1,
    )
    record_table("table3", rendered)

    # Shape 1: positive relationship (the paper's stated conclusion).
    assert table3_correlation() > 0.95

    # Shape 2: monotone in distance, 18 ms floor, ~80 ms at Perth.
    ordered = sorted(rows, key=lambda r: r.paper_distance_km)
    assert ordered[0].model_latency_ms == pytest.approx(18.0, abs=3.0)
    assert ordered[-1].model_latency_ms == pytest.approx(82.0, rel=0.15)

    # Shape 3: per-row agreement within 25 %.
    for row in rows:
        assert (
            abs(row.model_latency_ms - row.paper_latency_ms) / row.paper_latency_ms
            < 0.25
        ), row.url


def test_table3_speed_bound(benchmark):
    """No modelled path may beat the 4/9 c envelope the paper cites."""
    from repro.netsim.latency import INTERNET_SPEED_KM_PER_MS

    rows = benchmark(table3_internet_latency)
    for row in rows:
        implied_speed = 2.0 * row.model_distance_km / row.model_latency_ms
        assert implied_speed <= INTERNET_SPEED_KM_PER_MS + 1e-6, row.url
