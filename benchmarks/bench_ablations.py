"""Design-choice ablations from DESIGN.md Section 6.

* max-RTT vs quantile-RTT verdicts under honest LAN jitter;
* adversarial cache prefetching vs cache size;
* substrate micro-benchmarks (AES, RS, PRP, Schnorr) that bound the
  client-side costs of the scheme.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.cloud.adversary import PrefetchRelayAttack
from repro.cloud.provider import DataCentre
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.datasets import city
from repro.por.parameters import TEST_PARAMS
from repro.storage.hdd import IBM_36Z15


def test_ablation_max_vs_quantile_verdict(benchmark):
    """The paper gates on max RTT.  Under honest jitter, how often does
    a max-gate false-reject where a 90th-percentile gate would not?"""

    def sweep():
        session = GeoProofSession.build(
            datacentre_location=city("brisbane"),
            params=TEST_PARAMS,
            seed="quantile",
        )
        session.outsource(b"f", DeterministicRNG("q-data").random_bytes(25_000))
        max_rejects = quantile_rejects = 0
        trials = 40
        # Tighten the budget to sit just above the honest mean round so
        # jitter occasionally crosses it.
        tight_budget = 13.30
        for _ in range(trials):
            outcome = session.audit(b"f", k=15, rtt_max_ms=tight_budget)
            rtts = sorted(r.rtt_ms for r in outcome.transcript.rounds)
            if rtts[-1] > tight_budget:
                max_rejects += 1
            quantile = rtts[int(0.9 * (len(rtts) - 1))]
            if quantile > tight_budget:
                quantile_rejects += 1
        return max_rejects / trials, quantile_rejects / trials

    max_rate, quantile_rate = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "ablation-quantile",
        format_table(
            ["verdict rule", "false-reject rate (tight budget)"],
            [["max RTT (paper)", max_rate], ["90th percentile", quantile_rate]],
            title="Ablation -- max vs quantile gate under honest jitter",
        ),
    )
    # The max gate is strictly more trigger-happy (that is its point:
    # a single relayed round must be fatal).
    assert max_rate >= quantile_rate


def test_ablation_prefetch_cache_sweep(benchmark):
    """Adversarial prefetching: audit-escape rate vs cached fraction."""

    def sweep():
        rows = []
        for cached_fraction in (0.0, 0.5, 0.9, 1.0):
            session = GeoProofSession.build(
                datacentre_location=city("brisbane"),
                params=TEST_PARAMS,
                seed=f"prefetch-{cached_fraction}",
            )
            session.outsource(
                b"f", DeterministicRNG("p-data").random_bytes(25_000)
            )
            n = session.files[b"f"].n_segments
            session.provider.add_datacentre(
                DataCentre("remote", city("singapore"), disk=IBM_36Z15)
            )
            session.provider.relocate(b"f", "remote")
            attack = PrefetchRelayAttack("home", "remote", cache_bytes=10**9)
            attack.prewarm(
                session.provider, b"f", list(range(int(cached_fraction * n)))
            )
            session.provider.set_strategy(attack)
            escapes = sum(
                1 for _ in range(10) if session.audit(b"f", k=15).verdict.accepted
            )
            rows.append((cached_fraction, escapes / 10))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "ablation-prefetch",
        format_table(
            ["cached fraction", "audit escape rate"],
            [list(r) for r in rows],
            title="Ablation -- front-site cache vs relay escape (k = 15)",
            decimals=2,
        ),
    )
    by_fraction = dict(rows)
    assert by_fraction[0.0] == 0.0  # pure relay always caught
    assert by_fraction[1.0] == 1.0  # fully-cached front = data is local
    # Partial caches: escape needs all k challenges cached, so even 90 %
    # caching escapes rarely (0.9^15 ~ 0.21).
    assert by_fraction[0.5] <= 0.1


def test_ablation_partial_relocation(benchmark):
    """Hot-local/cold-remote fraud: detection = 1 - local_fraction^k.

    The mean RTT barely moves when 90 % of segments stay local; the
    max-RTT gate catches the first relayed round -- this is the
    strongest case for the paper's max rule.
    """
    from repro.cloud.adversary import PartialRelocationAttack

    def sweep():
        rows = []
        for local_fraction in (0.5, 0.8, 0.95):
            session = GeoProofSession.build(
                datacentre_location=city("brisbane"),
                params=TEST_PARAMS,
                seed=f"partial-{local_fraction}",
            )
            session.outsource(
                b"f", DeterministicRNG("partial-data").random_bytes(25_000)
            )
            session.provider.add_datacentre(
                DataCentre("remote", city("singapore"), disk=IBM_36Z15)
            )
            session.provider.relocate(b"f", "remote")
            session.provider.set_strategy(
                PartialRelocationAttack(
                    "home",
                    "remote",
                    local_fraction,
                    DeterministicRNG(f"adv-{local_fraction}"),
                )
            )
            k, trials = 10, 12
            detected = sum(
                1
                for _ in range(trials)
                if not session.audit(b"f", k=k).verdict.accepted
            )
            rows.append(
                (local_fraction, detected / trials, 1.0 - local_fraction**k)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "ablation-partial",
        format_table(
            ["local fraction", "empirical detection", "1 - f^k theory"],
            [list(r) for r in rows],
            title="Ablation -- partial relocation vs max-RTT gate (k = 10)",
            decimals=3,
        ),
    )
    for local_fraction, empirical, theory in rows:
        assert empirical == pytest.approx(theory, abs=0.30)


def test_substrate_aes_throughput(benchmark):
    from repro.crypto.aes import aes_ctr_encrypt

    data = bytes(4096)
    out = benchmark(aes_ctr_encrypt, b"k" * 16, b"n" * 16, data)
    assert len(out) == 4096


def test_substrate_rs_encode(benchmark):
    from repro.erasure.reed_solomon import ReedSolomon

    rs = ReedSolomon(255, 223)
    message = bytes(range(223))
    codeword = benchmark(rs.encode, message)
    assert len(codeword) == 255


def test_substrate_rs_decode_with_errors(benchmark):
    from repro.erasure.reed_solomon import ReedSolomon

    rs = ReedSolomon(255, 223)
    message = bytes(range(223))
    corrupted = bytearray(rs.encode(message))
    for position in range(0, 160, 10):
        corrupted[position] ^= 0xA5
    decoded = benchmark(rs.decode, bytes(corrupted))
    assert decoded == message


def test_substrate_prp_forward(benchmark):
    from repro.crypto.prp import BlockPermutation

    perm = BlockPermutation(b"bench-key", 1_000_000)
    value = benchmark(perm.forward, 123_456)
    assert 0 <= value < 1_000_000


def test_substrate_schnorr_sign_verify(benchmark):
    from repro.crypto.schnorr import (
        SchnorrKeyPair,
        TEST_GROUP,
        schnorr_sign,
        schnorr_verify,
    )

    keypair = SchnorrKeyPair.generate(TEST_GROUP, seed=b"bench")

    def sign_and_verify():
        signature = schnorr_sign(keypair.private, b"transcript")
        return schnorr_verify(keypair.public, b"transcript", signature)

    assert benchmark(sign_and_verify)
