"""Claim C2: corruption-detection probability.

Paper (Section V-C): with 1,000,000 segments, 0.5 % corrupted and
1,000 queried per challenge, detection is "about 71.3 %" per challenge
and irretrievability is < 1/200,000.  The exact formula gives 99.3 %
at q = 1000 (71.3 % corresponds to q ~ 249); the bench reports the
formula family, cross-checks it against live protocol simulation, and
sweeps k (the rounds ablation from DESIGN.md).
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.cloud.adversary import CorruptionAttack
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.por.analysis import (
    cumulative_detection,
    detection_probability,
    detection_probability_binomial,
    file_irretrievability_probability,
    queries_for_detection,
)
from repro.por.parameters import TEST_PARAMS


def test_detection_formulas(benchmark):
    """The closed forms at the paper's parameters."""

    def compute():
        return {
            "hyper_q1000": detection_probability(1_000_000, 5_000, 1_000),
            "binom_q1000": detection_probability_binomial(0.005, 1_000),
            "binom_q249": detection_probability_binomial(0.005, 249),
            "q_for_713": queries_for_detection(0.005, 0.713),
            "cumulative_5": cumulative_detection(0.713, 5),
            "irretrievable": file_irretrievability_probability(
                (2 * 2**30 // 16) // 223 + 1, 255, 16, 0.005
            ),
        }

    values = benchmark(compute)
    rendered = format_table(
        ["quantity", "paper", "measured"],
        [
            ["P(detect), q=1000", "'about 71.3 %'", f"{values['binom_q1000']:.3f}"],
            ["P(detect), q=249", "(71.3 % matches q~249)", f"{values['binom_q249']:.3f}"],
            ["q for 71.3 %", "--", values["q_for_713"]],
            ["P(detect in 5 audits at 71.3 %)", "cumulative", f"{values['cumulative_5']:.5f}"],
            ["P(file irretrievable)", "< 1/200,000", f"{values['irretrievable']:.2e}"],
        ],
        title="C2 -- corruption-detection probabilities (eps = 0.5 %)",
    )
    record_table("detection", rendered)

    assert values["hyper_q1000"] == pytest.approx(values["binom_q1000"], abs=0.01)
    assert 0.99 < values["binom_q1000"] < 0.995
    assert values["binom_q249"] == pytest.approx(0.713, abs=0.01)
    assert values["irretrievable"] < 1.0 / 200_000


def test_detection_empirical_vs_formula(benchmark):
    """Live protocol simulation must track the hypergeometric formula."""

    def simulate():
        session = GeoProofSession.build(
            datacentre_location=GeoPoint(-27.47, 153.02),
            params=TEST_PARAMS,
            seed="detect-bench",
        )
        data = DeterministicRNG("detect-data").random_bytes(40_000)
        session.outsource(b"f", data)
        n = session.files[b"f"].n_segments
        epsilon = 0.05
        session.provider.set_strategy(
            CorruptionAttack("home", epsilon, DeterministicRNG("adv"))
        )
        k = 20
        trials = 60
        detected = sum(
            1 for _ in range(trials) if not session.audit(b"f", k=k).verdict.accepted
        )
        n_corrupt = round(epsilon * n)
        return detected / trials, detection_probability(n, n_corrupt, k)

    empirical, theory = benchmark.pedantic(simulate, rounds=1, iterations=1)
    record_table(
        "detection-empirical",
        format_table(
            ["quantity", "value"],
            [
                ["empirical detection rate", f"{empirical:.3f}"],
                ["hypergeometric formula", f"{theory:.3f}"],
            ],
            title="C2 -- simulated vs closed-form detection",
        ),
    )
    assert empirical == pytest.approx(theory, abs=0.17)


def test_detection_k_ablation(benchmark):
    """Ablation: audit rounds k vs detection and audit duration."""

    def sweep():
        rows = []
        for k in (5, 25, 100, 250, 1000):
            p = detection_probability_binomial(0.005, k)
            # Audit duration: k rounds x ~(disk + LAN) each.
            duration_ms = k * 13.5
            rows.append((k, p, duration_ms))
        return rows

    rows = benchmark(sweep)
    rendered = format_table(
        ["k rounds", "P(detect 0.5 % corruption)", "audit duration ms"],
        [[k, f"{p:.4f}", d] for k, p, d in rows],
        title="Ablation -- rounds k vs detection vs audit cost",
    )
    record_table("detection-k", rendered)
    probabilities = [p for _, p, _ in rows]
    assert probabilities == sorted(probabilities)
    # Diminishing returns: the step 250 -> 1000 gains little.
    assert probabilities[-1] - probabilities[-2] < 0.3
