"""Scalar vs vectorized Reed-Solomon data plane (the outsourcing hot path).

ROADMAP's vectorized-data-plane item: after the batch Feistel engine
(PR 2) the one stage of the Juels-Kaliski setup still running scalar
pure-Python loops was the GF(256)/RS encode -- one byte-column at a
time through polynomial division.  The vectorized engine
(:mod:`repro.gf.gf256_vec` + :class:`repro.erasure.striping.BlockStriper`)
computes the parity of all 16 interleaved byte-columns of every chunk
of a file as one GF(256) matrix product against the precomputed
systematic parity matrix.

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_rs.py --quick --out BENCH_rs.json

It measures blocks/sec for the scalar column-at-a-time path (on a
sample of chunks; the full 1M-block file would take minutes) against
the vectorized batch encode of a full million-block file, runs a
byte-identical equivalence sweep (encode, decode with errors+erasures,
MAC tags), asserts the >= 10x acceptance bar, and writes the numbers
plus the gate table as JSON so CI archives a machine-readable record.
The ``ProcessPoolExecutor`` sharding row is informational: it reports
real multicore speedup only when the runner has more than one core.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _gates import Gate, enforce_gates  # noqa: E402

from repro.analysis.reporting import format_table  # noqa: E402
from repro.crypto.mac import mac_tag, mac_tag_many  # noqa: E402
from repro.erasure.striping import BlockStriper, StripeLayout  # noqa: E402
from repro.gf import HAS_NUMPY  # noqa: E402

#: Encoded file sizes in 16-byte blocks; --quick keeps only the gated
#: million-block row.
FILE_BLOCKS = [100_000, 1_000_000]

#: Gated row: the vectorized engine must beat the scalar path by at
#: least this factor on a 1M-block (16 MB) file (ISSUE 6 / ROADMAP).
MIN_SPEEDUP_1M = 10.0

#: Chunks the scalar path encodes to estimate its per-block rate.
SCALAR_SAMPLE_CHUNKS = 3

PAPER_LAYOUT = StripeLayout()  # RS(255, 223), 16-byte blocks
SMALL_LAYOUT = StripeLayout(block_bytes=4, data_blocks=11, total_blocks=15)


def _blocks(n: int, block_bytes: int, seed: str) -> list[bytes]:
    rnd = random.Random(seed)
    payload = rnd.randbytes(n * block_bytes)
    return [
        payload[i : i + block_bytes]
        for i in range(0, len(payload), block_bytes)
    ]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def scalar_rate(layout: StripeLayout, sample_chunks: int) -> float:
    """Blocks/sec of the column-at-a-time scalar encoder (sampled)."""
    striper = BlockStriper(layout, vectorized=False)
    blocks = _blocks(layout.data_blocks * sample_chunks, layout.block_bytes, "scalar")
    seconds = _time(lambda: striper.encode_blocks(blocks))
    return len(blocks) / seconds


def vectorized_rate(layout: StripeLayout, n_blocks: int) -> float:
    """Blocks/sec of the batch matrix-product encoder on a full file."""
    striper = BlockStriper(layout, vectorized=True)
    blocks = _blocks(n_blocks, layout.block_bytes, f"vec-{n_blocks}")
    striper._parity_transpose()  # table build is one-off, not throughput
    seconds = _time(lambda: striper.encode_blocks(blocks))
    return n_blocks / seconds


def workers_rate(layout: StripeLayout, n_blocks: int, workers: int) -> float:
    """Blocks/sec of the process-sharded encode (informational row)."""
    striper = BlockStriper(layout, vectorized=True)
    blocks = _blocks(n_blocks, layout.block_bytes, f"vec-{n_blocks}")
    seconds = _time(lambda: striper.encode_blocks(blocks, workers=workers))
    return n_blocks / seconds


def mac_rates(n_segments: int, segment_bytes: int) -> tuple[float, float]:
    """(scalar, batch) tags/sec for the per-segment MAC loop."""
    rnd = random.Random("mac")
    payloads = [rnd.randbytes(segment_bytes) for _ in range(n_segments)]
    scalar_s = _time(
        lambda: [
            mac_tag(b"bench-key", p, i, b"bench-fid")
            for i, p in enumerate(payloads)
        ]
    )
    batch_s = _time(lambda: mac_tag_many(b"bench-key", payloads, b"bench-fid"))
    return n_segments / scalar_s, n_segments / batch_s


def equivalence_sweep() -> bool:
    """Byte-identical scalar/vectorized sweep: encode, decode, MAC."""
    rnd = random.Random("equivalence")
    for layout in (SMALL_LAYOUT, PAPER_LAYOUT):
        scalar = BlockStriper(layout, vectorized=False)
        vector = BlockStriper(layout, vectorized=True)
        blocks = _blocks(
            layout.data_blocks * 2 + 3, layout.block_bytes, "equiv"
        )
        if scalar.encode_blocks(blocks) != vector.encode_blocks(blocks):
            return False
        chunk_blocks = blocks[: layout.data_blocks]
        encoded = scalar.encode_chunk(chunk_blocks)
        corrupted = list(encoded)
        f = min(2, layout.parity_blocks)
        e = (layout.parity_blocks - f) // 2
        positions = rnd.sample(range(layout.total_blocks), e + f)
        for pos in positions:
            corrupted[pos] = bytes(b ^ 0xA5 for b in corrupted[pos])
        erasures = sorted(positions[e:])
        out_s = scalar.decode_chunk(corrupted, erasures=erasures)
        out_v = vector.decode_chunk(corrupted, erasures=erasures)
        if not (out_s == out_v == chunk_blocks):
            return False
    payloads = [rnd.randbytes(52) for _ in range(64)]
    batch = mac_tag_many(b"key", payloads, b"fid")
    scalar_tags = [
        mac_tag(b"key", p, i, b"fid") for i, p in enumerate(payloads)
    ]
    return batch == scalar_tags


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: only the gated 1M-block row",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_rs.json"),
        help="where to write the JSON record (default: ./BENCH_rs.json)",
    )
    args = parser.parse_args(argv)

    if not HAS_NUMPY:
        print(
            "FAIL: bench_rs needs numpy (pip install repro[fast]); "
            "the scalar fallback path is covered by the test suite instead",
            file=sys.stderr,
        )
        return 2

    sizes = FILE_BLOCKS[-1:] if args.quick else FILE_BLOCKS
    scalar_blocks_per_sec = scalar_rate(PAPER_LAYOUT, SCALAR_SAMPLE_CHUNKS)

    rows = []
    for n_blocks in sizes:
        vec = vectorized_rate(PAPER_LAYOUT, n_blocks)
        rows.append(
            {
                "blocks": n_blocks,
                "scalar_blocks_per_sec": scalar_blocks_per_sec,
                "vectorized_blocks_per_sec": vec,
                "speedup": vec / scalar_blocks_per_sec,
            }
        )
    print(
        format_table(
            ["blocks", "scalar blk/s", "vectorized blk/s", "speedup"],
            [
                [
                    r["blocks"],
                    r["scalar_blocks_per_sec"],
                    r["vectorized_blocks_per_sec"],
                    r["speedup"],
                ]
                for r in rows
            ],
            title="RS(255, 223) stripe encode: scalar vs vectorized engine",
            decimals=1,
        )
    )

    n_cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    workers_row = None
    if n_cores > 1:
        workers = min(n_cores, 4)
        rate = workers_rate(PAPER_LAYOUT, sizes[-1], workers)
        workers_row = {
            "workers": workers,
            "blocks": sizes[-1],
            "blocks_per_sec": rate,
            "speedup_vs_vectorized": rate / rows[-1]["vectorized_blocks_per_sec"],
        }
        print(
            f"\nprocess-sharded encode ({workers} workers): "
            f"{rate:,.0f} blk/s "
            f"({workers_row['speedup_vs_vectorized']:.2f}x vs in-process)"
        )
    else:
        print(
            "\nprocess-sharded encode: skipped (single-core runner; "
            "sharding is equivalence-pinned by the test suite)"
        )

    mac_scalar, mac_batch = mac_rates(20_000, 52)
    print(
        f"mac tags: {mac_scalar:,.0f}/s scalar -> {mac_batch:,.0f}/s batched "
        f"({mac_batch / mac_scalar:.2f}x)"
    )

    equivalent = equivalence_sweep()

    row_1m = next(r for r in rows if r["blocks"] == 1_000_000)
    gates = [
        Gate(
            name="rs_encode_speedup_1m",
            measured=row_1m["speedup"],
            required=MIN_SPEEDUP_1M,
            detail="vectorized vs scalar blk/s, 1M-block file",
        ),
        Gate(
            name="scalar_vec_equivalence",
            measured=1.0 if equivalent else 0.0,
            required=1.0,
            detail="encode + decode(errors,erasures) + MAC byte-identical",
        ),
    ]

    record = {
        "bench": "rs",
        "unit": "blocks/sec",
        "min_speedup_1m": MIN_SPEEDUP_1M,
        "scalar_sample_chunks": SCALAR_SAMPLE_CHUNKS,
        "n_cores": n_cores,
        "rows": rows,
        "workers": workers_row,
        "mac_tags_per_sec": {"scalar": mac_scalar, "batch": mac_batch},
        "gates": [gate.as_dict() for gate in gates],
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    return enforce_gates(gates, bench="rs")


if __name__ == "__main__":
    sys.exit(main())
