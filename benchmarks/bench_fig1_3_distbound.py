"""Figures 1-3: the distance-bounding protocol family.

Fig. 1 (generic flow), Fig. 2 (Hancke-Kuhn) and Fig. 3 (Reid et al.)
are protocol diagrams; the executable reproduction runs each protocol
honestly and under its characteristic attack, and pins the security
separation the paper describes:

* mafia-fraud success against Hancke-Kuhn tracks (3/4)^n;
* the terrorist attack defeats Hancke-Kuhn but leaking Reid's
  registers surrenders the long-term secret.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.crypto.prf import prf_stream
from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import SchnorrKeyPair, TEST_GROUP
from repro.distbound.analysis import (
    brands_chaum_false_accept,
    hancke_kuhn_false_accept,
)
from repro.distbound.attacks import (
    MafiaFraudRelay,
    TerroristAccomplice,
    leak_hancke_kuhn_registers,
    leak_reid_registers,
)
from repro.distbound.base import TimedChannel
from repro.distbound.brands_chaum import BrandsChaumProver, BrandsChaumVerifier
from repro.distbound.hancke_kuhn import HanckeKuhnProver, HanckeKuhnVerifier
from repro.distbound.reid import ReidProver, ReidVerifier
from repro.netsim.clock import SimClock
from repro.netsim.latency import RFChannelModel

SECRET = b"bench-shared-secret-0123456789"


def rf_channel(distance_km):
    return TimedChannel(SimClock(), RFChannelModel(), distance_km)


def test_fig1_honest_runs_all_protocols(benchmark):
    """Every protocol accepts an honest nearby prover (Fig. 1 flow)."""

    def run_all():
        rng = DeterministicRNG("fig1")
        results = {}
        hk = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        results["hancke-kuhn"] = hk.run(
            HanckeKuhnProver(b"P", SECRET), rf_channel(1.0), rng.fork("hk")
        )
        keypair = SchnorrKeyPair.generate(TEST_GROUP, seed=b"fig1")
        bc = BrandsChaumVerifier(b"V", keypair.public, n_rounds=32, rtt_max_ms=0.1)
        results["brands-chaum"] = bc.run(
            BrandsChaumProver(b"P", keypair), rf_channel(1.0), rng.fork("bc")
        )
        reid = ReidVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        results["reid"] = reid.run(
            ReidProver(b"P", SECRET), rf_channel(1.0), rng.fork("reid")
        )
        return results

    results = benchmark(run_all)
    rendered = format_table(
        ["protocol", "accepted", "rounds", "max RTT ms", "implied km"],
        [
            [name, r.accepted, r.n_rounds, r.max_rtt_ms, r.implied_distance_km]
            for name, r in results.items()
        ],
        title="Figs 1-3 -- honest runs at 1 km over RF",
        decimals=4,
    )
    record_table("fig1-3-honest", rendered)
    assert all(r.accepted for r in results.values())


def test_fig2_mafia_fraud_rate(benchmark):
    """Empirical mafia-fraud success vs the (3/4)^n theory (Fig. 2)."""

    def attack_rates():
        rows = []
        master = DeterministicRNG("fig2")
        for n_rounds in (4, 8, 12):
            accepts = 0
            trials = 250
            for trial in range(trials):
                rng = master.fork(f"{n_rounds}-{trial}")
                verifier = HanckeKuhnVerifier(
                    b"V", SECRET, n_rounds=n_rounds, rtt_max_ms=0.1
                )
                relay = MafiaFraudRelay(b"R", rng.fork("relay"))
                honest = HanckeKuhnProver(b"P", SECRET)

                class Adapter:
                    identity = b"P"

                    def begin_session(self, vn, pn, n):
                        relay.begin_session(vn, pn, n)
                        relay.learn_from_prover(honest)

                    def respond(self, c):
                        return relay.respond(c)

                if verifier.run(Adapter(), rf_channel(0.5), rng.fork("run")).accepted:
                    accepts += 1
            rows.append((n_rounds, accepts / trials, hancke_kuhn_false_accept(n_rounds)))
        return rows

    rows = benchmark.pedantic(attack_rates, rounds=1, iterations=1)
    rendered = format_table(
        ["rounds n", "empirical accept", "(3/4)^n"],
        [list(r) for r in rows],
        title="Fig. 2 -- mafia fraud against Hancke-Kuhn",
        decimals=3,
    )
    record_table("fig2-mafia", rendered)
    for n_rounds, empirical, theory in rows:
        assert abs(empirical - theory) < 0.08, (n_rounds, empirical, theory)
    # Brands-Chaum's per-round factor is strictly stronger.
    assert brands_chaum_false_accept(8) < hancke_kuhn_false_accept(8)


def test_fig3_terrorist_separation(benchmark):
    """Fig. 3's raison d'etre: HK falls to the terrorist attack, Reid
    makes the leak equivalent to surrendering the secret."""

    def run_separation():
        rng = DeterministicRNG("fig3")
        # HK: leaked registers let the accomplice pass.
        verifier = HanckeKuhnVerifier(b"V", SECRET, n_rounds=32, rtt_max_ms=0.1)
        accomplice = TerroristAccomplice(b"A")

        class Adapter:
            identity = b"P"

            def begin_session(self, vn, pn, n):
                accomplice.receive_leak(
                    *leak_hancke_kuhn_registers(SECRET, vn, pn, n)
                )

            def respond(self, c):
                return accomplice.respond(c)

        hk_result = verifier.run(Adapter(), rf_channel(0.5), rng)
        # Reid: the leak reconstructs the secret bits.
        cipher_register, key_register = leak_reid_registers(
            SECRET, b"V", b"P", b"n1", b"n2", 32
        )
        recovered = TerroristAccomplice.reconstruct_secret_bits(
            cipher_register, key_register
        )
        expected = prf_stream(SECRET, b"reid-secret-expand", b"", len(recovered))
        return hk_result.accepted, recovered == expected

    hk_falls, reid_leak_is_secret = benchmark(run_separation)
    rendered = format_table(
        ["protocol", "terrorist outcome"],
        [
            ["hancke-kuhn", "accomplice ACCEPTED (attack succeeds)"],
            ["reid et al.", "leak == long-term secret (attack deterred)"],
        ],
        title="Fig. 3 -- terrorist-attack separation",
    )
    record_table("fig3-terrorist", rendered)
    assert hk_falls
    assert reid_leak_is_secret
