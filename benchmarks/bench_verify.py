"""Batch verification plane: throughput and equivalence CI gates.

The TPA's verdict loop is the fleet's real-compute bottleneck: every
audit costs a Schnorr verification (two modular exponentiations done
naively) plus ``k`` HMAC tag checks.  The batch plane
(:func:`~repro.core.verification.verify_transcripts`) amortizes both --
one random-linear-combination Schnorr check per verifier key on
precomputed fixed-base tables, one HMAC key schedule per (key, file)
group -- and this bench holds it to the two claims it ships under:

1. **Throughput.**  On an honest ``N_AUDITS``-audit population the
   batch plane must produce verdicts at least ``MIN_SPEEDUP`` times
   faster than the scalar :func:`verify_transcript` loop.
2. **Equivalence.**  On a mixed honest/forged/replayed/corrupted
   population the batch verdict list must equal the scalar list
   *field for field* (including ``bad_mac_indices`` -- the exact
   culprit segments), with every tampered position identified.  The
   equivalence gate is 1.0: a single diverging verdict fails CI.

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_verify.py --quick --out BENCH_verify.json
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

try:
    from benchmarks.conftest import record_table
except ImportError:  # running as a script from the repo root
    def record_table(title, rendered):
        print(f"\n{rendered}\n")

try:
    from benchmarks._gates import Gate, enforce_gates  # noqa: E402
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _gates import Gate, enforce_gates  # noqa: E402

from repro.analysis.reporting import format_table  # noqa: E402
from repro.cloud.adversary import CorruptionAttack  # noqa: E402
from repro.core.session import GeoProofSession  # noqa: E402
from repro.core.verification import (  # noqa: E402
    TranscriptVerification,
    verify_transcript,
    verify_transcripts,
)
from repro.crypto.rng import DeterministicRNG  # noqa: E402
from repro.crypto.schnorr import TEST_GROUP, SchnorrKeyPair  # noqa: E402
from repro.geo.coords import GeoPoint  # noqa: E402
from repro.por.parameters import TEST_PARAMS  # noqa: E402

#: Honest-population size for the throughput gate (full mode: the
#: 10k-audit batch a month-long 3-site fleet campaign accumulates).
N_AUDITS = 10_000
N_AUDITS_QUICK = 1_500

#: Rounds per audit.  Small k keeps the Schnorr share of the scalar
#: cost realistic for the fleet demos (which audit at k = 5..25).
K_ROUNDS = 5

#: Acceptance bar: batch verdicts/s over scalar verdicts/s on the
#: honest population.
MIN_SPEEDUP = 5.0

#: Acceptance bar: fraction of mixed-population verdicts identical to
#: the scalar anchor.  1.0 -- one diverging verdict is a CI failure.
REQUIRED_EQUIVALENCE = 1.0

#: Tampered fraction of the mixed population (the rest stays honest).
MIXED_POPULATION = 400
MIXED_POPULATION_QUICK = 120

BRISBANE = GeoPoint(-27.4698, 153.0251)

#: Small segments: the bench measures verification arithmetic, not
#: segment I/O, so use the fast test parameter set (4-byte blocks,
#: RS(15, 11)) and a small file.
BENCH_PARAMS = TEST_PARAMS


def build_bench_session(seed: str) -> tuple:
    """One outsourced file, ready to audit."""
    session = GeoProofSession.build(
        datacentre_location=BRISBANE,
        params=BENCH_PARAMS,
        seed=seed,
    )
    data = DeterministicRNG(f"{seed}-data").random_bytes(16_000)
    session.outsource(b"bench-verify-file", data)
    return session, b"bench-verify-file"


def collect_jobs(session, file_id, n_audits: int) -> list:
    """Run ``n_audits`` real protocol rounds; return verification jobs."""
    record = session.tpa.record(file_id)
    jobs = []
    for _ in range(n_audits):
        request = session.tpa.make_request(file_id, K_ROUNDS)
        transcript = session.verifier.run_audit(request, session.provider)
        jobs.append(
            TranscriptVerification(
                transcript=transcript,
                request=request,
                verifier_public_key=session.verifier.public_key,
                mac_key=record.mac_key,
                params=record.params,
                region=session.sla.region,
                rtt_max_ms=session.sla.rtt_max_ms,
            )
        )
    return jobs


def scalar_verdicts(jobs: list) -> list:
    return [
        verify_transcript(
            job.transcript,
            job.request,
            verifier_public_key=job.verifier_public_key,
            mac_key=job.mac_key,
            params=job.params,
            region=job.region,
            rtt_max_ms=job.rtt_max_ms,
        )
        for job in jobs
    ]


def measure_throughput(jobs: list) -> dict:
    """Scalar vs batch verdict throughput on an honest population."""
    start = time.perf_counter()
    scalar = scalar_verdicts(jobs)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = verify_transcripts(jobs)
    batch_seconds = time.perf_counter() - start

    assert batched == scalar, "honest-population verdicts diverged"
    assert all(verdict.accepted for verdict in batched)
    return {
        "n_audits": len(jobs),
        "k_rounds": K_ROUNDS,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "scalar_verdicts_per_s": len(jobs) / scalar_seconds,
        "batch_verdicts_per_s": len(jobs) / batch_seconds,
        "speedup": scalar_seconds / batch_seconds,
    }


def build_mixed_population(seed: str, n_jobs: int) -> list:
    """Honest majority plus every tampering shape the TPA must catch.

    Tampered positions are spread through the batch (not clustered) so
    the bisection fallback gets exercised on realistic culprit layouts.
    """
    session, file_id = build_bench_session(f"{seed}-mixed")
    jobs = collect_jobs(session, file_id, n_jobs)
    stranger = SchnorrKeyPair.generate(TEST_GROUP, seed=b"bench-stranger")

    # Signature-valid, MAC-bad transcripts come from a corrupting
    # provider (the verifier signs whatever it was served).
    session.provider.set_strategy(
        CorruptionAttack("home", 1.0, DeterministicRNG(f"{seed}-corrupt"))
    )
    corrupted = collect_jobs(session, file_id, max(2, n_jobs // 20))

    for position in range(0, n_jobs, 10):
        shape = (position // 10) % 5
        job = jobs[position]
        if shape == 0:  # forged s component
            commitment, s = job.transcript.signature
            jobs[position] = dataclasses.replace(
                job,
                transcript=dataclasses.replace(
                    job.transcript,
                    signature=(commitment, (s + 1) % TEST_GROUP.q),
                ),
            )
        elif shape == 1:  # signature from the wrong device key
            jobs[position] = dataclasses.replace(
                job, verifier_public_key=stranger.public
            )
        elif shape == 2:  # replayed transcript under a fresh nonce
            jobs[position] = dataclasses.replace(
                job, request=jobs[position - 10].request
            )
        elif shape == 3:  # corrupted storage (bad MACs, valid signature)
            jobs[position] = corrupted[(position // 10) % len(corrupted)]
        else:  # timing violation
            jobs[position] = dataclasses.replace(job, rtt_max_ms=1e-6)
    return jobs


def measure_equivalence(jobs: list) -> dict:
    """Field-for-field batch-vs-scalar agreement on the mixed batch."""
    scalar = scalar_verdicts(jobs)
    batched = verify_transcripts(jobs)
    matches = sum(a == b for a, b in zip(scalar, batched))
    rejected = sum(not verdict.accepted for verdict in scalar)
    bad_mac_matches = sum(
        a.bad_mac_indices == b.bad_mac_indices
        for a, b in zip(scalar, batched)
    )
    return {
        "n_jobs": len(jobs),
        "n_rejected": rejected,
        "equivalence": matches / len(jobs),
        "bad_mac_equivalence": bad_mac_matches / len(jobs),
        "rejected_caught_by_batch": sum(
            (not a.accepted) and (not b.accepted)
            for a, b in zip(scalar, batched)
        )
        / max(1, rejected),
    }


def _render_throughput(row: dict) -> str:
    return format_table(
        ["audits", "k", "scalar (s)", "batch (s)", "scalar v/s",
         "batch v/s", "speedup"],
        [[
            row["n_audits"],
            row["k_rounds"],
            row["scalar_seconds"],
            row["batch_seconds"],
            row["scalar_verdicts_per_s"],
            row["batch_verdicts_per_s"],
            row["speedup"],
        ]],
        title="Batch vs scalar transcript verification (honest population)",
        decimals=3,
    )


def _render_equivalence(row: dict) -> str:
    return format_table(
        ["jobs", "rejected", "verdicts equal", "bad_mac equal",
         "rejects caught"],
        [[
            row["n_jobs"],
            row["n_rejected"],
            row["equivalence"],
            row["bad_mac_equivalence"],
            row["rejected_caught_by_batch"],
        ]],
        title="Batch vs scalar equivalence (mixed adversarial population)",
        decimals=4,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized population")
    parser.add_argument("--out", type=Path, default=None,
                        help="write BENCH_verify.json here")
    args = parser.parse_args(argv)

    n_audits = N_AUDITS_QUICK if args.quick else N_AUDITS
    n_mixed = MIXED_POPULATION_QUICK if args.quick else MIXED_POPULATION

    session, file_id = build_bench_session("bench-verify")
    print(f"collecting {n_audits} honest audit transcripts...")
    jobs = collect_jobs(session, file_id, n_audits)
    throughput = measure_throughput(jobs)
    record_table("verify-throughput", _render_throughput(throughput))

    print(f"building {n_mixed}-job mixed adversarial population...")
    mixed = build_mixed_population("bench-verify", n_mixed)
    equivalence = measure_equivalence(mixed)
    record_table("verify-equivalence", _render_equivalence(equivalence))

    gates = [
        Gate(
            name="batch_verify_speedup",
            measured=throughput["speedup"],
            required=MIN_SPEEDUP,
            detail=f"{throughput['n_audits']} audits, k={K_ROUNDS}",
        ),
        Gate(
            name="mixed_batch_equivalence",
            measured=equivalence["equivalence"],
            required=REQUIRED_EQUIVALENCE,
            detail=f"{equivalence['n_jobs']} jobs, "
                   f"{equivalence['n_rejected']} tampered",
        ),
        Gate(
            name="bad_mac_indices_equivalence",
            measured=equivalence["bad_mac_equivalence"],
            required=REQUIRED_EQUIVALENCE,
            detail="exact culprit segments per transcript",
        ),
    ]
    exit_code = enforce_gates(gates, bench="bench_verify")

    if args.out:
        args.out.write_text(json.dumps(
            {
                "bench": "verify",
                "quick": args.quick,
                "throughput": throughput,
                "equivalence": equivalence,
                "gates": [gate.as_dict() for gate in gates],
            },
            indent=2,
        ))
        print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
