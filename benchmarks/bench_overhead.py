"""Claim C1: storage overhead of the setup pipeline.

Paper (Section V-A/V-B): ECC expands by ~14 %, MACing by ~2.5-3 %,
total ~16.5 %; a 2 GB file is b = 2^27 blocks and b' ~ 153M encoded
blocks; segments are 660 bits at v = 5.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.crypto.rng import DeterministicRNG
from repro.por.parameters import PAPER_PARAMS, PORParams, TEST_PARAMS
from repro.por.setup import PORKeys, setup_file


def test_overhead_arithmetic(benchmark):
    """The closed-form overhead numbers at the paper's parameters."""

    def compute():
        two_gb = 2 * 2**30
        return {
            "ecc_expansion": PAPER_PARAMS.ecc_expansion,
            "mac_expansion": PAPER_PARAMS.mac_expansion,
            "total_expansion": PAPER_PARAMS.total_expansion,
            "segment_bits": PAPER_PARAMS.segment_bits,
            "blocks_2gb": PAPER_PARAMS.data_blocks_for(two_gb),
            "encoded_blocks_jk": PAPER_PARAMS.encoded_blocks_jk(two_gb),
        }

    values = benchmark(compute)
    rendered = format_table(
        ["quantity", "paper", "measured"],
        [
            ["ECC expansion", "~14 %", f"{values['ecc_expansion']:.2%}"],
            ["MAC expansion", "~2.5-3 %", f"{values['mac_expansion']:.2%}"],
            ["total expansion", "~16.5 %", f"{values['total_expansion']:.2%}"],
            ["segment size", "660 bits", f"{values['segment_bits']} bits"],
            ["blocks in 2 GB", "2^27", f"{values['blocks_2gb']}"],
            ["encoded blocks", "153,008,209", f"{values['encoded_blocks_jk']}"],
        ],
        title="C1 -- setup-pipeline storage overhead",
    )
    record_table("overhead", rendered)

    assert values["ecc_expansion"] == pytest.approx(255 / 223 - 1, rel=1e-9)
    assert 0.14 < values["ecc_expansion"] < 0.15
    assert 0.025 <= values["mac_expansion"] <= 0.035
    assert 0.16 < values["total_expansion"] < 0.19
    assert values["segment_bits"] == 660
    assert values["blocks_2gb"] == 2**27
    # The paper's b' differs by 0.31 % (see EXPERIMENTS.md note (b)).
    assert abs(values["encoded_blocks_jk"] - 153_008_209) / 153_008_209 < 0.005


def test_overhead_measured_on_real_pipeline(benchmark):
    """Run the actual pipeline and measure stored/original bytes."""
    keys = PORKeys.derive(b"overhead-bench-master-key")
    data = DeterministicRNG("overhead").random_bytes(120_000)

    encoded = benchmark(setup_file, data, keys, b"f", PORParams())
    measured = encoded.stored_bytes / len(data) - 1.0
    # Small files pay extra padding; the asymptotic rate is ~17.9 %
    # (ECC 14.3 % x MAC 3.1 %), allow up to 25 % at this size.
    assert PAPER_PARAMS.total_expansion * 0.9 < measured < 0.25


def test_overhead_segment_size_ablation(benchmark):
    """Ablation: v (blocks per segment) vs MAC overhead and payload.

    Larger v amortises the tag but fattens the per-round payload the
    timed channel must carry -- the trade-off behind the paper's v = 5.
    """

    def sweep():
        rows = []
        for v in (1, 2, 5, 10, 20):
            params = PORParams(segment_blocks=v)
            rows.append(
                (
                    v,
                    params.segment_bits,
                    params.mac_expansion,
                    params.total_expansion,
                )
            )
        return rows

    rows = benchmark(sweep)
    rendered = format_table(
        ["v blocks", "segment bits", "MAC overhead", "total overhead"],
        [[v, bits, f"{mac:.2%}", f"{total:.2%}"] for v, bits, mac, total in rows],
        title="Ablation -- segment size v vs overhead",
    )
    record_table("overhead-v", rendered)
    mac_overheads = [mac for _, _, mac, _ in rows]
    assert mac_overheads == sorted(mac_overheads, reverse=True)
