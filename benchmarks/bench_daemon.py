"""Audit daemon: sustained service throughput and equivalence CI gates.

The service plane's claim is that putting the TPA behind a socket does
not give up the batch plane's amortizations: per-connection reader
tasks feed one dispatch queue, challenges for a whole flush derive
from one ``prf_many`` sweep, and verdicts settle through the deferred
batch-verify path.  This bench holds the daemon to two claims:

1. **Throughput.**  A pipelined client on localhost must sustain at
   least ``MIN_AUDITS_PER_S`` end-to-end audits/s through the full
   stack -- TCP framing, wire decode, dispatch, protocol rounds,
   batch verification, reply encode.  The workload definition: ``k=2``
   challenge rounds per audit against the in-memory storage backend,
   so the gate measures protocol + service overhead, not simulated
   media cost (media-bound deployments are ``bench_table1_hdd``'s
   territory).  p50/p99 order latency and the realized flush batch
   sizes ride along in the JSON record.
2. **Equivalence.**  On mixed populations -- honest audits, a
   relaying provider (timing violations), a corrupting provider (MAC
   failures with culprit segments) -- the daemon's verdicts must be
   *request-for-request identical* to a twin session driven through
   the scalar ``tpa.audit`` anchor.  The gate is 1.0: one diverging
   verdict fails CI.

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_daemon.py --quick --out BENCH_daemon.json
"""

import argparse
import asyncio
import gc
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

try:
    from benchmarks.conftest import record_table
except ImportError:  # running as a script from the repo root
    def record_table(title, rendered):
        print(f"\n{rendered}\n")

try:
    from benchmarks._gates import Gate, enforce_gates  # noqa: E402
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _gates import Gate, enforce_gates  # noqa: E402

from repro import obs  # noqa: E402
from repro.analysis.reporting import format_table  # noqa: E402
from repro.cloud.adversary import CorruptionAttack, RelayAttack  # noqa: E402
from repro.cloud.provider import DataCentre  # noqa: E402
from repro.core.session import GeoProofSession  # noqa: E402
from repro.crypto.rng import DeterministicRNG  # noqa: E402
from repro.crypto.schnorr import SchnorrKeyPair, _generate_group  # noqa: E402
from repro.geo.coords import GeoPoint  # noqa: E402
from repro.por.parameters import TEST_PARAMS  # noqa: E402
from repro.service import AuditClient, AuditDaemon  # noqa: E402
from repro.storage.contract import InMemoryStorage  # noqa: E402
from repro.storage.hdd import IBM_36Z15  # noqa: E402

#: Acceptance bar: sustained end-to-end audits/s through the daemon.
#: Gated on the *metrics-enabled* run: instrumentation must not eat
#: the capability.
MIN_AUDITS_PER_S = 10_000.0

#: Acceptance bar: metrics-enabled / metrics-disabled throughput ratio.
#: 0.95 == "the observability plane may cost at most 5%".
MIN_OBS_THROUGHPUT_RATIO = 0.95

#: Acceptance bar: fraction of mixed-population daemon verdicts equal
#: to the scalar anchor.  1.0 -- one diverging verdict is a CI failure.
REQUIRED_EQUIVALENCE = 1.0

#: Throughput workload size (orders), submitted in pipelined waves.
N_ORDERS = 40_000
N_ORDERS_QUICK = 8_000
WAVE_ORDERS = 2_000
N_WARMUP = 1_000

#: Timed repetitions; the gate takes the best (standard defence
#: against noisy shared CI hosts -- the *capability* is what is gated,
#: and a transient co-tenant stall cannot create a false pass).
N_REPEATS = 3

#: Challenge rounds per throughput-workload audit (see the docstring).
K_THROUGHPUT = 2

#: Mixed-population sizes per scenario.
N_MIXED = 400
N_MIXED_QUICK = 120

#: The signing group for the bench: a small (insecure!) 256-bit group
#: so Schnorr cost stays realistic in *shape* (two modexps per sign)
#: without pure-Python bignum cost dominating the service overhead the
#: gate is about.
BENCH_GROUP = _generate_group(p_bits=256, q_bits=160, seed=0xBE9C4)

BRISBANE = GeoPoint(-27.4698, 153.0251)
SINGAPORE = GeoPoint(1.3521, 103.8198)


def build_bench_session(seed: str, *, n_files: int = 1, min_rounds: int = 4):
    """A session on the bench group with ``n_files`` outsourced files."""
    session = GeoProofSession.build(
        datacentre_location=BRISBANE,
        params=TEST_PARAMS,
        min_rounds=min_rounds,
        seed=seed,
        # Ring-buffer the audit log: the sustained run would otherwise
        # accumulate 40k transcript-bearing outcomes and the allocator
        # churn alone costs ~15% of throughput by the end.
        tpa_max_log=1_024,
    )
    session.verifier.keypair = SchnorrKeyPair.generate(
        BENCH_GROUP, seed=f"{seed}-verifier".encode()
    )
    data_rng = DeterministicRNG(f"{seed}-data")
    file_ids = []
    for i in range(n_files):
        file_id = f"bench-{i}".encode()
        session.outsource(
            file_id, data_rng.fork(str(i)).random_bytes(8_000)
        )
        file_ids.append(file_id)
    return session, file_ids


def ram_backend(session, file_ids) -> InMemoryStorage:
    """Copy the session's containers into the in-memory backend."""
    backend = InMemoryStorage("bench-ram")
    for file_id in file_ids:
        container = session.provider.home_of(file_id).server.store.file_meta(
            file_id
        )
        backend.put_file(container)
    return backend


# -- throughput ---------------------------------------------------------


def measure_throughput(n_orders: int, *, obs_enabled: bool = False) -> dict:
    """Sustained audits/s through daemon + TCP + pipelined client.

    With ``obs_enabled`` the whole stack is built under a live metrics
    registry + tracer (series bind at construction), and the result
    carries the registry snapshot -- the ``METRICS_daemon.json`` CI
    artifact.  The default run uses the disabled null registry, giving
    the overhead gate its baseline.
    """
    registry = obs.MetricsRegistry(enabled=obs_enabled)
    trace = obs.Tracer(enabled=obs_enabled)
    with obs.use_registry(registry, trace):
        session, file_ids = build_bench_session("bench-daemon")
        backend = ram_backend(session, file_ids)
        daemon = AuditDaemon(
            tpa=session.tpa,
            verifier=session.verifier,
            provider=backend,
            flush_batch=128,
            flush_ms=5.0,
        )
        file_id = file_ids[0]
        runs: list[dict] = []

        async def timed_run(client) -> dict:
            latencies: list[float] = []

            def on_done(future, wave_start):
                latencies.append(time.perf_counter() - wave_start)

            daemon.stats.flush_sizes.clear()
            gc.disable()
            try:
                start = time.perf_counter()
                done = 0
                while done < n_orders:
                    wave = min(WAVE_ORDERS, n_orders - done)
                    wave_start = time.perf_counter()
                    futures = await client.submit_many(
                        [(file_id, K_THROUGHPUT)] * wave
                    )
                    for future in futures:
                        future.add_done_callback(
                            lambda f, t0=wave_start: on_done(f, t0)
                        )
                    verdicts = await asyncio.gather(*futures)
                    assert all(v.accepted for v in verdicts)
                    done += wave
                elapsed_seconds = time.perf_counter() - start
            finally:
                gc.enable()
            quantiles = statistics.quantiles(latencies, n=100)
            flush_hist = daemon.stats.flush_sizes
            return {
                "elapsed_seconds": elapsed_seconds,
                "audits_per_s": n_orders / elapsed_seconds,
                "latency_p50_ms": statistics.median(latencies) * 1000.0,
                "latency_p99_ms": quantiles[98] * 1000.0,
                "n_flushes": flush_hist.count,
                "mean_flush_size": flush_hist.mean,
                "max_flush_size": flush_hist.max_value,
            }

        async def run() -> None:
            await daemon.start()
            async with AuditClient("127.0.0.1", daemon.port) as client:
                # Warm the caches (PRF bases, Schnorr tables, segment
                # memos) before the timed sections.
                await client.audit_many(
                    [(file_id, K_THROUGHPUT)] * N_WARMUP
                )
                for _ in range(N_REPEATS):
                    runs.append(await timed_run(client))
            await daemon.stop()

        asyncio.run(run())
    best = max(runs, key=lambda row: row["audits_per_s"])
    result = {
        "n_orders": n_orders,
        "k_rounds": K_THROUGHPUT,
        "n_repeats": N_REPEATS,
        "obs_enabled": obs_enabled,
        "all_audits_per_s": [row["audits_per_s"] for row in runs],
        **best,
    }
    if obs_enabled:
        result["metrics_snapshot"] = registry.snapshot()
        result["n_spans"] = trace.n_recorded
    return result


# -- equivalence --------------------------------------------------------


def _corruption_scenario(seed: str, n_orders: int):
    """3 files behind a 25 %-corrupting provider, mixed k."""

    def build():
        session, file_ids = build_bench_session(seed, n_files=3)
        session.provider.set_strategy(
            CorruptionAttack("home", 0.25, DeterministicRNG(f"{seed}-rot"))
        )
        plan = [
            (file_ids[i % 3], 3 + (i % 2)) for i in range(n_orders)
        ]
        return session, plan

    return build


def _relay_scenario(seed: str, n_orders: int):
    """Both files quietly moved to Singapore behind a relaying front.

    Every audit should fail the timing check (the relay forwards all
    requests, so this scenario is all-rejected; the corruption
    scenario supplies the honest/rejected mix).
    """

    def build():
        session, file_ids = build_bench_session(seed, n_files=2)
        session.provider.add_datacentre(
            DataCentre("remote", SINGAPORE, disk=IBM_36Z15)
        )
        for file_id in file_ids:
            session.provider.relocate(file_id, "remote")
        session.provider.set_strategy(RelayAttack("home", "remote"))
        plan = [(file_ids[i % 2], 3) for i in range(n_orders)]
        return session, plan

    return build


def measure_equivalence(scenario_name: str, build) -> dict:
    """Daemon verdicts vs the scalar anchor on one twin-session pair."""
    scalar_session, plan = build()
    scalar = [
        scalar_session.tpa.audit(
            file_id,
            scalar_session.verifier,
            scalar_session.provider,
            k=k,
        ).verdict
        for file_id, k in plan
    ]

    daemon_session, _ = build()
    daemon = AuditDaemon(
        tpa=daemon_session.tpa,
        verifier=daemon_session.verifier,
        provider=daemon_session.provider,
        flush_batch=32,
        flush_ms=2.0,
    )

    async def run():
        await daemon.start()
        try:
            async with AuditClient("127.0.0.1", daemon.port) as client:
                futures = await client.submit_many(plan)
                return await asyncio.gather(*futures)
        finally:
            await daemon.stop()

    served = asyncio.run(run())
    matches = sum(a == b for a, b in zip(scalar, served))
    rejected = sum(not verdict.accepted for verdict in scalar)
    return {
        "scenario": scenario_name,
        "n_orders": len(plan),
        "n_rejected": rejected,
        "n_accepted": len(plan) - rejected,
        "equivalence": matches / len(plan),
    }


# -- rendering ----------------------------------------------------------


def _render_throughput(row: dict) -> str:
    return format_table(
        ["orders", "k", "elapsed (s)", "audits/s", "p50 ms", "p99 ms",
         "flushes", "mean batch", "max batch"],
        [[
            row["n_orders"],
            row["k_rounds"],
            row["elapsed_seconds"],
            row["audits_per_s"],
            row["latency_p50_ms"],
            row["latency_p99_ms"],
            row["n_flushes"],
            row["mean_flush_size"],
            row["max_flush_size"],
        ]],
        title="Daemon sustained audit throughput (localhost, RAM backend)",
        decimals=2,
    )


def _render_equivalence(rows: list) -> str:
    return format_table(
        ["scenario", "orders", "accepted", "rejected", "verdicts equal"],
        [[
            row["scenario"],
            row["n_orders"],
            row["n_accepted"],
            row["n_rejected"],
            row["equivalence"],
        ] for row in rows],
        title="Daemon vs scalar anchor (mixed populations)",
        decimals=4,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized population")
    parser.add_argument("--out", type=Path, default=None,
                        help="write BENCH_daemon.json here")
    args = parser.parse_args(argv)

    n_orders = N_ORDERS_QUICK if args.quick else N_ORDERS
    n_mixed = N_MIXED_QUICK if args.quick else N_MIXED

    print(f"driving {n_orders} pipelined audits through the daemon...")
    baseline = measure_throughput(n_orders)
    print("again with the observability plane enabled...")
    throughput = measure_throughput(n_orders, obs_enabled=True)
    record_table("daemon-throughput", _render_throughput(throughput))
    obs_ratio = throughput["audits_per_s"] / baseline["audits_per_s"]
    print(
        f"obs overhead: {baseline['audits_per_s']:.0f} -> "
        f"{throughput['audits_per_s']:.0f} audits/s "
        f"(ratio {obs_ratio:.3f}, {throughput.get('n_spans', 0)} spans)"
    )

    print("replaying mixed populations against the scalar anchor...")
    equivalence = [
        measure_equivalence(
            "corruption", _corruption_scenario("bench-daemon-rot", n_mixed)
        ),
        measure_equivalence(
            "relay", _relay_scenario("bench-daemon-relay", n_mixed)
        ),
    ]
    record_table("daemon-equivalence", _render_equivalence(equivalence))

    gates = [
        Gate(
            name="daemon_sustained_audits_per_s",
            measured=throughput["audits_per_s"],
            required=MIN_AUDITS_PER_S,
            detail=f"{throughput['n_orders']} orders, k={K_THROUGHPUT}, "
                   f"p99 {throughput['latency_p99_ms']:.1f} ms, "
                   "metrics enabled",
        ),
        Gate(
            name="daemon_obs_overhead_ratio",
            measured=obs_ratio,
            required=MIN_OBS_THROUGHPUT_RATIO,
            detail=f"metrics on {throughput['audits_per_s']:.0f} vs off "
                   f"{baseline['audits_per_s']:.0f} audits/s "
                   "(best-of-repeats each)",
        ),
    ]
    for row in equivalence:
        gates.append(
            Gate(
                name=f"daemon_equivalence_{row['scenario']}",
                measured=row["equivalence"],
                required=REQUIRED_EQUIVALENCE,
                detail=f"{row['n_orders']} orders, "
                       f"{row['n_rejected']} rejected",
            )
        )
        # A mixed population that never rejects is not mixed.
        gates.append(
            Gate(
                name=f"daemon_{row['scenario']}_rejections_present",
                measured=float(row["n_rejected"]),
                required=1.0,
                detail="the adversary must actually be caught",
            )
        )
    exit_code = enforce_gates(gates, bench="bench_daemon")

    metrics_snapshot = throughput.pop("metrics_snapshot", None)
    if args.out:
        args.out.write_text(json.dumps(
            {
                "bench": "daemon",
                "quick": args.quick,
                "throughput": throughput,
                "baseline_obs_disabled": baseline,
                "obs_overhead_ratio": obs_ratio,
                "equivalence": equivalence,
                "gates": [gate.as_dict() for gate in gates],
            },
            indent=2,
        ))
        print(f"wrote {args.out}")
        if metrics_snapshot is not None:
            metrics_path = args.out.parent / "METRICS_daemon.json"
            metrics_path.write_text(
                json.dumps(metrics_snapshot, indent=2)
            )
            print(f"wrote {metrics_path}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
