"""Figure 5: the GeoProof protocol, end to end.

One full audit: TPA request -> verifier challenge -> k timed rounds ->
signed transcript -> four-step TPA verification.  Pins the paper's
timing decomposition: every honest round costs ~(LAN + Delta-t_L) and
stays under the Delta-t_max ~ 16 ms budget.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.por.parameters import TEST_PARAMS

BRISBANE = GeoPoint(-27.4698, 153.0251)


def build_loaded_session(seed="fig5", file_bytes=30_000):
    session = GeoProofSession.build(
        datacentre_location=BRISBANE, params=TEST_PARAMS, seed=seed
    )
    data = DeterministicRNG(f"{seed}-data").random_bytes(file_bytes)
    session.outsource(b"bench-file", data)
    return session


def test_fig5_full_audit(benchmark):
    session = build_loaded_session()

    outcome = benchmark(session.audit, b"bench-file", k=50)

    transcript = outcome.transcript
    rows = [
        ["rounds k", transcript.k],
        ["max RTT (Delta-t')", round(transcript.max_rtt_ms, 3)],
        ["mean RTT", round(transcript.mean_rtt_ms, 3)],
        ["budget (Delta-t_max)", round(outcome.verdict.rtt_max_ms, 3)],
        ["accepted", outcome.verdict.accepted],
        ["simulated audit ms", round(outcome.duration_ms, 1)],
    ]
    record_table(
        "fig5",
        format_table(
            ["quantity", "value"], rows, title="Fig. 5 -- GeoProof audit (honest)"
        ),
    )

    assert outcome.verdict.accepted
    # Round cost ~ disk (13.1 ms) + LAN (sub-ms): between 12 and 16 ms.
    assert 12.0 < transcript.max_rtt_ms < outcome.verdict.rtt_max_ms


def test_fig5_verification_only(benchmark):
    """The TPA-side cost: verify signature + k MACs + timing."""
    from repro.core.verification import verify_transcript

    session = build_loaded_session("fig5-verify")
    outcome = session.audit(b"bench-file", k=50)
    record = session.tpa.record(b"bench-file")

    verdict = benchmark(
        verify_transcript,
        outcome.transcript,
        outcome.request,
        verifier_public_key=session.verifier.public_key,
        mac_key=record.mac_key,
        params=record.params,
        region=record.sla.region,
        rtt_max_ms=record.sla.rtt_max_ms,
    )
    assert verdict.accepted


def test_fig5_setup_throughput(benchmark):
    """Client-side Encode: the five-step pipeline on a 30 kB file."""
    from repro.por.setup import PORKeys, setup_file

    keys = PORKeys.derive(b"fig5-throughput-master-key")
    data = DeterministicRNG("fig5-setup").random_bytes(30_000)

    encoded = benchmark(setup_file, data, keys, b"f", TEST_PARAMS)
    assert encoded.n_segments > 0


def test_fig5_k_scaling(benchmark):
    """Audit cost scales linearly in k (the paper's k-round phase)."""

    def sweep():
        session = build_loaded_session("fig5-k")
        durations = []
        for k in (10, 20, 40):
            outcome = session.audit(b"bench-file", k=k)
            durations.append((k, outcome.duration_ms))
        return durations

    durations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "fig5-k",
        format_table(
            ["k rounds", "simulated ms"],
            [[k, round(d, 1)] for k, d in durations],
            title="Fig. 5 -- audit duration vs k",
        ),
    )
    (k1, d1), _, (k3, d3) = durations
    assert d3 / d1 == pytest.approx(k3 / k1, rel=0.25)
