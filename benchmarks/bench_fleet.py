"""Fleet engine throughput, scheduling, engine and contention benches.

Four questions the single-session benches cannot answer:

1. **Throughput** -- how many files per second can the fleet audit as
   the queue grows, and what does batching per data centre save?
2. **Scheduling** -- with one misbehaving provider hidden at the back
   of a large registration order, how many *simulated hours* until
   each strategy catches the violation?  Risk-weighted scheduling
   must beat naive rotation: the violator's tenant declared the
   higher risk tolerance, and the strategy's expected-detection-gain
   score (:mod:`repro.analysis.scheduling` math) sends audits there
   first.
3. **Concurrency** -- on a 3-site fleet, how much does the event
   engine (per-datacentre audit lanes) cut simulated
   wall-clock-to-detection versus the serial slot loop, and how well
   do the lanes overlap?
4. **Contention** -- when audit lanes outnumber storage spindles
   (N lanes : M spindles) and the corrupted files sit at the back of
   a saturated hot lane, how much sooner does lane-aware
   work-stealing scheduling catch the rot than round-robin, and how
   many honest audits turn into contention-induced false timeouts?

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_fleet.py --quick --out BENCH_fleet.json

The standalone run compares both engines per strategy on the 3-site
detection scenario, sweeps the lanes:spindles contention grid, writes
a machine-readable record, and enforces the acceptance bars (readable
gate diff on regression, see ``benchmarks/_gates.py``):

* event-engine wall-clock-to-detection under round-robin at least
  ``MIN_EVENT_SPEEDUP`` times better than the slot loop's;
* work-stealing time-to-detection under contention strictly better
  than round-robin (``MIN_CONTENTION_SPEEDUP``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

try:
    import pytest
except ImportError:  # standalone CI mode needs no pytest
    pytest = None

try:
    from benchmarks.conftest import record_table
except ImportError:  # running as a script from the repo root
    def record_table(title, rendered):
        print(f"\n{rendered}\n")

try:
    from benchmarks._gates import Gate, enforce_gates  # noqa: E402
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _gates import Gate, enforce_gates  # noqa: E402

from repro import obs  # noqa: E402
from repro.analysis.reporting import format_table  # noqa: E402
from repro.fleet.demo import (  # noqa: E402
    build_contention_fleet,
    build_demo_fleet,
)
from repro.fleet.strategies import (  # noqa: E402
    DeadlineStrategy,
    RiskWeightedStrategy,
    RoundRobinStrategy,
    WorkStealingStrategy,
)

FLEET_SIZES = [25, 50, 100]
RUN_HOURS = 12.0

#: Acceptance bar: on the 3-site detection scenario the event engine's
#: simulated wall-clock-to-detection (round-robin, the strategy that
#: cannot hide the serial sweep) must beat the slot loop by this factor.
MIN_EVENT_SPEEDUP = 2.0

#: Acceptance bar: with lanes outnumbering spindles and the rot at the
#: back of the saturated hot lane, work stealing's simulated
#: time-to-detection must *strictly* beat round-robin's (both runs are
#: fully deterministic, so any ratio > 1 is a stable gate; the 1.05
#: margin just keeps "strictly" honest against float noise).
MIN_CONTENTION_SPEEDUP = 1.05

#: Acceptance bar: running the fleet with the observability plane fully
#: enabled (metrics registry + sim-domain tracing) may cost at most ~5%
#: wall time on the hot audit loop, i.e. disabled-to-enabled best-of-N
#: wall ratio must stay above this.
MIN_OBS_WALL_RATIO = 0.95

#: Best-of-N repeats per mode for the overhead measurement (wall-time
#: benches on shared runners need the minimum, not the mean).
OBS_REPEATS = 3


def run_fleet(
    n_files: int,
    strategy,
    *,
    violation=None,
    hours=RUN_HOURS,
    engine="slot",
):
    """Build and run one demo fleet.

    Returns (report, wall_seconds, setup_seconds): audit-loop wall time
    plus the outsourcing phase's aggregate `setup_file` wall time (the
    batch-PRP hot path the fleet instruments via
    ``AuditFleet.total_setup_seconds``).  The seed deliberately ignores
    ``engine`` so slot-vs-event comparisons audit the identical fleet.
    """
    fleet = build_demo_fleet(
        n_files=n_files,
        n_providers=3,
        strategy=strategy,
        seed=f"bench-fleet-{n_files}-{strategy.name}",
        violation=violation,
        slot_minutes=15.0,
        batch_size=8,
        engine=engine,
    )
    start = time.perf_counter()
    report = fleet.run(hours=hours)
    return report, time.perf_counter() - start, fleet.total_setup_seconds


def test_fleet_throughput_scaling(benchmark):
    """Audits/sec vs fleet size and strategy; batching amortisation."""
    rows = []
    for n_files in FLEET_SIZES:
        for strategy in (RoundRobinStrategy(), RiskWeightedStrategy()):
            report, wall_s, setup_s = run_fleet(n_files, strategy)
            rows.append(
                (
                    n_files,
                    strategy.name,
                    report.n_audits,
                    report.n_batches,
                    report.n_audits / wall_s,
                    report.overhead_saved_ms,
                    setup_s * 1000.0,
                )
            )
    # pytest-benchmark timing on the largest round-robin configuration.
    report = benchmark.pedantic(
        lambda: run_fleet(FLEET_SIZES[-1], RoundRobinStrategy())[0],
        rounds=1,
        iterations=1,
    )
    # The outsourcing phase is instrumented end to end; the relative
    # scalar-vs-batch regression gate lives in bench_prp.py (wall-time
    # thresholds here would be shared-runner flake).
    for n_files, _, _, _, _, _, setup_ms in rows:
        assert setup_ms > 0.0
    record_table(
        "fleet-throughput",
        format_table(
            ["files", "strategy", "audits", "batches", "audits/sec",
             "overhead saved ms", "outsource setup ms"],
            [list(row) for row in rows],
            title=f"Fleet throughput ({RUN_HOURS:.0f} simulated hours, "
            "3 providers)",
            decimals=1,
        ),
    )
    assert report.n_files == FLEET_SIZES[-1]
    assert report.n_providers == 3
    # Every registered file is audited at least once in the window.
    audited = {e.file_id for e in report.events}
    assert len(audited) == FLEET_SIZES[-1]
    # Batching amortises dispatch: strictly fewer batches than audits.
    for _, _, audits, batches, _, saved, _ in rows:
        assert batches < audits
        assert saved > 0


def test_risk_weighted_beats_round_robin_on_detection(benchmark):
    """The tentpole scheduling claim, on a 100-file fleet.

    One corrupting provider is onboarded last; naive rotation must
    sweep the honest backlog before it first touches a corrupt file,
    while risk-weighted scheduling goes straight to the declared
    high-risk tenant.
    """
    results = {}
    for strategy in (
        RoundRobinStrategy(),
        RiskWeightedStrategy(),
        DeadlineStrategy(),
    ):
        report, _, _ = run_fleet(
            100, strategy, violation="corrupt", hours=36.0
        )
        results[strategy.name] = report

    def detection(name):
        first = results[name].first_detection_hours()
        assert first is not None, f"{name} never caught the violation"
        return first

    rows = [
        (
            name,
            report.n_audits,
            detection(name),
            report.acceptance_rate,
            len(report.violations),
        )
        for name, report in results.items()
    ]
    record_table(
        "fleet-detection",
        format_table(
            ["strategy", "audits", "first detection (h)", "accept rate",
             "files flagged"],
            [list(row) for row in rows],
            title="Detection latency: 100 files, corrupting provider "
            "onboarded last",
            decimals=2,
        ),
    )
    # The paper-relevant ordering: risk-weighted catches the violation
    # in strictly fewer simulated hours than blind rotation.
    assert detection("risk-weighted") < detection("round-robin")
    # Honest tenants stay clean under every strategy.
    for report in results.values():
        for tenant in ("tenant-1", "tenant-2"):
            summary = report.tenant_summary(tenant)
            if summary is not None and summary.n_audits:
                assert summary.acceptance_rate == 1.0
    benchmark.pedantic(
        lambda: run_fleet(
            100, RiskWeightedStrategy(), violation="corrupt", hours=36.0
        )[0],
        rounds=1,
        iterations=1,
    )


# -- slot vs event engine (also the standalone CI gate) -----------------

def compare_engines(
    *, n_files: int = 60, hours: float = 36.0
) -> list[dict]:
    """Detection latency per strategy x engine on the 3-site scenario.

    One corrupting provider is onboarded last (the worst case for a
    serial sweep).  Each (strategy, engine) cell rebuilds the fleet
    from the same seed, so both engines audit the identical workload;
    the JSON rows carry wall-clock-to-detection, lane utilization and
    the concurrency speedup the lanes extracted.
    """
    rows = []
    for strategy_factory in (
        RoundRobinStrategy,
        RiskWeightedStrategy,
        DeadlineStrategy,
    ):
        per_engine = {}
        for engine in ("slot", "event"):
            report, _, _ = run_fleet(
                n_files,
                strategy_factory(),
                violation="corrupt",
                hours=hours,
                engine=engine,
            )
            per_engine[engine] = report
        for engine, report in per_engine.items():
            detection = report.first_detection_hours()
            assert detection is not None, (
                f"{report.strategy}/{engine} never caught the violation"
            )
            rows.append(
                {
                    "strategy": report.strategy,
                    "engine": engine,
                    "detection_hours": detection,
                    "n_audits": report.n_audits,
                    "n_batches": report.n_batches,
                    "mean_lane_utilization": (
                        sum(l.utilization for l in report.lanes)
                        / len(report.lanes)
                    ),
                    "peak_queue_depth": max(
                        l.peak_queue_depth for l in report.lanes
                    ),
                    "concurrency_speedup": report.concurrency_speedup,
                    # Real (wall-clock) seconds the TPAs spent in batch
                    # verdict flushes -- the verify-phase cost the
                    # batch verification plane amortizes (see
                    # bench_verify.py for the plane's own gates).
                    "verify_seconds": report.total_verify_seconds,
                    "detection_speedup_vs_slot": (
                        per_engine["slot"].first_detection_hours() / detection
                        if detection > 0
                        else float("inf")
                    ),
                }
            )
    return rows


def detection_speedup(rows: list[dict], strategy: str) -> float:
    """Slot-to-event wall-clock-to-detection ratio for one strategy."""
    row = next(
        r
        for r in rows
        if r["strategy"] == strategy and r["engine"] == "event"
    )
    return row["detection_speedup_vs_slot"]


def _render_engine_rows(rows: list[dict]) -> str:
    return format_table(
        ["strategy", "engine", "detect (h)", "audits", "lane util",
         "overlap", "verify (s)", "vs slot"],
        [
            [
                r["strategy"],
                r["engine"],
                r["detection_hours"],
                r["n_audits"],
                r["mean_lane_utilization"],
                r["concurrency_speedup"],
                r["verify_seconds"],
                r["detection_speedup_vs_slot"],
            ]
            for r in rows
        ],
        title="Slot vs event engine: 3 sites, corrupting provider "
        "onboarded last",
        decimals=3,
    )


def test_event_engine_beats_slot_on_detection(benchmark):
    """The concurrency claim, pytest-side: >= 2x faster detection."""
    rows = compare_engines()
    record_table("fleet-engines", _render_engine_rows(rows))
    assert detection_speedup(rows, "round-robin") >= MIN_EVENT_SPEEDUP
    # Lanes genuinely overlapped: simulated busy time across the three
    # sites exceeds the critical lane's span.
    event_rows = [r for r in rows if r["engine"] == "event"]
    assert all(r["concurrency_speedup"] > 1.0 for r in event_rows)
    benchmark.pedantic(
        lambda: run_fleet(
            25, RoundRobinStrategy(), violation="corrupt",
            hours=12.0, engine="event",
        )[0],
        rounds=1,
        iterations=1,
    )


# -- shared-spindle contention: work stealing vs round-robin ------------

def run_contention(
    strategy_name: str,
    *,
    spindles: int | None,
    hours: float,
    hot_files: int = 12,
) -> dict:
    """One cell of the lanes:spindles contention grid.

    Builds the canonical contention fleet (4 lanes, the last two hot
    files bit-rotted at rest on every replica) under the named
    strategy and measures the *worst* detection hour across the rotted
    files -- the time until all injected rot is caught.
    """
    strategy = (
        WorkStealingStrategy()
        if strategy_name == "work-stealing"
        else RoundRobinStrategy()
    )
    fleet, rotted = build_contention_fleet(
        strategy=strategy,
        hot_files=hot_files,
        batch_size=2,
        slot_minutes=0.0025,
        k_rounds=6,
        spindles=spindles,
    )
    report = fleet.run(hours=hours)
    detections = [
        report.detection_hours(file_id, "acme") for file_id in rotted
    ]
    detected = [d for d in detections if d is not None]
    all_caught = len(detected) == len(rotted)
    return {
        "strategy": strategy_name,
        "n_lanes": len(report.lanes),
        "n_spindles": len(report.spindles),
        "detection_hours": max(detected) if all_caught else None,
        "all_rot_caught": all_caught,
        "n_audits": report.n_audits,
        "n_stolen_audits": report.n_stolen_audits,
        "n_contention_timeouts": report.n_contention_timeouts,
        "n_shed_slots": report.n_shed_slots,
        "total_spindle_wait_ms": report.total_spindle_wait_ms,
        "mean_spindle_utilization": (
            sum(s.utilization for s in report.spindles)
            / len(report.spindles)
        ),
    }


def contention_sweep(*, hours: float) -> list[dict]:
    """The N lanes : M spindles grid, both strategies per cell.

    ``spindles=None`` is the dedicated baseline (every lane its own
    disk) -- there stealing has nothing to relieve, so the interesting
    gate lives in the shared cells (4 lanes on 2, then 1, spindles).
    """
    rows = []
    for spindles in (None, 2, 1):
        for strategy_name in ("round-robin", "work-stealing"):
            row = run_contention(
                strategy_name, spindles=spindles, hours=hours
            )
            row["spindle_config"] = (
                "dedicated" if spindles is None else str(spindles)
            )
            rows.append(row)
    return rows


def contention_speedup(rows: list[dict], spindle_config: str) -> float:
    """Round-robin-to-work-stealing detection ratio for one grid cell."""
    per_strategy = {
        r["strategy"]: r
        for r in rows
        if r["spindle_config"] == spindle_config
    }
    stealing = per_strategy["work-stealing"]["detection_hours"]
    baseline = per_strategy["round-robin"]["detection_hours"]
    if stealing is None:
        return 0.0
    if baseline is None:
        return float("inf")
    return baseline / stealing if stealing > 0 else float("inf")


def _render_contention_rows(rows: list[dict]) -> str:
    return format_table(
        ["spindles", "strategy", "detect (h)", "audits", "stolen",
         "ct timeouts", "shed", "wait (s)", "spindle util"],
        [
            [
                r["spindle_config"],
                r["strategy"],
                (
                    r["detection_hours"]
                    if r["detection_hours"] is not None
                    else float("nan")
                ),
                r["n_audits"],
                r["n_stolen_audits"],
                r["n_contention_timeouts"],
                r["n_shed_slots"],
                r["total_spindle_wait_ms"] / 1000.0,
                r["mean_spindle_utilization"],
            ]
            for r in rows
        ],
        title="Contention grid: 4 audit lanes, rot at the back of the "
        "saturated hot lane",
        decimals=4,
    )


def test_work_stealing_beats_round_robin_under_contention(benchmark):
    """The lane-aware scheduling claim: stealing cuts detection time."""
    rows = contention_sweep(hours=0.02)
    record_table("fleet-contention", _render_contention_rows(rows))
    for config in ("2", "1"):
        assert contention_speedup(rows, config) >= MIN_CONTENTION_SPEEDUP
    shared = [r for r in rows if r["spindle_config"] != "dedicated"]
    # The contention is real: queue waits and induced timeouts appear
    # in the shared cells...
    assert all(r["total_spindle_wait_ms"] > 0 for r in shared)
    assert any(r["n_contention_timeouts"] > 0 for r in shared)
    # ...and stealing actually migrated audits.
    assert all(
        r["n_stolen_audits"] > 0
        for r in shared
        if r["strategy"] == "work-stealing"
    )
    benchmark.pedantic(
        lambda: run_contention("work-stealing", spindles=2, hours=0.01),
        rounds=1,
        iterations=1,
    )


# -- observability overhead: metrics + tracing on the hot loop ----------

def measure_obs_overhead(*, n_files: int, hours: float) -> dict:
    """Best-of-N wall times for one fixed workload, obs off vs on.

    Both modes rebuild the identical event-engine fleet from the same
    seed and run it under a scoped registry/tracer pair
    (:func:`repro.obs.use_registry`), so the only difference between
    the two series is the instrumentation itself: per-lane counters,
    spindle wait histograms and sim-domain batch spans.
    """

    def best_wall(enabled: bool) -> tuple[float, dict | None, int]:
        best_s = float("inf")
        snapshot = None
        n_spans = 0
        for _ in range(OBS_REPEATS):
            registry = obs.MetricsRegistry(enabled=enabled)
            trace = obs.Tracer(enabled=enabled)
            with obs.use_registry(registry, trace):
                _, wall_s, _ = run_fleet(
                    n_files,
                    RoundRobinStrategy(),
                    violation="corrupt",
                    hours=hours,
                    engine="event",
                )
            if wall_s < best_s:
                best_s = wall_s
                snapshot = registry.snapshot() if enabled else None
                n_spans = trace.n_recorded
        return best_s, snapshot, n_spans

    disabled_wall_s, _, _ = best_wall(False)
    enabled_wall_s, snapshot, n_spans = best_wall(True)
    return {
        "disabled_wall_s": disabled_wall_s,
        "enabled_wall_s": enabled_wall_s,
        "wall_ratio": (
            disabled_wall_s / enabled_wall_s
            if enabled_wall_s > 0
            else float("inf")
        ),
        "n_spans": n_spans,
        "metrics_snapshot": snapshot,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fleet engine + contention benchmark (CI gates)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller fleet, shorter horizon",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_fleet.json"),
        help="where to write the JSON record (default: ./BENCH_fleet.json)",
    )
    args = parser.parse_args(argv)
    n_files, hours = (30, 24.0) if args.quick else (60, 36.0)
    contention_hours = 0.01 if args.quick else 0.02

    rows = compare_engines(n_files=n_files, hours=hours)
    print(_render_engine_rows(rows))
    contention_rows = contention_sweep(hours=contention_hours)
    print(_render_contention_rows(contention_rows))
    overhead = measure_obs_overhead(n_files=n_files, hours=hours)
    print(
        "\nobs overhead: disabled "
        f"{overhead['disabled_wall_s']:.3f}s, enabled "
        f"{overhead['enabled_wall_s']:.3f}s (ratio "
        f"{overhead['wall_ratio']:.3f}, {overhead['n_spans']} spans)"
    )

    gates = [
        Gate(
            name="event-vs-slot detection speedup",
            measured=detection_speedup(rows, "round-robin"),
            required=MIN_EVENT_SPEEDUP,
            detail="round-robin, 3 sites, corrupting provider last",
        ),
    ]
    for config in ("2", "1"):
        gates.append(
            Gate(
                name=f"work-stealing speedup (4 lanes : {config} spindles)",
                measured=contention_speedup(contention_rows, config),
                required=MIN_CONTENTION_SPEEDUP,
                detail="time to catch all rot, vs round-robin",
            )
        )
    gates.append(
        Gate(
            name="fleet_obs_overhead_ratio",
            measured=overhead["wall_ratio"],
            required=MIN_OBS_WALL_RATIO,
            detail=(
                "disabled/enabled best-of-"
                f"{OBS_REPEATS} wall, metrics + tracing on"
            ),
        )
    )
    metrics_snapshot = overhead.pop("metrics_snapshot", None)

    record = {
        "bench": "fleet",
        "scenario": {
            "n_providers": 3,
            "n_files": n_files,
            "hours": hours,
            "violation": "corrupt",
        },
        "contention_scenario": {
            "n_lanes": 4,
            "hot_files": 12,
            "rotted_files": 2,
            "hours": contention_hours,
        },
        "min_event_speedup": MIN_EVENT_SPEEDUP,
        "min_contention_speedup": MIN_CONTENTION_SPEEDUP,
        "min_obs_wall_ratio": MIN_OBS_WALL_RATIO,
        "rows": rows,
        "contention_rows": contention_rows,
        "obs_overhead": overhead,
        "gates": [gate.as_dict() for gate in gates],
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if metrics_snapshot is not None:
        metrics_out = args.out.parent / "METRICS_fleet.json"
        metrics_out.write_text(json.dumps(metrics_snapshot, indent=2) + "\n")
        print(f"wrote {metrics_out}")

    return enforce_gates(gates, bench="bench_fleet")


if __name__ == "__main__":
    sys.exit(main())
