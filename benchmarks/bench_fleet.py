"""Fleet engine throughput and strategy detection-latency comparison.

Two questions the single-session benches cannot answer:

1. **Throughput** -- how many files per second can the fleet audit as
   the queue grows, and what does batching per data centre save?
2. **Scheduling** -- with one misbehaving provider hidden at the back
   of a large registration order, how many *simulated hours* until
   each strategy catches the violation?  Risk-weighted scheduling
   must beat naive rotation: the violator's tenant declared the
   higher risk tolerance, and the strategy's expected-detection-gain
   score (:mod:`repro.analysis.scheduling` math) sends audits there
   first.
"""

import time

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.fleet.demo import build_demo_fleet
from repro.fleet.strategies import (
    DeadlineStrategy,
    RiskWeightedStrategy,
    RoundRobinStrategy,
)

FLEET_SIZES = [25, 50, 100]
RUN_HOURS = 12.0


def run_fleet(n_files: int, strategy, *, violation=None, hours=RUN_HOURS):
    """Build and run one demo fleet.

    Returns (report, wall_seconds, setup_seconds): audit-loop wall time
    plus the outsourcing phase's aggregate `setup_file` wall time (the
    batch-PRP hot path the fleet instruments via
    ``AuditFleet.total_setup_seconds``).
    """
    fleet = build_demo_fleet(
        n_files=n_files,
        n_providers=3,
        strategy=strategy,
        seed=f"bench-fleet-{n_files}-{strategy.name}",
        violation=violation,
        slot_minutes=15.0,
        batch_size=8,
    )
    start = time.perf_counter()
    report = fleet.run(hours=hours)
    return report, time.perf_counter() - start, fleet.total_setup_seconds


def test_fleet_throughput_scaling(benchmark):
    """Audits/sec vs fleet size and strategy; batching amortisation."""
    rows = []
    for n_files in FLEET_SIZES:
        for strategy in (RoundRobinStrategy(), RiskWeightedStrategy()):
            report, wall_s, setup_s = run_fleet(n_files, strategy)
            rows.append(
                (
                    n_files,
                    strategy.name,
                    report.n_audits,
                    report.n_batches,
                    report.n_audits / wall_s,
                    report.overhead_saved_ms,
                    setup_s * 1000.0,
                )
            )
    # pytest-benchmark timing on the largest round-robin configuration.
    report = benchmark.pedantic(
        lambda: run_fleet(FLEET_SIZES[-1], RoundRobinStrategy())[0],
        rounds=1,
        iterations=1,
    )
    # The outsourcing phase is instrumented end to end; the relative
    # scalar-vs-batch regression gate lives in bench_prp.py (wall-time
    # thresholds here would be shared-runner flake).
    for n_files, _, _, _, _, _, setup_ms in rows:
        assert setup_ms > 0.0
    record_table(
        "fleet-throughput",
        format_table(
            ["files", "strategy", "audits", "batches", "audits/sec",
             "overhead saved ms", "outsource setup ms"],
            [list(row) for row in rows],
            title=f"Fleet throughput ({RUN_HOURS:.0f} simulated hours, "
            "3 providers)",
            decimals=1,
        ),
    )
    assert report.n_files == FLEET_SIZES[-1]
    assert report.n_providers == 3
    # Every registered file is audited at least once in the window.
    audited = {e.file_id for e in report.events}
    assert len(audited) == FLEET_SIZES[-1]
    # Batching amortises dispatch: strictly fewer batches than audits.
    for _, _, audits, batches, _, saved, _ in rows:
        assert batches < audits
        assert saved > 0


def test_risk_weighted_beats_round_robin_on_detection(benchmark):
    """The tentpole scheduling claim, on a 100-file fleet.

    One corrupting provider is onboarded last; naive rotation must
    sweep the honest backlog before it first touches a corrupt file,
    while risk-weighted scheduling goes straight to the declared
    high-risk tenant.
    """
    results = {}
    for strategy in (
        RoundRobinStrategy(),
        RiskWeightedStrategy(),
        DeadlineStrategy(),
    ):
        report, _, _ = run_fleet(
            100, strategy, violation="corrupt", hours=36.0
        )
        results[strategy.name] = report

    def detection(name):
        first = results[name].first_detection_hours()
        assert first is not None, f"{name} never caught the violation"
        return first

    rows = [
        (
            name,
            report.n_audits,
            detection(name),
            report.acceptance_rate,
            len(report.violations),
        )
        for name, report in results.items()
    ]
    record_table(
        "fleet-detection",
        format_table(
            ["strategy", "audits", "first detection (h)", "accept rate",
             "files flagged"],
            [list(row) for row in rows],
            title="Detection latency: 100 files, corrupting provider "
            "onboarded last",
            decimals=2,
        ),
    )
    # The paper-relevant ordering: risk-weighted catches the violation
    # in strictly fewer simulated hours than blind rotation.
    assert detection("risk-weighted") < detection("round-robin")
    # Honest tenants stay clean under every strategy.
    for report in results.values():
        for tenant in ("tenant-1", "tenant-2"):
            summary = report.tenant_summary(tenant)
            if summary is not None and summary.n_audits:
                assert summary.acceptance_rate == 1.0
    benchmark.pedantic(
        lambda: run_fleet(
            100, RiskWeightedStrategy(), violation="corrupt", hours=36.0
        )[0],
        rounds=1,
        iterations=1,
    )
