"""Figure 6 + claim C3: the relay attack and the distance bounds.

The paper's arithmetic: Delta-t_max ~= 16 ms; a relaying provider with
IBM 36Z15 disks at the remote end can hide at most ~360 km away (paper
convention) / ~713 km (tight convention).  The sweep shows where
detection actually flips in the simulated deployment, and the margin
ablation quantifies the false-accept/false-reject trade-off the margin
parameter buys.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.experiments import (
    fig6_paper_bound_km,
    fig6_relay_sweep,
    fig6_tight_bound_km,
)
from repro.analysis.reporting import format_table
from repro.core.calibration import calibrate_rtt_max, margin_headroom_km


def test_fig6_relay_sweep(benchmark):
    rows = benchmark.pedantic(
        fig6_relay_sweep,
        kwargs={"k": 10},
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        ["relay km", "max RTT ms", "budget ms", "detected"],
        [[r.relay_distance_km, r.max_rtt_ms, r.rtt_max_ms, r.detected] for r in rows],
        title=(
            "Fig. 6 -- relay attack vs distance "
            f"(paper bound {fig6_paper_bound_km():.0f} km, "
            f"tight bound {fig6_tight_bound_km():.0f} km)"
        ),
        decimals=2,
    )
    record_table("fig6", rendered)

    # Shape 1: honest local serving accepted; all relays detected.  In
    # our Internet model the base RTT (~16 ms last-mile+routing floor)
    # already exceeds the slack, so detection holds even *below* the
    # paper's propagation-only 360 km bound -- the paper itself notes
    # "in practice, this number is much smaller".
    assert not rows[0].detected
    assert all(r.detected for r in rows if r.relay_distance_km > 0)

    # Shape 2: observed RTT grows monotonically with relay distance.
    relayed = [r for r in rows if r.relay_distance_km > 0]
    rtts = [r.max_rtt_ms for r in relayed]
    assert rtts == sorted(rtts)


def test_fig6_paper_bound_arithmetic(benchmark):
    """C3: 4/9 * 300 km/ms * 5.406 ms / 2 = 360.4 km."""
    bound = benchmark(fig6_paper_bound_km)
    assert bound == pytest.approx(360.4, abs=0.5)


def test_fig6_budget_arithmetic(benchmark):
    """C3: Delta-t_max = 3 + 13.1055 ~= 16 ms."""
    budget = benchmark(calibrate_rtt_max)
    assert budget.rtt_max_ms == pytest.approx(16.1055, abs=1e-3)


def test_fig6_margin_ablation(benchmark):
    """Ablation: accept-margin vs relay headroom.

    Every millisecond of margin added for honest-jitter tolerance buys
    a relay ~67 km of extra hiding distance -- the core operational
    trade-off when deploying GeoProof.
    """

    def sweep():
        return [
            (margin, margin_headroom_km(margin), fig6_tight_bound_km(margin))
            for margin in (0.0, 1.0, 2.0, 5.0, 10.0)
        ]

    rows = benchmark(sweep)
    rendered = format_table(
        ["margin ms", "headroom km", "total relay bound km"],
        [list(r) for r in rows],
        title="Ablation -- timing margin vs relay headroom",
        decimals=1,
    )
    record_table("fig6-margin", rendered)
    for margin, headroom, bound in rows:
        assert headroom == pytest.approx(margin * 400.0 / 3.0 / 2.0, rel=1e-6)
    bounds = [bound for _, _, bound in rows]
    assert bounds == sorted(bounds)
