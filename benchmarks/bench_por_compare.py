"""Section IV: MAC-based POR vs sentinel POR, at equal detection power.

The paper adopts the MAC variant "for simplicity"; this bench prints
the quantitative version of that choice for a 1 GB file at the paper's
operating point (eps = 0.5 %, 71.3 % per-audit detection) and times
both schemes' live challenge/verify paths.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.crypto.rng import DeterministicRNG
from repro.por.compare import compare_schemes, equal_detection_parameters
from repro.por.mac_por import MacPORClient, MacPORServer
from repro.por.parameters import TEST_PARAMS
from repro.por.sentinel_por import SentinelPORClient, SentinelPORServer
from repro.por.setup import PORKeys, setup_file

GB = 1024**3


def test_scheme_cost_cards(benchmark):
    cards = benchmark(compare_schemes, GB)
    q = equal_detection_parameters(0.005, 0.713)
    rendered = format_table(
        ["scheme", "storage ovh", "challenge B", "response B", "audits", "state B"],
        [
            [
                card.scheme,
                f"{card.storage_overhead_fraction:.2%}",
                card.challenge_bytes,
                card.response_bytes,
                "inf" if card.audits_supported == float("inf") else int(card.audits_supported),
                card.client_state_bytes,
            ]
            for card in cards
        ],
        title=(
            f"Section IV -- POS schemes on 1 GB at equal detection "
            f"(eps=0.5 %, q={q})"
        ),
    )
    record_table("por-compare", rendered)

    mac, sentinel = cards
    assert mac.audits_supported == float("inf")
    assert sentinel.audits_supported == 365
    assert mac.response_bytes > sentinel.response_bytes
    assert mac.data_proven_per_audit_bytes > 0 == sentinel.data_proven_per_audit_bytes


def test_mac_por_live_audit(benchmark):
    """Challenge + respond + verify on the live MAC-POR stack."""
    keys = PORKeys.derive(b"compare-bench-master-key-00")
    data = DeterministicRNG("compare-mac").random_bytes(40_000)
    encoded = setup_file(data, keys, b"f", TEST_PARAMS)
    server = MacPORServer(encoded)
    client = MacPORClient(keys.mac_key, b"f", encoded.n_segments, TEST_PARAMS)
    rng = DeterministicRNG("compare-mac-audits")

    def audit():
        challenge = client.make_challenge(50, rng)
        return client.verify_response(challenge, server.respond(challenge))

    report = benchmark(audit)
    assert report.ok


def test_sentinel_por_live_audit(benchmark):
    """Challenge + respond + verify on the live sentinel stack."""
    client = SentinelPORClient(
        b"compare-bench-master-key-00", b"f", 5000, TEST_PARAMS
    )
    data = DeterministicRNG("compare-sentinel").random_bytes(20_000)
    server = SentinelPORServer(client.encode(data))

    def audit():
        challenge = client.make_challenge(50)
        return client.verify_response(challenge, server.respond(challenge))

    # Sentinels are consumable (the scheme's defining cost): cap the
    # measurement at the supply -- 5000 sentinels / 50 per audit = 100
    # runs; use 80 and leave headroom.
    assert benchmark.pedantic(audit, rounds=80, iterations=1)
