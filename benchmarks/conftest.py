"""Benchmark-suite configuration.

Every bench both *times* the reproduction code (pytest-benchmark) and
*prints* the regenerated table/figure rows next to the paper's values,
with assertions pinning the shape (who wins, by what factor, where
crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the regenerated tables; without it they appear only in this
file's terminal summary hook.)
"""

from __future__ import annotations

import pytest

#: Collected (title, rendered table) pairs, printed at session end so
#: the regenerated tables are visible even without -s.
_RENDERED: list[tuple[str, str]] = []


def record_table(title: str, rendered: str) -> None:
    """Register a regenerated table for the end-of-run report."""
    print(f"\n{rendered}\n")
    _RENDERED.append((title, rendered))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.write_sep("=", "regenerated paper tables/figures")
    for title, rendered in _RENDERED:
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
    _RENDERED.clear()
