"""Scalar vs batch Feistel permutation throughput (the setup hot path).

ROADMAP's profiling item: ``crypto.prp.permute_list`` dominated
``setup_file`` (~65 % of outsourcing cost) because every block position
paid its own HMAC chain per Feistel round per cycle-walk step.  The
batch engine evaluates each round once per *distinct* half-value and
walks all positions as a shrinking frontier, so the same permutation
costs ``O(rounds * sqrt(n))`` digests instead of ``O(rounds * n)``.

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_prp.py --quick --out BENCH_prp.json

It measures blocks/sec for the legacy scalar path (per-index
``forward`` on a fresh instance, exactly what ``permute_list`` used to
do) against the batch ``permute_list``, asserts the >= 5x acceptance
bar on the 10k-block domain, and writes the numbers as JSON so CI
archives a machine-readable record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.crypto.prp import BlockPermutation  # noqa: E402

#: Domain sizes measured by the full run; --quick keeps the first two.
DOMAIN_SIZES = [1_000, 10_000, 50_000]

#: Acceptance bar: batch must beat scalar by at least this factor on
#: the 10k-block domain (ISSUE 2 / ROADMAP hot-path item).
MIN_SPEEDUP_10K = 5.0

KEY = b"bench-prp-key"


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_scalar(n: int) -> float:
    """Seconds to permute ``n`` items the pre-batch way.

    A fresh instance's ``forward`` never consults a cached table, so
    this is byte-for-byte the legacy ``permute_list`` loop: one cycle
    walk (six HMACs per step) per index.
    """
    perm = BlockPermutation(KEY, n)
    items = list(range(n))

    def run() -> None:
        out = [None] * n
        for i, item in enumerate(items):
            out[perm.forward(i)] = item

    return _time(run)


def bench_batch(n: int) -> float:
    """Seconds for the batch ``permute_list`` (table built per call)."""
    items = list(range(n))

    def run() -> None:
        BlockPermutation(KEY, n).permute_list(items)

    return _time(run)


def run_bench(sizes: list[int]) -> list[dict]:
    """Measure both paths per size; sanity-check they agree."""
    rows = []
    for n in sizes:
        check = list(range(n))
        perm = BlockPermutation(KEY, n)
        assert perm.unpermute_list(perm.permute_list(check)) == check
        scalar_perm = BlockPermutation(KEY, n)
        assert perm.forward_many(range(min(n, 64))) == [
            scalar_perm.forward(i) for i in range(min(n, 64))
        ]
        scalar_s = bench_scalar(n)
        batch_s = bench_batch(n)
        rows.append(
            {
                "blocks": n,
                "scalar_blocks_per_sec": n / scalar_s,
                "batch_blocks_per_sec": n / batch_s,
                "speedup": scalar_s / batch_s,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: only the 1k and 10k domains",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_prp.json"),
        help="where to write the JSON record (default: ./BENCH_prp.json)",
    )
    args = parser.parse_args(argv)
    sizes = DOMAIN_SIZES[:2] if args.quick else DOMAIN_SIZES

    rows = run_bench(sizes)
    print(
        format_table(
            ["blocks", "scalar blk/s", "batch blk/s", "speedup"],
            [
                [
                    r["blocks"],
                    r["scalar_blocks_per_sec"],
                    r["batch_blocks_per_sec"],
                    r["speedup"],
                ]
                for r in rows
            ],
            title="Feistel permutation throughput: scalar vs batch engine",
            decimals=1,
        )
    )

    record = {
        "bench": "prp",
        "unit": "blocks/sec",
        "min_speedup_10k": MIN_SPEEDUP_10K,
        "rows": rows,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    row_10k = next(r for r in rows if r["blocks"] == 10_000)
    if row_10k["speedup"] < MIN_SPEEDUP_10K:
        print(
            f"FAIL: 10k-block speedup {row_10k['speedup']:.1f}x "
            f"< required {MIN_SPEEDUP_10K:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: 10k-block speedup {row_10k['speedup']:.1f}x "
        f">= {MIN_SPEEDUP_10K:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
