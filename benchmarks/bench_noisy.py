"""Noise-tolerant distance bounding: the robustness/security frontier.

The paper's survey names noisy-channel distance bounding ([40], [29])
as the practical variant; this bench maps the frontier -- for channel
bit-error rates from 0 to 10 %, the tolerance t needed to keep honest
false-rejects under 1 %, what that concedes to a pre-ask adversary,
and how many extra rounds buy the security back.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.distbound.noisy import (
    adversary_acceptance,
    choose_threshold,
    honest_acceptance,
)


def test_noise_tolerance_frontier(benchmark):
    def sweep():
        rows = []
        for bit_error_rate in (0.0, 0.01, 0.03, 0.05, 0.10):
            threshold = choose_threshold(
                64, bit_error_rate, target_false_reject=0.01
            )
            rows.append(
                (
                    bit_error_rate,
                    threshold,
                    honest_acceptance(64, threshold, bit_error_rate),
                    adversary_acceptance(64, threshold),
                )
            )
        return rows

    rows = benchmark(sweep)
    rendered = format_table(
        ["channel BER", "tolerance t", "honest accept", "adversary accept"],
        [
            [f"{ber:.0%}", t, f"{honest:.4f}", f"{adv:.2e}"]
            for ber, t, honest, adv in rows
        ],
        title="Noisy distance bounding -- n = 64 rounds, <= 1 % false reject",
    )
    record_table("noisy-frontier", rendered)

    # Shape: tolerance grows with noise; honest acceptance holds; the
    # adversary's acceptance grows monotonically with tolerance.
    thresholds = [t for _, t, _, _ in rows]
    assert thresholds == sorted(thresholds)
    assert all(honest >= 0.99 for _, _, honest, _ in rows)
    adversary_rates = [adv for *_, adv in rows]
    assert adversary_rates == sorted(adversary_rates)


def test_rounds_buy_security_back(benchmark):
    """At 5 % BER: how many rounds restore 2^-20 adversary acceptance?"""

    def solve():
        rows = []
        for n_rounds in (32, 64, 128, 256):
            threshold = choose_threshold(
                n_rounds, 0.05, target_false_reject=0.01
            )
            rows.append(
                (n_rounds, threshold, adversary_acceptance(n_rounds, threshold))
            )
        return rows

    rows = benchmark(solve)
    rendered = format_table(
        ["rounds n", "tolerance t", "adversary accept"],
        [[n, t, f"{adv:.2e}"] for n, t, adv in rows],
        title="Noisy distance bounding -- security vs round count at 5 % BER",
    )
    record_table("noisy-rounds", rendered)
    adversary_rates = [adv for _, _, adv in rows]
    assert adversary_rates == sorted(adversary_rates, reverse=True)
    assert adversary_rates[-1] < 2.0**-20
