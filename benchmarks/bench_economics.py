"""Cache/prefetch economics: analytic-vs-simulated CI gates.

Three claims the economics engine stands on, enforced as gates:

1. **The closed-form LRU model is honest.**  Under uniform PRF
   challenges the analytic hit rate ``min(c, n) / n`` must track a
   *real* :class:`~repro.storage.cache.LRUCache` driven with the
   verifier's exact drawing discipline, across a (cache size, file
   size, k) grid -- both in the synthetic harness
   (:func:`~repro.economics.cache_model.simulate_hit_rate`) and inside
   full fleet campaign runs (the adversary's measured front-cache hit
   rate).
2. **Detection meets the paper bound.**  Every campaign sweep cell's
   observed per-audit detection rate must meet the
   ``1 - (cache/file)^k`` bound (within the documented statistical
   slack -- see :attr:`~repro.economics.campaign.CampaignCell.bound_slack`).
3. **Adversaries don't break the engine anchor.**  The PR 3/PR 4
   slot-vs-event stream-equivalence anchor must still hold with a
   prefetch-relay adversary injected: concurrency changes *when*
   audits run, never what they detect.

Runs standalone (no pytest needed) and doubles as the CI smoke bench::

    python benchmarks/bench_economics.py --quick --out BENCH_economics.json
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

try:
    from benchmarks.conftest import record_table
except ImportError:  # running as a script from the repo root
    def record_table(title, rendered):
        print(f"\n{rendered}\n")

try:
    from benchmarks._gates import Gate, enforce_gates  # noqa: E402
except ImportError:  # running as a script from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _gates import Gate, enforce_gates  # noqa: E402

from repro.analysis.reporting import format_table  # noqa: E402
from repro.economics import (  # noqa: E402
    AdversaryCampaign,
    LRUHitModel,
    build_economics_report,
    simulate_hit_rate,
)

#: Acceptance bar: worst |analytic - simulated| hit rate over the
#: synthetic (cache, file, k) grid.
MAX_SYNTHETIC_HIT_ERROR = 0.05

#: Acceptance bar: worst |analytic - simulated| hit rate measured off
#: the injected adversary's real front cache across campaign cells.
#: Looser than the synthetic bar: campaign runs see far fewer audits
#: per cell, and prewarm rounding adds a few entries of slack.
MAX_CAMPAIGN_HIT_ERROR = 0.08

#: The synthetic cross-validation grid: (n_segments, cache_fraction,
#: k_rounds) cells, each simulated with enough audits for the sample
#: mean to settle.
SYNTHETIC_GRID = [
    (64, 0.0, 4),
    (64, 0.5, 4),
    (64, 1.0, 4),
    (256, 0.25, 6),
    (256, 0.75, 6),
    (512, 0.1, 8),
    (512, 0.9, 8),
    (1024, 0.5, 10),
]

#: Wire bytes per cached entry in the synthetic grid (the real
#: campaign measures its own).
ENTRY_BYTES = 30


def synthetic_sweep(n_audits: int) -> list[dict]:
    """Analytic vs simulated hit rate over the property grid."""
    rows = []
    for n_segments, fraction, k_rounds in SYNTHETIC_GRID:
        cache_bytes = round(fraction * n_segments) * ENTRY_BYTES
        model = LRUHitModel(
            cache_bytes=cache_bytes,
            entry_bytes=ENTRY_BYTES,
            n_segments=n_segments,
        )
        simulated = simulate_hit_rate(
            cache_bytes=cache_bytes,
            entry_bytes=ENTRY_BYTES,
            n_segments=n_segments,
            n_audits=n_audits,
            k_rounds=k_rounds,
            seed=f"bench-economics-{n_segments}-{fraction}-{k_rounds}",
        )
        rows.append(
            {
                "n_segments": n_segments,
                "cache_fraction": fraction,
                "k_rounds": k_rounds,
                "analytic_hit_rate": model.hit_rate,
                "simulated_hit_rate": simulated,
                "error": abs(model.hit_rate - simulated),
                "detection_bound": model.paper_bound(k_rounds),
                "detection_exact": model.detection_probability(k_rounds),
            }
        )
    return rows


def _render_synthetic(rows: list[dict]) -> str:
    return format_table(
        ["segments", "frac", "k", "hit (model)", "hit (sim)", "error",
         "bound", "exact"],
        [
            [
                r["n_segments"],
                r["cache_fraction"],
                r["k_rounds"],
                r["analytic_hit_rate"],
                r["simulated_hit_rate"],
                r["error"],
                r["detection_bound"],
                r["detection_exact"],
            ]
            for r in rows
        ],
        title="LRU hit rate: closed form vs simulated cache "
        "(uniform PRF challenges)",
        decimals=4,
    )


def run_campaign(*, hours: float, n_files: int):
    """The 3-site prefetch-relay campaign both gates read."""
    campaign = AdversaryCampaign(
        n_providers=3,
        n_files=n_files,
        k_rounds=6,
        hours=hours,
        seed="bench-economics",
    )
    return build_economics_report(campaign, check_equivalence=True)


def _render_campaign(report) -> str:
    return format_table(
        ["engine", "frac", "hit (model)", "hit (sim)", "bound",
         "observed", "margin", "slack", "audits", "first det (h)"],
        [
            [
                cell.engine,
                cell.cache_fraction,
                cell.analytic_hit_rate,
                cell.simulated_hit_rate,
                cell.detection_bound,
                cell.observed_detection_rate,
                cell.bound_margin,
                cell.bound_slack,
                cell.victim_audits,
                (cell.first_detection_hours
                 if cell.first_detection_hours is not None else "-"),
            ]
            for cell in report.cells
        ],
        title="Campaign sweep: detection vs the 1 - (cache/file)^k bound",
        decimals=4,
    )


def campaign_gates(report) -> list[Gate]:
    """The campaign-side acceptance bars."""
    worst_bound = min(
        (
            cell.bound_margin + cell.bound_slack
            for cell in report.cells
            if cell.bound_margin is not None
        ),
        default=1.0,
    )
    return [
        Gate(
            name="campaign hit-rate agreement",
            measured=report.max_hit_rate_error,
            required=MAX_CAMPAIGN_HIT_ERROR,
            higher_is_better=False,
            detail="|analytic - simulated| on the adversary's cache",
        ),
        Gate(
            name="detection-bound margin (+slack)",
            measured=worst_bound,
            required=0.0,
            detail="observed - (1 - (cache/file)^k) + statistical slack",
        ),
        Gate(
            name="slot-vs-event equivalence (adversary injected)",
            measured=1.0 if report.equivalence_ok else 0.0,
            required=1.0,
            detail="single-site streams identical under both engines",
        ),
    ]


# -- pytest-side (runs with `pytest benchmarks/`) ------------------------

def test_analytic_hit_rate_tracks_simulation(benchmark):
    """Gate 1, pytest-side: the closed form tracks the real LRU."""
    rows = benchmark.pedantic(
        lambda: synthetic_sweep(400), rounds=1, iterations=1
    )
    record_table("economics-hit-rate", _render_synthetic(rows))
    assert max(r["error"] for r in rows) <= MAX_SYNTHETIC_HIT_ERROR
    # The exact (hypergeometric) detection probability dominates the
    # paper's with-replacement bound everywhere.
    for row in rows:
        assert row["detection_exact"] >= row["detection_bound"] - 1e-12


def test_campaign_meets_detection_bound(benchmark):
    """Gates 2+3, pytest-side: measured campaign vs the paper bound."""
    report = benchmark.pedantic(
        lambda: run_campaign(hours=12.0, n_files=9),
        rounds=1,
        iterations=1,
    )
    record_table("economics-campaign", _render_campaign(report))
    assert report.bound_satisfied
    assert report.equivalence_ok
    assert report.max_hit_rate_error <= MAX_CAMPAIGN_HIT_ERROR
    # Under sane prices no swept cache size leaves the attack
    # profitable, and the spend-side break-even is tiny.
    assert report.profitable_cache_bytes is None
    assert 0 < report.break_even_cache_bytes < report.geometry.stored_bytes


# -- standalone CI mode --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cache/prefetch economics benchmark (CI gates)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller grid, shorter horizon",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_economics.json"),
        help="where to write the JSON record "
        "(default: ./BENCH_economics.json)",
    )
    args = parser.parse_args(argv)
    n_audits, hours, n_files = (
        (200, 12.0, 9) if args.quick else (600, 24.0, 12)
    )

    start = time.perf_counter()
    synthetic = synthetic_sweep(n_audits)
    print(_render_synthetic(synthetic))
    report = run_campaign(hours=hours, n_files=n_files)
    print(_render_campaign(report))
    wall_s = time.perf_counter() - start

    gates = [
        Gate(
            name="synthetic hit-rate agreement",
            measured=max(r["error"] for r in synthetic),
            required=MAX_SYNTHETIC_HIT_ERROR,
            higher_is_better=False,
            detail=f"worst cell of {len(synthetic)}, "
            f"{n_audits} audits each",
        ),
        *campaign_gates(report),
    ]

    record = {
        "bench": "economics",
        "scenario": {
            "n_providers": 3,
            "n_files": n_files,
            "hours": hours,
            "attack": "prefetch-relay",
            "synthetic_audits": n_audits,
        },
        "max_synthetic_hit_error": MAX_SYNTHETIC_HIT_ERROR,
        "max_campaign_hit_error": MAX_CAMPAIGN_HIT_ERROR,
        "wall_seconds": wall_s,
        "synthetic_rows": synthetic,
        "report": report.to_dict(),
        "gates": [gate.as_dict() for gate in gates],
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    return enforce_gates(gates, bench="bench_economics")


if __name__ == "__main__":
    sys.exit(main())
