"""Table I: look-up latency of the five-disk catalogue.

Paper values (Section V-D): WD 2500JD -> 13.1055 ms, IBM 36Z15 ->
5.406 ms; latency strictly decreases with RPM.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.experiments import table1_hdd_latency
from repro.analysis.reporting import format_table
from repro.storage.hdd import DISK_CATALOGUE, HDDModel

PAPER_LOOKUPS = {
    "IBM 36Z15": 5.406,
    "WD 2500JD": 13.1055,
}


def test_table1_reproduction(benchmark):
    rows = benchmark(table1_hdd_latency, 512)

    rendered = format_table(
        ["disk", "rpm", "seek ms", "rotate ms", "xfer ms", "lookup ms", "paper ms"],
        [
            [
                r.name,
                r.rpm,
                r.seek_ms,
                r.rotate_ms,
                r.transfer_ms,
                r.lookup_ms,
                PAPER_LOOKUPS.get(r.name, float("nan")),
            ]
            for r in rows
        ],
        title="Table I -- HDD look-up latency (512-byte read)",
        decimals=4,
    )
    record_table("table1", rendered)

    # Shape: latency strictly decreases as RPM increases.
    by_rpm = sorted(rows, key=lambda r: r.rpm)
    lookups = [r.lookup_ms for r in by_rpm]
    assert lookups == sorted(lookups, reverse=True)

    # Absolute agreement with the paper's two worked examples.
    by_name = {r.name: r for r in rows}
    for name, paper_value in PAPER_LOOKUPS.items():
        assert by_name[name].lookup_ms == pytest.approx(paper_value, abs=0.01)


def test_table1_stochastic_means(benchmark):
    """Sampled look-ups must average to the datasheet values."""
    from repro.crypto.rng import DeterministicRNG

    def sample_all():
        rng = DeterministicRNG("t1-sample")
        means = {}
        for spec in DISK_CATALOGUE:
            model = HDDModel(spec)
            samples = [model.sample_lookup_ms(rng, 512) for _ in range(400)]
            means[spec.name] = sum(samples) / len(samples)
        return means

    means = benchmark(sample_all)
    for spec in DISK_CATALOGUE:
        expected = HDDModel(spec).lookup_ms(512)
        assert means[spec.name] == pytest.approx(expected, rel=0.15)
