"""Figure 4: the deployed architecture under continuous auditing.

Fig. 4 is the deployment diagram -- TPA, tamper-proof verifier on the
provider's LAN, data centre(s).  The executable reproduction runs a
multi-actor simulation on the event scheduler: periodic TPA audits
against a provider fleet, with a mid-simulation SLA violation
(relocation + relay) that the audit stream must catch.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.reporting import format_table
from repro.cloud.adversary import RelayAttack
from repro.cloud.provider import DataCentre
from repro.core.session import GeoProofSession
from repro.crypto.rng import DeterministicRNG
from repro.geo.coords import GeoPoint
from repro.geo.datasets import city
from repro.por.parameters import TEST_PARAMS
from repro.storage.hdd import IBM_36Z15


def run_architecture_scenario():
    """10 periodic audits; the provider goes rogue after the 5th."""
    session = GeoProofSession.build(
        datacentre_location=city("brisbane"),
        params=TEST_PARAMS,
        seed="fig4",
    )
    data = DeterministicRNG("fig4-data").random_bytes(25_000)
    session.outsource(b"f", data)
    session.provider.add_datacentre(
        DataCentre("tokyo", city("tokyo"), disk=IBM_36Z15)
    )
    timeline = []
    for audit_number in range(1, 11):
        if audit_number == 6:  # the violation event
            session.provider.relocate(b"f", "tokyo")
            session.provider.set_strategy(RelayAttack("home", "tokyo"))
        outcome = session.audit(b"f", k=10)
        timeline.append(
            (
                audit_number,
                round(session.verifier.clock.now_ms(), 1),
                outcome.verdict.accepted,
                round(outcome.verdict.max_rtt_ms, 2),
            )
        )
    return timeline


def test_fig4_continuous_auditing(benchmark):
    timeline = benchmark.pedantic(run_architecture_scenario, rounds=1, iterations=1)
    rendered = format_table(
        ["audit #", "sim clock ms", "accepted", "max RTT ms"],
        [list(row) for row in timeline],
        title="Fig. 4 -- periodic audits across an SLA violation at audit 6",
    )
    record_table("fig4", rendered)

    first_half = [row for row in timeline if row[0] <= 5]
    second_half = [row for row in timeline if row[0] >= 6]
    assert all(accepted for _, _, accepted, _ in first_half)
    assert all(not accepted for _, _, accepted, _ in second_half)
    # The violation is visible in the RTTs themselves.
    assert min(rtt for *_, rtt in second_half) > max(rtt for *_, rtt in first_half)


def test_fig4_event_scheduler_scaling(benchmark):
    """The discrete-event loop itself: 10k events dispatch cheaply."""
    from repro.netsim.events import EventScheduler

    def run_events():
        scheduler = EventScheduler()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1

        for i in range(10_000):
            scheduler.schedule_at(float(i) / 10.0, tick)
        scheduler.run_all()
        return counter["n"]

    assert benchmark(run_events) == 10_000
