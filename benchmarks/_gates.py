"""Readable CI gates for the standalone benchmark scripts.

A *gate* is one acceptance bar a bench enforces (e.g. "event engine
detection speedup >= 2x").  Collecting gates through :class:`Gate`
instead of bare asserts buys two things:

* **A readable diff on regression.**  When a gate fails, CI shows a
  table of every gate -- measured value, required bar, margin, status
  -- instead of a one-line assert, so the log answers "which bar, by
  how much, and what else moved" without re-running anything.
* **A machine-readable record.**  ``as_dict`` rows are embedded in the
  ``BENCH_*.json`` artifacts, so a regression's numbers survive next
  to the run that produced them.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class Gate:
    """One acceptance bar: ``measured`` vs ``required``."""

    name: str
    measured: float
    required: float
    #: True when bigger is better (speedups); False for ceilings.
    higher_is_better: bool = True
    #: Free-form context shown in the diff table (scenario, units).
    detail: str = ""

    @property
    def passed(self) -> bool:
        if self.higher_is_better:
            return self.measured >= self.required
        return self.measured <= self.required

    @property
    def margin(self) -> float:
        """How far inside (positive) or outside (negative) the bar."""
        delta = self.measured - self.required
        return delta if self.higher_is_better else -delta

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "measured": self.measured,
            "required": self.required,
            "higher_is_better": self.higher_is_better,
            "passed": self.passed,
            "margin": self.margin,
            "detail": self.detail,
        }


def render_gates(gates: list[Gate], *, title: str = "CI gates") -> str:
    """The gate table CI prints on every run (diff-style on failure)."""
    return format_table(
        ["gate", "measured", "bar", "margin", "status", "detail"],
        [
            [
                gate.name,
                gate.measured,
                (">=" if gate.higher_is_better else "<=")
                + f" {gate.required:g}",
                gate.margin,
                "ok" if gate.passed else "REGRESSED",
                gate.detail,
            ]
            for gate in gates
        ],
        title=title,
        decimals=3,
    )


def enforce_gates(gates: list[Gate], *, bench: str) -> int:
    """Print the gate diff and return the process exit code.

    Passing runs print the table once (for the log); failing runs
    repeat the regressed rows on stderr so the failure reason is the
    last thing in the CI output.
    """
    print(f"\n{render_gates(gates, title=f'{bench}: CI gates')}")
    failed = [gate for gate in gates if not gate.passed]
    if not failed:
        print(f"OK: all {len(gates)} {bench} gates hold")
        return 0
    print(
        f"FAIL: {len(failed)}/{len(gates)} {bench} gate(s) regressed:",
        file=sys.stderr,
    )
    for gate in failed:
        op = ">=" if gate.higher_is_better else "<="
        print(
            f"  {gate.name}: measured {gate.measured:.3f}, required "
            f"{op} {gate.required:g} (margin {gate.margin:+.3f})"
            + (f" -- {gate.detail}" if gate.detail else ""),
            file=sys.stderr,
        )
    return 1
