"""GeoProof core: the paper's primary contribution.

* :mod:`repro.core.messages` -- the protocol messages of Fig. 5:
  the TPA's audit request, the timed rounds, and the signed
  transcript R.
* :mod:`repro.core.calibration` -- Delta-t_max calibration
  (Sections V-D/E/F) and the relay-distance bound.
* :mod:`repro.core.verification` -- the TPA's four verification steps
  (signature, GPS position, MAC tags, timing).
* :mod:`repro.core.session` -- end-to-end orchestration: setup,
  upload, audit, verdict.

The *verifier device* half of the protocol lives in
:mod:`repro.cloud.verifier` because it is a deployment actor; this
package owns the message formats and the verification logic.
"""

from repro.core.calibration import (
    TimingBudget,
    calibrate_rtt_max,
    relay_distance_bound_km,
)
from repro.core.messages import AuditRequest, SignedTranscript, TimedRound
from repro.core.triangulation import LandmarkTriangulator, TriangulationResult
from repro.core.verification import (
    GeoProofVerdict,
    TranscriptVerification,
    verify_transcript,
    verify_transcripts,
)


def __getattr__(name: str):
    # The session modules pull in the cloud actors, which themselves
    # import the message/verification modules above; importing them
    # lazily keeps ``repro.core`` importable from inside those actors.
    if name == "GeoProofSession":
        from repro.core.session import GeoProofSession

        return GeoProofSession
    if name == "DynamicGeoProofSession":
        from repro.core.dynamic_session import DynamicGeoProofSession

        return DynamicGeoProofSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AuditRequest",
    "TimedRound",
    "SignedTranscript",
    "TimingBudget",
    "calibrate_rtt_max",
    "relay_distance_bound_km",
    "GeoProofVerdict",
    "verify_transcript",
    "verify_transcripts",
    "TranscriptVerification",
    "GeoProofSession",
]
