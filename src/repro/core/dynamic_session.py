"""GeoProof over dynamic data (the paper's Section IV extension).

"The Juels and Kaliski scheme is designed to deal with the static data
but GeoProof could be modified to encompass other POS schemes that
support verifying dynamic data such as dynamic proof of retrievability
(DPOR) by Wang et al."

This module performs that modification: the timed challenge/response
rounds carry *dynamic POR proofs* (block + content tag + Merkle path)
instead of MACed segments.  Everything else keeps the GeoProof shape --
the verifier device times each round against the LAN + disk budget and
signs the transcript; the TPA checks signature, GPS, proof validity and
max RTT.

The interesting systems consequence, quantified in the bench: a dynamic
round's payload grows by ``32 * log2(n)`` bytes of Merkle path, so the
response transfer term -- and therefore Delta-t_max -- depends on file
size, where the static scheme's 660-bit segments did not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.sla import SLAPolicy
from repro.core.calibration import TimingBudget
from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrPublicKey,
    schnorr_sign,
    schnorr_verify,
)
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import Region
from repro.netsim.clock import SimClock
from repro.netsim.latency import LANModel
from repro.por.dynamic import DynamicPOR, DynamicPORServer, DynamicProof
from repro.storage.hdd import HDDModel, HDDSpec, WD_2500JD
from repro.util.serialization import (
    encode_float,
    encode_length_prefixed,
    encode_uint,
)


@dataclass(frozen=True)
class DynamicTimedRound:
    """One timed round: challenged index, dynamic proof, measured RTT."""

    index: int
    proof: DynamicProof
    rtt_ms: float

    @property
    def payload_bytes(self) -> int:
        """Response size on the wire: block + tag + Merkle path."""
        return (
            len(self.proof.block)
            + len(self.proof.tag)
            + sum(len(sibling) + 1 for sibling, _ in self.proof.path)
        )

    def wire_bytes(self) -> bytes:
        """Canonical encoding for the signed transcript."""
        parts = [
            encode_uint(self.index),
            encode_length_prefixed(self.proof.block),
            encode_length_prefixed(self.proof.tag),
            encode_uint(len(self.proof.path)),
        ]
        for sibling, is_right in self.proof.path:
            parts.append(encode_length_prefixed(sibling))
            parts.append(b"\x01" if is_right else b"\x00")
        parts.append(encode_float(self.rtt_ms))
        return b"".join(parts)


@dataclass(frozen=True)
class DynamicTranscript:
    """The verifier's signed report for a dynamic audit."""

    device_id: bytes
    file_id: bytes
    nonce: bytes
    rounds: tuple[DynamicTimedRound, ...]
    position: GeoPoint
    signature: tuple[int, int]

    @property
    def max_rtt_ms(self) -> float:
        """Delta-t' = max over the rounds."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return max(round_.rtt_ms for round_ in self.rounds)

    def signed_payload(self) -> bytes:
        """Canonical bytes the device signs."""
        parts = [
            b"geoproof-dynamic-transcript-v1",
            encode_length_prefixed(self.device_id),
            encode_length_prefixed(self.file_id),
            encode_length_prefixed(self.nonce),
            encode_uint(len(self.rounds)),
        ]
        parts.extend(round_.wire_bytes() for round_ in self.rounds)
        parts.append(encode_float(self.position.latitude))
        parts.append(encode_float(self.position.longitude))
        return b"".join(parts)


@dataclass(frozen=True)
class DynamicVerdict:
    """TPA verdict: the four GeoProof checks over dynamic proofs."""

    accepted: bool
    signature_ok: bool
    position_ok: bool
    proofs_ok: bool
    timing_ok: bool
    max_rtt_ms: float
    rtt_max_ms: float
    bad_indices: tuple[int, ...]

    @property
    def failure_reasons(self) -> list[str]:
        """Machine-readable failure tags."""
        reasons = []
        if not self.signature_ok:
            reasons.append("signature")
        if not self.position_ok:
            reasons.append("gps")
        if not self.proofs_ok:
            reasons.append("proof")
        if not self.timing_ok:
            reasons.append("timing")
        return reasons


def dynamic_rtt_budget(
    n_blocks: int,
    block_bytes: int,
    *,
    disk: HDDSpec = WD_2500JD,
    lan: LANModel | None = None,
    lan_distance_km: float = 0.05,
    lan_rtt_budget_ms: float = 3.0,
    margin_ms: float = 0.0,
) -> TimingBudget:
    """Calibrate Delta-t_max for dynamic rounds.

    Unlike the static scheme, the response payload includes a Merkle
    path of ~32 bytes per tree level, so the serialisation term scales
    with log2(n_blocks).
    """
    if n_blocks <= 0:
        raise ConfigurationError(f"n_blocks must be positive, got {n_blocks}")
    lan = lan or LANModel()
    path_levels = max(1, (n_blocks - 1).bit_length())
    payload = block_bytes + 16 + 33 * path_levels
    lookup = HDDModel(disk).lookup_ms(block_bytes)
    serialisation = lan.one_way_ms(lan_distance_km, payload) - lan.one_way_ms(
        lan_distance_km, 0
    )
    return TimingBudget(
        lan_rtt_ms=lan_rtt_budget_ms + serialisation,
        lookup_ms=lookup,
        margin_ms=margin_ms,
    )


class DynamicGeoProofSession:
    """A GeoProof deployment whose POS layer is the dynamic POR."""

    def __init__(
        self,
        *,
        datacentre_location: GeoPoint,
        region: Region,
        block_bytes: int = 4096,
        disk: HDDSpec = WD_2500JD,
        seed: str = "dynamic-geoproof",
    ) -> None:
        if block_bytes <= 0:
            raise ConfigurationError(
                f"block_bytes must be positive, got {block_bytes}"
            )
        self.location = datacentre_location
        self.region = region
        self.block_bytes = block_bytes
        self.disk = HDDModel(disk)
        self.clock = SimClock()
        self.lan = LANModel()
        self.lan_distance_km = 0.05
        self._rng = DeterministicRNG(seed)
        # Stateful nonce stream: every audit must get a fresh nonce
        # (and therefore a fresh challenge set).
        self._nonce_rng = self._rng.fork("nonce-stream")
        self.device_keypair = SchnorrKeyPair.generate(
            seed=f"{seed}-device".encode()
        )
        self.client: DynamicPOR | None = None
        self.server: DynamicPORServer | None = None
        self.file_id: bytes | None = None
        #: Extra per-round delay injected provider-side (relay attacks).
        self.injected_delay_ms = 0.0

    @property
    def device_public_key(self) -> SchnorrPublicKey:
        """The verifier device's public key."""
        return self.device_keypair.public

    # -- data-owner operations ----------------------------------------------

    def outsource(self, file_id: bytes, data: bytes) -> int:
        """Split ``data`` into blocks, tag, build the Merkle tree."""
        if self.client is not None:
            raise ConfigurationError("session already holds a file")
        blocks = [
            data[start : start + self.block_bytes].ljust(self.block_bytes, b"\x00")
            for start in range(0, max(len(data), 1), self.block_bytes)
        ]
        mac_key = self._rng.fork("mac-key").random_bytes(32)
        self.client = DynamicPOR(mac_key, file_id)
        self.server = self.client.outsource(blocks)
        self.file_id = file_id
        return len(blocks)

    def update_block(self, index: int, new_block: bytes) -> None:
        """Authenticated in-place update (the dynamic operation)."""
        self._require_file()
        if len(new_block) != self.block_bytes:
            raise ConfigurationError(
                f"block must be {self.block_bytes} bytes, got {len(new_block)}"
            )
        self.client.update_block(self.server, index, new_block)

    # -- the timed audit -------------------------------------------------------

    def _require_file(self) -> None:
        if self.client is None or self.server is None:
            raise ConfigurationError("outsource() must run first")

    def rtt_budget(self, *, margin_ms: float = 0.0) -> TimingBudget:
        """The calibrated per-round budget for the current file."""
        self._require_file()
        return dynamic_rtt_budget(
            self.client.n_blocks,
            self.block_bytes,
            disk=self.disk.spec,
            lan=self.lan,
            lan_distance_km=self.lan_distance_km,
            margin_ms=margin_ms,
        )

    def run_audit(self, k: int, *, margin_ms: float = 0.0) -> tuple[DynamicTranscript, DynamicVerdict]:
        """One full dynamic GeoProof audit: timed rounds + verification."""
        self._require_file()
        nonce = self._nonce_rng.random_bytes(16)
        challenge_rng = self._rng.fork(f"challenge-{nonce.hex()}")
        indices = self.client.make_challenge(
            min(k, self.client.n_blocks), challenge_rng
        )
        jitter_rng = self._rng.fork(f"jitter-{nonce.hex()}")
        rounds: list[DynamicTimedRound] = []
        for index in indices:
            start = self.clock.now_ms()
            self.clock.advance(
                self.lan.one_way_ms(self.lan_distance_km, 16, jitter_rng)
            )
            proof = self.server.prove(index)
            # Disk time for the block; the tree's upper levels are hot
            # in RAM on any real server, so only the leaf block seeks.
            self.clock.advance(self.disk.lookup_ms(self.block_bytes))
            self.clock.advance(self.injected_delay_ms)
            round_ = DynamicTimedRound(index=index, proof=proof, rtt_ms=0.0)
            self.clock.advance(
                self.lan.one_way_ms(
                    self.lan_distance_km, round_.payload_bytes, jitter_rng
                )
            )
            rounds.append(
                DynamicTimedRound(
                    index=index, proof=proof, rtt_ms=self.clock.now_ms() - start
                )
            )
        transcript = DynamicTranscript(
            device_id=b"dynamic-verifier",
            file_id=self.file_id,
            nonce=nonce,
            rounds=tuple(rounds),
            position=self.location,
            signature=(0, 0),
        )
        signature = schnorr_sign(
            self.device_keypair.private, transcript.signed_payload()
        )
        transcript = DynamicTranscript(
            device_id=transcript.device_id,
            file_id=transcript.file_id,
            nonce=transcript.nonce,
            rounds=transcript.rounds,
            position=transcript.position,
            signature=signature,
        )
        verdict = self.verify(transcript, margin_ms=margin_ms)
        return transcript, verdict

    def verify(
        self, transcript: DynamicTranscript, *, margin_ms: float = 0.0
    ) -> DynamicVerdict:
        """The TPA's four checks over a dynamic transcript."""
        self._require_file()
        signature_ok = schnorr_verify(
            self.device_public_key,
            transcript.signed_payload(),
            transcript.signature,
        )
        position_ok = self.region.contains(transcript.position)
        bad = tuple(
            round_.index
            for round_ in transcript.rounds
            if not self.client.verify(round_.proof)
            or round_.proof.index != round_.index
        )
        budget = self.rtt_budget(margin_ms=margin_ms)
        max_rtt_ms = transcript.max_rtt_ms
        timing_ok = max_rtt_ms <= budget.rtt_max_ms
        proofs_ok = not bad
        return DynamicVerdict(
            accepted=signature_ok and position_ok and proofs_ok and timing_ok,
            signature_ok=signature_ok,
            position_ok=position_ok,
            proofs_ok=proofs_ok,
            timing_ok=timing_ok,
            max_rtt_ms=max_rtt_ms,
            rtt_max_ms=budget.rtt_max_ms,
            bad_indices=bad,
        )
