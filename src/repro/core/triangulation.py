"""Landmark triangulation of the verifier device (Section V-C).

"The GPS signal may be manipulated by the provider ... Thus, for extra
assurance we may want to verify the position of V ... For better
accuracy, we could consider the triangulation of V from multiple
landmarks.  This may include some challenges as the verifier is located
in the same network that is controlled by the prover, thus the attacker
may introduce delays to the communication paths."

This module implements that countermeasure.  Trusted landmark auditors
at known positions ping the verifier device over the Internet; each RTT
yields an *upper bound* on the verifier's distance from that landmark
(delay can be added by the adversary, never removed, so the bound is
one-sided -- exactly the asymmetry the paper notes).  The feasible
region is the intersection of discs; the GPS fix must lie inside it.

A spoofed GPS fix claiming a position far from the true one is caught
whenever some landmark's disc excludes the claimed position:
the adversary can *inflate* every disc (adding delay) but can never
shrink one below the true distance, so it can fake "farther", never
"closer".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, haversine_km
from repro.netsim.latency import InternetModel, INTERNET_SPEED_KM_PER_MS


@dataclass(frozen=True)
class LandmarkObservation:
    """One landmark's measurement of the verifier."""

    landmark: GeoPoint
    rtt_ms: float
    distance_bound_km: float


@dataclass(frozen=True)
class TriangulationResult:
    """Outcome of cross-checking a claimed position against landmarks.

    ``consistent`` is True iff the claimed position lies inside every
    landmark's distance bound.  ``violated_landmarks`` lists the
    landmarks whose bound excludes the claim (evidence of spoofing).
    """

    claimed_position: GeoPoint
    observations: tuple[LandmarkObservation, ...]
    consistent: bool
    violated_landmarks: tuple[str, ...]
    max_excess_km: float

    @property
    def n_landmarks(self) -> int:
        """Number of landmarks that measured the device."""
        return len(self.observations)


class LandmarkTriangulator:
    """Trusted landmarks that bound the verifier's position by RTT.

    Parameters
    ----------
    landmarks:
        Known positions of the trusted auditor hosts.
    internet:
        Latency model for landmark -> verifier paths.
    overhead_ms:
        RTT spent on non-propagation costs (access links, stacks);
        subtracted before converting to distance.  *Under*-estimating
        it only loosens bounds (safe); over-estimating could produce
        false spoofing alarms, so the default is conservative.
    """

    def __init__(
        self,
        landmarks: dict[str, GeoPoint],
        *,
        internet: InternetModel | None = None,
        overhead_ms: float | None = None,
    ) -> None:
        if len(landmarks) < 2:
            raise ConfigurationError(
                f"triangulation needs >= 2 landmarks, got {len(landmarks)}"
            )
        self.landmarks = dict(landmarks)
        self.internet = internet or InternetModel()
        # Default overhead: the model's distance-independent floor.
        self.overhead_ms = (
            overhead_ms if overhead_ms is not None else self.internet.base_rtt_ms
        )
        if self.overhead_ms < 0:
            raise ConfigurationError(
                f"overhead must be >= 0, got {self.overhead_ms}"
            )

    def rtt_to_bound_km(self, rtt_ms: float) -> float:
        """Convert an observed RTT into a one-sided distance bound."""
        if rtt_ms < 0:
            raise ConfigurationError(f"rtt must be >= 0, got {rtt_ms}")
        effective = max(0.0, rtt_ms - self.overhead_ms)
        return INTERNET_SPEED_KM_PER_MS * effective / 2.0

    def measure(
        self,
        true_position: GeoPoint,
        *,
        adversary_added_delay_ms: float = 0.0,
        rng: DeterministicRNG | None = None,
    ) -> list[LandmarkObservation]:
        """Ping the device from every landmark.

        ``adversary_added_delay_ms`` models the provider delaying the
        landmark paths (it controls the network around V); delay only
        ever *adds*, which inflates bounds and cannot create a false
        'too close' signal.
        """
        if adversary_added_delay_ms < 0:
            raise ConfigurationError("adversary cannot remove delay")
        observations = []
        for name, landmark in self.landmarks.items():
            distance_km = haversine_km(landmark, true_position)
            rtt_ms = (
                self.internet.rtt_ms(distance_km, rng=rng)
                + adversary_added_delay_ms
            )
            observations.append(
                LandmarkObservation(
                    landmark=landmark,
                    rtt_ms=rtt_ms,
                    distance_bound_km=self.rtt_to_bound_km(rtt_ms),
                )
            )
        return observations

    def check_claim(
        self,
        claimed_position: GeoPoint,
        observations: list[LandmarkObservation],
    ) -> TriangulationResult:
        """Does the claimed (GPS) position fit every distance bound?"""
        if not observations:
            raise ConfigurationError("no observations to check against")
        violated = []
        max_excess = 0.0
        for name, observation in zip(self.landmarks, observations):
            claimed_distance_km = haversine_km(observation.landmark, claimed_position)
            excess = claimed_distance_km - observation.distance_bound_km
            if excess > 0:
                violated.append(name)
                max_excess = max(max_excess, excess)
        return TriangulationResult(
            claimed_position=claimed_position,
            observations=tuple(observations),
            consistent=not violated,
            violated_landmarks=tuple(violated),
            max_excess_km=max_excess,
        )

    def verify_device(
        self,
        claimed_position: GeoPoint,
        true_position: GeoPoint,
        *,
        adversary_added_delay_ms: float = 0.0,
        rng: DeterministicRNG | None = None,
    ) -> TriangulationResult:
        """Measure and check in one step (the TPA's workflow)."""
        observations = self.measure(
            true_position,
            adversary_added_delay_ms=adversary_added_delay_ms,
            rng=rng,
        )
        return self.check_claim(claimed_position, observations)


def spoof_detection_radius_km(
    triangulator: LandmarkTriangulator,
    true_position: GeoPoint,
    *,
    bearing_deg: float = 90.0,
    max_km: float = 20_000.0,
    step_km: float = 50.0,
) -> float:
    """Smallest spoof displacement (along a bearing) that gets caught.

    Sweeps fake positions increasingly far from the true one and
    returns the first displacement the landmark bounds reject --
    the effective spoofing headroom the adversary retains despite
    triangulation (bounded by the landmarks' geometric spread and the
    overhead slack).
    """
    from repro.geo.coords import destination_point

    observations = triangulator.measure(true_position)
    displacement = step_km
    while displacement <= max_km:
        fake = destination_point(true_position, bearing_deg, displacement)
        if not triangulator.check_claim(fake, observations).consistent:
            return displacement
        displacement += step_km
    return float("inf")
