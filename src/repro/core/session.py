"""End-to-end GeoProof session orchestration.

:class:`GeoProofSession` wires the whole Fig. 4 deployment together for
the common case -- one data owner, one provider, one verifier device,
one TPA -- so examples and benchmarks can run audits in a few lines:

    session = GeoProofSession.build(...)
    session.outsource(b"file-1", data)
    outcome = session.audit(b"file-1")
    assert outcome.verdict.accepted

The session owns the shared simulated clock; repeated audits advance
it monotonically, and the event scheduler can interleave other actors.

The data-owner setup plumbing lives in :func:`outsource_file` so the
multi-tenant :class:`~repro.fleet.fleet.AuditFleet` can reuse it
verbatim; the session remains the one-owner convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.provider import CloudProvider, DataCentre
from repro.cloud.sla import SLAPolicy
from repro.cloud.tpa import AuditOutcome, ThirdPartyAuditor
from repro.cloud.verifier import VerifierDevice
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.regions import CircularRegion, Region
from repro.netsim.clock import SimClock
from repro.por.parameters import PORParams
from repro.por.setup import PORKeys, setup_file
from repro.storage.hdd import HDDSpec, WD_2500JD
from repro.util.wallclock import wall_seconds


@dataclass
class OutsourcedFile:
    """Client-side record of one outsourced file."""

    file_id: bytes
    keys: PORKeys
    n_segments: int
    original_bytes: int
    stored_bytes: int
    #: Wall time the Juels-Kaliski setup pipeline took, in seconds.
    #: Benchmarks aggregate this to track the outsourcing hot path
    #: (dominated by the batch Feistel permutation; see crypto.prp).
    setup_seconds: float = 0.0


def outsource_file(
    *,
    file_id: bytes,
    data: bytes,
    provider: CloudProvider,
    tpa: ThirdPartyAuditor,
    params: PORParams,
    sla: SLAPolicy,
    home_datacentre: str,
    rng: DeterministicRNG,
    workers: int | None = None,
) -> OutsourcedFile:
    """Encode ``data``, upload it, and hand auditing duty to the TPA.

    This is the data-owner side of Fig. 4's setup phase, shared by the
    single-owner :class:`GeoProofSession` and the multi-tenant
    :class:`~repro.fleet.fleet.AuditFleet`: derive per-file POR keys
    from the caller's RNG, run the Juels-Kaliski setup pipeline, store
    the encoded file at its contractual home site, and register the
    MAC key + SLA with the TPA.  ``workers`` shards the setup
    pipeline's Reed-Solomon encode across a process pool (the result
    is byte-identical to the serial setup).
    """
    keys = PORKeys.derive(
        rng.fork(f"keys-{file_id.hex()}").random_bytes(32)
    )
    # setup_seconds reports the *real* encode cost of the outsourcing
    # hot path (tracked by bench_prp/bench_rs); it never feeds a
    # simulated quantity (see util/wallclock.py).
    setup_start = wall_seconds()
    encoded = setup_file(data, keys, file_id, params, workers=workers)
    setup_seconds = wall_seconds() - setup_start
    provider.upload(encoded, home_datacentre)
    tpa.register_file(
        file_id,
        encoded.n_segments,
        keys.mac_key,
        params,
        sla,
    )
    return OutsourcedFile(
        file_id=file_id,
        keys=keys,
        n_segments=encoded.n_segments,
        original_bytes=len(data),
        stored_bytes=encoded.stored_bytes,
        setup_seconds=setup_seconds,
    )


class GeoProofSession:
    """A ready-to-run GeoProof deployment."""

    def __init__(
        self,
        provider: CloudProvider,
        verifier: VerifierDevice,
        tpa: ThirdPartyAuditor,
        sla: SLAPolicy,
        params: PORParams,
        home_datacentre: str,
        rng: DeterministicRNG,
    ) -> None:
        self.provider = provider
        self.verifier = verifier
        self.tpa = tpa
        self.sla = sla
        self.params = params
        self.home_datacentre = home_datacentre
        self._rng = rng
        self.files: dict[bytes, OutsourcedFile] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        datacentre_location: GeoPoint,
        region: Region | None = None,
        disk: HDDSpec = WD_2500JD,
        params: PORParams | None = None,
        lan_rtt_budget_ms: float = 3.0,
        margin_ms: float = 0.0,
        min_rounds: int = 50,
        seed: str = "geoproof-session",
        tpa_max_log: int | None = None,
    ) -> "GeoProofSession":
        """Build the standard single-site deployment.

        The SLA region defaults to a 100 km circle around the data
        centre; the segment-size term of the timing budget is taken
        from ``params``.  ``tpa_max_log`` bounds the TPA's audit log
        to a ring buffer -- long-running deployments (the audit
        daemon, sustained benchmarks) should set it so memory stays
        flat across millions of audits.
        """
        params = params or PORParams()
        rng = DeterministicRNG(seed)
        clock = SimClock()
        sla = SLAPolicy(
            region=region
            or CircularRegion(centre=datacentre_location, radius_km=100.0),
            disk=disk,
            lan_rtt_budget_ms=lan_rtt_budget_ms,
            margin_ms=margin_ms,
            segment_bytes=params.segment_bytes + params.tag_bytes,
            min_rounds=min_rounds,
        )
        provider = CloudProvider("provider", rng=rng.fork("provider"))
        provider.add_datacentre(
            DataCentre("home", datacentre_location, disk=disk)
        )
        verifier = VerifierDevice(
            b"verifier-1",
            datacentre_location,
            clock=clock,
            rng=rng.fork("verifier"),
        )
        tpa = ThirdPartyAuditor("tpa", rng.fork("tpa"), max_log=tpa_max_log)
        return cls(
            provider=provider,
            verifier=verifier,
            tpa=tpa,
            sla=sla,
            params=params,
            home_datacentre="home",
            rng=rng,
        )

    # -- data-owner operations ---------------------------------------------

    def outsource(
        self, file_id: bytes, data: bytes, *, workers: int | None = None
    ) -> OutsourcedFile:
        """Encode a file, upload it, and register it with the TPA."""
        if file_id in self.files:
            raise ConfigurationError(f"file {file_id!r} already outsourced")
        record = outsource_file(
            file_id=file_id,
            data=data,
            provider=self.provider,
            tpa=self.tpa,
            params=self.params,
            sla=self.sla,
            home_datacentre=self.home_datacentre,
            rng=self._rng,
            workers=workers,
        )
        self.files[file_id] = record
        return record

    # -- auditing --------------------------------------------------------------

    def audit(
        self,
        file_id: bytes,
        *,
        k: int | None = None,
        rtt_max_ms: float | None = None,
    ) -> AuditOutcome:
        """Run one GeoProof audit against the current provider policy."""
        if file_id not in self.files:
            raise ConfigurationError(f"file {file_id!r} not outsourced")
        return self.tpa.audit(
            file_id,
            self.verifier,
            self.provider,
            k=k,
            rtt_max_ms=rtt_max_ms,
        )

    def audit_many(
        self, file_id: bytes, n_audits: int, **kwargs
    ) -> list[AuditOutcome]:
        """Run repeated audits (the cumulative-detection experiment)."""
        if n_audits <= 0:
            raise ConfigurationError(f"n_audits must be positive, got {n_audits}")
        return [self.audit(file_id, **kwargs) for _ in range(n_audits)]
