"""GeoProof protocol messages (Fig. 5).

Three message types cross the wire:

1. :class:`AuditRequest` -- TPA -> V: total segment count ``n~``, the
   number of rounds ``k``, and a fresh nonce ``N``.
2. :class:`TimedRound` -- one row of the distance-bounding phase:
   index ``c_j``, the returned segment ``S_cj || tau_cj``, and the
   measured ``Delta-t_j``.
3. :class:`SignedTranscript` -- V -> TPA: the paper's
   ``R = Sign_SK(Delta-t*, c, {S_cj}, N, Pos_V)``.

Everything that is signed has a canonical byte encoding
(:meth:`SignedTranscript.signed_payload`); the TPA recomputes it and
verifies the Schnorr signature over exactly those bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.por.file_format import Segment
from repro.util.serialization import (
    encode_float,
    encode_length_prefixed,
    encode_uint,
)


@dataclass(frozen=True)
class AuditRequest:
    """TPA -> verifier: audit parameters for one protocol run."""

    file_id: bytes
    n_segments: int  # the paper's n~
    k: int  # rounds to run / segments to check
    nonce: bytes  # the paper's N

    def __post_init__(self) -> None:
        if self.n_segments <= 0:
            raise ConfigurationError(
                f"n_segments must be positive, got {self.n_segments}"
            )
        if not 0 < self.k <= self.n_segments:
            raise ConfigurationError(
                f"k must be in 1..{self.n_segments}, got {self.k}"
            )
        if len(self.nonce) < 8:
            raise ConfigurationError(
                f"nonce must be >= 8 bytes, got {len(self.nonce)}"
            )


@dataclass(frozen=True)
class TimedRound:
    """One distance-bounding round: challenge index, response, RTT."""

    index: int
    segment: Segment
    rtt_ms: float

    def wire_bytes(self) -> bytes:
        """Canonical encoding used inside the signed payload."""
        return (
            encode_uint(self.index)
            + self.segment.wire_bytes()
            + encode_float(self.rtt_ms)
        )


@dataclass(frozen=True)
class SignedTranscript:
    """The verifier's signed report R.

    Contains the challenge (implicit in the round indices), all
    returned segments with embedded tags, all timings, the TPA's nonce
    and the device's GPS position, plus the Schnorr signature over the
    canonical encoding of all of it.
    """

    device_id: bytes
    file_id: bytes
    nonce: bytes
    rounds: tuple[TimedRound, ...]
    position: GeoPoint
    signature: tuple[int, int]

    @property
    def k(self) -> int:
        """Number of timed rounds in the transcript."""
        return len(self.rounds)

    @property
    def max_rtt_ms(self) -> float:
        """The paper's Delta-t' = max_j Delta-t_j."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return max(round_.rtt_ms for round_ in self.rounds)

    @property
    def mean_rtt_ms(self) -> float:
        """Average round time (used by the robustness ablation)."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return sum(round_.rtt_ms for round_ in self.rounds) / len(self.rounds)

    def challenge_indices(self) -> list[int]:
        """The challenge set c in round order."""
        return [round_.index for round_ in self.rounds]

    def signed_payload(self) -> bytes:
        """The canonical bytes the device signs (and the TPA checks).

        Covers device id, file id, nonce, every round (index, segment
        payload+tag, timing) and the GPS position -- altering any of
        them invalidates the signature.
        """
        parts = [
            b"geoproof-transcript-v1",
            encode_length_prefixed(self.device_id),
            encode_length_prefixed(self.file_id),
            encode_length_prefixed(self.nonce),
            encode_uint(len(self.rounds)),
        ]
        parts.extend(round_.wire_bytes() for round_ in self.rounds)
        parts.append(encode_float(self.position.latitude))
        parts.append(encode_float(self.position.longitude))
        return b"".join(parts)
