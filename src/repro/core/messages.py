"""GeoProof protocol messages (Fig. 5).

Three message types cross the wire:

1. :class:`AuditRequest` -- TPA -> V: total segment count ``n~``, the
   number of rounds ``k``, and a fresh nonce ``N``.
2. :class:`TimedRound` -- one row of the distance-bounding phase:
   index ``c_j``, the returned segment ``S_cj || tau_cj``, and the
   measured ``Delta-t_j``.
3. :class:`SignedTranscript` -- V -> TPA: the paper's
   ``R = Sign_SK(Delta-t*, c, {S_cj}, N, Pos_V)``.

Everything that is signed has a canonical byte encoding
(:meth:`SignedTranscript.signed_payload`); the TPA recomputes it and
verifies the Schnorr signature over exactly those bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ConfigurationError, ProtocolError
from repro.geo.coords import GeoPoint
from repro.por.file_format import Segment
from repro.util.serialization import (
    decode_float,
    decode_length_prefixed,
    decode_uint,
    encode_float,
    encode_length_prefixed,
    encode_uint,
)

_M = TypeVar("_M")

#: Leading magic of every signed transcript payload (and wire encoding).
TRANSCRIPT_MAGIC = b"geoproof-transcript-v1"


def decode_exact(
    decoder: Callable[[bytes, int], tuple[_M, int]], data: bytes
) -> _M:
    """Decode exactly one message from ``data``; fail closed otherwise.

    The service plane's frame bodies must each hold one whole message:
    trailing bytes mean a concatenated or corrupted frame, and decoding
    rejects it rather than silently ignoring the tail.
    """
    value, offset = decoder(data, 0)
    if offset != len(data):
        raise ProtocolError(
            f"{len(data) - offset} trailing bytes after message"
        )
    return value


def _encode_sigint(value: int) -> bytes:
    """Length-prefixed minimal big-endian encoding of one signature int."""
    if value < 0:
        raise ProtocolError(f"signature component must be >= 0, got {value}")
    return encode_length_prefixed(
        value.to_bytes(max((value.bit_length() + 7) // 8, 1), "big")
    )


def _decode_sigint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one signature int; non-minimal encodings fail closed."""
    raw, offset = decode_length_prefixed(data, offset)
    if not raw or (len(raw) > 1 and raw[0] == 0):
        raise ProtocolError("non-canonical signature int on the wire")
    return int.from_bytes(raw, "big"), offset


@dataclass(frozen=True, slots=True)
class AuditRequest:
    """TPA -> verifier: audit parameters for one protocol run."""

    file_id: bytes
    n_segments: int  # the paper's n~
    k: int  # rounds to run / segments to check
    nonce: bytes  # the paper's N

    def __post_init__(self) -> None:
        if self.n_segments <= 0:
            raise ConfigurationError(
                f"n_segments must be positive, got {self.n_segments}"
            )
        if not 0 < self.k <= self.n_segments:
            raise ConfigurationError(
                f"k must be in 1..{self.n_segments}, got {self.k}"
            )
        if len(self.nonce) < 8:
            raise ConfigurationError(
                f"nonce must be >= 8 bytes, got {len(self.nonce)}"
            )

    def to_wire(self) -> bytes:
        """Canonical wire encoding (one service frame body)."""
        return (
            encode_length_prefixed(self.file_id)
            + encode_uint(self.n_segments)
            + encode_uint(self.k)
            + encode_length_prefixed(self.nonce)
        )

    @classmethod
    def from_wire(
        cls, data: bytes, offset: int = 0
    ) -> tuple["AuditRequest", int]:
        """Parse a request; invalid field combinations fail closed."""
        file_id, offset = decode_length_prefixed(data, offset)
        n_segments, offset = decode_uint(data, offset)
        k, offset = decode_uint(data, offset)
        nonce, offset = decode_length_prefixed(data, offset)
        try:
            request = cls(
                file_id=file_id, n_segments=n_segments, k=k, nonce=nonce
            )
        except ConfigurationError as exc:
            raise ProtocolError(f"invalid audit request: {exc}") from exc
        return request, offset


@dataclass(frozen=True, slots=True)
class TimedRound:
    """One distance-bounding round: challenge index, response, RTT."""

    index: int
    segment: Segment
    rtt_ms: float

    def wire_bytes(self) -> bytes:
        """Canonical encoding used inside the signed payload."""
        return (
            encode_uint(self.index)
            + self.segment.wire_bytes()
            + encode_float(self.rtt_ms)
        )

    to_wire = wire_bytes

    @classmethod
    def from_wire(
        cls, data: bytes, offset: int = 0
    ) -> tuple["TimedRound", int]:
        """Parse one round; a non-finite timing fails closed."""
        index, offset = decode_uint(data, offset)
        segment, offset = Segment.from_wire(data, offset)
        rtt_ms, offset = decode_float(data, offset)
        if not math.isfinite(rtt_ms):
            raise ProtocolError(f"non-finite round time: {rtt_ms}")
        return cls(index=index, segment=segment, rtt_ms=rtt_ms), offset


@dataclass(frozen=True)
class SignedTranscript:
    """The verifier's signed report R.

    Contains the challenge (implicit in the round indices), all
    returned segments with embedded tags, all timings, the TPA's nonce
    and the device's GPS position, plus the Schnorr signature over the
    canonical encoding of all of it.
    """

    device_id: bytes
    file_id: bytes
    nonce: bytes
    rounds: tuple[TimedRound, ...]
    position: GeoPoint
    signature: tuple[int, int]

    @property
    def k(self) -> int:
        """Number of timed rounds in the transcript."""
        return len(self.rounds)

    @property
    def max_rtt_ms(self) -> float:
        """The paper's Delta-t' = max_j Delta-t_j."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return max(round_.rtt_ms for round_ in self.rounds)

    @property
    def mean_rtt_ms(self) -> float:
        """Average round time (used by the robustness ablation)."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return sum(round_.rtt_ms for round_ in self.rounds) / len(self.rounds)

    def challenge_indices(self) -> list[int]:
        """The challenge set c in round order."""
        return [round_.index for round_ in self.rounds]

    def signed_payload(self) -> bytes:
        """The canonical bytes the device signs (and the TPA checks).

        Covers device id, file id, nonce, every round (index, segment
        payload+tag, timing) and the GPS position -- altering any of
        them invalidates the signature.

        The encoding is memoized on the (frozen) instance: the device
        encodes it to sign, the TPA re-encodes the same instance to
        verify, and the service plane encodes it again for the wire,
        so one transcript is asked for its payload several times.
        ``dataclasses.replace`` builds a fresh instance, so a tampered
        copy never inherits the original's cache.
        """
        cached = self.__dict__.get("_signed_payload")
        if cached is not None:
            return cached
        parts = [
            TRANSCRIPT_MAGIC,
            encode_length_prefixed(self.device_id),
            encode_length_prefixed(self.file_id),
            encode_length_prefixed(self.nonce),
            encode_uint(len(self.rounds)),
        ]
        parts.extend(round_.wire_bytes() for round_ in self.rounds)
        parts.append(encode_float(self.position.latitude))
        parts.append(encode_float(self.position.longitude))
        payload = b"".join(parts)
        # Frozen dataclass: write the cache the same way cached_property
        # would (eq/hash/repr read fields only, never __dict__).
        object.__setattr__(self, "_signed_payload", payload)
        return payload

    def to_wire(self) -> bytes:
        """Wire encoding: the signed payload, then the signature.

        The TPA side of the wire verifies the Schnorr signature over
        exactly the payload bytes it received, so the encoding *is* the
        canonical signed payload followed by the two signature ints.
        """
        e, s = self.signature
        return self.signed_payload() + _encode_sigint(e) + _encode_sigint(s)

    @classmethod
    def from_wire(
        cls, data: bytes, offset: int = 0
    ) -> tuple["SignedTranscript", int]:
        """Parse a transcript; every malformed shape fails closed.

        The decoded instance's payload cache is seeded with the exact
        bytes consumed -- the fixed-width/length-prefixed encoding is
        canonical (each value has exactly one accepted encoding), so
        those bytes equal a re-encode, and signature verification runs
        over precisely what crossed the wire.
        """
        start = offset
        magic_end = offset + len(TRANSCRIPT_MAGIC)
        if data[offset:magic_end] != TRANSCRIPT_MAGIC:
            raise ProtocolError("bad transcript magic")
        offset = magic_end
        device_id, offset = decode_length_prefixed(data, offset)
        file_id, offset = decode_length_prefixed(data, offset)
        nonce, offset = decode_length_prefixed(data, offset)
        n_rounds, offset = decode_uint(data, offset)
        rounds: list[TimedRound] = []
        for _ in range(n_rounds):
            round_, offset = TimedRound.from_wire(data, offset)
            rounds.append(round_)
        latitude, offset = decode_float(data, offset)
        longitude, offset = decode_float(data, offset)
        payload_end = offset
        sig_e, offset = _decode_sigint(data, offset)
        sig_s, offset = _decode_sigint(data, offset)
        try:
            position = GeoPoint(latitude, longitude)
        except ConfigurationError as exc:
            raise ProtocolError(f"invalid GPS position: {exc}") from exc
        transcript = cls(
            device_id=device_id,
            file_id=file_id,
            nonce=nonce,
            rounds=tuple(rounds),
            position=position,
            signature=(sig_e, sig_s),
        )
        object.__setattr__(
            transcript, "_signed_payload", bytes(data[start:payload_end])
        )
        return transcript, offset
