"""Timing-budget calibration (Sections V-B/D/E/F).

The TPA accepts a round iff ``Delta-t_j <= Delta-t_max`` where

    Delta-t_max = Delta-t_VP (LAN round trip) + Delta-t_L (disk look-up)
                  [+ margin]

The paper's worked numbers: Delta-t_VP <= 3 ms, Delta-t_L <= 13 ms
(WD 2500JD class), so Delta-t_max ~= 16 ms.

The *relay bound* is the distance question in Fig. 6: if a cheating
provider forwards requests to a remote site with disks of look-up time
``Delta-t_LB``, the slack available for Internet flight is
``Delta-t_max - Delta-t_LB`` and the reachable distance is

    d <= (4/9 c) * (Delta-t_max - Delta-t_LB) / 2.

The paper instantiates this with its own simplification ("P is not
involved in any look up process"): slack = Delta-t_L(36Z15) = 5.406 ms
of *pure flight* gives 4/9 * 300 * 5.406 / 2 ~= 360 km.  Both forms are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.latency import INTERNET_SPEED_KM_PER_MS
from repro.storage.hdd import HDDModel, HDDSpec, IBM_36Z15, WD_2500JD
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TimingBudget:
    """A fully calibrated audit timing budget."""

    lan_rtt_ms: float
    lookup_ms: float
    margin_ms: float

    @property
    def rtt_max_ms(self) -> float:
        """The accept threshold Delta-t_max."""
        return self.lan_rtt_ms + self.lookup_ms + self.margin_ms

    def describe(self) -> str:
        """One-line summary for audit reports."""
        return (
            f"Delta-t_max = {self.rtt_max_ms:.3f} ms "
            f"(LAN {self.lan_rtt_ms:.3f} + lookup {self.lookup_ms:.3f}"
            f" + margin {self.margin_ms:.3f})"
        )


def calibrate_rtt_max(
    disk: HDDSpec = WD_2500JD,
    *,
    segment_bytes: int = 512,
    lan_rtt_ms: float = 3.0,
    margin_ms: float = 0.0,
) -> TimingBudget:
    """Build the timing budget from contract-time measurements.

    Defaults reproduce the paper: WD 2500JD at 512-byte reads and a
    3 ms LAN budget -> Delta-t_max = 16.1055 ms ("must be less than
    Delta-t_max ~= 16 ms").
    """
    check_positive("lan_rtt_ms", lan_rtt_ms)
    check_positive("margin_ms", margin_ms, strict=False)
    if segment_bytes <= 0:
        raise ConfigurationError(
            f"segment_bytes must be positive, got {segment_bytes}"
        )
    lookup = HDDModel(disk).lookup_ms(segment_bytes)
    return TimingBudget(
        lan_rtt_ms=lan_rtt_ms, lookup_ms=lookup, margin_ms=margin_ms
    )


def relay_distance_bound_km(
    rtt_max_ms: float | None = None,
    *,
    adversary_disk: HDDSpec = IBM_36Z15,
    segment_bytes: int = 512,
    internet_speed_km_per_ms: float = INTERNET_SPEED_KM_PER_MS,
    paper_convention: bool = False,
) -> float:
    """Maximum distance a relaying adversary can hide.

    With ``paper_convention=False`` (default, the tight accounting):
    the adversary pays its own disk time, so flight slack is
    ``rtt_max - lookup(adversary_disk)`` and

        d = internet_speed * slack / 2.

    With ``paper_convention=True``: the paper's Section V-C arithmetic,
    where the *entire* fast-disk look-up time 5.406 ms is treated as
    flight budget -- 4/9 * 300 km/ms * 5.406 ms / 2 = 360.4 km.
    (``rtt_max_ms`` is ignored in that mode, as in the paper.)
    """
    lookup = HDDModel(adversary_disk).lookup_ms(segment_bytes)
    if paper_convention:
        return internet_speed_km_per_ms * lookup / 2.0
    if rtt_max_ms is None:
        raise ConfigurationError(
            "rtt_max_ms is required unless paper_convention=True"
        )
    if rtt_max_ms < 0:
        raise ConfigurationError(f"rtt_max must be >= 0, got {rtt_max_ms}")
    slack = max(0.0, rtt_max_ms - lookup)
    return internet_speed_km_per_ms * slack / 2.0


def margin_headroom_km(
    margin_ms: float,
    internet_speed_km_per_ms: float = INTERNET_SPEED_KM_PER_MS,
) -> float:
    """Relay headroom bought by a timing margin.

    Every millisecond of accept-threshold margin lets a relay hide
    ``speed/2`` further away (~66.7 km at Internet speed): the central
    tension when tuning ``margin_ms`` against honest-jitter false
    rejects, swept in the ablation bench.
    """
    check_positive("margin_ms", margin_ms, strict=False)
    return internet_speed_km_per_ms * margin_ms / 2.0
