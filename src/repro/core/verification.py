"""The TPA's verification of a signed transcript (Section V-B).

"The TPA (A) does the verification process which involves the
following steps:

1. Verify the signature Sign_SK(R).
2. Verify V's GPS position Pos_V.
3. Check that tau_cj = MAC_K(S_cj, c_j, fid) for each c_j.
4. Find the maximum time Delta-t' = max(...) and check that
   Delta-t' <= Delta-t_max."

:func:`verify_transcript` runs all four and returns a structured
:class:`GeoProofVerdict` -- callers get every check's outcome, not just
a boolean, because the failure *mode* is the experimental observable
(timing failures indicate relays, MAC failures indicate corruption,
GPS failures indicate device relocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import AuditRequest, SignedTranscript
from repro.crypto.mac import mac_verify
from repro.crypto.schnorr import SchnorrPublicKey, schnorr_verify
from repro.errors import VerificationError
from repro.geo.regions import Region
from repro.por.parameters import PORParams


@dataclass(frozen=True)
class GeoProofVerdict:
    """Outcome of the four-step TPA verification."""

    accepted: bool
    signature_ok: bool
    position_ok: bool
    macs_ok: bool
    timing_ok: bool
    challenge_ok: bool
    max_rtt_ms: float
    rtt_max_ms: float
    bad_mac_indices: tuple[int, ...] = field(default=())

    @property
    def failure_reasons(self) -> list[str]:
        """Machine-readable tags for every failed check."""
        reasons = []
        if not self.signature_ok:
            reasons.append("signature")
        if not self.position_ok:
            reasons.append("gps")
        if not self.macs_ok:
            reasons.append("mac")
        if not self.timing_ok:
            reasons.append("timing")
        if not self.challenge_ok:
            reasons.append("challenge")
        return reasons


def verify_transcript(
    transcript: SignedTranscript,
    request: AuditRequest,
    *,
    verifier_public_key: SchnorrPublicKey,
    mac_key: bytes,
    params: PORParams,
    region: Region,
    rtt_max_ms: float,
) -> GeoProofVerdict:
    """Run the TPA's four checks plus request-consistency checks.

    Beyond the paper's four steps, the transcript must also be
    *responsive*: same file id, same nonce (freshness), exactly ``k``
    rounds over distinct indices in range.  Without those checks a
    provider could replay an old transcript or answer fewer/different
    indices than challenged.
    """
    # Step 1: signature over the canonical payload.
    signature_ok = schnorr_verify(
        verifier_public_key, transcript.signed_payload(), transcript.signature
    )

    # Step 2: GPS position within the SLA region.
    position_ok = region.contains(transcript.position)

    # Request consistency / freshness.
    indices = transcript.challenge_indices()
    challenge_ok = (
        transcript.file_id == request.file_id
        and transcript.nonce == request.nonce
        and len(indices) == request.k
        and len(set(indices)) == len(indices)
        and all(0 <= index < request.n_segments for index in indices)
    )

    # Step 3: every segment's MAC tag.
    bad_macs: list[int] = []
    for round_ in transcript.rounds:
        segment = round_.segment
        tag_ok = segment.index == round_.index and mac_verify(
            mac_key,
            segment.payload,
            round_.index,
            transcript.file_id,
            segment.tag,
            tag_bits=params.tag_bits,
        )
        if not tag_ok:
            bad_macs.append(round_.index)
    macs_ok = not bad_macs

    # Step 4: max round time within the calibrated budget.
    max_rtt_ms_observed = transcript.max_rtt_ms
    timing_ok = max_rtt_ms_observed <= rtt_max_ms

    return GeoProofVerdict(
        accepted=signature_ok
        and position_ok
        and macs_ok
        and timing_ok
        and challenge_ok,
        signature_ok=signature_ok,
        position_ok=position_ok,
        macs_ok=macs_ok,
        timing_ok=timing_ok,
        challenge_ok=challenge_ok,
        max_rtt_ms=max_rtt_ms_observed,
        rtt_max_ms=rtt_max_ms,
        bad_mac_indices=tuple(bad_macs),
    )


def require_accepted(verdict: GeoProofVerdict) -> None:
    """Raise :class:`VerificationError` naming the failed checks."""
    if not verdict.accepted:
        raise VerificationError(
            f"GeoProof audit rejected: {', '.join(verdict.failure_reasons)}",
            reason=verdict.failure_reasons[0] if verdict.failure_reasons else "unknown",
        )
