"""The TPA's verification of a signed transcript (Section V-B).

"The TPA (A) does the verification process which involves the
following steps:

1. Verify the signature Sign_SK(R).
2. Verify V's GPS position Pos_V.
3. Check that tau_cj = MAC_K(S_cj, c_j, fid) for each c_j.
4. Find the maximum time Delta-t' = max(...) and check that
   Delta-t' <= Delta-t_max."

:func:`verify_transcript` runs all four and returns a structured
:class:`GeoProofVerdict` -- callers get every check's outcome, not just
a boolean, because the failure *mode* is the experimental observable
(timing failures indicate relays, MAC failures indicate corruption,
GPS failures indicate device relocation).

:func:`verify_transcripts` is the batch plane over the same semantics:
it groups every round of every transcript into one
:func:`~repro.crypto.mac.mac_verify_many` call per (key, file, tag
width) and one :func:`~repro.crypto.schnorr.schnorr_verify_many` batch
per verifier key, then reassembles per-transcript verdicts that are
byte-identical to running the scalar loop job by job.  The scalar
:func:`verify_transcript` stays as the semantics anchor, same pattern
as slot-vs-event and vec-vs-scalar RS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import math

from repro.core.messages import AuditRequest, SignedTranscript
from repro.crypto.mac import mac_verify, mac_verify_many
from repro.crypto.schnorr import SchnorrPublicKey, schnorr_verify, schnorr_verify_many
from repro.errors import ProtocolError, VerificationError
from repro.util.serialization import (
    decode_float,
    decode_uint,
    decode_uint_list,
    encode_float,
    encode_uint,
    encode_uint_list,
)
from repro.geo.regions import Region
from repro.por.parameters import PORParams


@dataclass(frozen=True, slots=True)
class GeoProofVerdict:
    """Outcome of the four-step TPA verification."""

    accepted: bool
    signature_ok: bool
    position_ok: bool
    macs_ok: bool
    timing_ok: bool
    challenge_ok: bool
    max_rtt_ms: float
    rtt_max_ms: float
    bad_mac_indices: tuple[int, ...] = field(default=())

    @property
    def failure_reasons(self) -> list[str]:
        """Machine-readable tags for every failed check."""
        reasons = []
        if not self.signature_ok:
            reasons.append("signature")
        if not self.position_ok:
            reasons.append("gps")
        if not self.macs_ok:
            reasons.append("mac")
        if not self.timing_ok:
            reasons.append("timing")
        if not self.challenge_ok:
            reasons.append("challenge")
        return reasons

    def to_wire(self) -> bytes:
        """Canonical wire encoding (the daemon's verdict reply body)."""
        flags = (
            (self.signature_ok << 0)
            | (self.position_ok << 1)
            | (self.macs_ok << 2)
            | (self.timing_ok << 3)
            | (self.challenge_ok << 4)
        )
        return (
            encode_uint(flags)
            + encode_float(self.max_rtt_ms)
            + encode_float(self.rtt_max_ms)
            + encode_uint_list(list(self.bad_mac_indices))
        )

    @classmethod
    def from_wire(
        cls, data: bytes, offset: int = 0
    ) -> tuple["GeoProofVerdict", int]:
        """Parse a verdict; inconsistent flag sets fail closed.

        ``accepted`` is not carried on the wire -- it is recomputed as
        the conjunction of the five checks, so a corrupted frame can
        never claim acceptance while reporting a failed check.
        """
        flags, offset = decode_uint(data, offset)
        if flags >= 1 << 5:
            raise ProtocolError(f"unknown verdict flags: {flags:#x}")
        max_rtt_ms, offset = decode_float(data, offset)
        rtt_max_ms, offset = decode_float(data, offset)
        if not (math.isfinite(max_rtt_ms) and math.isfinite(rtt_max_ms)):
            raise ProtocolError("non-finite timing in verdict")
        bad_macs, offset = decode_uint_list(data, offset)
        macs_ok = bool(flags & 4)
        if macs_ok and bad_macs:
            raise ProtocolError("verdict claims macs_ok but lists bad MACs")
        checks = (
            bool(flags & 1),
            bool(flags & 2),
            macs_ok,
            bool(flags & 8),
            bool(flags & 16),
        )
        return (
            cls(
                accepted=all(checks),
                signature_ok=checks[0],
                position_ok=checks[1],
                macs_ok=macs_ok,
                timing_ok=checks[3],
                challenge_ok=checks[4],
                max_rtt_ms=max_rtt_ms,
                rtt_max_ms=rtt_max_ms,
                bad_mac_indices=tuple(bad_macs),
            ),
            offset,
        )


def verify_transcript(
    transcript: SignedTranscript,
    request: AuditRequest,
    *,
    verifier_public_key: SchnorrPublicKey,
    mac_key: bytes,
    params: PORParams,
    region: Region,
    rtt_max_ms: float,
) -> GeoProofVerdict:
    """Run the TPA's four checks plus request-consistency checks.

    Beyond the paper's four steps, the transcript must also be
    *responsive*: same file id, same nonce (freshness), exactly ``k``
    rounds over distinct indices in range.  Without those checks a
    provider could replay an old transcript or answer fewer/different
    indices than challenged.
    """
    # Step 1: signature over the canonical payload.
    signature_ok = schnorr_verify(
        verifier_public_key, transcript.signed_payload(), transcript.signature
    )

    # Step 2: GPS position within the SLA region.
    position_ok = region.contains(transcript.position)

    # Request consistency / freshness.
    indices = transcript.challenge_indices()
    challenge_ok = (
        transcript.file_id == request.file_id
        and transcript.nonce == request.nonce
        and len(indices) == request.k
        and len(set(indices)) == len(indices)
        and all(0 <= index < request.n_segments for index in indices)
    )

    # Step 3: every segment's MAC tag.
    bad_macs: list[int] = []
    for round_ in transcript.rounds:
        segment = round_.segment
        tag_ok = segment.index == round_.index and mac_verify(
            mac_key,
            segment.payload,
            round_.index,
            transcript.file_id,
            segment.tag,
            tag_bits=params.tag_bits,
        )
        if not tag_ok:
            bad_macs.append(round_.index)
    macs_ok = not bad_macs

    # Step 4: max round time within the calibrated budget.
    max_rtt_ms_observed = transcript.max_rtt_ms
    timing_ok = max_rtt_ms_observed <= rtt_max_ms

    return GeoProofVerdict(
        accepted=signature_ok
        and position_ok
        and macs_ok
        and timing_ok
        and challenge_ok,
        signature_ok=signature_ok,
        position_ok=position_ok,
        macs_ok=macs_ok,
        timing_ok=timing_ok,
        challenge_ok=challenge_ok,
        max_rtt_ms=max_rtt_ms_observed,
        rtt_max_ms=rtt_max_ms,
        bad_mac_indices=tuple(bad_macs),
    )


@dataclass(frozen=True, slots=True)
class TranscriptVerification:
    """One pending verification job for :func:`verify_transcripts`.

    Bundles exactly the arguments of :func:`verify_transcript`; the MAC
    key is hidden from the repr because verdict batches end up in logs
    and failure output (CRY003).
    """

    transcript: SignedTranscript
    request: AuditRequest
    verifier_public_key: SchnorrPublicKey
    mac_key: bytes = field(repr=False)
    params: PORParams
    region: Region
    rtt_max_ms: float


def verify_transcripts(
    jobs: Sequence[TranscriptVerification],
) -> list[GeoProofVerdict]:
    """Verify a batch of transcripts; one verdict per job, in order.

    Byte-identical to ``[verify_transcript(job...) for job in jobs]``
    (pinned by test): the cheap checks (position, freshness, timing)
    stay scalar, while the two expensive checks amortize --

    * all rounds sharing a (mac_key, file_id, tag_bits) triple are
      recomputed through one :func:`mac_verify_many` call (one HMAC
      key schedule per group instead of one per round);
    * all signatures sharing a verifier key go through one
      :func:`schnorr_verify_many` random-linear-combination batch
      (culprit transcripts isolated by bisection on failure).

    Rounds whose echoed segment index contradicts the round index are
    marked bad without touching the MAC batch, exactly like the scalar
    path's short-circuiting ``and``.
    """
    # --- Schnorr: one batch per verifier key, first-appearance order.
    signature_oks = [False] * len(jobs)
    by_key: dict[SchnorrPublicKey, list[int]] = {}
    for position, job in enumerate(jobs):
        by_key.setdefault(job.verifier_public_key, []).append(position)
    for public_key, positions in by_key.items():
        verdicts = schnorr_verify_many(
            public_key,
            [jobs[position].transcript.signed_payload() for position in positions],
            [jobs[position].transcript.signature for position in positions],
        )
        for position, ok in zip(positions, verdicts):
            signature_oks[position] = ok

    # --- MACs: flatten every round into one batch per key/file/width.
    # round_oks[j] holds job j's per-round tag verdicts in round order;
    # index-mismatched rounds are bad by definition and never reach the
    # MAC recomputation.
    round_oks: list[list[bool]] = []
    by_mac: dict[tuple[bytes, bytes, int], list[tuple[int, int]]] = {}
    for position, job in enumerate(jobs):
        round_oks.append([False] * len(job.transcript.rounds))
        group_key = (job.mac_key, job.transcript.file_id, job.params.tag_bits)
        entries = by_mac.setdefault(group_key, [])
        for round_position, round_ in enumerate(job.transcript.rounds):
            if round_.segment.index == round_.index:
                entries.append((position, round_position))
    for (mac_key, file_id, tag_bits), entries in by_mac.items():
        if not entries:
            continue
        # Audits re-challenge the same stored segments, so batches are
        # full of repeats; identical (index, payload, tag) triples share
        # one recomputation.  The recomputed tag is a pure function of
        # the triple (plus the group key), so deduplication cannot
        # change any verdict.
        slot_of: dict[tuple[int, bytes, bytes], int] = {}
        unique_rounds: list = []
        membership: list[int] = []
        for position, round_position in entries:
            round_ = jobs[position].transcript.rounds[round_position]
            triple = (round_.index, round_.segment.payload, round_.segment.tag)
            slot = slot_of.get(triple)
            if slot is None:
                slot = len(unique_rounds)
                slot_of[triple] = slot
                unique_rounds.append(round_)
            membership.append(slot)
        tag_oks = mac_verify_many(
            mac_key,
            [round_.segment.payload for round_ in unique_rounds],
            [round_.segment.tag for round_ in unique_rounds],
            file_id,
            indices=[round_.index for round_ in unique_rounds],
            tag_bits=tag_bits,
        )
        for (position, round_position), slot in zip(entries, membership):
            round_oks[position][round_position] = tag_oks[slot]

    # --- Assemble verdicts in input order.
    out: list[GeoProofVerdict] = []
    for position, job in enumerate(jobs):
        transcript, request = job.transcript, job.request
        position_ok = job.region.contains(transcript.position)
        indices = transcript.challenge_indices()
        challenge_ok = (
            transcript.file_id == request.file_id
            and transcript.nonce == request.nonce
            and len(indices) == request.k
            and len(set(indices)) == len(indices)
            and all(0 <= index < request.n_segments for index in indices)
        )
        bad_macs = [
            round_.index
            for round_, tag_ok in zip(transcript.rounds, round_oks[position])
            if not tag_ok
        ]
        max_rtt_ms_observed = transcript.max_rtt_ms
        timing_ok = max_rtt_ms_observed <= job.rtt_max_ms
        signature_ok = signature_oks[position]
        macs_ok = not bad_macs
        out.append(
            GeoProofVerdict(
                accepted=signature_ok
                and position_ok
                and macs_ok
                and timing_ok
                and challenge_ok,
                signature_ok=signature_ok,
                position_ok=position_ok,
                macs_ok=macs_ok,
                timing_ok=timing_ok,
                challenge_ok=challenge_ok,
                max_rtt_ms=max_rtt_ms_observed,
                rtt_max_ms=job.rtt_max_ms,
                bad_mac_indices=tuple(bad_macs),
            )
        )
    return out


def require_accepted(verdict: GeoProofVerdict) -> None:
    """Raise :class:`VerificationError` naming the failed checks."""
    if not verdict.accepted:
        raise VerificationError(
            f"GeoProof audit rejected: {', '.join(verdict.failure_reasons)}",
            reason=verdict.failure_reasons[0] if verdict.failure_reasons else "unknown",
        )
