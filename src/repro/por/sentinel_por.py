"""The original sentinel-based POR of Juels-Kaliski.

GeoProof uses the MAC variant, but the paper motivates it via the
sentinel scheme, and the benchmark suite compares the two.  In the
sentinel construction the Encode algorithm encrypts the file, inserts
random-valued *sentinel* blocks at pseudorandom positions, and applies
error correction; a challenge asks the server to return the values at a
subset of sentinel positions.  Because the encrypted data blocks are
indistinguishable from sentinels, a server that corrupts an
epsilon-fraction of its storage corrupts the same fraction of the
unqueried sentinels in expectation and is caught with probability
roughly ``1 - (1 - epsilon)^q`` per q-sentinel challenge.

Simplifications relative to the full JK construction (documented for
honesty; none affects the detection math the benchmarks measure):

* sentinels are inserted *after* ECC rather than interleaved with it;
* each sentinel may be queried once (the client tracks consumption);
* sentinel values are PRF outputs, so client state is O(1).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from repro.crypto.aes import aes_ctr_encrypt
from repro.crypto.prf import prf_stream
from repro.crypto.prp import BlockPermutation
from repro.erasure.striping import BlockStriper
from repro.errors import BlockNotFoundError, ConfigurationError, ProtocolError
from repro.por.parameters import PORParams
from repro.por.setup import _ctr_nonce, _split_blocks


@dataclass(frozen=True)
class SentinelChallenge:
    """Positions of the sentinels being spot-checked."""

    positions: tuple[int, ...]
    sentinel_ids: tuple[int, ...]  # which sentinel number each position holds


@dataclass(frozen=True)
class SentinelResponse:
    """Block values the server claims live at the challenged positions."""

    blocks: tuple[bytes, ...]


class SentinelPORServer:
    """Stores the sentinel-encoded block list and answers position reads."""

    def __init__(self, blocks: list[bytes]) -> None:
        self.blocks = list(blocks)

    def respond(self, challenge: SentinelChallenge) -> SentinelResponse:
        """Return the blocks at the challenged positions."""
        out = []
        for position in challenge.positions:
            if not 0 <= position < len(self.blocks):
                raise BlockNotFoundError(f"position {position} out of range")
            out.append(self.blocks[position])
        return SentinelResponse(blocks=tuple(out))


class SentinelPORClient:
    """Encodes files with sentinels and verifies spot-check responses."""

    def __init__(
        self,
        master_key: bytes,
        file_id: bytes,
        n_sentinels: int,
        params: PORParams | None = None,
    ) -> None:
        if n_sentinels <= 0:
            raise ConfigurationError(
                f"n_sentinels must be positive, got {n_sentinels}"
            )
        self.params = params or PORParams()
        self.file_id = file_id
        self.n_sentinels = n_sentinels
        self._key = master_key
        self._consumed = 0
        self._n_total_blocks: int | None = None
        self._permutation: BlockPermutation | None = None

    # -- encode -----------------------------------------------------------

    def _sentinel_value(self, sentinel_id: int) -> bytes:
        return prf_stream(
            self._key,
            b"sentinel-value",
            self.file_id + sentinel_id.to_bytes(8, "big"),
            self.params.block_bytes,
        )

    def encode(self, data: bytes) -> list[bytes]:
        """Produce the sentinel-encoded block list for upload.

        Pipeline: block, ECC, encrypt, append sentinels, permute.  The
        final permutation hides which positions are sentinels.
        """
        params = self.params
        blocks = _split_blocks(data, params.block_bytes)
        striper = BlockStriper(params.stripe_layout)
        encoded = striper.encode_blocks(blocks)
        nonce = _ctr_nonce(self.file_id)
        flat = aes_ctr_encrypt(
            prf_stream(self._key, b"sentinel-enc-key", self.file_id, 16),
            nonce,
            b"".join(encoded),
        )
        encrypted = [
            flat[i : i + params.block_bytes]
            for i in range(0, len(flat), params.block_bytes)
        ]
        with_sentinels = encrypted + [
            self._sentinel_value(s) for s in range(self.n_sentinels)
        ]
        permutation = self._permutation_for(len(with_sentinels))
        self._n_total_blocks = len(with_sentinels)
        return permutation.permute_list(with_sentinels)

    def _permutation_for(self, n_total_blocks: int) -> BlockPermutation:
        """The (cached) encode-time permutation over ``n_total_blocks``.

        Caching matters: encode already materialised the permutation
        table, so later sentinel-position lookups are O(1) instead of
        one fresh cycle walk (six HMACs per step) each.
        """
        if (
            self._permutation is None
            or self._permutation.size != n_total_blocks
        ):
            self._permutation = BlockPermutation(
                prf_stream(self._key, b"sentinel-perm-key", self.file_id, 32),
                n_total_blocks,
            )
        return self._permutation

    def _sentinel_positions(
        self, sentinel_ids: tuple[int, ...], n_total_blocks: int
    ) -> tuple[int, ...]:
        """Post-permutation positions of the given sentinels, in batch."""
        base = n_total_blocks - self.n_sentinels
        permutation = self._permutation_for(n_total_blocks)
        return tuple(
            permutation.forward_many([base + s for s in sentinel_ids])
        )

    def _sentinel_position(self, sentinel_id: int, n_total_blocks: int) -> int:
        """Post-permutation position of a given sentinel."""
        return self._sentinel_positions((sentinel_id,), n_total_blocks)[0]

    # -- challenge / verify --------------------------------------------------

    @property
    def sentinels_remaining(self) -> int:
        """How many unconsumed sentinels are left."""
        return self.n_sentinels - self._consumed

    def make_challenge(self, q: int) -> SentinelChallenge:
        """Consume the next ``q`` sentinels and reveal their positions."""
        if self._n_total_blocks is None:
            raise ProtocolError("encode() must run before challenges")
        if q <= 0 or q > self.sentinels_remaining:
            raise ConfigurationError(
                f"q must be in 1..{self.sentinels_remaining}, got {q}"
            )
        ids = tuple(range(self._consumed, self._consumed + q))
        self._consumed += q
        positions = self._sentinel_positions(ids, self._n_total_blocks)
        return SentinelChallenge(positions=positions, sentinel_ids=ids)

    def verify_response(
        self, challenge: SentinelChallenge, response: SentinelResponse
    ) -> bool:
        """True iff every returned block equals the expected sentinel.

        Sentinel values are PRF outputs under the client's master key,
        so comparing them is a tag check: a short-circuiting ``!=``
        would leak, through timing, how many leading blocks (and how
        many leading bytes of the first bad block) the server got
        right.  Every block is therefore compared with
        :func:`hmac.compare_digest` and the verdict accumulated without
        early exit.
        """
        if len(response.blocks) != len(challenge.sentinel_ids):
            return False
        ok = True
        for sentinel_id, block in zip(challenge.sentinel_ids, response.blocks):
            ok &= hmac.compare_digest(block, self._sentinel_value(sentinel_id))
        return ok
