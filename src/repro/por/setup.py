"""The five-step Juels-Kaliski setup pipeline and its inverse.

Section V-A of the paper:

1. divide the file into blocks of ``l_B`` = 128 bits;
2. group blocks into k-block chunks and apply the (255, 223)
   Reed-Solomon code, yielding ``F'``;
3. encrypt: ``F'' = E_K(F')``;
4. reorder blocks of ``F''`` with a pseudorandom permutation,
   yielding ``F'''``;
5. cut ``F'''`` into v-block segments, MAC each as
   ``tau_i = MAC_K'(S_i, i, fid)`` and embed the tag, yielding ``F~``.

:func:`setup_file` performs 1-5; :func:`extract_file` inverts them
(verify tags, un-permute, decrypt, ECC-decode) and is what makes the
scheme a proof of *retrievability*: as long as not too many blocks per
chunk are bad, the original file comes back bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aes import aes_ctr_decrypt, aes_ctr_encrypt
from repro.crypto.kdf import derive_subkeys
from repro.crypto.mac import mac_tag_many, mac_verify_many
from repro.crypto.prp import BlockPermutation
from repro.erasure.striping import BlockStriper
from repro.errors import ConfigurationError, VerificationError
from repro.por.file_format import EncodedFile, Segment
from repro.por.parameters import PORParams


@dataclass(frozen=True)
class PORKeys:
    """The client's keys, derived from one master key.

    Attributes
    ----------
    encryption_key:
        AES key for step 3.
    permutation_key:
        PRP key for step 4.
    mac_key:
        The paper's ``K'`` used for segment tags (shared with the TPA:
        "the TPA knows the secret key used to verify the MAC tags").
    """

    # repr=False on all three: key bytes must never surface in logs,
    # tracebacks or pytest failure output (CRY003).
    encryption_key: bytes = field(repr=False)
    permutation_key: bytes = field(repr=False)
    mac_key: bytes = field(repr=False)

    @classmethod
    def derive(cls, master_key: bytes) -> "PORKeys":
        """Derive the three sub-keys from a master key via HKDF."""
        if len(master_key) < 16:
            raise ConfigurationError(
                f"master key must be >= 16 bytes, got {len(master_key)}"
            )
        subkeys = derive_subkeys(master_key, ["enc", "perm", "mac"])
        return cls(
            encryption_key=subkeys["enc"][:16],
            permutation_key=subkeys["perm"],
            mac_key=subkeys["mac"],
        )


def _split_blocks(data: bytes, block_bytes: int) -> list[bytes]:
    """Step 1: split into fixed blocks, zero-padding the final one."""
    blocks = []
    for start in range(0, len(data), block_bytes):
        block = data[start : start + block_bytes]
        if len(block) < block_bytes:
            block = block + bytes(block_bytes - len(block))
        blocks.append(block)
    if not blocks:
        blocks.append(bytes(block_bytes))  # empty file -> one zero block
    return blocks


def _ctr_nonce(file_id: bytes) -> bytes:
    """Derive the CTR initial counter block from the file id."""
    import hashlib

    return hashlib.sha256(b"por-ctr-nonce" + file_id).digest()[:16]


def setup_file(
    data: bytes,
    keys: PORKeys,
    file_id: bytes,
    params: PORParams | None = None,
    *,
    workers: int | None = None,
) -> EncodedFile:
    """Run the full five-step setup, producing the uploadable ``F~``.

    ``workers`` > 1 shards the Reed-Solomon encode (step 2, the data
    plane's widest stage) across a process pool; the output is
    byte-identical to the serial setup.
    """
    params = params or PORParams()
    block_bytes = params.block_bytes

    # Step 1: blocking.
    blocks = _split_blocks(data, block_bytes)

    # Step 2: per-chunk Reed-Solomon -> F'.  encode_blocks runs on the
    # vectorized GF(256) engine when numpy is available (one parity
    # matrix product for all interleaved byte columns of every chunk;
    # see repro.gf.gf256_vec) and can shard chunks across processes.
    striper = BlockStriper(params.stripe_layout)
    encoded_blocks = striper.encode_blocks(blocks, workers=workers)

    # Step 3: encryption -> F''.  CTR keystream positions are indexed by
    # the block's pre-permutation position so decryption after
    # un-permuting lines up.
    nonce = _ctr_nonce(file_id)
    flat = b"".join(encoded_blocks)
    encrypted = aes_ctr_encrypt(keys.encryption_key, nonce, flat)
    encrypted_blocks = [
        encrypted[i : i + block_bytes] for i in range(0, len(encrypted), block_bytes)
    ]

    # Step 4: pseudorandom permutation of block positions -> F'''.
    # permute_list runs on the batch Feistel engine (one PRF sweep per
    # round over a shrinking cycle-walk frontier) -- this was ~65 % of
    # setup cost when each position paid its own HMAC chain.
    permutation = BlockPermutation(keys.permutation_key, len(encrypted_blocks))
    permuted_blocks = permutation.permute_list(encrypted_blocks)

    # Step 5: segment + MAC -> F~.  The final segment may be short; it
    # is zero-padded to keep every stored segment the same size (the
    # tag covers the padded payload, so padding is tamper-evident).
    # Tags are computed in one mac_tag_many batch, which pays the HMAC
    # key schedule once for the whole file instead of per segment.
    v = params.segment_blocks
    payloads: list[bytes] = []
    for start in range(0, len(permuted_blocks), v):
        seg_blocks = permuted_blocks[start : start + v]
        while len(seg_blocks) < v:
            seg_blocks.append(bytes(block_bytes))
        payloads.append(b"".join(seg_blocks))
    tags = mac_tag_many(
        keys.mac_key, payloads, file_id, tag_bits=params.tag_bits
    )
    segments = [
        Segment(index=seg_index, payload=payload, tag=tag)
        for seg_index, (payload, tag) in enumerate(zip(payloads, tags))
    ]

    return EncodedFile(
        file_id=file_id,
        params=params,
        segments=segments,
        original_length=len(data),
        n_data_blocks=len(blocks),
    )


def extract_file(
    encoded: EncodedFile,
    keys: PORKeys,
    *,
    verify_tags: bool = True,
) -> bytes:
    """Invert the setup pipeline and return the original file bytes.

    With ``verify_tags`` (default) every segment's MAC is checked first
    and segments with bad tags are treated as *erasures* for the
    Reed-Solomon decoder -- this is exactly the retrievability
    mechanism: tampering either trips a tag (becoming an erasure the
    code heals) or is small enough for the code to correct blind.
    """
    params = encoded.params
    block_bytes = params.block_bytes
    v = params.segment_blocks

    bad_segments: set[int] = set()
    if verify_tags:
        results = mac_verify_many(
            keys.mac_key,
            [segment.payload for segment in encoded.segments],
            [segment.tag for segment in encoded.segments],
            encoded.file_id,
            indices=[segment.index for segment in encoded.segments],
            tag_bits=params.tag_bits,
        )
        for segment, ok in zip(encoded.segments, results):
            if not ok:
                bad_segments.add(segment.index)

    permuted_blocks = encoded.blocks()
    n_encoded = BlockStriper(params.stripe_layout).encoded_length(
        encoded.n_data_blocks
    )
    # Drop segment padding blocks beyond the true encoded length.
    permuted_blocks = permuted_blocks[:n_encoded]

    # Mark blocks of bad segments as erasures (post-permutation index).
    bad_permuted_positions = set()
    for seg_index in bad_segments:
        for offset in range(v):
            position = seg_index * v + offset
            if position < n_encoded:
                bad_permuted_positions.add(position)

    # Step 4 inverse: un-permute.  unpermute_list materialises the
    # permutation table, so the erasure positions below are free O(1)
    # lookups on the same instance rather than fresh cycle walks.
    permutation = BlockPermutation(keys.permutation_key, n_encoded)
    encrypted_blocks = permutation.unpermute_list(permuted_blocks)
    bad_positions = set(
        permutation.inverse_many(sorted(bad_permuted_positions))
    )

    # Step 3 inverse: decrypt.
    flat = b"".join(encrypted_blocks)
    decrypted = aes_ctr_decrypt(
        keys.encryption_key, _ctr_nonce(encoded.file_id), flat
    )
    decoded_input = [
        decrypted[i : i + block_bytes] for i in range(0, len(decrypted), block_bytes)
    ]

    # Step 2 inverse: RS-decode chunk by chunk with erasure hints.
    striper = BlockStriper(params.stripe_layout)
    n_chunks = n_encoded // params.ecc_total_blocks
    data_blocks: list[bytes] = []
    remaining = encoded.n_data_blocks
    for chunk_index in range(n_chunks):
        start = chunk_index * params.ecc_total_blocks
        chunk = decoded_input[start : start + params.ecc_total_blocks]
        erasures = [
            p - start
            for p in bad_positions
            if start <= p < start + params.ecc_total_blocks
        ]
        take = min(remaining, params.ecc_data_blocks)
        data_blocks.extend(
            striper.decode_chunk(chunk, erasures=erasures, n_data=take)
        )
        remaining -= take

    # Step 1 inverse: concatenate and strip padding.
    raw = b"".join(data_blocks)
    if len(raw) < encoded.original_length:
        raise VerificationError(
            "extracted data shorter than original length", reason="extract"
        )
    return raw[: encoded.original_length]
