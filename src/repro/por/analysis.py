"""Closed-form detection and retrievability bounds.

Section V-C of the paper makes three quantitative claims:

1. "if an adversary corrupts 1/2 % of the data blocks of the file, then
   the probability that the adversary could make the file irretrievable
   is less than 1 in 200,000" -- a Reed-Solomon chunk fails only if
   more than (n - k)/2 of its 255 blocks are corrupted (16 for the
   paper's code, 32 under erasure decoding); with epsilon = 0.5 % the
   binomial tail is astronomically small per chunk, and the JK bound of
   2^-18 ~ 1/262,144 covers the union over a 2 GB file.
2. "POR protocol provides a high probability (about 71.3 %) of
   detecting adversarial corruption of the file in each challenge" for
   1,000 queried segments out of 1,000,000 with 0.5 % corrupted.  The
   exact hypergeometric/binomial value for q = 1000 draws is
   1 - (1 - 0.005)^1000 = 99.33 %; 71.3 % corresponds to ~247 draws or
   to a 0.125 % corruption rate.  We implement the formula family and
   report both readings (see EXPERIMENTS.md).
3. The cumulative detection probability across repeated audits.

All formulas are exact (log-space products) rather than Monte Carlo;
the benches cross-check them against simulation.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.util.validation import check_positive, check_probability


def detection_probability(
    n_segments: int, n_corrupted: int, n_queried: int
) -> float:
    """Exact probability that a uniform ``n_queried``-subset hits a
    corrupted segment (hypergeometric, without replacement).

    ``P = 1 - C(n - c, q) / C(n, q)`` computed stably in log space.
    """
    if n_segments <= 0:
        raise ConfigurationError(f"n_segments must be positive, got {n_segments}")
    if not 0 <= n_corrupted <= n_segments:
        raise ConfigurationError(
            f"n_corrupted must be in [0, {n_segments}], got {n_corrupted}"
        )
    if not 0 <= n_queried <= n_segments:
        raise ConfigurationError(
            f"n_queried must be in [0, {n_segments}], got {n_queried}"
        )
    if n_corrupted == 0 or n_queried == 0:
        return 0.0
    if n_queried > n_segments - n_corrupted:
        return 1.0
    # log P(miss) = sum_{i=0}^{q-1} log((n - c - i) / (n - i))
    log_miss = 0.0
    for i in range(n_queried):
        log_miss += math.log(n_segments - n_corrupted - i) - math.log(
            n_segments - i
        )
    return 1.0 - math.exp(log_miss)


def detection_probability_binomial(epsilon: float, n_queried: int) -> float:
    """The with-replacement approximation ``1 - (1 - eps)^q``.

    This is the formula the paper's 71.3 % figure comes from (for the
    right (eps, q) pairing); it upper-agrees with the hypergeometric
    form when q << n.
    """
    check_probability("epsilon", epsilon)
    if n_queried < 0:
        raise ConfigurationError(f"n_queried must be >= 0, got {n_queried}")
    return 1.0 - (1.0 - epsilon) ** n_queried


def queries_for_detection(epsilon: float, target_probability: float) -> int:
    """Minimum queries q with ``1 - (1 - eps)^q >= target``.

    Useful for choosing GeoProof's k: e.g. eps = 0.5 %,
    target = 71.3 % -> q = 249.
    """
    check_probability("target_probability", target_probability)
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if target_probability == 0.0:
        return 0
    if target_probability >= 1.0:
        raise ConfigurationError("target probability 1.0 needs q = infinity")
    return math.ceil(
        math.log(1.0 - target_probability) / math.log(1.0 - epsilon)
    )


def cumulative_detection(per_challenge: float, n_challenges: int) -> float:
    """Probability at least one of ``n_challenges`` audits detects.

    "In POR the detection of file corruption is a cumulative process."
    """
    check_probability("per_challenge", per_challenge)
    if n_challenges < 0:
        raise ConfigurationError(
            f"n_challenges must be >= 0, got {n_challenges}"
        )
    return 1.0 - (1.0 - per_challenge) ** n_challenges


def _log_binomial_pmf(k: int, n: int, p: float) -> float:
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def chunk_failure_probability(
    n: int, correction_radius_blocks: int, epsilon: float
) -> float:
    """Probability one RS chunk is unrecoverable under random corruption.

    Each of the chunk's ``n`` blocks is independently corrupted with
    probability ``epsilon``; the chunk fails when more than
    ``correction_radius_blocks`` blocks are hit.  Binomial upper tail, exact
    summation in log space.
    """
    if not 0 <= correction_radius_blocks <= n:
        raise ConfigurationError(
            f"correction_radius_blocks must be in [0, {n}], got {correction_radius_blocks}"
        )
    check_probability("epsilon", epsilon)
    if epsilon == 0.0:
        return 0.0
    if epsilon == 1.0:
        return 1.0 if correction_radius_blocks < n else 0.0
    tail = 0.0
    for k in range(correction_radius_blocks + 1, n + 1):
        tail += math.exp(_log_binomial_pmf(k, n, epsilon))
    return min(tail, 1.0)


def file_irretrievability_probability(
    n_chunks: int, n: int, correction_radius_blocks: int, epsilon: float
) -> float:
    """Union bound on whole-file loss across ``n_chunks`` chunks.

    Reproduces claim 1: with the paper's parameters the result is far
    below the quoted 1/200,000 (the JK bound is loose by design).
    """
    check_positive("n_chunks", n_chunks)
    per_chunk = chunk_failure_probability(n, correction_radius_blocks, epsilon)
    # 1 - (1 - p)^m computed stably; also provide the union bound cap.
    exact = -math.expm1(n_chunks * math.log1p(-per_chunk)) if per_chunk < 1 else 1.0
    return min(exact, n_chunks * per_chunk, 1.0)
