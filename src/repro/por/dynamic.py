"""A dynamic POR in the style of Wang et al. (ESORICS'09).

The paper notes that the Juels-Kaliski scheme "is designed to deal with
the static data but GeoProof could be modified to encompass other POS
schemes that support verifying dynamic data such as DPOR by Wang et
al.".  This module provides that extension: block tags are bound to
block *content* (not position), and positions are authenticated by a
Merkle hash tree whose root the client keeps.  Updates therefore touch
only O(log n) state.

The construction here keeps Wang et al.'s architecture (tags +
position-authenticating Merkle tree + root held by the verifier) while
using symmetric MACs instead of BLS-style homomorphic authenticators --
public verifiability is out of scope for GeoProof, whose TPA already
holds the MAC key.
"""

from __future__ import annotations

from dataclasses import dataclass

import hashlib

from repro.crypto.mac import mac_tag, mac_verify
from repro.crypto.rng import DeterministicRNG
from repro.errors import BlockNotFoundError, ConfigurationError, VerificationError
from repro.por.merkle import MerkleTree


def _leaf_bytes(block: bytes, tag: bytes) -> bytes:
    """Merkle leaf binding a block to its content tag."""
    return hashlib.sha256(b"dpor-leaf" + block + tag).digest()


@dataclass(frozen=True)
class DynamicProof:
    """Proof for one challenged block: value, tag, and Merkle path."""

    index: int
    block: bytes
    tag: bytes
    path: tuple[tuple[bytes, bool], ...]


class DynamicPORServer:
    """Server state: blocks, tags and the position Merkle tree."""

    def __init__(self, blocks: list[bytes], tags: list[bytes]) -> None:
        if len(blocks) != len(tags):
            raise ConfigurationError("blocks and tags must align")
        self.blocks = list(blocks)
        self.tags = list(tags)
        self.tree = MerkleTree(
            [_leaf_bytes(b, t) for b, t in zip(blocks, tags)]
        )

    def prove(self, index: int) -> DynamicProof:
        """Produce a proof for one block index."""
        if not 0 <= index < len(self.blocks):
            raise BlockNotFoundError(f"block {index} out of range")
        return DynamicProof(
            index=index,
            block=self.blocks[index],
            tag=self.tags[index],
            path=tuple(self.tree.proof(index)),
        )

    def apply_update(self, index: int, new_block: bytes, new_tag: bytes) -> None:
        """Replace a block (the *modify* operation of DPOR)."""
        if not 0 <= index < len(self.blocks):
            raise BlockNotFoundError(f"block {index} out of range")
        self.blocks[index] = new_block
        self.tags[index] = new_tag
        self.tree.update(index, _leaf_bytes(new_block, new_tag))


class DynamicPOR:
    """Client side: O(1) state (MAC key + Merkle root + block count)."""

    def __init__(self, mac_key: bytes, file_id: bytes, *, tag_bits: int = 128) -> None:
        self.mac_key = mac_key
        self.file_id = file_id
        self.tag_bits = tag_bits
        self.root: bytes | None = None
        self.n_blocks = 0

    # -- setup -----------------------------------------------------------

    def _tag(self, block: bytes) -> bytes:
        # Content-bound tag: index 0 sentinel keeps the MAC API happy;
        # position integrity comes from the Merkle tree, not the tag.
        return mac_tag(self.mac_key, block, 0, self.file_id, tag_bits=self.tag_bits)

    def outsource(self, blocks: list[bytes]) -> DynamicPORServer:
        """Tag every block, build the server, and remember the root."""
        if not blocks:
            raise ConfigurationError("cannot outsource an empty file")
        tags = [self._tag(block) for block in blocks]
        server = DynamicPORServer(blocks, tags)
        self.root = server.tree.root
        self.n_blocks = len(blocks)
        return server

    # -- audit ------------------------------------------------------------

    def make_challenge(self, k: int, rng: DeterministicRNG) -> list[int]:
        """Draw ``k`` distinct block indices to audit."""
        if self.n_blocks == 0:
            raise ConfigurationError("outsource() must run before challenges")
        if not 0 < k <= self.n_blocks:
            raise ConfigurationError(f"k must be in 1..{self.n_blocks}, got {k}")
        return rng.sample_indices(self.n_blocks, k)

    def verify(self, proof: DynamicProof) -> bool:
        """Check tag and Merkle path for one proof; never raises."""
        if self.root is None:
            return False
        if not mac_verify(
            self.mac_key,
            proof.block,
            0,
            self.file_id,
            proof.tag,
            tag_bits=self.tag_bits,
        ):
            return False
        return MerkleTree.verify_proof(
            self.root, _leaf_bytes(proof.block, proof.tag), proof.index, list(proof.path)
        )

    def require_valid(self, proof: DynamicProof) -> None:
        """Raise :class:`VerificationError` on a bad proof."""
        if not self.verify(proof):
            raise VerificationError(
                f"dynamic POR proof failed for block {proof.index}",
                reason="dpor",
            )

    # -- update -------------------------------------------------------------

    def update_block(
        self, server: DynamicPORServer, index: int, new_block: bytes
    ) -> None:
        """Authenticated modify: verify the old block, then swap in the new.

        The client first obtains a proof of the *current* leaf so a
        malicious server cannot use the update to graft an arbitrary
        tree; then both sides apply the change and the client recomputes
        the expected new root locally.
        """
        before = server.prove(index)
        self.require_valid(before)
        new_tag = self._tag(new_block)
        server.apply_update(index, new_block, new_tag)
        # Recompute the new root from the (verified) old path.  The
        # hashing must mirror MerkleTree exactly: leaf prefix + index
        # binding, then node prefix per level.
        current = _leaf_bytes(new_block, new_tag)
        current = hashlib.sha256(
            b"\x00" + index.to_bytes(8, "big") + current
        ).digest()
        for sibling, sibling_is_right in before.path:
            if sibling_is_right:
                current = hashlib.sha256(b"\x01" + current + sibling).digest()
            else:
                current = hashlib.sha256(b"\x01" + sibling + current).digest()
        expected_root = current
        if server.tree.root != expected_root:
            raise VerificationError(
                "server applied an update inconsistently", reason="dpor-update"
            )
        self.root = expected_root
