"""Comparing POS schemes (Section IV of the paper).

The paper weighs the sentinel POR against the MAC-based variant and
picks the MAC scheme "for simplicity".  This module makes the
comparison concrete: for a given file and audit parameters it accounts
each scheme's costs -- storage overhead, client state, challenge and
response bandwidth, audits supported before exhaustion -- so the
trade-off the paper waves at becomes a table the bench can print.

Key structural differences captured:

* **Sentinels are consumable**: each audit burns q sentinels, so a
  file encoded with s sentinels supports ``s // q`` audits; MAC tags
  are reusable forever.
* **Sentinel responses are block-sized** (one block per query); MAC
  responses carry whole segments (v blocks + tag) -- bigger responses,
  but each response also *proves more data present*.
* **Client state**: both are O(1) (keys only) in our implementations;
  the sentinel client additionally tracks the consumption counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.por.parameters import PORParams
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class SchemeCosts:
    """Audit-cost card for one POS scheme on one file."""

    scheme: str
    storage_overhead_fraction: float
    challenge_bytes: int
    response_bytes: int
    data_proven_per_audit_bytes: int
    audits_supported: float  # inf for reusable schemes
    client_state_bytes: int


def mac_por_costs(
    file_bytes: int,
    k_rounds: int,
    params: PORParams | None = None,
) -> SchemeCosts:
    """Cost card for the MAC-based POR GeoProof uses."""
    params = params or PORParams()
    if file_bytes <= 0 or k_rounds <= 0:
        raise ConfigurationError("file_bytes and k_rounds must be positive")
    n_segments = params.segments_for(file_bytes)
    if k_rounds > n_segments:
        raise ConfigurationError(
            f"k_rounds {k_rounds} exceeds segment count {n_segments}"
        )
    segment_bytes = params.segment_bytes + params.tag_bytes
    return SchemeCosts(
        scheme="mac-por",
        storage_overhead_fraction=params.measured_expansion(file_bytes),
        challenge_bytes=8 * k_rounds + 16,  # indices + nonce
        response_bytes=k_rounds * segment_bytes,
        data_proven_per_audit_bytes=k_rounds * params.segment_bytes,
        audits_supported=float("inf"),
        client_state_bytes=3 * 32,  # the three sub-keys
    )


def sentinel_por_costs(
    file_bytes: int,
    q_sentinels_per_audit: int,
    n_sentinels: int,
    params: PORParams | None = None,
) -> SchemeCosts:
    """Cost card for the sentinel POR baseline."""
    params = params or PORParams()
    if file_bytes <= 0 or q_sentinels_per_audit <= 0 or n_sentinels <= 0:
        raise ConfigurationError("all sizes must be positive")
    if q_sentinels_per_audit > n_sentinels:
        raise ConfigurationError("per-audit query exceeds sentinel supply")
    encoded_blocks = params.encoded_blocks_for(file_bytes)
    stored_bytes = (encoded_blocks + n_sentinels) * params.block_bytes
    return SchemeCosts(
        scheme="sentinel-por",
        storage_overhead_fraction=stored_bytes / file_bytes - 1.0,
        challenge_bytes=8 * q_sentinels_per_audit,
        response_bytes=q_sentinels_per_audit * params.block_bytes,
        data_proven_per_audit_bytes=0,  # sentinels prove no file data
        audits_supported=n_sentinels // q_sentinels_per_audit,
        client_state_bytes=32 + 8,  # master key + consumption counter
    )


def equal_detection_parameters(
    epsilon: float, target_detection: float
) -> int:
    """Queries needed by *either* scheme for the target detection.

    Both schemes detect an epsilon-corrupter with ``1-(1-eps)^q`` per
    audit (uniform random positions), so the query count is shared --
    the comparison is then purely about bandwidth, storage and
    reusability at the same security level.
    """
    from repro.por.analysis import queries_for_detection

    return queries_for_detection(epsilon, target_detection)


def compare_schemes(
    file_bytes: int,
    *,
    epsilon: float = 0.005,
    target_detection: float = 0.713,
    n_sentinels: int | None = None,
    params: PORParams | None = None,
) -> list[SchemeCosts]:
    """Both cost cards at equal per-audit detection probability.

    ``n_sentinels`` defaults to one year of daily audits' worth.
    """
    params = params or PORParams()
    q = equal_detection_parameters(epsilon, target_detection)
    if n_sentinels is None:
        n_sentinels = q * 365
    return [
        mac_por_costs(file_bytes, q, params),
        sentinel_por_costs(file_bytes, q, n_sentinels, params),
    ]
