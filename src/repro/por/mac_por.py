"""The MAC-based POR protocol (client and server sides).

This is the POS component of GeoProof: the client (or TPA) challenges
with ``k`` random segment indices; the server returns each segment with
its embedded tag; verification recomputes
``tau_cj = MAC_K'(S_cj, c_j, fid)``.

The classes here implement the *untimed* protocol -- the pure proof of
storage.  GeoProof (in :mod:`repro.core`) reuses the same challenge and
verification logic but routes each round through the timed
distance-bounding channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.mac import mac_verify
from repro.crypto.rng import DeterministicRNG
from repro.errors import BlockNotFoundError, ConfigurationError, VerificationError
from repro.por.file_format import EncodedFile, Segment
from repro.por.parameters import PORParams
from repro.util.serialization import encode_uint_list


@dataclass(frozen=True)
class PORChallenge:
    """A challenge: ``k`` distinct segment indices plus a nonce."""

    indices: tuple[int, ...]
    nonce: bytes

    def wire_bytes(self) -> bytes:
        """Canonical encoding (bound into GeoProof's signed transcript)."""
        return encode_uint_list(list(self.indices)) + self.nonce


@dataclass(frozen=True)
class PORResponse:
    """The server's response: one segment per challenged index."""

    segments: tuple[Segment, ...]


@dataclass
class VerificationReport:
    """Outcome of verifying a :class:`PORResponse`.

    ``ok`` is True iff every requested index was answered with a
    correctly-tagged segment.  ``bad_indices`` lists failures for
    diagnosis.
    """

    ok: bool
    checked: int
    bad_indices: list[int] = field(default_factory=list)
    missing_indices: list[int] = field(default_factory=list)


class MacPORServer:
    """The storage side: holds ``F~`` and answers segment requests.

    An honest server simply looks segments up.  Dishonest behaviour
    (corruption, deletion) is modelled by mutating ``encoded_file`` via
    the adversary helpers in :mod:`repro.cloud.adversary`.
    """

    def __init__(self, encoded_file: EncodedFile) -> None:
        self.encoded_file = encoded_file

    def respond(self, challenge: PORChallenge) -> PORResponse:
        """Answer every index in the challenge (raises if any is absent)."""
        segments = tuple(
            self.encoded_file.segment(index) for index in challenge.indices
        )
        return PORResponse(segments=segments)

    def respond_one(self, index: int) -> Segment:
        """Answer a single index (the per-round operation GeoProof times)."""
        return self.encoded_file.segment(index)


class MacPORClient:
    """The verifying side: issues challenges and checks responses.

    Holds only the MAC key, the file id, the parameter set and the
    segment count -- O(1) client state, the defining POR property
    ("the size of the information exchanged ... may even be independent
    of the size of stored data").
    """

    def __init__(
        self,
        mac_key: bytes,
        file_id: bytes,
        n_segments: int,
        params: PORParams | None = None,
    ) -> None:
        if n_segments <= 0:
            raise ConfigurationError(
                f"n_segments must be positive, got {n_segments}"
            )
        self.mac_key = mac_key
        self.file_id = file_id
        self.n_segments = n_segments
        self.params = params or PORParams()

    def make_challenge(
        self, k: int, rng: DeterministicRNG, *, nonce: bytes | None = None
    ) -> PORChallenge:
        """Draw ``k`` distinct random segment indices."""
        if not 0 < k <= self.n_segments:
            raise ConfigurationError(
                f"k must be in 1..{self.n_segments}, got {k}"
            )
        indices = tuple(rng.sample_indices(self.n_segments, k))
        if nonce is None:
            nonce = rng.random_bytes(16)
        return PORChallenge(indices=indices, nonce=nonce)

    def verify_segment(self, index: int, segment: Segment) -> bool:
        """Check a single segment's tag against its claimed index."""
        if segment.index != index:
            return False
        return mac_verify(
            self.mac_key,
            segment.payload,
            index,
            self.file_id,
            segment.tag,
            tag_bits=self.params.tag_bits,
        )

    def verify_response(
        self, challenge: PORChallenge, response: PORResponse
    ) -> VerificationReport:
        """Check every returned segment; never raises."""
        report = VerificationReport(ok=True, checked=len(challenge.indices))
        answered = {segment.index: segment for segment in response.segments}
        for index in challenge.indices:
            segment = answered.get(index)
            if segment is None:
                report.missing_indices.append(index)
                report.ok = False
            elif not self.verify_segment(index, segment):
                report.bad_indices.append(index)
                report.ok = False
        return report

    def require_valid(
        self, challenge: PORChallenge, response: PORResponse
    ) -> None:
        """Raise :class:`VerificationError` on any failure."""
        report = self.verify_response(challenge, response)
        if not report.ok:
            raise VerificationError(
                f"POR verification failed: bad={report.bad_indices} "
                f"missing={report.missing_indices}",
                reason="mac",
            )
