"""Proof-of-storage (POS/POR) subsystem.

Implements the proof-of-retrievability constructions GeoProof builds
on:

* :mod:`repro.por.parameters` -- the parameter set from the paper
  (128-bit blocks, RS(255, 223), v-block segments, 20-bit tags) plus
  exact overhead accounting.
* :mod:`repro.por.file_format` -- block/segment layout and the encoded
  file container.
* :mod:`repro.por.setup` -- the five-step Juels-Kaliski setup pipeline
  (block, ECC, encrypt, permute, MAC) and its inverse (extraction).
* :mod:`repro.por.mac_por` -- the MAC-based POR used by GeoProof:
  challenge = random segment indices, response = segments + embedded
  tags, verification = MAC recomputation.
* :mod:`repro.por.sentinel_por` -- the original sentinel-based POR of
  Juels-Kaliski (implemented for the baseline comparison).
* :mod:`repro.por.merkle` / :mod:`repro.por.dynamic` -- a Merkle-tree
  dynamic POR in the style of Wang et al. (the extension the paper
  names for dynamic data).
* :mod:`repro.por.analysis` -- closed-form detection probabilities.
"""

from repro.por.dynamic import DynamicPOR, DynamicProof
from repro.por.file_format import EncodedFile, Segment
from repro.por.mac_por import MacPORClient, MacPORServer, PORChallenge, PORResponse
from repro.por.merkle import MerkleTree
from repro.por.parameters import PORParams
from repro.por.sentinel_por import SentinelPORClient, SentinelPORServer
from repro.por.setup import PORKeys, extract_file, setup_file

__all__ = [
    "PORParams",
    "EncodedFile",
    "Segment",
    "PORKeys",
    "setup_file",
    "extract_file",
    "MacPORClient",
    "MacPORServer",
    "PORChallenge",
    "PORResponse",
    "SentinelPORClient",
    "SentinelPORServer",
    "MerkleTree",
    "DynamicPOR",
    "DynamicProof",
]
