"""POR parameter sets and overhead accounting.

The paper's worked example (Section V-A/V-B):

* block size ``l_B`` = 128 bits (one AES block);
* error correction: adapted (255, 223, 32) Reed-Solomon per 223-block
  chunk -- "this step increases the original size of the file by about
  14 %" (255/223 - 1 = 14.35 %);
* segments of ``v = 5`` blocks, each carrying an ``l_tau`` = 20-bit MAC
  -- segment size 128*5 + 20 = 660 bits, "incremental file expansion
  due to MACing would be only 2.5 %" (20 / (128*5) = 3.125 % of the
  data bits; 2.5 % of the 660-bit segment);
* total overhead "about 16.5 %".

:class:`PORParams` carries all of these and computes exact block and
byte counts for a given file size, reproducing the paper's 2 GB example
(b = 2^27 blocks, b' = 153,008,209 encoded blocks -- see note in
``encoded_blocks_jk`` about the paper's figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.erasure.striping import StripeLayout
from repro.errors import ConfigurationError
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class PORParams:
    """Parameters of the MAC-based POR.

    Attributes
    ----------
    block_bits:
        Size of one file block in bits (must be a multiple of 8).
    ecc_data_blocks / ecc_total_blocks:
        Reed-Solomon chunk geometry (k, n).
    segment_blocks:
        Blocks per MACed segment (the paper's ``v``).
    tag_bits:
        Truncated MAC tag length (the paper's ``l_tau``).
    """

    block_bits: int = 128
    ecc_data_blocks: int = 223
    ecc_total_blocks: int = 255
    segment_blocks: int = 5
    tag_bits: int = 20

    def __post_init__(self) -> None:
        if self.block_bits <= 0 or self.block_bits % 8 != 0:
            raise ConfigurationError(
                f"block_bits must be a positive multiple of 8, got {self.block_bits}"
            )
        if not 0 < self.ecc_data_blocks < self.ecc_total_blocks <= 255:
            raise ConfigurationError(
                "ECC geometry needs 0 < k < n <= 255, got "
                f"k={self.ecc_data_blocks} n={self.ecc_total_blocks}"
            )
        if self.segment_blocks <= 0:
            raise ConfigurationError(
                f"segment_blocks must be positive, got {self.segment_blocks}"
            )
        if not 1 <= self.tag_bits <= 256:
            raise ConfigurationError(
                f"tag_bits must be in [1, 256], got {self.tag_bits}"
            )

    # -- derived sizes ------------------------------------------------------

    @property
    def block_bytes(self) -> int:
        """Block size in bytes (16 for the default 128-bit blocks)."""
        return self.block_bits // 8

    @property
    def tag_bytes(self) -> int:
        """Stored tag size in whole bytes (tags are bit-truncated)."""
        return ceil_div(self.tag_bits, 8)

    @property
    def segment_data_bits(self) -> int:
        """Data bits per segment (v * l_B; 640 for the defaults)."""
        return self.segment_blocks * self.block_bits

    @property
    def segment_bits(self) -> int:
        """Segment size including its tag (the paper's 660 bits)."""
        return self.segment_data_bits + self.tag_bits

    @property
    def segment_bytes(self) -> int:
        """Stored segment payload size in bytes (without tag)."""
        return self.segment_blocks * self.block_bytes

    @property
    def stripe_layout(self) -> StripeLayout:
        """The matching erasure-code layout."""
        return StripeLayout(
            block_bytes=self.block_bytes,
            data_blocks=self.ecc_data_blocks,
            total_blocks=self.ecc_total_blocks,
        )

    # -- overhead accounting ----------------------------------------------

    @property
    def ecc_expansion(self) -> float:
        """Fractional expansion from error correction (~0.1435)."""
        return self.ecc_total_blocks / self.ecc_data_blocks - 1.0

    @property
    def mac_expansion(self) -> float:
        """Fractional expansion from MAC tags relative to segment data.

        The paper quotes 2.5 % for 20-bit tags on 5-block segments,
        measuring the tag against the final 660-bit segment
        (20/660 = 3.03 %) or against a byte-aligned layout; we report
        tag bits over data bits (20/640 = 3.125 %) and the paper's
        segment-relative figure via :meth:`mac_expansion_of_segment`.
        """
        return self.tag_bits / self.segment_data_bits

    def mac_expansion_of_segment(self) -> float:
        """Tag bits as a fraction of the tagged segment (20/660 ~= 3.0 %)."""
        return self.tag_bits / self.segment_bits

    @property
    def total_expansion(self) -> float:
        """Combined expansion factor minus one (the paper's ~16.5 %)."""
        return (1.0 + self.ecc_expansion) * (1.0 + self.mac_expansion) - 1.0

    # -- block/segment counts for a file ------------------------------------

    def data_blocks_for(self, file_bytes: int) -> int:
        """Blocks in the raw file (b = ceil(bytes / block_bytes))."""
        if file_bytes < 0:
            raise ConfigurationError(f"file_bytes must be >= 0, got {file_bytes}")
        return ceil_div(file_bytes, self.block_bytes)

    def encoded_blocks_for(self, file_bytes: int) -> int:
        """Blocks after error correction (whole chunks of n blocks)."""
        chunks = ceil_div(self.data_blocks_for(file_bytes), self.ecc_data_blocks)
        return chunks * self.ecc_total_blocks

    def encoded_blocks_jk(self, file_bytes: int) -> int:
        """The paper's continuous approximation b' = ceil(b * n / k).

        For the 2 GB example the paper reports b' = 153,008,209, while
        ceil(2^27 * 255 / 223) = 153,477,672 -- a 0.31 % difference
        (the paper's figure is reproduced exactly by a 255/224 ratio,
        suggesting an off-by-one in its k).  The benchmarks print both
        and EXPERIMENTS.md flags the delta.
        """
        blocks = self.data_blocks_for(file_bytes)
        return ceil_div(blocks * self.ecc_total_blocks, self.ecc_data_blocks)

    def segments_for(self, file_bytes: int) -> int:
        """Segments in the fully encoded file."""
        return ceil_div(self.encoded_blocks_for(file_bytes), self.segment_blocks)

    def stored_bytes_for(self, file_bytes: int) -> int:
        """Total stored bytes: encoded blocks plus one tag per segment."""
        encoded = self.encoded_blocks_for(file_bytes) * self.block_bytes
        return encoded + self.segments_for(file_bytes) * self.tag_bytes

    def measured_expansion(self, file_bytes: int) -> float:
        """Actual expansion for a concrete file size (ratio - 1)."""
        if file_bytes == 0:
            return 0.0
        return self.stored_bytes_for(file_bytes) / file_bytes - 1.0


#: The exact parameterisation used in the paper's worked example.
PAPER_PARAMS = PORParams()

#: A small parameter set for fast unit tests: 4-byte blocks, RS(15, 11),
#: 3-block segments, 16-bit tags.
TEST_PARAMS = PORParams(
    block_bits=32,
    ecc_data_blocks=11,
    ecc_total_blocks=15,
    segment_blocks=3,
    tag_bits=16,
)
