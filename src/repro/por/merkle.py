"""A binary Merkle hash tree.

Substrate for the dynamic POR (:mod:`repro.por.dynamic`), which follows
Wang et al. (ESORICS'09) in authenticating block positions with a
Merkle tree so blocks can be updated/inserted without re-tagging the
whole file.

Leaves are hashed with a leaf prefix and interior nodes with a node
prefix (standard second-preimage hardening), and the leaf *index* is
bound into the leaf hash -- without it, a proof for leaf j would verify
against any claimed index, letting a server answer challenge i with a
different (correctly stored) block.  Odd nodes are promoted unchanged
(Bitcoin-style duplication is avoided because it admits mutation
attacks).
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError, VerificationError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(index: int, data: bytes) -> bytes:
    return hashlib.sha256(
        _LEAF_PREFIX + index.to_bytes(8, "big") + data
    ).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


class MerkleTree:
    """A Merkle tree over a list of byte-string leaves.

    Supports O(log n) membership proofs and in-place leaf updates
    (with O(log n) rehashing along the authentication path).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ConfigurationError("Merkle tree needs at least one leaf")
        # levels[0] = leaf hashes; levels[-1] = [root]
        self._levels: list[list[bytes]] = [
            [_hash_leaf(i, leaf) for i, leaf in enumerate(leaves)]
        ]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            parent: list[bytes] = []
            for i in range(0, len(current) - 1, 2):
                parent.append(_hash_node(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                parent.append(current[-1])  # promote odd node
            self._levels.append(parent)

    @property
    def n_leaves(self) -> int:
        """Number of leaves."""
        return len(self._levels[0])

    @property
    def root(self) -> bytes:
        """The 32-byte root hash."""
        return self._levels[-1][0]

    def proof(self, index: int) -> list[tuple[bytes, bool]]:
        """Return the authentication path for leaf ``index``.

        Each element is ``(sibling_hash, sibling_is_right)``.  Levels
        where the node was promoted without a sibling contribute no
        element.
        """
        if not 0 <= index < self.n_leaves:
            raise ConfigurationError(
                f"leaf index {index} out of range [0, {self.n_leaves})"
            )
        path: list[tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling > position))
            position //= 2
        return path

    def update(self, index: int, new_leaf: bytes) -> None:
        """Replace leaf ``index`` and rehash its path to the root."""
        if not 0 <= index < self.n_leaves:
            raise ConfigurationError(
                f"leaf index {index} out of range [0, {self.n_leaves})"
            )
        self._levels[0][index] = _hash_leaf(index, new_leaf)
        position = index
        for depth in range(len(self._levels) - 1):
            level = self._levels[depth]
            parent_pos = position // 2
            left = level[parent_pos * 2]
            if parent_pos * 2 + 1 < len(level):
                right = level[parent_pos * 2 + 1]
                self._levels[depth + 1][parent_pos] = _hash_node(left, right)
            else:
                self._levels[depth + 1][parent_pos] = left
            position = parent_pos

    @staticmethod
    def verify_proof(
        root: bytes, leaf: bytes, index: int, path: list[tuple[bytes, bool]]
    ) -> bool:
        """Check an authentication path against a trusted root.

        ``index`` is bound into the leaf hash, so a proof only verifies
        for the position it was generated at.
        """
        current = _hash_leaf(index, leaf)
        for sibling, sibling_is_right in path:
            if sibling_is_right:
                current = _hash_node(current, sibling)
            else:
                current = _hash_node(sibling, current)
        return current == root

    @staticmethod
    def require_valid_proof(
        root: bytes, leaf: bytes, index: int, path: list[tuple[bytes, bool]]
    ) -> None:
        """Raise :class:`VerificationError` if the path does not verify."""
        if not MerkleTree.verify_proof(root, leaf, index, path):
            raise VerificationError("Merkle proof failed", reason="merkle")
