"""The encoded-file container and segment layout.

After the five setup steps the client holds (and uploads) the file
``F~``: a sequence of *segments*, each ``v`` blocks of payload plus a
truncated MAC tag.  :class:`EncodedFile` is that container together
with the metadata the client/TPA needs to audit and to extract the
original file (true length, file id, parameter set).

Segments are the protocol's unit of challenge/response: the verifier
asks for index ``c_j`` and the prover must return ``S_cj || tau_cj``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BlockNotFoundError, ConfigurationError
from repro.por.parameters import PORParams
from repro.util.serialization import (
    decode_bytes_list,
    decode_length_prefixed,
    decode_uint,
    encode_bytes_list,
    encode_length_prefixed,
    encode_uint,
)


@dataclass(frozen=True)
class Segment:
    """One stored segment: payload blocks plus embedded tag."""

    index: int
    payload: bytes
    tag: bytes

    def wire_bytes(self) -> bytes:
        """Canonical encoding sent over the simulated wire.

        Memoized on the (frozen) instance: audit hot paths encode the
        same stored segment once per challenged round, and the cache
        turns the repeats into a dict hit.
        """
        cached = self.__dict__.get("_wire_bytes")
        if cached is not None:
            return cached
        encoded = (
            encode_uint(self.index)
            + encode_length_prefixed(self.payload)
            + encode_length_prefixed(self.tag)
        )
        object.__setattr__(self, "_wire_bytes", encoded)
        return encoded

    @classmethod
    def from_wire(cls, data: bytes, offset: int = 0) -> tuple["Segment", int]:
        """Parse a segment from its wire encoding."""
        index, offset = decode_uint(data, offset)
        payload, offset = decode_length_prefixed(data, offset)
        tag, offset = decode_length_prefixed(data, offset)
        return cls(index=index, payload=payload, tag=tag), offset

    @property
    def size_bytes(self) -> int:
        """Stored size (payload + tag)."""
        return len(self.payload) + len(self.tag)


class EncodedFile:
    """The fully prepared file ``F~`` ready for upload.

    Parameters
    ----------
    file_id:
        The ``fid`` bound into every MAC tag.
    params:
        The :class:`PORParams` used to build the file.
    segments:
        All segments in order.
    original_length:
        True byte length of the original file (needed to strip padding
        on extraction).
    n_data_blocks:
        Number of pre-ECC data blocks.
    """

    def __init__(
        self,
        file_id: bytes,
        params: PORParams,
        segments: list[Segment],
        original_length: int,
        n_data_blocks: int,
    ) -> None:
        if original_length < 0:
            raise ConfigurationError(
                f"original_length must be >= 0, got {original_length}"
            )
        for expect, segment in enumerate(segments):
            if segment.index != expect:
                raise ConfigurationError(
                    f"segment {expect} has index {segment.index}"
                )
        self.file_id = file_id
        self.params = params
        self.segments = segments
        self.original_length = original_length
        self.n_data_blocks = n_data_blocks

    @property
    def n_segments(self) -> int:
        """The paper's n~: total number of stored segments."""
        return len(self.segments)

    @property
    def stored_bytes(self) -> int:
        """Total stored size in bytes."""
        return sum(segment.size_bytes for segment in self.segments)

    def segment(self, index: int) -> Segment:
        """Fetch one segment; raises :class:`BlockNotFoundError` if absent."""
        if not 0 <= index < len(self.segments):
            raise BlockNotFoundError(
                f"segment {index} not in [0, {len(self.segments)})"
            )
        return self.segments[index]

    def blocks(self) -> list[bytes]:
        """Reassemble the flat (permuted, encrypted, ECC) block list.

        The final segment may be padded; padding blocks are included --
        extraction handles them via ``n_data_blocks`` and
        ``original_length``.
        """
        block_bytes = self.params.block_bytes
        out: list[bytes] = []
        for segment in self.segments:
            payload = segment.payload
            for start in range(0, len(payload), block_bytes):
                out.append(payload[start : start + block_bytes])
        return out

    # -- serialisation -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the whole container (used by storage back ends)."""
        header = (
            encode_length_prefixed(self.file_id)
            + encode_uint(self.original_length)
            + encode_uint(self.n_data_blocks)
            + encode_uint(self.params.block_bits)
            + encode_uint(self.params.ecc_data_blocks)
            + encode_uint(self.params.ecc_total_blocks)
            + encode_uint(self.params.segment_blocks)
            + encode_uint(self.params.tag_bits)
        )
        payloads = encode_bytes_list([s.payload for s in self.segments])
        tags = encode_bytes_list([s.tag for s in self.segments])
        return header + payloads + tags

    @classmethod
    def from_bytes(cls, data: bytes) -> "EncodedFile":
        """Parse a container serialised with :meth:`to_bytes`."""
        file_id, offset = decode_length_prefixed(data, 0)
        original_length, offset = decode_uint(data, offset)
        n_data_blocks, offset = decode_uint(data, offset)
        block_bits, offset = decode_uint(data, offset)
        ecc_k, offset = decode_uint(data, offset)
        ecc_n, offset = decode_uint(data, offset)
        segment_blocks, offset = decode_uint(data, offset)
        tag_bits, offset = decode_uint(data, offset)
        params = PORParams(
            block_bits=block_bits,
            ecc_data_blocks=ecc_k,
            ecc_total_blocks=ecc_n,
            segment_blocks=segment_blocks,
            tag_bits=tag_bits,
        )
        payloads, offset = decode_bytes_list(data, offset)
        tags, offset = decode_bytes_list(data, offset)
        if len(payloads) != len(tags):
            raise ConfigurationError("payload/tag count mismatch")
        segments = [
            Segment(index=i, payload=p, tag=t)
            for i, (p, t) in enumerate(zip(payloads, tags))
        ]
        return cls(
            file_id=file_id,
            params=params,
            segments=segments,
            original_length=original_length,
            n_data_blocks=n_data_blocks,
        )
