"""Erasure-coding substrate: Reed-Solomon codes and file striping.

Step 2 of the Juels-Kaliski/GeoProof setup applies a (255, 223, 32)
Reed-Solomon code to each 223-block chunk of the file, expanding it by
255/223 - 1 ~= 14.3 % and letting the client recover from up to 16
corrupted blocks (or 32 erased blocks) per chunk.

* :mod:`repro.erasure.reed_solomon` -- systematic RS encoder plus a
  Berlekamp-Massey decoder handling both errors and erasures.
* :mod:`repro.erasure.striping` -- maps 128-bit file blocks onto
  byte-interleaved RS codewords and back (the GF(2^128)-symbol code of
  the paper realised as 16 interleaved GF(2^8) codewords).
"""

from repro.erasure.reed_solomon import ReedSolomon
from repro.erasure.striping import BlockStriper, StripeLayout

__all__ = ["ReedSolomon", "BlockStriper", "StripeLayout"]
