"""Striping 128-bit file blocks across interleaved RS codewords.

The paper (following Juels-Kaliski) describes a (255, 223, 32) code
"over GF(2^128)": each 128-bit file block is one code symbol, 223
message blocks expand to a 255-block chunk.  Symbol arithmetic over
GF(2^128) is needlessly slow in pure Python, so we realise the *same*
block-level code with the standard interleaving construction:

* take a chunk of ``k = 223`` file blocks of 16 bytes each;
* view it as a 223 x 16 byte matrix (one row per block);
* encode each of the 16 *columns* with RS(255, 223) over GF(2^8);
* the resulting 255 x 16 matrix is the encoded chunk -- rows 223..254
  are the 32 parity blocks.

Corrupting any single 128-bit block corrupts at most one symbol in each
of the 16 column codewords, so the chunk tolerates 16 corrupted blocks
(or 32 erased blocks) -- exactly the block-level correction radius of
the GF(2^128) code the paper cites, with the same 255/223 expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import ConfigurationError, UncorrectableError
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class StripeLayout:
    """Geometry of the striped code.

    Attributes
    ----------
    block_bytes:
        Size of one file block in bytes (16 for the paper's 128-bit
        blocks).
    data_blocks:
        Message blocks per chunk (k = 223).
    total_blocks:
        Encoded blocks per chunk (n = 255).
    """

    block_bytes: int = 16
    data_blocks: int = 223
    total_blocks: int = 255

    @property
    def parity_blocks(self) -> int:
        """Parity blocks per chunk (n - k)."""
        return self.total_blocks - self.data_blocks

    @property
    def expansion_factor(self) -> float:
        """Size multiplier introduced by the code (n / k ~= 1.143)."""
        return self.total_blocks / self.data_blocks

    def validate(self) -> None:
        """Check the geometry is a valid RS configuration."""
        if self.block_bytes < 1:
            raise ConfigurationError(
                f"block_bytes must be >= 1, got {self.block_bytes}"
            )
        if not 0 < self.data_blocks < self.total_blocks <= 255:
            raise ConfigurationError(
                "need 0 < data_blocks < total_blocks <= 255, got "
                f"k={self.data_blocks} n={self.total_blocks}"
            )


class BlockStriper:
    """Encode/decode chunks of file blocks via column-interleaved RS.

    The unit of work is a *chunk*: a list of ``data_blocks`` blocks in,
    a list of ``total_blocks`` blocks out.  Short final chunks are
    zero-padded to the full ``k`` before encoding (the file format
    records the true length so padding is stripped on decode).
    """

    def __init__(self, layout: StripeLayout | None = None) -> None:
        self.layout = layout or StripeLayout()
        self.layout.validate()
        self._rs = ReedSolomon(self.layout.total_blocks, self.layout.data_blocks)

    def encode_chunk(self, blocks: list[bytes]) -> list[bytes]:
        """Encode up to ``data_blocks`` blocks into ``total_blocks`` blocks."""
        layout = self.layout
        if not 0 < len(blocks) <= layout.data_blocks:
            raise ConfigurationError(
                f"chunk must have 1..{layout.data_blocks} blocks, got {len(blocks)}"
            )
        for i, block in enumerate(blocks):
            if len(block) != layout.block_bytes:
                raise ConfigurationError(
                    f"block {i} has {len(block)} bytes, expected {layout.block_bytes}"
                )
        padded = list(blocks) + [bytes(layout.block_bytes)] * (
            layout.data_blocks - len(blocks)
        )
        # Encode column-wise.
        columns_out: list[bytes] = []
        for col in range(layout.block_bytes):
            column = bytes(block[col] for block in padded)
            columns_out.append(self._rs.encode(column))
        # Transpose back to blocks.
        out: list[bytes] = []
        for row in range(layout.total_blocks):
            out.append(bytes(columns_out[col][row] for col in range(layout.block_bytes)))
        return out

    def decode_chunk(
        self,
        blocks: list[bytes],
        *,
        erasures: list[int] | None = None,
        n_data: int | None = None,
    ) -> list[bytes]:
        """Decode a ``total_blocks``-block chunk back to its data blocks.

        Parameters
        ----------
        blocks:
            The (possibly corrupted) encoded chunk.
        erasures:
            Block indices known to be lost/unreliable.
        n_data:
            Number of real (unpadded) data blocks to return; defaults
            to the full ``data_blocks``.
        """
        layout = self.layout
        if len(blocks) != layout.total_blocks:
            raise ConfigurationError(
                f"encoded chunk must have {layout.total_blocks} blocks, got {len(blocks)}"
            )
        for i, block in enumerate(blocks):
            if len(block) != layout.block_bytes:
                raise ConfigurationError(
                    f"block {i} has {len(block)} bytes, expected {layout.block_bytes}"
                )
        if n_data is None:
            n_data = layout.data_blocks
        if not 0 < n_data <= layout.data_blocks:
            raise ConfigurationError(
                f"n_data must be in 1..{layout.data_blocks}, got {n_data}"
            )
        erasure_list = sorted(set(erasures or []))
        decoded_columns: list[bytes] = []
        for col in range(layout.block_bytes):
            column = bytes(block[col] for block in blocks)
            try:
                decoded_columns.append(self._rs.decode(column, erasures=erasure_list))
            except UncorrectableError as exc:
                raise UncorrectableError(
                    f"chunk unrecoverable at byte column {col}: {exc}"
                ) from exc
        out: list[bytes] = []
        for row in range(n_data):
            out.append(bytes(decoded_columns[col][row] for col in range(layout.block_bytes)))
        return out

    # -- whole-file helpers ---------------------------------------------------

    def encoded_length(self, n_data_blocks: int) -> int:
        """Number of encoded blocks for a file of ``n_data_blocks`` blocks."""
        if n_data_blocks < 0:
            raise ConfigurationError(
                f"n_data_blocks must be >= 0, got {n_data_blocks}"
            )
        chunks = ceil_div(n_data_blocks, self.layout.data_blocks)
        return chunks * self.layout.total_blocks

    def encode_blocks(self, blocks: list[bytes]) -> list[bytes]:
        """Encode a whole file's block list chunk by chunk."""
        out: list[bytes] = []
        for start in range(0, len(blocks), self.layout.data_blocks):
            out.extend(self.encode_chunk(blocks[start : start + self.layout.data_blocks]))
        return out

    def decode_blocks(
        self, blocks: list[bytes], n_data_blocks: int
    ) -> list[bytes]:
        """Decode a whole file's encoded block list back to data blocks."""
        if len(blocks) != self.encoded_length(n_data_blocks):
            raise ConfigurationError(
                f"expected {self.encoded_length(n_data_blocks)} encoded blocks, "
                f"got {len(blocks)}"
            )
        out: list[bytes] = []
        remaining = n_data_blocks
        for start in range(0, len(blocks), self.layout.total_blocks):
            chunk = blocks[start : start + self.layout.total_blocks]
            take = min(remaining, self.layout.data_blocks)
            out.extend(self.decode_chunk(chunk, n_data=take))
            remaining -= take
        return out
