"""Striping 128-bit file blocks across interleaved RS codewords.

The paper (following Juels-Kaliski) describes a (255, 223, 32) code
"over GF(2^128)": each 128-bit file block is one code symbol, 223
message blocks expand to a 255-block chunk.  Symbol arithmetic over
GF(2^128) is needlessly slow in pure Python, so we realise the *same*
block-level code with the standard interleaving construction:

* take a chunk of ``k = 223`` file blocks of 16 bytes each;
* view it as a 223 x 16 byte matrix (one row per block);
* encode each of the 16 *columns* with RS(255, 223) over GF(2^8);
* the resulting 255 x 16 matrix is the encoded chunk -- rows 223..254
  are the 32 parity blocks.

Corrupting any single 128-bit block corrupts at most one symbol in each
of the 16 column codewords, so the chunk tolerates 16 corrupted blocks
(or 32 erased blocks) -- exactly the block-level correction radius of
the GF(2^128) code the paper cites, with the same 255/223 expansion.

Two engines realise the construction (the slot-vs-event pattern):

* the **scalar** path encodes one byte-column at a time through
  :class:`~repro.erasure.reed_solomon.ReedSolomon` and is the
  byte-identical semantics anchor;
* the **vectorized** path (default whenever numpy is installed; see
  :data:`repro.gf.HAS_NUMPY`) computes the parity of *all* columns of
  *all* chunks as one GF(256) matrix product against the precomputed
  systematic parity matrix, and pre-screens decodes by evaluating every
  column's syndromes in one product with the Vandermonde syndrome
  matrix (clean columns skip the scalar decoder entirely; columns that
  need correction still run the scalar Berlekamp-Massey chain, so
  corrected output is the scalar output by construction).

:meth:`BlockStriper.encode_blocks` can additionally shard a large
file's chunks across a ``ProcessPoolExecutor`` (``workers=``); shards
are whole chunks, so the output is byte-identical to the serial encode
in any mode.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import ConfigurationError, UncorrectableError
from repro.gf import gf256_vec
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class StripeLayout:
    """Geometry of the striped code.

    Attributes
    ----------
    block_bytes:
        Size of one file block in bytes (16 for the paper's 128-bit
        blocks).
    data_blocks:
        Message blocks per chunk (k = 223).
    total_blocks:
        Encoded blocks per chunk (n = 255).
    """

    block_bytes: int = 16
    data_blocks: int = 223
    total_blocks: int = 255

    @property
    def parity_blocks(self) -> int:
        """Parity blocks per chunk (n - k)."""
        return self.total_blocks - self.data_blocks

    @property
    def expansion_factor(self) -> float:
        """Size multiplier introduced by the code (n / k ~= 1.143)."""
        return self.total_blocks / self.data_blocks

    def validate(self) -> None:
        """Check the geometry is a valid RS configuration."""
        if self.block_bytes < 1:
            raise ConfigurationError(
                f"block_bytes must be >= 1, got {self.block_bytes}"
            )
        if not 0 < self.data_blocks < self.total_blocks <= 255:
            raise ConfigurationError(
                "need 0 < data_blocks < total_blocks <= 255, got "
                f"k={self.data_blocks} n={self.total_blocks}"
            )


#: Per-process striper cache for the process-pool shard workers, keyed
#: by (layout, vectorized) so a forked worker builds its generator and
#: parity tables once per geometry.
_SHARD_STRIPERS: dict[tuple[StripeLayout, bool], "BlockStriper"] = {}


def _encode_shard(args: tuple[StripeLayout, bytes, bool]) -> bytes:
    """Worker entry point: encode one whole-chunk shard of a file.

    Receives the blocks as one concatenated payload (a single bytes
    object pickles orders of magnitude faster than a million 16-byte
    objects) and returns the encoded blocks the same way.
    """
    layout, payload, vectorized = args
    striper = _SHARD_STRIPERS.get((layout, vectorized))
    if striper is None:
        striper = BlockStriper(layout, vectorized=vectorized)
        _SHARD_STRIPERS[(layout, vectorized)] = striper
    bb = layout.block_bytes
    blocks = [payload[i : i + bb] for i in range(0, len(payload), bb)]
    return b"".join(striper.encode_blocks(blocks))


class BlockStriper:
    """Encode/decode chunks of file blocks via column-interleaved RS.

    The unit of work is a *chunk*: a list of ``data_blocks`` blocks in,
    a list of ``total_blocks`` blocks out.  Short final chunks are
    zero-padded to the full ``k`` before encoding (the file format
    records the true length so padding is stripped on decode).

    ``vectorized`` selects the numpy batch engine; the default
    (``None``) auto-detects numpy and falls back to the scalar path
    when it is absent.  Both engines are byte-identical (pinned by the
    equivalence sweep in ``tests/erasure/test_striping.py``).
    """

    def __init__(
        self,
        layout: StripeLayout | None = None,
        *,
        vectorized: bool | None = None,
    ) -> None:
        self.layout = layout or StripeLayout()
        self.layout.validate()
        if vectorized and not gf256_vec.HAS_NUMPY:
            raise ConfigurationError(
                "vectorized striping needs numpy (pip install repro[fast])"
            )
        self.vectorized = (
            gf256_vec.HAS_NUMPY if vectorized is None else bool(vectorized)
        )
        self._rs = ReedSolomon(self.layout.total_blocks, self.layout.data_blocks)
        # numpy views of the cached parity/syndrome matrices, built on
        # first use so scalar-only instantiation never touches numpy.
        self._parity_t_np: Any = None
        self._syndrome_np: Any = None

    # -- vectorized kernels --------------------------------------------------

    def _parity_transpose(self) -> Any:
        """(n-k, k) numpy parity matrix: parity rows x message positions."""
        if self._parity_t_np is None:
            import numpy as np

            pm = self._rs.parity_matrix()  # k rows of n-k bytes
            self._parity_t_np = np.ascontiguousarray(
                np.frombuffer(b"".join(pm), dtype=np.uint8)
                .reshape(self.layout.data_blocks, self.layout.parity_blocks)
                .T
            )
        return self._parity_t_np

    def _syndrome_matrix(self) -> Any:
        """(n-k, n) numpy syndrome matrix for the decode pre-screen."""
        if self._syndrome_np is None:
            import numpy as np

            sm = self._rs.syndrome_matrix()
            self._syndrome_np = np.frombuffer(
                b"".join(sm), dtype=np.uint8
            ).reshape(self.layout.parity_blocks, self.layout.total_blocks)
        return self._syndrome_np

    def _encode_whole_chunks_vec(self, payload: bytes) -> list[bytes]:
        """Batch-encode whole zero-padded chunks given as one payload.

        ``payload`` holds ``n_chunks * k`` validated blocks.  One
        ``gf_matmul`` of the ``(n-k, k)`` parity matrix against the
        ``(k, n_chunks * block_bytes)`` message matrix produces every
        parity byte of every chunk; data rows pass through unchanged
        (the code is systematic).
        """
        import numpy as np

        layout = self.layout
        k, n, bb = layout.data_blocks, layout.total_blocks, layout.block_bytes
        n_chunks = len(payload) // (k * bb)
        data = np.frombuffer(payload, dtype=np.uint8).reshape(n_chunks, k, bb)
        # Message matrix: row per message position, column per
        # (chunk, byte-column) pair -- all chunks encoded at once.
        message = np.ascontiguousarray(data.transpose(1, 0, 2)).reshape(
            k, n_chunks * bb
        )
        parity = gf256_vec.gf_matmul(self._parity_transpose(), message)
        parity = np.ascontiguousarray(
            parity.reshape(layout.parity_blocks, n_chunks, bb).transpose(1, 0, 2)
        )
        codewords = np.concatenate([data, parity], axis=1)
        flat = codewords.reshape(n_chunks * n, bb).tobytes()
        return [flat[i : i + bb] for i in range(0, len(flat), bb)]

    # -- chunk API -----------------------------------------------------------

    def _check_blocks(self, blocks: list[bytes]) -> None:
        layout = self.layout
        for i, block in enumerate(blocks):
            if len(block) != layout.block_bytes:
                raise ConfigurationError(
                    f"block {i} has {len(block)} bytes, expected {layout.block_bytes}"
                )

    def encode_chunk(self, blocks: list[bytes]) -> list[bytes]:
        """Encode up to ``data_blocks`` blocks into ``total_blocks`` blocks."""
        layout = self.layout
        if not 0 < len(blocks) <= layout.data_blocks:
            raise ConfigurationError(
                f"chunk must have 1..{layout.data_blocks} blocks, got {len(blocks)}"
            )
        self._check_blocks(blocks)
        padding = bytes(layout.block_bytes) * (layout.data_blocks - len(blocks))
        if self.vectorized:
            return self._encode_whole_chunks_vec(b"".join(blocks) + padding)
        padded = list(blocks) + [bytes(layout.block_bytes)] * (
            layout.data_blocks - len(blocks)
        )
        # Encode column-wise.
        columns_out: list[bytes] = []
        for col in range(layout.block_bytes):
            column = bytes(block[col] for block in padded)
            columns_out.append(self._rs.encode(column))
        # Transpose back to blocks.
        out: list[bytes] = []
        for row in range(layout.total_blocks):
            out.append(bytes(columns_out[col][row] for col in range(layout.block_bytes)))
        return out

    def decode_chunk(
        self,
        blocks: list[bytes],
        *,
        erasures: list[int] | None = None,
        n_data: int | None = None,
    ) -> list[bytes]:
        """Decode a ``total_blocks``-block chunk back to its data blocks.

        Parameters
        ----------
        blocks:
            The (possibly corrupted) encoded chunk.
        erasures:
            Block indices known to be lost/unreliable.  Validated up
            front at block granularity: an out-of-range index or more
            erased blocks than the parity budget is reported before any
            column decoding starts.
        n_data:
            Number of real (unpadded) data blocks to return; defaults
            to the full ``data_blocks``.
        """
        layout = self.layout
        if len(blocks) != layout.total_blocks:
            raise ConfigurationError(
                f"encoded chunk must have {layout.total_blocks} blocks, got {len(blocks)}"
            )
        self._check_blocks(blocks)
        if n_data is None:
            n_data = layout.data_blocks
        if not 0 < n_data <= layout.data_blocks:
            raise ConfigurationError(
                f"n_data must be in 1..{layout.data_blocks}, got {n_data}"
            )
        erasure_list = sorted(set(erasures or []))
        # Validate erasures at *block* granularity before touching any
        # column: previously an out-of-range index surfaced as a
        # confusing mid-decode per-column RS error ("chunk unrecoverable
        # at byte column 0: erasure position 300 out of range") after
        # wasted decode work, and an over-budget erasure count burned a
        # full column decode before failing.
        for pos in erasure_list:
            if not 0 <= pos < layout.total_blocks:
                raise ConfigurationError(
                    f"erasure block index {pos} out of range for a "
                    f"{layout.total_blocks}-block chunk"
                )
        if len(erasure_list) > layout.parity_blocks:
            raise UncorrectableError(
                f"{len(erasure_list)} erased blocks exceed the chunk's "
                f"parity budget of {layout.parity_blocks}"
            )
        clean_columns = None
        matrix = None
        if self.vectorized:
            import numpy as np

            # Pre-screen: syndromes of every byte column in one matrix
            # product.  A column with all-zero syndromes is already a
            # codeword; its message is its first k bytes whether or not
            # erasures were declared (zero syndromes force zero Forney
            # magnitudes at every erased position), so it can skip the
            # scalar decode chain byte-identically.
            matrix = np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(
                layout.total_blocks, layout.block_bytes
            )
            syndromes = gf256_vec.gf_matmul(self._syndrome_matrix(), matrix)
            clean_columns = ~syndromes.any(axis=0)
        decoded_columns: list[bytes] = []
        for col in range(layout.block_bytes):
            if clean_columns is not None and clean_columns[col]:
                decoded_columns.append(
                    matrix[: layout.data_blocks, col].tobytes()
                )
                continue
            column = bytes(block[col] for block in blocks)
            try:
                decoded_columns.append(self._rs.decode(column, erasures=erasure_list))
            except UncorrectableError as exc:
                raise UncorrectableError(
                    f"chunk unrecoverable at byte column {col}: {exc}"
                ) from exc
        out: list[bytes] = []
        for row in range(n_data):
            out.append(bytes(decoded_columns[col][row] for col in range(layout.block_bytes)))
        return out

    # -- whole-file helpers ---------------------------------------------------

    def encoded_length(self, n_data_blocks: int) -> int:
        """Number of encoded blocks for a file of ``n_data_blocks`` blocks."""
        if n_data_blocks < 0:
            raise ConfigurationError(
                f"n_data_blocks must be >= 0, got {n_data_blocks}"
            )
        chunks = ceil_div(n_data_blocks, self.layout.data_blocks)
        return chunks * self.layout.total_blocks

    def encode_blocks(
        self, blocks: list[bytes], *, workers: int | None = None
    ) -> list[bytes]:
        """Encode a whole file's block list chunk by chunk.

        ``workers`` > 1 shards the file's chunks across a
        ``ProcessPoolExecutor``; each shard is a run of whole chunks,
        so the result is byte-identical to the serial encode (pinned by
        test).  The default (``None`` or 1) encodes in-process.
        """
        if workers is not None and (
            not isinstance(workers, int) or workers < 1
        ):
            raise ConfigurationError(
                f"workers must be a positive int, got {workers!r}"
            )
        if not blocks:
            return []
        layout = self.layout
        k = layout.data_blocks
        n_chunks = ceil_div(len(blocks), k)
        if workers is not None and workers > 1 and n_chunks > 1:
            self._check_blocks(blocks)
            n_shards = min(workers, n_chunks)
            chunks_per_shard = ceil_div(n_chunks, n_shards)
            payload = b"".join(blocks)
            shard_bytes = chunks_per_shard * k * layout.block_bytes
            shards = [
                (self.layout, payload[start : start + shard_bytes], self.vectorized)
                for start in range(0, len(payload), shard_bytes)
            ]
            with ProcessPoolExecutor(max_workers=n_shards) as pool:
                encoded = b"".join(pool.map(_encode_shard, shards))
            bb = layout.block_bytes
            return [encoded[i : i + bb] for i in range(0, len(encoded), bb)]
        if self.vectorized:
            self._check_blocks(blocks)
            pad_blocks = n_chunks * k - len(blocks)
            payload = b"".join(blocks) + bytes(pad_blocks * layout.block_bytes)
            return self._encode_whole_chunks_vec(payload)
        out: list[bytes] = []
        for start in range(0, len(blocks), k):
            out.extend(self.encode_chunk(blocks[start : start + k]))
        return out

    def decode_blocks(
        self, blocks: list[bytes], n_data_blocks: int
    ) -> list[bytes]:
        """Decode a whole file's encoded block list back to data blocks."""
        if len(blocks) != self.encoded_length(n_data_blocks):
            raise ConfigurationError(
                f"expected {self.encoded_length(n_data_blocks)} encoded blocks, "
                f"got {len(blocks)}"
            )
        out: list[bytes] = []
        remaining = n_data_blocks
        for start in range(0, len(blocks), self.layout.total_blocks):
            chunk = blocks[start : start + self.layout.total_blocks]
            take = min(remaining, self.layout.data_blocks)
            out.extend(self.decode_chunk(chunk, n_data=take))
            remaining -= take
        return out
