"""Systematic Reed-Solomon codes over GF(2^8).

An RS(n, k) code here uses the narrow-sense generator
``g(x) = (x - alpha^1)(x - alpha^2)...(x - alpha^(n-k))`` and systematic
encoding: the codeword is ``message || parity`` where
``parity = (message(x) * x^(n-k)) mod g(x)``.

Decoding implements the classical chain:

1. syndromes ``S_i = c(alpha^i)``,
2. Berlekamp-Massey (with erasure initialisation) for the error-locator
   polynomial,
3. Chien search for error positions,
4. Forney's formula for error magnitudes.

The decoder corrects any combination of ``e`` errors and ``f`` erasures
with ``2e + f <= n - k``, and raises
:class:`repro.errors.UncorrectableError` beyond that (detected via
inconsistent syndromes after correction).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigurationError, UncorrectableError
from repro.gf.gf256 import EXP_TABLE, LOG_TABLE, mul_fast
from repro.gf.poly import Poly


@lru_cache(maxsize=None)
def _parity_matrix(n: int, k: int) -> tuple[bytes, ...]:
    """Systematic parity rows: row ``i`` is ``encode(e_i)[k:]``.

    Systematic RS parity is GF(256)-linear in the message, so encoding
    a unit message per position yields a ``k x (n - k)`` matrix whose
    GF-linear combination with any message reproduces ``encode``'s
    parity byte for byte.  This is what the vectorized batch encoder
    multiplies against (see :mod:`repro.gf.gf256_vec`).

    Row ``i`` is the parity of the message with a 1 at byte position
    ``i``: message byte ``i`` is the coefficient of ``x^(n-1-i)``, so
    the row is ``x^(n-1-i) mod g`` laid out in codeword byte order.
    Rather than pay ``k`` polynomial divisions, the remainders are
    built incrementally from ``x^(n-k) mod g`` by multiply-by-x steps
    (shift, then fold the overflowing top coefficient back through the
    monic generator), visiting degrees ``n-k .. n-1`` once each.
    """
    t = n - k
    g = ReedSolomon._build_generator(t).coeffs  # monic, degree t
    rows: list[bytes | None] = [None] * k
    # remainder of x^d mod g, low-degree-first, fixed length t
    remainder = list(g[:t])  # d = t: x^t mod g = g(x) - x^t
    for d in range(t, n):
        rows[n - 1 - d] = bytes(reversed(remainder))
        top = remainder[t - 1]
        remainder = [0] + remainder[: t - 1]
        if top:
            log_top = LOG_TABLE[top]
            for m in range(t):
                if g[m]:
                    remainder[m] ^= EXP_TABLE[log_top + LOG_TABLE[g[m]]]
    return tuple(rows)  # type: ignore[arg-type]


@lru_cache(maxsize=None)
def _syndrome_matrix(n: int, k: int) -> tuple[bytes, ...]:
    """Vandermonde syndrome rows: ``S[i][j] = alpha^((i+1) * (n-1-j))``.

    Codeword byte ``j`` is the coefficient of ``x^(n-1-j)``, so the
    syndrome ``S_i = c(alpha^i)`` is the dot product of row ``i - 1``
    with the codeword bytes -- the matrix form of ``_syndromes`` the
    vectorized decode pre-screen evaluates for all interleaved columns
    at once.
    """
    return tuple(
        bytes(EXP_TABLE[(i * (n - 1 - j)) % 255] for j in range(n))
        for i in range(1, n - k + 1)
    )


class ReedSolomon:
    """An RS(n, k) encoder/decoder over GF(2^8).

    Parameters
    ----------
    n:
        Codeword length in symbols, at most 255.
    k:
        Message length in symbols, ``0 < k < n``.

    The GeoProof configuration is ``ReedSolomon(255, 223)`` (16-symbol
    correction radius), but any valid (n, k) works, and the test suite
    exercises several.
    """

    def __init__(self, n: int = 255, k: int = 223) -> None:
        if not 0 < k < n <= 255:
            raise ConfigurationError(
                f"RS parameters need 0 < k < n <= 255, got n={n} k={k}"
            )
        self.n = n
        self.k = k
        self.n_parity = n - k
        self._generator = self._build_generator(self.n_parity)

    @staticmethod
    def _build_generator(n_parity: int) -> Poly:
        g = Poly.one()
        for i in range(1, n_parity + 1):
            g = g * Poly([EXP_TABLE[i], 1])  # (x + alpha^i)
        return g

    def parity_matrix(self) -> tuple[bytes, ...]:
        """The ``k x (n-k)`` systematic parity matrix (row per message byte).

        ``encode(m)[k:]`` equals the GF(256) linear combination
        ``XOR_i m[i] * parity_matrix()[i]``; the batch encoder computes
        that combination for many messages as one matrix product.
        Cached per (n, k) across instances.
        """
        return _parity_matrix(self.n, self.k)

    def syndrome_matrix(self) -> tuple[bytes, ...]:
        """The ``(n-k) x n`` syndrome evaluation matrix (cached per (n, k))."""
        return _syndrome_matrix(self.n, self.k)

    # -- encoding ---------------------------------------------------------

    def encode(self, message: bytes) -> bytes:
        """Encode ``k`` message bytes into an ``n``-byte codeword.

        Systematic: the first ``k`` bytes of the output are the message.
        """
        if len(message) != self.k:
            raise ConfigurationError(
                f"message must be {self.k} bytes, got {len(message)}"
            )
        # parity = (message(x) * x^(n-k)) mod g(x), with message stored
        # highest-degree-first in the codeword (conventional layout).
        shifted = Poly(list(reversed(message))).shift(self.n_parity)
        parity = shifted % self._generator
        parity_coeffs = list(parity.coeffs) + [0] * (
            self.n_parity - len(parity.coeffs)
        )
        return message + bytes(reversed(parity_coeffs))

    # -- decoding ---------------------------------------------------------

    def _syndromes(self, codeword: bytes) -> list[int]:
        # Codeword byte j is the coefficient of x^(n-1-j).
        poly = Poly(list(reversed(codeword)))
        return [poly.eval(EXP_TABLE[i]) for i in range(1, self.n_parity + 1)]

    def decode(
        self,
        codeword: bytes,
        erasures: list[int] | None = None,
    ) -> bytes:
        """Decode an ``n``-byte word back to ``k`` message bytes.

        ``erasures`` lists byte positions known to be unreliable; the
        decoder then corrects up to ``(n - k - len(erasures)) // 2``
        additional unknown errors.

        Raises
        ------
        UncorrectableError
            If the word is beyond the code's correction radius.
        """
        if len(codeword) != self.n:
            raise ConfigurationError(
                f"codeword must be {self.n} bytes, got {len(codeword)}"
            )
        erasures = sorted(set(erasures or []))
        for pos in erasures:
            if not 0 <= pos < self.n:
                raise ConfigurationError(f"erasure position {pos} out of range")
        if len(erasures) > self.n_parity:
            raise UncorrectableError(
                f"{len(erasures)} erasures exceed parity budget {self.n_parity}"
            )

        syndromes = self._syndromes(codeword)
        if not any(syndromes) and not erasures:
            return bytes(codeword[: self.k])

        # Locator exponent for byte position j (coefficient of x^(n-1-j)).
        def locator_exp(position: int) -> int:
            return self.n - 1 - position

        erasure_locator = Poly.one()
        for pos in erasures:
            erasure_locator = erasure_locator * Poly(
                [1, EXP_TABLE[locator_exp(pos)]]
            )  # (1 + X_j x)

        # Forney syndromes: fold erasure knowledge into the syndromes,
        # then solve for the unknown-error locator alone.
        forney_syndromes = self._forney_syndromes(syndromes, erasures)
        max_errors = (self.n_parity - len(erasures)) // 2
        error_locator = self._berlekamp_massey(forney_syndromes, max_errors)
        locator = error_locator * erasure_locator
        positions = self._chien_search(locator)
        if len(positions) != locator.degree:
            raise UncorrectableError(
                "error locator degree does not match root count "
                f"({locator.degree} vs {len(positions)})"
            )

        corrected = bytearray(codeword)
        for pos, magnitude in self._forney(syndromes, locator, positions):
            corrected[pos] ^= magnitude

        if any(self._syndromes(bytes(corrected))):
            raise UncorrectableError("residual syndromes after correction")
        return bytes(corrected[: self.k])

    def correct(
        self, codeword: bytes, erasures: list[int] | None = None
    ) -> bytes:
        """Like :meth:`decode` but returns the full corrected codeword."""
        message = self.decode(codeword, erasures)
        return self.encode(message)

    # -- decoder internals ---------------------------------------------------

    def _forney_syndromes(
        self, syndromes: list[int], erasure_positions: list[int]
    ) -> list[int]:
        """Modified (Forney) syndromes with the erasure terms folded out.

        Each syndrome is a power sum ``S_j = sum_k Y_k X_k^(j+1)`` over
        the corrupted positions.  For a known erasure locator value
        ``X_l`` the map ``t_j = X_l * s_j + s_(j+1)`` annihilates that
        position's contribution (its factor becomes ``X_l + X_l = 0``),
        so folding once per erasure and dropping the now-undefined top
        entry leaves a length ``n_parity - f`` sequence containing only
        the *unknown* error terms -- plain Berlekamp-Massey then finds
        the error locator alone.
        """
        folded = list(syndromes)
        for pos in erasure_positions:
            x_l = EXP_TABLE[(self.n - 1 - pos) % 255]
            for j in range(len(folded) - 1):
                folded[j] = mul_fast(folded[j], x_l) ^ folded[j + 1]
            folded.pop()
        return folded

    def _berlekamp_massey(self, syndromes: list[int], max_errors: int) -> Poly:
        """Textbook Berlekamp-Massey: minimal LFSR for the syndrome sequence.

        Returns the error-locator polynomial ``Lambda(x)`` with
        ``Lambda(0) = 1`` and degree at most ``max_errors`` (a larger
        degree means the word is uncorrectable).
        """
        locator = [1]  # Lambda(x)
        previous = [1]  # B(x)
        lfsr_length = 0
        shift = 1  # m: x^m multiplier pending on B
        prev_discrepancy = 1  # b
        for step in range(len(syndromes)):
            delta = syndromes[step]
            for i in range(1, lfsr_length + 1):
                if i < len(locator) and locator[i]:
                    delta ^= mul_fast(locator[i], syndromes[step - i])
            if delta == 0:
                shift += 1
                continue
            scale = mul_fast(delta, EXP_TABLE[255 - LOG_TABLE[prev_discrepancy]])
            adjustment = [0] * shift + [mul_fast(scale, c) for c in previous]
            updated = list(locator) + [0] * max(0, len(adjustment) - len(locator))
            for i, c in enumerate(adjustment):
                updated[i] ^= c
            if 2 * lfsr_length <= step:
                previous = locator
                prev_discrepancy = delta
                lfsr_length = step + 1 - lfsr_length
                shift = 1
            else:
                shift += 1
            locator = updated
        result = Poly(locator)
        if result.degree > max_errors:
            raise UncorrectableError(
                f"error locator degree {result.degree} exceeds budget {max_errors}"
            )
        return result

    def _chien_search(self, locator: Poly) -> list[int]:
        """Find byte positions whose locators are roots of ``Lambda``.

        Position j has locator ``X_j = alpha^(n-1-j)``; j is an error
        position iff ``Lambda(X_j^{-1}) = 0``.
        """
        positions = []
        for j in range(self.n):
            x_inv = EXP_TABLE[(255 - (self.n - 1 - j)) % 255]
            if locator.eval(x_inv) == 0:
                positions.append(j)
        return positions

    def _forney(
        self, syndromes: list[int], locator: Poly, positions: list[int]
    ) -> list[tuple[int, int]]:
        """Forney's formula: magnitudes for each located position."""
        syndrome_poly = Poly(syndromes)
        omega = (syndrome_poly * locator) % Poly.monomial(self.n_parity)
        locator_prime = locator.derivative()
        out: list[tuple[int, int]] = []
        for j in positions:
            x_inv = EXP_TABLE[(255 - (self.n - 1 - j)) % 255]
            denominator = locator_prime.eval(x_inv)
            if denominator == 0:
                raise UncorrectableError("Forney denominator vanished")
            # With first consecutive root alpha^1 the magnitude is
            # Y_j = Omega(X_j^-1) / Lambda'(X_j^-1)  (no X_j factor).
            numerator = omega.eval(x_inv)
            magnitude = mul_fast(
                numerator, EXP_TABLE[255 - LOG_TABLE[denominator]]
            ) if numerator else 0
            out.append((j, magnitude))
        return out
