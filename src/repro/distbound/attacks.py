"""Attack simulators for distance-bounding protocols.

The three classic adversaries (Section III-A):

* **Distance fraud** -- a *dishonest prover* farther away than claimed
  tries to answer early/instantly to mask its distance.  With
  per-round challenges it cannot know the challenge before it arrives,
  so guessing costs correctness.
* **Mafia fraud** -- a man-in-the-middle relays between an honest
  far-away prover and the verifier; the relay adds flight time, so it
  must either exceed the time bound or guess bits.
* **Terrorist attack** -- the dishonest prover *cooperates* with a
  nearby accomplice, handing over session material but not the
  long-term secret.  Hancke-Kuhn falls to this (registers reveal
  nothing about ``s``); Reid et al. resists (registers jointly reveal
  ``s``).

Each simulator implements the same duck-typed prover API the honest
provers implement, so verifiers run them unchanged.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRNG
from repro.distbound.hancke_kuhn import derive_registers
from repro.distbound.reid import derive_session_registers
from repro.errors import ConfigurationError
from repro.util.bitops import bit_at, xor_bytes


class DistanceFraudProver:
    """A far-away prover that *knows the secret* but not the challenges.

    Models pure distance fraud for Hancke-Kuhn-style register
    protocols: to beat the clock the prover must transmit its response
    before the challenge arrives, i.e. commit to a bit per round
    without seeing ``alpha_i``.  Its best strategy is to answer with
    the register bit when both registers agree (probability 1/2 per
    round for random registers) and guess otherwise -- per-round
    success 3/4.

    The channel still charges the *true* distance; ``early_reply``
    controls whether the simulator also cheats time (replying with
    zero processing at the moment the challenge would have arrived
    cannot beat propagation in our model, which is exactly the physics
    the protocol relies on).
    """

    def __init__(
        self, identity: bytes, shared_secret: bytes, rng: DeterministicRNG
    ) -> None:
        self.identity = identity
        self._secret = shared_secret
        self._rng = rng
        self._left: bytes | None = None
        self._right: bytes | None = None
        self._round = 0

    def begin_session(
        self, verifier_nonce: bytes, prover_nonce: bytes, n_rounds: int
    ) -> None:
        self._left, self._right = derive_registers(
            self._secret, verifier_nonce, prover_nonce, n_rounds
        )
        self._round = 0

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        """Answer committed *before* seeing the challenge.

        The committed bit is the register bit when the registers agree,
        otherwise a coin flip; the actual ``challenge_bit`` argument is
        deliberately ignored.
        """
        if self._left is None or self._right is None:
            raise ConfigurationError("begin_session() must run first")
        left_bit = bit_at(self._left, self._round)
        right_bit = bit_at(self._right, self._round)
        committed = left_bit if left_bit == right_bit else self._rng.randbits(1)
        self._round += 1
        return committed, 0.0


class MafiaFraudRelay:
    """A man-in-the-middle without the secret.

    Strategy (the optimal pre-ask attack against Hancke-Kuhn): before
    the timed phase the relay runs the init with the verifier, then
    *pre-asks* the honest prover with guessed challenges, learning one
    register bit per round.  During the timed phase it answers
    instantly from what it learned: if the verifier's challenge matches
    the guess the answer is right; otherwise it flips a coin.
    Per-round success 3/4 -> acceptance ``(3/4)^n``.

    The relay sits ``relay_distance_km`` from the verifier (typically
    near zero -- that is the point of the attack), so timing passes and
    only bit errors can catch it.
    """

    def __init__(self, identity: bytes, rng: DeterministicRNG) -> None:
        self.identity = identity
        self._rng = rng
        self._guesses: list[int] = []
        self._learned: list[int] = []
        self._round = 0

    def begin_session(
        self, verifier_nonce: bytes, prover_nonce: bytes, n_rounds: int
    ) -> None:
        """Init with the verifier; pre-ask phase against the real prover
        is modelled by drawing the guessed challenges now."""
        self._guesses = [self._rng.randbits(1) for _ in range(n_rounds)]
        # What the honest prover would have answered to each guess --
        # the relay genuinely learns these bits, but only for its
        # guessed challenge, not the other register.
        self._learned = []
        self._round = 0
        self._n_rounds = n_rounds
        self._nonces = (verifier_nonce, prover_nonce)

    def learn_from_prover(self, honest_prover) -> None:
        """Run the pre-ask phase against the honest (remote) prover."""
        verifier_nonce, prover_nonce = self._nonces
        honest_prover.begin_session(verifier_nonce, prover_nonce, self._n_rounds)
        self._learned = [
            honest_prover.respond(guess)[0] for guess in self._guesses
        ]

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        """Instant answer from pre-asked bits (coin flip on bad guess)."""
        if len(self._learned) != len(self._guesses):
            raise ConfigurationError("learn_from_prover() must run first")
        if self._guesses[self._round] == challenge_bit:
            bit = self._learned[self._round]
        else:
            bit = self._rng.randbits(1)
        self._round += 1
        return bit, 0.0


class TerroristAccomplice:
    """A nearby accomplice helped by a dishonest far-away prover.

    ``leak_registers`` models what the dishonest prover is willing to
    hand over:

    * For **Hancke-Kuhn** the session registers ``(l, r)`` reveal
      nothing about the long-term secret, so a rational cheating prover
      leaks them and the accomplice passes every round -- the attack
      the paper says Hancke-Kuhn "does not consider".
    * For **Reid et al.** the registers are ``(c, k)`` with
      ``c = s XOR PRF(k)``: leaking both is equivalent to leaking
      ``s``.  :meth:`reconstruct_secret_bits` demonstrates the
      extraction, which is why a rational prover refuses and the
      protocol resists the attack.
    """

    def __init__(self, identity: bytes) -> None:
        self.identity = identity
        self._registers: tuple[bytes, bytes] | None = None
        self._round = 0

    # -- what the dishonest prover sends over its back channel ----------

    def receive_leak(self, register_0: bytes, register_1: bytes) -> None:
        """Take the leaked per-session registers."""
        self._registers = (register_0, register_1)
        self._round = 0

    # -- prover API toward the verifier -----------------------------------

    def begin_session(self, *args, **kwargs) -> None:
        """Init is a pass-through; the leak supplies the registers."""
        self._round = 0

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        if self._registers is None:
            raise ConfigurationError("receive_leak() must run first")
        register = self._registers[challenge_bit]
        bit = bit_at(register, self._round)
        self._round += 1
        return bit, 0.0

    # -- the extraction that deters the Reid et al. leak --------------------

    @staticmethod
    def reconstruct_secret_bits(
        cipher_register: bytes, key_register: bytes
    ) -> bytes:
        """Recover the expanded long-term secret from Reid's registers.

        ``c = s_bits XOR PRF(k)`` so ``s_bits = c XOR PRF(k)``.  Having
        both registers therefore surrenders the credential -- the
        structural argument for terrorist-attack resistance.
        """
        from repro.crypto.prf import prf_stream

        pad = prf_stream(key_register, b"reid-encrypt", b"", len(cipher_register))
        return xor_bytes(cipher_register, pad)


def leak_hancke_kuhn_registers(
    shared_secret: bytes, verifier_nonce: bytes, prover_nonce: bytes, n_rounds: int
) -> tuple[bytes, bytes]:
    """What a terrorist Hancke-Kuhn prover sends its accomplice."""
    return derive_registers(shared_secret, verifier_nonce, prover_nonce, n_rounds)


def leak_reid_registers(
    shared_secret: bytes,
    verifier_id: bytes,
    prover_id: bytes,
    verifier_nonce: bytes,
    prover_nonce: bytes,
    n_rounds: int,
) -> tuple[bytes, bytes]:
    """What a terrorist Reid prover would have to send (== its secret).

    Returned in (register_for_challenge_0, register_for_challenge_1)
    order, i.e. ``(c, k)``.
    """
    key_register, cipher_register = derive_session_registers(
        shared_secret, verifier_id, prover_id, verifier_nonce, prover_nonce, n_rounds
    )
    return cipher_register, key_register
