"""Closed-form security bounds for distance-bounding protocols.

The benchmark harness checks the empirical attack success rates against
these formulas:

* Hancke-Kuhn (and Reid against mafia fraud): per-round adversary
  success 3/4 -> false acceptance ``(3/4)^n``;
* Brands-Chaum: per-round success 1/2 -> ``(1/2)^n``;
* rounds needed for a target security level.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def hancke_kuhn_false_accept(n_rounds: int) -> float:
    """``(3/4)^n``: optimal pre-ask adversary against Hancke-Kuhn."""
    if n_rounds < 0:
        raise ConfigurationError(f"n_rounds must be >= 0, got {n_rounds}")
    return 0.75**n_rounds


def brands_chaum_false_accept(n_rounds: int) -> float:
    """``(1/2)^n``: guessing adversary against Brands-Chaum."""
    if n_rounds < 0:
        raise ConfigurationError(f"n_rounds must be >= 0, got {n_rounds}")
    return 0.5**n_rounds


def rounds_for_security(
    target_false_accept: float, per_round_success: float = 0.75
) -> int:
    """Minimum rounds so the adversary's acceptance <= target.

    E.g. ``rounds_for_security(2**-32)`` -> 78 rounds of Hancke-Kuhn or
    32 rounds of Brands-Chaum (``per_round_success=0.5``).
    """
    if not 0.0 < target_false_accept < 1.0:
        raise ConfigurationError(
            f"target must be in (0, 1), got {target_false_accept}"
        )
    if not 0.0 < per_round_success < 1.0:
        raise ConfigurationError(
            f"per_round_success must be in (0, 1), got {per_round_success}"
        )
    return math.ceil(math.log(target_false_accept) / math.log(per_round_success))


def timing_margin_distance_km(
    rtt_max_ms: float, true_rtt_ms: float, propagation_speed_km_per_ms: float
) -> float:
    """Extra distance an attacker can hide inside the timing slack.

    ``(rtt_max - true_rtt) / 2 * speed`` -- the fundamental trade-off
    when choosing Delta-t_max: every millisecond of slack is 150 km of
    undetectable relay distance at light speed (or ~67 km at Internet
    speed).
    """
    if rtt_max_ms < 0 or true_rtt_ms < 0:
        raise ConfigurationError("RTTs must be >= 0")
    slack = max(0.0, rtt_max_ms - true_rtt_ms)
    return slack * propagation_speed_km_per_ms / 2.0
