"""Shared distance-bounding framework (the Fig. 1 abstraction).

Every protocol in this package has the same shape:

1. an *initialisation phase* (not time critical): exchange identities
   and nonces, derive per-session bit registers;
2. a *distance-bounding phase* (time critical): ``j`` single-bit
   challenge/response rounds, each individually timed;
3. a *verification*: every response bit must be correct and every
   round-trip time must satisfy ``rtt <= rtt_max``.

The framework fixes the transcript format and the verdict logic;
concrete protocols supply the register derivation and the expected-bit
function.  Timing runs on a :class:`~repro.netsim.clock.SimClock` and a
:class:`~repro.netsim.latency.LatencyModel` channel, so the *simulated*
geometry (how far the prover really is) determines the verdict exactly
as physics would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.netsim.clock import SimClock
from repro.netsim.latency import LatencyModel, SPEED_OF_LIGHT_KM_PER_MS


def rtt_to_distance_km(
    rtt_ms: float, propagation_speed_km_per_ms: float = SPEED_OF_LIGHT_KM_PER_MS
) -> float:
    """Distance bound implied by an RTT: ``speed * rtt / 2``."""
    if rtt_ms < 0:
        raise ConfigurationError(f"rtt must be >= 0, got {rtt_ms}")
    return propagation_speed_km_per_ms * rtt_ms / 2.0


@dataclass(frozen=True)
class RoundRecord:
    """One timed round: challenge bit, response bit, measured RTT."""

    round_index: int
    challenge_bit: int
    response_bit: int
    rtt_ms: float


@dataclass
class Transcript:
    """Everything the verifier saw: init data plus all timed rounds."""

    protocol: str
    verifier_id: bytes
    prover_id: bytes
    verifier_nonce: bytes
    prover_nonce: bytes
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        """Number of completed timed rounds."""
        return len(self.rounds)

    @property
    def max_rtt_ms(self) -> float:
        """The slowest round (what the timing check gates on)."""
        if not self.rounds:
            raise ConfigurationError("transcript has no rounds")
        return max(record.rtt_ms for record in self.rounds)


@dataclass(frozen=True)
class DistanceBoundingResult:
    """The verifier's verdict.

    ``accepted`` requires *both* all bits correct and all rounds within
    the time bound; the component flags support failure analysis.
    """

    accepted: bool
    bits_ok: bool
    timing_ok: bool
    n_rounds: int
    n_bit_errors: int
    n_timing_violations: int
    max_rtt_ms: float
    implied_distance_km: float
    transcript: Transcript


class TimedChannel:
    """The timed wire between verifier and prover.

    Wraps a latency model, a simulated clock, and the true
    verifier-prover distance.  ``exchange()`` performs one round:
    advance the clock for the outbound flight, let the prover compute
    (costing ``processing_ms``), advance for the return flight, and
    report the measured RTT.
    """

    def __init__(
        self,
        clock: SimClock,
        latency_model: LatencyModel,
        distance_km: float,
        *,
        rng: DeterministicRNG | None = None,
    ) -> None:
        if distance_km < 0:
            raise ConfigurationError(
                f"distance must be >= 0, got {distance_km}"
            )
        self.clock = clock
        self.latency_model = latency_model
        self.distance_km = distance_km
        self._rng = rng

    def exchange(
        self,
        respond,  # Callable[[int], tuple[int, float]]: bit -> (bit, processing_ms)
        challenge_bit: int,
        *,
        payload_bytes: int = 1,
    ) -> tuple[int, float]:
        """Run one timed round; returns (response_bit, measured_rtt_ms)."""
        start = self.clock.now_ms()
        self.clock.advance(
            self.latency_model.one_way_ms(self.distance_km, payload_bytes, self._rng)
        )
        response_bit, processing_ms = respond(challenge_bit)
        if processing_ms < 0:
            raise ConfigurationError(
                f"processing time must be >= 0, got {processing_ms}"
            )
        self.clock.advance(processing_ms)
        self.clock.advance(
            self.latency_model.one_way_ms(self.distance_km, payload_bytes, self._rng)
        )
        return response_bit, self.clock.now_ms() - start


def run_timed_phase(
    channel: TimedChannel,
    challenges: list[int],
    respond,
    transcript: Transcript,
) -> None:
    """Run the full timed phase, appending a record per round."""
    for i, challenge_bit in enumerate(challenges):
        if challenge_bit not in (0, 1):
            raise ConfigurationError(f"challenge bit {challenge_bit!r} not 0/1")
        response_bit, rtt_ms = channel.exchange(respond, challenge_bit)
        transcript.rounds.append(
            RoundRecord(
                round_index=i,
                challenge_bit=challenge_bit,
                response_bit=response_bit,
                rtt_ms=rtt_ms,
            )
        )


def verdict(
    transcript: Transcript,
    expected_bit,  # Callable[[int, int], int]: (round, challenge) -> bit
    rtt_max_ms: float,
    *,
    propagation_speed_km_per_ms: float = SPEED_OF_LIGHT_KM_PER_MS,
) -> DistanceBoundingResult:
    """Apply the standard accept rule to a finished transcript."""
    if rtt_max_ms <= 0:
        raise ConfigurationError(f"rtt_max must be > 0, got {rtt_max_ms}")
    n_bit_errors = 0
    n_timing_violations = 0
    for record in transcript.rounds:
        if record.response_bit != expected_bit(
            record.round_index, record.challenge_bit
        ):
            n_bit_errors += 1
        if record.rtt_ms > rtt_max_ms:
            n_timing_violations += 1
    bits_ok = n_bit_errors == 0
    timing_ok = n_timing_violations == 0
    max_rtt_ms_observed = transcript.max_rtt_ms
    return DistanceBoundingResult(
        accepted=bits_ok and timing_ok,
        bits_ok=bits_ok,
        timing_ok=timing_ok,
        n_rounds=transcript.n_rounds,
        n_bit_errors=n_bit_errors,
        n_timing_violations=n_timing_violations,
        max_rtt_ms=max_rtt_ms_observed,
        implied_distance_km=rtt_to_distance_km(
            max_rtt_ms_observed, propagation_speed_km_per_ms
        ),
        transcript=transcript,
    )
