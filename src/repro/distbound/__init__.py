"""Distance-bounding protocols (Section III-A of the paper).

The classic RF protocols GeoProof draws its timing phase from:

* :mod:`repro.distbound.base` -- the shared two-phase framework
  (untimed initialisation, timed bit-exchange rounds) and transcripts
  (Fig. 1).
* :mod:`repro.distbound.brands_chaum` -- Brands-Chaum (EUROCRYPT'93):
  commitment + XOR responses + signed transcript.
* :mod:`repro.distbound.hancke_kuhn` -- Hancke-Kuhn (SecureComm'05):
  symmetric-key, two PRF-derived registers (Fig. 2).
* :mod:`repro.distbound.reid` -- Reid et al. (ASIACCS'07): Hancke-Kuhn
  hardened against terrorist attack by encrypting the shared secret
  under a session key bound to both identities (Fig. 3).
* :mod:`repro.distbound.attacks` -- distance fraud, mafia fraud and
  terrorist (relay) attack simulators.
* :mod:`repro.distbound.analysis` -- closed-form false-acceptance
  bounds ((3/4)^n for Hancke-Kuhn style protocols, (1/2)^n for
  Brands-Chaum).
"""

from repro.distbound.analysis import (
    brands_chaum_false_accept,
    hancke_kuhn_false_accept,
    rounds_for_security,
)
from repro.distbound.attacks import (
    DistanceFraudProver,
    MafiaFraudRelay,
    TerroristAccomplice,
)
from repro.distbound.base import (
    DistanceBoundingResult,
    RoundRecord,
    Transcript,
    rtt_to_distance_km,
)
from repro.distbound.brands_chaum import BrandsChaumProver, BrandsChaumVerifier
from repro.distbound.hancke_kuhn import HanckeKuhnProver, HanckeKuhnVerifier
from repro.distbound.noisy import (
    NoisyChannelModel,
    adversary_acceptance,
    choose_threshold,
    honest_acceptance,
    tolerant_verdict,
)
from repro.distbound.reid import ReidProver, ReidVerifier

__all__ = [
    "Transcript",
    "RoundRecord",
    "DistanceBoundingResult",
    "rtt_to_distance_km",
    "BrandsChaumProver",
    "BrandsChaumVerifier",
    "HanckeKuhnProver",
    "HanckeKuhnVerifier",
    "ReidProver",
    "ReidVerifier",
    "DistanceFraudProver",
    "MafiaFraudRelay",
    "TerroristAccomplice",
    "hancke_kuhn_false_accept",
    "brands_chaum_false_accept",
    "rounds_for_security",
    "NoisyChannelModel",
    "honest_acceptance",
    "adversary_acceptance",
    "choose_threshold",
    "tolerant_verdict",
]
