"""Noise-tolerant distance bounding (Singelee-Preneel style).

The paper's survey cites distance bounding "in noisy environments"
[40] and Reid-et-al.-under-noise analyses [29]: on a real RF channel,
bits flip, so a verifier that demands *all* n responses correct will
false-reject honest provers.  The standard fix accepts up to ``t``
wrong bits out of ``n`` rounds.

Tolerance trades security for robustness, quantifiably:

* an honest prover over a channel with bit-error rate ``p_bit`` passes
  with probability ``P(Binomial(n, p_bit) <= t)``;
* a mafia-fraud adversary (per-round success 3/4) passes with
  ``P(Binomial(n, 1/4) <= t)`` -- rising quickly in ``t``.

:func:`choose_threshold` picks the smallest ``t`` meeting a target
false-reject rate, and :func:`adversary_acceptance` quantifies what
that choice concedes; :class:`NoisyChannelModel` wraps any latency
model with bit-flip noise so the protocols in this package can run
over it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.distbound.base import DistanceBoundingResult, Transcript, rtt_to_distance_km
from repro.errors import ConfigurationError
from repro.netsim.latency import LatencyModel
from repro.util.validation import check_probability


def _binomial_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p), exact summation in log space."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    total = 0.0
    for i in range(k + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * math.log(p)
            + (n - i) * math.log1p(-p)
        )
        total += math.exp(log_term)
    return min(total, 1.0)


def honest_acceptance(n_rounds: int, threshold: int, bit_error_rate: float) -> float:
    """P(honest prover passes): at most ``threshold`` of n bits flip."""
    if n_rounds <= 0:
        raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
    if not 0 <= threshold <= n_rounds:
        raise ConfigurationError(
            f"threshold must be in [0, {n_rounds}], got {threshold}"
        )
    check_probability("bit_error_rate", bit_error_rate)
    return _binomial_cdf(threshold, n_rounds, bit_error_rate)


def adversary_acceptance(
    n_rounds: int, threshold: int, per_round_success: float = 0.75
) -> float:
    """P(adversary passes): at most ``threshold`` of its guesses wrong.

    ``per_round_success`` is 3/4 for Hancke-Kuhn-style pre-ask attacks,
    1/2 for Brands-Chaum-style guessing.
    """
    if not 0.0 < per_round_success < 1.0:
        raise ConfigurationError(
            f"per_round_success must be in (0,1), got {per_round_success}"
        )
    return _binomial_cdf(threshold, n_rounds, 1.0 - per_round_success)


def choose_threshold(
    n_rounds: int,
    bit_error_rate: float,
    *,
    target_false_reject: float = 0.01,
) -> int:
    """Smallest tolerance ``t`` keeping honest false-rejects under target."""
    check_probability("target_false_reject", target_false_reject)
    for threshold in range(n_rounds + 1):
        if 1.0 - honest_acceptance(n_rounds, threshold, bit_error_rate) <= target_false_reject:
            return threshold
    return n_rounds


@dataclass
class NoisyChannelModel(LatencyModel):
    """Wrap a latency model with a per-traversal bit-flip probability.

    The flip probability is consumed by :func:`noisy_exchange`; latency
    behaviour delegates to the wrapped model unchanged.
    """

    inner: LatencyModel
    bit_error_rate: float = 0.0

    def __post_init__(self) -> None:
        check_probability("bit_error_rate", self.bit_error_rate)

    def one_way_ms(self, distance_km, payload_bytes=0, rng=None):
        return self.inner.one_way_ms(distance_km, payload_bytes, rng)


def run_noisy_timed_phase(
    channel,
    noise: NoisyChannelModel,
    challenges: list[int],
    respond,
    transcript: Transcript,
    rng: DeterministicRNG,
) -> None:
    """The timed phase with independent bit flips each direction.

    A flipped *challenge* makes the honest prover answer the wrong
    register; a flipped *response* corrupts a correct answer.  Both
    manifest to the verifier as response-bit errors.
    """
    for i, challenge_bit in enumerate(challenges):
        if challenge_bit not in (0, 1):
            raise ConfigurationError(f"challenge bit {challenge_bit!r} not 0/1")
        delivered = challenge_bit
        if rng.bernoulli(noise.bit_error_rate):
            delivered ^= 1
        response_bit, rtt_ms = channel.exchange(respond, delivered)
        if rng.bernoulli(noise.bit_error_rate):
            response_bit ^= 1
        from repro.distbound.base import RoundRecord

        transcript.rounds.append(
            RoundRecord(
                round_index=i,
                challenge_bit=challenge_bit,
                response_bit=response_bit,
                rtt_ms=rtt_ms,
            )
        )


def tolerant_verdict(
    transcript: Transcript,
    expected_bit,
    rtt_max_ms: float,
    *,
    threshold: int,
) -> DistanceBoundingResult:
    """Accept rule with an error budget: <= threshold wrong bits.

    Timing stays strict -- every round must meet the bound; noise adds
    bit errors, not honest latency, so tolerating slow rounds would
    concede exactly the relay headroom GeoProof exists to deny.
    """
    if rtt_max_ms <= 0:
        raise ConfigurationError(f"rtt_max must be > 0, got {rtt_max_ms}")
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    n_bit_errors = 0
    n_timing_violations = 0
    for record in transcript.rounds:
        if record.response_bit != expected_bit(
            record.round_index, record.challenge_bit
        ):
            n_bit_errors += 1
        if record.rtt_ms > rtt_max_ms:
            n_timing_violations += 1
    bits_ok = n_bit_errors <= threshold
    timing_ok = n_timing_violations == 0
    max_rtt_ms_observed = transcript.max_rtt_ms
    return DistanceBoundingResult(
        accepted=bits_ok and timing_ok,
        bits_ok=bits_ok,
        timing_ok=timing_ok,
        n_rounds=transcript.n_rounds,
        n_bit_errors=n_bit_errors,
        n_timing_violations=n_timing_violations,
        max_rtt_ms=max_rtt_ms_observed,
        implied_distance_km=rtt_to_distance_km(max_rtt_ms_observed),
        transcript=transcript,
    )
