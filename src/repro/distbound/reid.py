"""The Reid et al. distance-bounding protocol (Fig. 3).

Reid, Gonzalez Nieto, Tang and Senadji hardened Hancke-Kuhn against
the *terrorist attack*: a dishonest prover who helps a nearby
accomplice pass the protocol without handing over the long-term secret.

Changes relative to Hancke-Kuhn:

* identities of both parties are exchanged in the initialisation phase
  and bound into the key derivation:
  ``k = KDF(s, ID_V || ID_P || r_V || r_P)``;
* the response registers are ``c = E_k(s)`` (the encrypted long-term
  secret) and ``k`` itself: answering round ``i`` needs *both* the
  session key and the ciphertext of the secret.

A terrorist prover must now give its accomplice both registers -- but
``c XOR k``-style combination reveals ``s`` (in the original: knowing
both ``k`` and ``c = E_k(s)`` yields the long-term secret), so helping
the accomplice is equivalent to surrendering the credential.  The
attack simulator in :mod:`repro.distbound.attacks` exploits exactly
this structure.
"""

from __future__ import annotations

from repro.crypto.kdf import hkdf
from repro.crypto.prf import prf_stream
from repro.crypto.rng import DeterministicRNG
from repro.distbound.base import (
    DistanceBoundingResult,
    TimedChannel,
    Transcript,
    run_timed_phase,
    verdict,
)
from repro.errors import ConfigurationError
from repro.util.bitops import bit_at, ceil_div, xor_bytes


def derive_session_registers(
    shared_secret: bytes,
    verifier_id: bytes,
    prover_id: bytes,
    verifier_nonce: bytes,
    prover_nonce: bytes,
    n_rounds: int,
) -> tuple[bytes, bytes]:
    """Derive Reid et al.'s registers ``(k, c)`` for one session.

    ``k`` is the session key from the identity-bound KDF; ``c`` is the
    long-term secret encrypted under ``k`` (one-time-pad over a PRF
    stream keyed by ``k`` -- any IND-CPA cipher works, and the XOR
    structure makes the terrorist trade-off explicit: ``k XOR ... `` of
    the two registers recovers ``s``).
    """
    if n_rounds <= 0:
        raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
    register_bytes = ceil_div(n_rounds, 8)
    session_key = hkdf(
        shared_secret,
        salt=b"reid-kdf",
        info=verifier_id + b"|" + prover_id + b"|" + verifier_nonce + prover_nonce,
        length=register_bytes,
    )
    secret_bits = prf_stream(
        shared_secret, b"reid-secret-expand", b"", register_bytes
    )
    pad = prf_stream(session_key, b"reid-encrypt", b"", register_bytes)
    ciphertext = xor_bytes(secret_bits, pad)
    return session_key, ciphertext


class ReidProver:
    """The prover: derives (k, c) and answers register bits."""

    def __init__(
        self,
        identity: bytes,
        shared_secret: bytes,
        *,
        processing_ms: float = 0.0,
    ) -> None:
        self.identity = identity
        self._secret = shared_secret
        self.processing_ms = processing_ms
        self._key_register: bytes | None = None
        self._cipher_register: bytes | None = None
        self._round = 0

    def begin_session(
        self,
        verifier_id: bytes,
        verifier_nonce: bytes,
        prover_nonce: bytes,
        n_rounds: int,
    ) -> None:
        """Initialisation: derive this session's registers."""
        self._key_register, self._cipher_register = derive_session_registers(
            self._secret,
            verifier_id,
            self.identity,
            verifier_nonce,
            prover_nonce,
            n_rounds,
        )
        self._round = 0

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        """Timed responder: bit of ``c`` when 0, bit of ``k`` when 1."""
        if self._key_register is None or self._cipher_register is None:
            raise ConfigurationError("begin_session() must run first")
        register = (
            self._cipher_register if challenge_bit == 0 else self._key_register
        )
        bit = bit_at(register, self._round)
        self._round += 1
        return bit, self.processing_ms


class ReidVerifier:
    """The verifier: identity-bound Hancke-Kuhn with the (k, c) registers."""

    def __init__(
        self,
        identity: bytes,
        shared_secret: bytes,
        *,
        n_rounds: int = 32,
        rtt_max_ms: float = 1.0,
    ) -> None:
        if n_rounds <= 0:
            raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
        self.identity = identity
        self._secret = shared_secret
        self.n_rounds = n_rounds
        self.rtt_max_ms = rtt_max_ms

    def run(
        self,
        prover,
        channel: TimedChannel,
        rng: DeterministicRNG,
    ) -> DistanceBoundingResult:
        """Run a full Reid et al. session."""
        verifier_nonce = rng.random_bytes(16)
        prover_nonce = rng.random_bytes(16)
        prover.begin_session(
            self.identity, verifier_nonce, prover_nonce, self.n_rounds
        )
        key_register, cipher_register = derive_session_registers(
            self._secret,
            self.identity,
            prover.identity,
            verifier_nonce,
            prover_nonce,
            self.n_rounds,
        )
        transcript = Transcript(
            protocol="reid",
            verifier_id=self.identity,
            prover_id=prover.identity,
            verifier_nonce=verifier_nonce,
            prover_nonce=prover_nonce,
        )
        challenges = [rng.randbits(1) for _ in range(self.n_rounds)]
        run_timed_phase(channel, challenges, prover.respond, transcript)

        def expected_bit(round_index: int, challenge_bit: int) -> int:
            register = cipher_register if challenge_bit == 0 else key_register
            return bit_at(register, round_index)

        return verdict(transcript, expected_bit, self.rtt_max_ms)
