"""The Hancke-Kuhn distance-bounding protocol (Fig. 2).

Initialisation: prover and verifier share secret ``s``; they exchange
nonces ``r_A`` (verifier) and ``r_B`` (prover) and compute
``d = h(s, r_A || r_B)``, split into two n-bit registers ``l`` and
``r``.

Timed phase: for round ``i`` the verifier sends bit ``alpha_i``; the
prover answers with ``l[i]`` if ``alpha_i = 0`` else ``r[i]``.

An adversary without ``s`` answers each round correctly with
probability 3/4 (it can pre-ask the prover with a guessed challenge:
right guess -> correct bit, wrong guess -> coin flip), so the
false-acceptance probability is ``(3/4)^n`` -- reproduced empirically
by the attack benches.
"""

from __future__ import annotations

from repro.crypto.prf import prf_stream
from repro.distbound.base import (
    DistanceBoundingResult,
    TimedChannel,
    Transcript,
    run_timed_phase,
    verdict,
)
from repro.crypto.rng import DeterministicRNG
from repro.errors import ConfigurationError
from repro.util.bitops import bit_at, ceil_div, split_in_half


def derive_registers(
    shared_secret: bytes, verifier_nonce: bytes, prover_nonce: bytes, n_rounds: int
) -> tuple[bytes, bytes]:
    """Derive the two response registers ``(l, r)`` for a session."""
    if n_rounds <= 0:
        raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
    register_bytes = ceil_div(n_rounds, 8)
    stream = prf_stream(
        shared_secret,
        b"hancke-kuhn-registers",
        verifier_nonce + prover_nonce,
        2 * register_bytes,
    )
    return split_in_half(stream)


class HanckeKuhnProver:
    """The prover P: holds the shared secret, answers register bits."""

    def __init__(
        self,
        identity: bytes,
        shared_secret: bytes,
        *,
        processing_ms: float = 0.0,
    ) -> None:
        self.identity = identity
        self._secret = shared_secret
        self.processing_ms = processing_ms
        self._left: bytes | None = None
        self._right: bytes | None = None
        self._round = 0

    def begin_session(
        self, verifier_nonce: bytes, prover_nonce: bytes, n_rounds: int
    ) -> None:
        """Initialisation phase: derive this session's registers."""
        self._left, self._right = derive_registers(
            self._secret, verifier_nonce, prover_nonce, n_rounds
        )
        self._round = 0

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        """Timed-phase responder: register bit plus processing delay."""
        if self._left is None or self._right is None:
            raise ConfigurationError("begin_session() must run first")
        register = self._left if challenge_bit == 0 else self._right
        bit = bit_at(register, self._round)
        self._round += 1
        return bit, self.processing_ms


class HanckeKuhnVerifier:
    """The verifier V: drives the session and renders the verdict."""

    def __init__(
        self,
        identity: bytes,
        shared_secret: bytes,
        *,
        n_rounds: int = 32,
        rtt_max_ms: float = 1.0,
    ) -> None:
        if n_rounds <= 0:
            raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
        self.identity = identity
        self._secret = shared_secret
        self.n_rounds = n_rounds
        self.rtt_max_ms = rtt_max_ms

    def run(
        self,
        prover,
        channel: TimedChannel,
        rng: DeterministicRNG,
    ) -> DistanceBoundingResult:
        """Run a full session against any object with the prover API.

        ``prover`` needs ``identity``, ``begin_session()`` and
        ``respond()`` -- honest provers and the attack simulators both
        satisfy it.
        """
        verifier_nonce = rng.random_bytes(16)
        prover_nonce = rng.random_bytes(16)
        prover.begin_session(verifier_nonce, prover_nonce, self.n_rounds)
        left, right = derive_registers(
            self._secret, verifier_nonce, prover_nonce, self.n_rounds
        )
        transcript = Transcript(
            protocol="hancke-kuhn",
            verifier_id=self.identity,
            prover_id=prover.identity,
            verifier_nonce=verifier_nonce,
            prover_nonce=prover_nonce,
        )
        challenges = [rng.randbits(1) for _ in range(self.n_rounds)]
        run_timed_phase(channel, challenges, prover.respond, transcript)

        def expected_bit(round_index: int, challenge_bit: int) -> int:
            register = left if challenge_bit == 0 else right
            return bit_at(register, round_index)

        return verdict(transcript, expected_bit, self.rtt_max_ms)
