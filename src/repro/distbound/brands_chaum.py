"""The Brands-Chaum distance-bounding protocol (EUROCRYPT'93).

The first distance-bounding protocol, designed against mafia fraud:

1. the prover commits to a random bit string ``m`` (commitment
   ``C = H(m, opening)``);
2. timed phase: verifier sends random bits ``c_i``; prover instantly
   replies ``r_i = c_i XOR m_i``;
3. the prover opens the commitment and signs the transcript
   ``(c_1, r_1, ..., c_n, r_n)``; the verifier checks commitment,
   signature, bits and times.

Against an adversary who guesses challenges in advance, each round
succeeds with probability 1/2, so false acceptance is ``(1/2)^n``
(stronger per-round than Hancke-Kuhn's 3/4, at the cost of the
commitment and signature machinery).
"""

from __future__ import annotations

import hashlib

from repro.crypto.rng import DeterministicRNG
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    schnorr_sign,
    schnorr_verify,
)
from repro.distbound.base import (
    DistanceBoundingResult,
    TimedChannel,
    Transcript,
    run_timed_phase,
    verdict,
)
from repro.errors import ConfigurationError
from repro.util.bitops import bit_at, bits_to_bytes, ceil_div


def _commit(message: bytes, opening: bytes) -> bytes:
    """A hash commitment ``C = H(m || opening)``."""
    return hashlib.sha256(b"bc-commit" + message + opening).digest()


class BrandsChaumProver:
    """The prover: commits, answers XOR bits, signs the transcript."""

    def __init__(
        self,
        identity: bytes,
        keypair: SchnorrKeyPair,
        *,
        processing_ms: float = 0.0,
    ) -> None:
        self.identity = identity
        self.keypair = keypair
        self.processing_ms = processing_ms
        self._bits: bytes | None = None
        self._opening: bytes | None = None
        self._round = 0
        self._rounds_log: list[tuple[int, int]] = []

    def begin_session(self, n_rounds: int, rng: DeterministicRNG) -> bytes:
        """Choose ``m``, return the commitment."""
        if n_rounds <= 0:
            raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
        self._bits = rng.random_bytes(ceil_div(n_rounds, 8))
        self._opening = rng.random_bytes(16)
        self._round = 0
        self._rounds_log = []
        return _commit(self._bits, self._opening)

    def respond(self, challenge_bit: int) -> tuple[int, float]:
        """Timed responder: ``r_i = c_i XOR m_i``."""
        if self._bits is None:
            raise ConfigurationError("begin_session() must run first")
        bit = challenge_bit ^ bit_at(self._bits, self._round)
        self._rounds_log.append((challenge_bit, bit))
        self._round += 1
        return bit, self.processing_ms

    def finish_session(self) -> tuple[bytes, bytes, tuple[int, int]]:
        """Open the commitment and sign the round log."""
        if self._bits is None or self._opening is None:
            raise ConfigurationError("no session in progress")
        message = b"".join(
            bytes([challenge, response]) for challenge, response in self._rounds_log
        )
        signature = schnorr_sign(self.keypair.private, b"bc-transcript" + message)
        return self._bits, self._opening, signature


class BrandsChaumVerifier:
    """The verifier: times rounds, checks commitment + signature + bits."""

    def __init__(
        self,
        identity: bytes,
        prover_public_key,
        *,
        n_rounds: int = 32,
        rtt_max_ms: float = 1.0,
    ) -> None:
        if n_rounds <= 0:
            raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
        self.identity = identity
        self.prover_public_key = prover_public_key
        self.n_rounds = n_rounds
        self.rtt_max_ms = rtt_max_ms

    def run(
        self,
        prover,
        channel: TimedChannel,
        rng: DeterministicRNG,
    ) -> DistanceBoundingResult:
        """Run a full Brands-Chaum session."""
        commitment = prover.begin_session(self.n_rounds, rng.fork("prover"))
        transcript = Transcript(
            protocol="brands-chaum",
            verifier_id=self.identity,
            prover_id=prover.identity,
            verifier_nonce=b"",
            prover_nonce=commitment,  # the commitment plays the nonce role
        )
        challenges = [rng.randbits(1) for _ in range(self.n_rounds)]
        run_timed_phase(channel, challenges, prover.respond, transcript)
        bits, opening, signature = prover.finish_session()

        commitment_ok = _commit(bits, opening) == commitment
        message = b"".join(
            bytes([record.challenge_bit, record.response_bit])
            for record in transcript.rounds
        )
        signature_ok = schnorr_verify(
            self.prover_public_key, b"bc-transcript" + message, signature
        )

        def expected_bit(round_index: int, challenge_bit: int) -> int:
            return challenge_bit ^ bit_at(bits, round_index)

        result = verdict(transcript, expected_bit, self.rtt_max_ms)
        if not (commitment_ok and signature_ok):
            # Commitment/signature failure voids the session outright.
            result = DistanceBoundingResult(
                accepted=False,
                bits_ok=result.bits_ok and commitment_ok,
                timing_ok=result.timing_ok,
                n_rounds=result.n_rounds,
                n_bit_errors=result.n_bit_errors,
                n_timing_violations=result.n_timing_violations,
                max_rtt_ms=result.max_rtt_ms,
                implied_distance_km=result.implied_distance_km,
                transcript=transcript,
            )
        return result
